"""Unit and property tests for the quality metrics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quality.metrics import (
    QualityValue,
    inverse_psnr,
    mean_relative_error,
    mse,
    psnr,
    relative_error,
)

images = hnp.arrays(
    dtype=np.uint8, shape=st.tuples(
        st.integers(2, 16), st.integers(2, 16)
    )
)


class TestMse:
    def test_identical_zero(self):
        a = np.arange(12).reshape(3, 4)
        assert mse(a, a) == 0.0

    def test_known_value(self):
        assert mse([0, 0], [3, 4]) == pytest.approx(12.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mse(np.zeros(0), np.zeros(0))


class TestPsnr:
    def test_identical_infinite(self):
        a = np.full((4, 4), 7, dtype=np.uint8)
        assert psnr(a, a) == math.inf

    def test_known_value(self):
        a = np.zeros((2, 2))
        b = np.full((2, 2), 255.0)
        assert psnr(a, b) == pytest.approx(0.0, abs=1e-9)

    def test_peak_validated(self):
        with pytest.raises(ValueError):
            psnr(np.zeros(2), np.zeros(2), peak=0.0)

    def test_monotone_in_noise(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 255, (16, 16)).astype(np.float64)
        small = a + rng.normal(0, 1, a.shape)
        big = a + rng.normal(0, 10, a.shape)
        assert psnr(a, small) > psnr(a, big)

    @settings(max_examples=40, deadline=None)
    @given(images, images)
    def test_symmetry(self, a, b):
        if a.shape != b.shape:
            return
        assert psnr(a, b) == pytest.approx(psnr(b, a))


class TestInversePsnr:
    def test_identical_is_zero(self):
        a = np.ones((3, 3))
        assert inverse_psnr(a, a) == 0.0

    def test_inverse_relationship(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 16.0)
        assert inverse_psnr(a, b) == pytest.approx(1.0 / psnr(a, b))

    def test_nonpositive_psnr_clamps_to_inf(self):
        a = np.zeros((2, 2))
        b = np.full((2, 2), 255.0)  # PSNR == 0 dB
        assert inverse_psnr(a, b) == math.inf


class TestRelativeError:
    def test_identical_zero(self):
        a = np.arange(5.0)
        assert relative_error(a, a) == 0.0

    def test_known_value(self):
        assert relative_error([3.0, 4.0], [3.0, 5.0]) == pytest.approx(
            1.0 / 5.0
        )

    def test_zero_reference_zero_test(self):
        assert relative_error(np.zeros(3), np.zeros(3)) == 0.0

    def test_zero_reference_nonzero_test(self):
        assert relative_error(np.zeros(3), np.ones(3)) == math.inf

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_error(np.zeros(2), np.zeros(3))

    @settings(max_examples=40, deadline=None)
    @given(
        hnp.arrays(
            np.float64,
            st.integers(1, 20),
            elements=st.floats(-1e6, 1e6),
        )
    )
    def test_nonnegative_and_zero_on_self(self, a):
        assert relative_error(a, a) == 0.0

    @settings(max_examples=40, deadline=None)
    @given(
        hnp.arrays(
            np.float64, st.integers(1, 20), elements=st.floats(1.0, 1e3)
        ),
        st.floats(min_value=1.001, max_value=3.0),
    )
    def test_scaling_grows_error(self, a, factor):
        small = relative_error(a, a * 1.0005)
        big = relative_error(a, a * factor)
        assert big >= small


class TestMeanRelativeError:
    def test_elementwise_mean(self):
        assert mean_relative_error([1.0, 2.0], [1.1, 2.2]) == (
            pytest.approx(0.1)
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_relative_error(np.zeros(0), np.zeros(0))


class TestQualityValue:
    def test_from_psnr(self):
        a = np.ones((4, 4))
        q = QualityValue.from_psnr(a, a)
        assert q.metric == "PSNR^-1" and q.value == 0.0

    def test_from_relative_error_is_percent(self):
        q = QualityValue.from_relative_error([3.0, 4.0], [3.0, 5.0])
        assert q.metric == "Rel.Err(%)"
        assert q.value == pytest.approx(20.0)

    def test_repr(self):
        q = QualityValue("Rel.Err(%)", 1.5)
        assert "Rel.Err" in repr(q)
