"""Tests for the SSIM quality metric."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quality.images import synthetic_image
from repro.quality.ssim import ssim


class TestSsim:
    def test_identical_images_score_one(self):
        img = synthetic_image(32, 32)
        assert ssim(img, img) == pytest.approx(1.0)

    def test_inverted_image_scores_low(self):
        img = synthetic_image(32, 32)
        assert ssim(img, 255 - img) < 0.2

    def test_monotone_in_noise(self):
        rng = np.random.default_rng(0)
        img = synthetic_image(64, 64).astype(np.float64)
        mild = img + rng.normal(0, 5, img.shape)
        harsh = img + rng.normal(0, 40, img.shape)
        assert ssim(img, mild) > ssim(img, harsh)

    def test_symmetry(self):
        a = synthetic_image(32, 32, seed=1)
        b = synthetic_image(32, 32, seed=2)
        assert ssim(a, b) == pytest.approx(ssim(b, a))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((16, 16)), np.zeros((16, 17)))

    def test_too_small_image(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((4, 4)), np.zeros((4, 4)))

    def test_invalid_peak(self):
        img = synthetic_image(16, 16)
        with pytest.raises(ValueError):
            ssim(img, img, peak=0.0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_bounded(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 256, (16, 16)).astype(np.float64)
        b = rng.integers(0, 256, (16, 16)).astype(np.float64)
        s = ssim(a, b)
        assert -1.0 <= s <= 1.0

    def test_tracks_approximation_quality(self):
        """SSIM agrees with PSNR's ordering on Sobel approximation."""
        from repro.kernels.sobel import (
            sobel_reference,
            sobel_row_accurate,
            sobel_row_approx,
        )

        img = synthetic_image(32, 32)
        ref = sobel_reference(img)
        apx = np.zeros_like(img)
        for i in range(1, 31):
            sobel_row_approx(apx, img, i)
        mixed = np.zeros_like(img)
        for i in range(1, 31):
            (sobel_row_accurate if i % 2 else sobel_row_approx)(
                mixed, img, i
            )
        assert ssim(ref, mixed) > ssim(ref, apx)
