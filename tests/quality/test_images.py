"""Unit tests for image helpers (mosaics, PGM I/O, synthetic scenes)."""

import numpy as np
import pytest

from repro.quality.images import (
    quadrant_mosaic,
    quadrant_psnr,
    read_pgm,
    synthetic_image,
    write_pgm,
)


class TestSyntheticImage:
    def test_shape_and_dtype(self):
        img = synthetic_image(64, 48)
        assert img.shape == (64, 48)
        assert img.dtype == np.uint8

    def test_deterministic(self):
        assert np.array_equal(synthetic_image(32, 32), synthetic_image(32, 32))

    def test_seed_changes_noise(self):
        a = synthetic_image(32, 32, seed=1)
        b = synthetic_image(32, 32, seed=2)
        assert not np.array_equal(a, b)

    def test_has_edges(self):
        """The scene must exercise an edge detector: strong gradients."""
        img = synthetic_image(64, 64).astype(np.int32)
        grad = np.abs(np.diff(img, axis=0)).max()
        assert grad > 30

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            synthetic_image(4, 4)


class TestQuadrantMosaic:
    def test_each_quadrant_from_its_source(self):
        shape = (8, 8)
        quads = [np.full(shape, v, dtype=np.uint8) for v in (1, 2, 3, 4)]
        m = quadrant_mosaic(quads)
        assert m[0, 0] == 1 and m[0, 7] == 2
        assert m[7, 0] == 3 and m[7, 7] == 4

    def test_wrong_count_rejected(self):
        with pytest.raises(ValueError):
            quadrant_mosaic([np.zeros((4, 4))] * 3)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            quadrant_mosaic(
                [np.zeros((4, 4))] * 3 + [np.zeros((6, 6))]
            )

    def test_quadrant_psnr_identifies_clean_quadrant(self):
        ref = synthetic_image(32, 32)
        noisy = np.clip(
            ref.astype(int)
            + np.random.default_rng(0).integers(-40, 40, ref.shape),
            0,
            255,
        ).astype(np.uint8)
        mosaic = quadrant_mosaic([ref, noisy, noisy, noisy])
        psnrs = quadrant_psnr(ref, mosaic)
        assert psnrs[0] == float("inf")
        assert all(p < 30 for p in psnrs[1:])


class TestPgmIO:
    def test_roundtrip(self, tmp_path):
        img = synthetic_image(16, 24)
        p = write_pgm(tmp_path / "x.pgm", img)
        back = read_pgm(p)
        assert np.array_equal(back, img)

    def test_header_format(self, tmp_path):
        p = write_pgm(tmp_path / "x.pgm", np.zeros((4, 6), np.uint8))
        data = p.read_bytes()
        assert data.startswith(b"P5\n6 4\n255\n")

    def test_non_2d_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_pgm(tmp_path / "x.pgm", np.zeros((2, 2, 3)))

    def test_read_rejects_non_pgm(self, tmp_path):
        f = tmp_path / "bad.pgm"
        f.write_bytes(b"JFIF....")
        with pytest.raises(ValueError):
            read_pgm(f)

    def test_values_clipped(self, tmp_path):
        img = np.array([[300.0, -5.0]])
        p = write_pgm(tmp_path / "c.pgm", img)
        back = read_pgm(p)
        assert back[0, 0] == 255 and back[0, 1] == 0
