"""Execute every code block of docs/cluster.md, plus cluster-docs wiring.

Same contract as the serve page: every ``python`` block runs as
written, in order, in one shared namespace — drifting cluster docs
fail here before they mislead a reader.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest
import yaml

REPO_ROOT = Path(__file__).resolve().parents[2]
CLUSTER_MD = REPO_ROOT / "docs" / "cluster.md"

_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _blocks() -> list[str]:
    return _BLOCK.findall(CLUSTER_MD.read_text())


def test_cluster_page_exists_and_has_snippets():
    assert CLUSTER_MD.exists()
    assert len(_blocks()) >= 4


def test_cluster_snippets_execute_in_order():
    namespace: dict = {}
    for index, block in enumerate(_blocks()):
        try:
            exec(
                compile(block, f"cluster.md[block {index}]", "exec"),
                namespace,
            )
        except Exception as exc:  # pragma: no cover - failure path
            pytest.fail(
                f"cluster.md code block {index} failed: "
                f"{type(exc).__name__}: {exc}\n---\n{block}"
            )


def test_cluster_pages_are_in_nav():
    config = yaml.load(
        (REPO_ROOT / "mkdocs.yml").read_text(), Loader=yaml.BaseLoader
    )
    flat = str(config["nav"])
    assert "cluster.md" in flat
    assert "api/cluster.md" in flat
    assert (REPO_ROOT / "docs" / "api" / "cluster.md").exists()


def test_api_reference_covers_cluster_modules():
    text = (REPO_ROOT / "docs" / "api" / "cluster.md").read_text()
    for module in (
        "repro.cluster.service",
        "repro.cluster.hashring",
        "repro.cluster.cache",
        "repro.cluster.ledger",
        "repro.cluster.figure",
    ):
        assert f"::: {module}" in text


def test_readme_has_cluster_section():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "## Clustered serving" in readme
    assert "--shards" in readme


def test_cluster_page_mentions_the_moving_parts():
    text = CLUSTER_MD.read_text()
    for anchor in (
        "ClusterService",
        "ClusterSpec",
        "HashRing",
        "EnergyLedger",
        "fig-cluster",
        "serve_cluster",
    ):
        assert anchor in text
