"""Execute every code block of docs/scenarios.md, plus wiring checks.

Same contract as the serve page: every ``python`` block runs as
written, in order, in one shared namespace — drifting job-shape docs
fail here before they mislead a reader.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest
import yaml

REPO_ROOT = Path(__file__).resolve().parents[2]
SCENARIOS_MD = REPO_ROOT / "docs" / "scenarios.md"

_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _blocks() -> list[str]:
    return _BLOCK.findall(SCENARIOS_MD.read_text())


def test_scenarios_page_exists_and_has_snippets():
    assert SCENARIOS_MD.exists()
    assert len(_blocks()) >= 6


def test_scenarios_snippets_execute_in_order():
    namespace: dict = {}
    for index, block in enumerate(_blocks()):
        try:
            exec(
                compile(block, f"scenarios.md[block {index}]", "exec"),
                namespace,
            )
        except Exception as exc:  # pragma: no cover - failure path
            pytest.fail(
                f"scenarios.md code block {index} failed: "
                f"{type(exc).__name__}: {exc}\n---\n{block}"
            )


def test_scenarios_page_is_in_nav():
    config = yaml.load(
        (REPO_ROOT / "mkdocs.yml").read_text(), Loader=yaml.BaseLoader
    )
    flat = str(config["nav"])
    assert "scenarios.md" in flat


def test_api_reference_covers_scenario_modules():
    text = (REPO_ROOT / "docs" / "api" / "serve.md").read_text()
    assert "::: repro.serve.scenarios" in text
    assert "::: repro.harness.frames" in text


def test_scenarios_page_lists_every_registered_scenario():
    from repro.serve.scenarios import SCENARIOS

    text = SCENARIOS_MD.read_text()
    for name in SCENARIOS:
        assert f"`{name}`" in text, f"scenario {name} undocumented"


def test_readme_has_scenario_rows():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "fig-scenarios" in readme
    for anchor in ("streaming", "anytime", "degrade"):
        assert anchor in readme.lower()
