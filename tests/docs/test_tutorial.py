"""Execute every code block of docs/tutorial.md (doctest-style).

The tutorial promises that every block runs as written, in order, in
one shared namespace; this test keeps that promise honest.  A drifting
snippet — a renamed function, a changed schema key, a broken assertion
— fails CI here before it misleads a reader.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
TUTORIAL = REPO_ROOT / "docs" / "tutorial.md"

_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _blocks() -> list[str]:
    return _BLOCK.findall(TUTORIAL.read_text())


def test_tutorial_exists_and_has_snippets():
    assert TUTORIAL.exists()
    assert len(_blocks()) >= 6


def test_tutorial_snippets_execute_in_order(monkeypatch):
    # Section 5 reads the committed BENCH_runtime.json by relative
    # path, as a reader following along from the repo root would.
    monkeypatch.chdir(REPO_ROOT)
    namespace: dict = {}
    for index, block in enumerate(_blocks()):
        try:
            exec(compile(block, f"tutorial.md[block {index}]", "exec"),
                 namespace)
        except Exception as exc:  # pragma: no cover - failure path
            pytest.fail(
                f"tutorial.md code block {index} failed: "
                f"{type(exc).__name__}: {exc}\n---\n{block}"
            )


def test_tutorial_mentions_the_three_front_doors():
    text = TUTORIAL.read_text()
    for anchor in ("sig_task", "ExperimentSpec", "BENCH_runtime.json"):
        assert anchor in text
