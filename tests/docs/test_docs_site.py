"""Docs-site structure: nav integrity and API-reference coverage.

``mkdocs build --strict`` in CI catches broken links and unresolvable
mkdocstrings targets; these tests catch the same classes of drift
without requiring mkdocs locally — plus the ISSUE-4 acceptance
condition that the API reference covers every public registry
component.
"""

from __future__ import annotations

import re
from pathlib import Path

import yaml

import repro  # noqa: F401  (populates every registry)
from repro.registry import parse_spec, registry_for

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCS = REPO_ROOT / "docs"
MKDOCS_YML = REPO_ROOT / "mkdocs.yml"

#: mkdocstrings module directives: ``::: repro.some.module``.
_DIRECTIVE = re.compile(r"^::: ([\w.]+)\s*$", re.MULTILINE)


def _load_config() -> dict:
    # mkdocs-material registers custom YAML tags (!!python/name for
    # emoji handlers etc.); a BaseLoader reads structure only.
    return yaml.load(MKDOCS_YML.read_text(), Loader=yaml.BaseLoader)


def _nav_files(entry) -> list[str]:
    if isinstance(entry, str):
        return [entry]
    if isinstance(entry, dict):
        out = []
        for value in entry.values():
            out.extend(_nav_files(value))
        return out
    if isinstance(entry, list):
        out = []
        for item in entry:
            out.extend(_nav_files(item))
        return out
    return []


def _documented_modules() -> set[str]:
    modules: set[str] = set()
    for page in DOCS.rglob("*.md"):
        modules.update(_DIRECTIVE.findall(page.read_text()))
    return modules


class TestSiteStructure:
    def test_mkdocs_config_is_strict_material_with_mkdocstrings(self):
        config = _load_config()
        assert config["strict"] == "true" or config["strict"] is True
        assert config["theme"]["name"] == "material"
        plugins = config["plugins"]
        names = [
            p if isinstance(p, str) else next(iter(p)) for p in plugins
        ]
        assert "mkdocstrings" in names

    def test_every_nav_entry_exists(self):
        config = _load_config()
        files = _nav_files(config["nav"])
        assert files, "empty nav"
        for rel in files:
            assert (DOCS / rel).exists(), f"nav points at missing {rel}"

    def test_required_pages_are_in_nav(self):
        config = _load_config()
        files = set(_nav_files(config["nav"]))
        for required in (
            "index.md",
            "tutorial.md",
            "architecture.md",
            "governor.md",
            "api/index.md",
        ):
            assert required in files

    def test_architecture_page_is_seeded_from_design(self):
        """The docs architecture page must track DESIGN.md's skeleton."""
        design = (REPO_ROOT / "DESIGN.md").read_text()
        page = (DOCS / "architecture.md").read_text()
        design_sections = re.findall(r"^## \d+\. (.+)$", design, re.M)
        assert len(design_sections) >= 8
        for title in design_sections:
            assert title.split("(")[0].strip()[:20] in page, (
                f"architecture.md lost DESIGN.md section {title!r}"
            )


class TestApiReferenceCoverage:
    def test_issue_required_packages_have_reference_pages(self):
        modules = _documented_modules()
        roots = {m.split(".")[1] for m in modules if m.count(".") >= 1}
        # ISSUE 4 satellite: api, experiment, registry, runtime,
        # energy, bench — plus tuning/faults for the new subsystems.
        assert {
            "api", "experiment", "registry", "runtime", "energy",
            "bench", "tuning", "faults",
        } <= roots | {m.split(".")[-1] for m in modules}

    def test_every_registry_component_is_documented(self):
        """Acceptance: the API reference covers every public registry
        component — the module defining each factory appears as a
        mkdocstrings target (directly or via a parent package)."""
        modules = _documented_modules()

        def covered(module: str) -> bool:
            parts = module.split(".")
            return any(
                ".".join(parts[: i + 1]) in modules
                for i in range(len(parts))
            )

        missing = []
        for kind in ("policy", "engine", "cost-model", "machine",
                     "governor", "tenant", "servable"):
            registry = registry_for(kind)
            for name in registry.names():
                factory = registry.factory(name)
                module = factory.__module__
                if not covered(module):
                    missing.append((kind, name, module))
        assert not missing, (
            f"registry components missing from the API reference: "
            f"{missing}"
        )

    def test_every_directive_names_an_importable_module(self):
        import importlib

        for module in sorted(_documented_modules()):
            importlib.import_module(module)


class TestSpecExamplesInDocs:
    def test_governor_spec_lines_parse(self):
        """Spec strings shown in the governor page must stay valid."""
        page = (DOCS / "governor.md").read_text()
        for spec in re.findall(r'"(governor:[^"]+)"', page):
            name, kwargs = parse_spec(spec)
            assert name == "governor"
            assert "budget_j" in kwargs or "interval" in kwargs
