"""Execute every code block of docs/serve.md, plus serve-docs wiring.

Same contract as the tutorial page: every ``python`` block runs as
written, in order, in one shared namespace — drifting serve docs fail
here before they mislead a reader.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest
import yaml

REPO_ROOT = Path(__file__).resolve().parents[2]
SERVE_MD = REPO_ROOT / "docs" / "serve.md"

_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _blocks() -> list[str]:
    return _BLOCK.findall(SERVE_MD.read_text())


def test_serve_page_exists_and_has_snippets():
    assert SERVE_MD.exists()
    assert len(_blocks()) >= 6


def test_serve_snippets_execute_in_order():
    namespace: dict = {}
    for index, block in enumerate(_blocks()):
        try:
            exec(
                compile(block, f"serve.md[block {index}]", "exec"),
                namespace,
            )
        except Exception as exc:  # pragma: no cover - failure path
            pytest.fail(
                f"serve.md code block {index} failed: "
                f"{type(exc).__name__}: {exc}\n---\n{block}"
            )


def test_serve_pages_are_in_nav():
    config = yaml.load(
        (REPO_ROOT / "mkdocs.yml").read_text(), Loader=yaml.BaseLoader
    )
    flat = str(config["nav"])
    assert "serve.md" in flat
    assert "api/serve.md" in flat
    assert (REPO_ROOT / "docs" / "api" / "serve.md").exists()


def test_api_reference_covers_serve_modules():
    text = (REPO_ROOT / "docs" / "api" / "serve.md").read_text()
    for module in (
        "repro.serve.server",
        "repro.serve.tenants",
        "repro.serve.cache",
        "repro.serve.kernels",
        "repro.serve.client",
        "repro.serve.figure",
    ):
        assert f"::: {module}" in text


def test_readme_has_serving_section():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "## Serving" in readme
    assert "repro.harness serve" in readme


def test_serve_page_mentions_the_front_doors():
    text = SERVE_MD.read_text()
    for anchor in (
        "LocalGateway",
        "ServeServer",
        "fig-serve",
        "--smoke",
        "cached-degraded",
    ):
        assert anchor in text
