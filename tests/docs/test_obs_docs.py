"""Execute every code block of docs/observability.md, plus its wiring.

Same contract as the other doc pages: every ``python`` block runs as
written, in order, in one shared namespace — drifting docs fail here
before they mislead a reader.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest
import yaml

from repro.obs import set_obs_enabled

REPO_ROOT = Path(__file__).resolve().parents[2]
OBS_MD = REPO_ROOT / "docs" / "observability.md"

_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _blocks() -> list[str]:
    return _BLOCK.findall(OBS_MD.read_text())


def test_obs_page_exists_and_has_snippets():
    assert OBS_MD.exists()
    assert len(_blocks()) >= 6


def test_obs_snippets_execute_in_order():
    prev = set_obs_enabled(True)  # the page documents default-on mode
    namespace: dict = {}
    try:
        for index, block in enumerate(_blocks()):
            try:
                exec(
                    compile(
                        block, f"observability.md[block {index}]", "exec"
                    ),
                    namespace,
                )
            except Exception as exc:  # pragma: no cover - failure path
                pytest.fail(
                    f"observability.md code block {index} failed: "
                    f"{type(exc).__name__}: {exc}\n---\n{block}"
                )
    finally:
        set_obs_enabled(prev)


def test_obs_page_is_in_nav():
    config = yaml.load(
        (REPO_ROOT / "mkdocs.yml").read_text(), Loader=yaml.BaseLoader
    )
    flat = str(config["nav"])
    assert "observability.md" in flat
    assert "api/obs.md" in flat


def test_api_reference_covers_obs_modules():
    text = (REPO_ROOT / "docs" / "api" / "obs.md").read_text()
    for anchor in (
        "::: repro.obs.registry",
        "::: repro.obs.spans",
        "::: repro.obs.top",
    ):
        assert anchor in text


def test_readme_has_observability_section():
    text = (REPO_ROOT / "README.md").read_text()
    assert "## Live telemetry" in text
    assert "repro.harness top" in text
    assert "REPRO_OBS" in text


def test_design_doc_has_obs_section():
    text = (REPO_ROOT / "DESIGN.md").read_text()
    assert "## 15." in text
    for anchor in (
        "MetricsRegistry",
        "SpanRecorder",
        "~overflow~",
        "obs_overhead",
        "trace_id",
    ):
        assert anchor in text


def test_page_mentions_the_moving_parts():
    text = OBS_MD.read_text()
    for anchor in (
        "REPRO_OBS",
        "to_prometheus",
        "metrics_snapshot",
        "write_jsonl",
        "render_top",
        "repro.harness top",
        "obs_overhead",
    ):
        assert anchor in text
