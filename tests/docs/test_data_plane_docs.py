"""Execute every code block of docs/data_plane.md, plus its wiring.

Same contract as the serve and cluster pages: every ``python`` block
runs as written, in order, in one shared namespace — drifting docs
fail here before they mislead a reader.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest
import yaml

REPO_ROOT = Path(__file__).resolve().parents[2]
PLANE_MD = REPO_ROOT / "docs" / "data_plane.md"

_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _blocks() -> list[str]:
    return _BLOCK.findall(PLANE_MD.read_text())


def test_data_plane_page_exists_and_has_snippets():
    assert PLANE_MD.exists()
    assert len(_blocks()) >= 4


def test_data_plane_snippets_execute_in_order():
    namespace: dict = {}
    for index, block in enumerate(_blocks()):
        try:
            exec(
                compile(block, f"data_plane.md[block {index}]", "exec"),
                namespace,
            )
        except Exception as exc:  # pragma: no cover - failure path
            pytest.fail(
                f"data_plane.md code block {index} failed: "
                f"{type(exc).__name__}: {exc}\n---\n{block}"
            )


def test_data_plane_page_is_in_nav():
    config = yaml.load(
        (REPO_ROOT / "mkdocs.yml").read_text(), Loader=yaml.BaseLoader
    )
    flat = str(config["nav"])
    assert "data_plane.md" in flat


def test_api_reference_covers_memory_module():
    text = (REPO_ROOT / "docs" / "api" / "runtime.md").read_text()
    assert "::: repro.runtime.memory" in text


def test_design_doc_has_data_plane_section():
    text = (REPO_ROOT / "DESIGN.md").read_text()
    assert "## 12." in text
    for anchor in ("ArrayRef", "promotion", "ShardedWorkerQueues",
                   "AccountingShard", "TaskSlab"):
        assert anchor in text


def test_page_mentions_the_moving_parts():
    text = PLANE_MD.read_text()
    for anchor in (
        "process:shm=true",
        "ArrayRef",
        "shared_array_pool",
        "data_plane",
        "payload_bandwidth",
        "BrokenProcessPool",
    ):
        assert anchor in text
