"""Execute every code block of docs/compiler.md, plus docs wiring.

Same contract as the other doc pages: every ``python`` block runs as
written, in order, in one shared namespace — drifting compile-tier
docs fail here before they mislead a reader.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest
import yaml

REPO_ROOT = Path(__file__).resolve().parents[2]
COMPILER_MD = REPO_ROOT / "docs" / "compiler.md"

_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _blocks() -> list[str]:
    return _BLOCK.findall(COMPILER_MD.read_text())


def test_compiler_page_exists_and_has_snippets():
    assert COMPILER_MD.exists()
    assert len(_blocks()) >= 6


def test_compiler_snippets_execute_in_order():
    namespace: dict = {}
    for index, block in enumerate(_blocks()):
        try:
            exec(
                compile(block, f"compiler.md[block {index}]", "exec"),
                namespace,
            )
        except Exception as exc:  # pragma: no cover - failure path
            pytest.fail(
                f"compiler.md code block {index} failed: "
                f"{type(exc).__name__}: {exc}\n---\n{block}"
            )


def test_compiler_pages_are_in_nav():
    config = yaml.load(
        (REPO_ROOT / "mkdocs.yml").read_text(), Loader=yaml.BaseLoader
    )
    flat = str(config["nav"])
    assert "compiler.md" in flat
    assert "api/compiler.md" in flat
    assert (REPO_ROOT / "docs" / "api" / "compiler.md").exists()


def test_api_reference_covers_compiler_modules():
    text = (REPO_ROOT / "docs" / "api" / "compiler.md").read_text()
    for module in (
        "repro.compiler.specialize",
        "repro.compiler.directives",
        "repro.compiler.parser",
        "repro.compiler.lowering",
        "repro.compiler.figure",
    ):
        assert f"::: {module}" in text


def test_readme_has_compile_row():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "`compile`" in readme
    assert "specialize:cache_size=64" in readme


def test_compiler_page_mentions_the_load_bearing_names():
    text = COMPILER_MD.read_text()
    for anchor in (
        "decide_kinds",
        "spawn_specialized",
        "SpecializedPlan",
        "specialize:profile=true",
        "fig-compile",
        "compile_specialization",
    ):
        assert anchor in text
