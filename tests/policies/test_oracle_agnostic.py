"""Unit tests for the oracle and significance-agnostic policies."""

import pytest

from repro.runtime.policies import (
    OraclePolicy,
    SignificanceAgnostic,
    make_policy,
)
from repro.runtime.task import ExecutionKind

from ..conftest import make_scheduler, spawn_n


class TestAgnostic:
    def test_everything_accurate_regardless_of_ratio(self):
        rt = make_scheduler(policy=SignificanceAgnostic())
        rt.init_group("g", ratio=0.0)
        tasks = spawn_n(rt, 8, label="g")
        rt.finish()
        assert all(
            t.decision is ExecutionKind.ACCURATE for t in tasks
        )

    def test_zero_decide_overhead(self):
        from repro.runtime.task import Task

        p = SignificanceAgnostic()
        assert p.decide_overhead(Task(fn=lambda: None)) == 0.0


class TestOracle:
    def test_exact_quota_and_zero_inversions(self):
        rt = make_scheduler(policy=OraclePolicy())
        rt.init_group("g", ratio=0.5)
        spawn_n(rt, 40, label="g")
        report = rt.finish()
        assert report.accurate_tasks == 20
        assert report.total_inversion_pct() == 0.0
        assert report.mean_ratio_offset() == pytest.approx(0.0)

    def test_oracle_not_slower_than_gtb_max(self):
        """Clairvoyance never loses to max-buffer GTB (same decisions,
        no buffering delay)."""
        from repro.runtime.policies import gtb_max_buffer

        def run(policy):
            rt = make_scheduler(policy=policy, workers=4)
            rt.init_group("g", ratio=0.5)
            spawn_n(rt, 64, label="g")
            return rt.finish().makespan_s

        assert run(OraclePolicy()) <= run(gtb_max_buffer()) + 1e-12

    def test_most_significant_chosen(self):
        rt = make_scheduler(policy=OraclePolicy())
        rt.init_group("g", ratio=0.25)
        tasks = spawn_n(rt, 8, label="g", sig=lambda i: (i + 1) / 10.0)
        rt.finish()
        accurate = {t.args[0] for t in tasks
                    if t.decision is ExecutionKind.ACCURATE}
        assert accurate == {6, 7}


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestMakePolicy:
    """The deprecated shim keeps resolving every historical spec."""

    @pytest.mark.parametrize("spec,cls_name", [
        ("gtb", "GlobalTaskBuffering"),
        ("gtb-max", "GlobalTaskBuffering"),
        ("lqh", "LocalQueueHistory"),
        ("accurate", "SignificanceAgnostic"),
        ("agnostic", "SignificanceAgnostic"),
        ("oracle", "OraclePolicy"),
    ])
    def test_specs(self, spec, cls_name):
        assert type(make_policy(spec)).__name__ == cls_name

    def test_gtb_kwargs(self):
        p = make_policy("gtb", buffer_size=7)
        assert p.buffer_size == 7

    def test_gtb_max_has_no_buffer_limit(self):
        assert make_policy("gtb-max").buffer_size is None

    def test_unknown_spec(self):
        with pytest.raises(ValueError):
            make_policy("magic")

    def test_unattached_policy_raises(self):
        from repro.runtime.errors import PolicyError

        p = make_policy("lqh")
        with pytest.raises(PolicyError):
            _ = p.scheduler
