"""Property-based tests (hypothesis) on the policy invariants.

These pin down the contract all policies share, over arbitrary
significance distributions and ratios:

* every task receives exactly one decision;
* GTB-MaxBuffer / oracle meet the quota exactly (ceil semantics) and
  never invert significance order;
* forced significance values (0.0 / 1.0) are always honoured;
* the LQH classify rule reduces to the paper's inequality away from the
  straddling level.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.policies import gtb_max_buffer
from repro.runtime.policies.lqh import GroupHistory, LocalQueueHistory
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import ExecutionKind, TaskCost

COST = TaskCost(1000.0, 100.0)

sig_lists = st.lists(
    st.floats(min_value=0.01, max_value=0.99), min_size=1, max_size=60
)
ratios = st.floats(min_value=0.0, max_value=1.0)


def run_gtb_max(sigs, ratio):
    rt = Scheduler(policy=gtb_max_buffer(), n_workers=4)
    rt.init_group("g", ratio=ratio)
    tasks = [
        rt.spawn(
            lambda: None,
            significance=s,
            approxfun=lambda: None,
            label="g",
            cost=COST,
        )
        for s in sigs
    ]
    rt.finish()
    return tasks


@settings(max_examples=60, deadline=None)
@given(sig_lists, ratios)
def test_gtb_max_quota_is_exact_ceiling(sigs, ratio):
    tasks = run_gtb_max(sigs, ratio)
    accurate = sum(
        1 for t in tasks if t.decision is ExecutionKind.ACCURATE
    )
    assert accurate == math.ceil(ratio * len(sigs) - 1e-12)


@settings(max_examples=60, deadline=None)
@given(sig_lists, ratios)
def test_gtb_max_never_inverts(sigs, ratio):
    tasks = run_gtb_max(sigs, ratio)
    approx_sigs = [
        t.significance
        for t in tasks
        if t.decision is not ExecutionKind.ACCURATE
    ]
    acc_sigs = [
        t.significance
        for t in tasks
        if t.decision is ExecutionKind.ACCURATE
    ]
    if approx_sigs and acc_sigs:
        assert max(approx_sigs) <= min(acc_sigs) + 1e-12


@settings(max_examples=60, deadline=None)
@given(sig_lists, ratios)
def test_every_task_decided(sigs, ratio):
    tasks = run_gtb_max(sigs, ratio)
    assert all(t.decision is not None for t in tasks)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.sampled_from([0.0, 1.0]), min_size=1, max_size=30
    ),
    ratios,
)
def test_forced_values_always_honoured(sigs, ratio):
    rt = Scheduler(policy=gtb_max_buffer(), n_workers=2)
    rt.init_group("g", ratio=ratio)
    tasks = [
        rt.spawn(
            lambda: None,
            significance=s,
            approxfun=lambda: None,
            label="g",
            cost=COST,
        )
        for s in sigs
    ]
    rt.finish()
    for t in tasks:
        if t.significance >= 1.0:
            assert t.decision is ExecutionKind.ACCURATE
        else:
            assert t.decision is ExecutionKind.APPROXIMATE


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=100), min_size=1,
             max_size=300),
    st.floats(min_value=0.05, max_value=0.95),
)
def test_lqh_rule_matches_paper_inequality_off_straddle(levels, ratio):
    """Where the level does not straddle the quota line, the decision is
    exactly the paper's ``t_g(s) > (1-R_g) t_g(1.0)`` inequality."""
    hist = GroupHistory()
    for lv in levels:
        quota = (1.0 - ratio) * (hist.total + 1)
        below = hist.cumulative_below(lv)
        whole_level = below + hist.counts[lv] + 1
        kind = LocalQueueHistory._classify(hist, lv, ratio)
        if below >= quota:
            assert kind is ExecutionKind.ACCURATE
        elif whole_level <= quota:
            assert kind is ExecutionKind.APPROXIMATE
        hist.observe(lv, kind)


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=0.05, max_value=0.95))
def test_lqh_long_run_ratio_convergence(ratio):
    hist = GroupHistory()
    acc = 0
    n = 3000
    for i in range(n):
        level = (i * 37) % 101  # pseudo-uniform level stream
        kind = LocalQueueHistory._classify(hist, level, ratio)
        hist.observe(level, kind)
        acc += kind is ExecutionKind.ACCURATE
    assert abs(acc / n - ratio) < 0.03
