"""Unit tests for Global Task Buffering (paper section 3.3, Listing 4)."""

import pytest

from repro.runtime.errors import PolicyError
from repro.runtime.policies import GlobalTaskBuffering, gtb_max_buffer
from repro.runtime.task import ExecutionKind, TaskState

from ..conftest import make_scheduler, spawn_n


class TestConfiguration:
    def test_invalid_buffer_size(self):
        with pytest.raises(PolicyError):
            GlobalTaskBuffering(0)
        with pytest.raises(PolicyError):
            GlobalTaskBuffering(-4)

    def test_max_buffer_factory(self):
        p = gtb_max_buffer()
        assert p.buffer_size is None
        assert "MaxBuffer" in p.name

    def test_describe(self):
        assert "B=8" in GlobalTaskBuffering(8).describe()
        assert "B=max" in gtb_max_buffer().describe()


class TestBuffering:
    def test_tasks_buffered_until_window_full(self):
        rt = make_scheduler(policy=GlobalTaskBuffering(4))
        tasks = spawn_n(rt, 3, label="g")
        assert all(t.state is TaskState.BUFFERED for t in tasks)
        spawn_n(rt, 1, label="g")  # fills the window -> flush
        assert all(t.state is not TaskState.BUFFERED for t in tasks)
        rt.finish()

    def test_max_buffer_holds_until_barrier(self):
        rt = make_scheduler(policy=gtb_max_buffer())
        tasks = spawn_n(rt, 50, label="g")
        assert all(t.state is TaskState.BUFFERED for t in tasks)
        rt.taskwait(label="g")
        assert all(t.state is TaskState.FINISHED for t in tasks)
        rt.finish()

    def test_buffers_are_per_group(self):
        rt = make_scheduler(policy=GlobalTaskBuffering(4))
        a = spawn_n(rt, 3, label="a")
        spawn_n(rt, 4, label="b")  # fills b's buffer only
        assert all(t.state is TaskState.BUFFERED for t in a)
        rt.finish()

    def test_unstamped_task_rejected_at_worker(self):
        p = GlobalTaskBuffering(4)
        rt = make_scheduler(policy=p)
        t = spawn_n(rt, 1, label="g")[0]
        with pytest.raises(PolicyError):
            p.decide(t, worker=0)
        rt.finish()


class TestQuotaSelection:
    @pytest.mark.parametrize("ratio,expected", [
        (1.0, 20), (0.75, 15), (0.5, 10), (0.25, 5), (0.0, 0),
    ])
    def test_exact_quota(self, ratio, expected):
        rt = make_scheduler(policy=gtb_max_buffer())
        rt.init_group("g", ratio=ratio)
        spawn_n(rt, 20, label="g")
        report = rt.finish()
        assert report.accurate_tasks == expected

    def test_most_significant_selected(self):
        rt = make_scheduler(policy=gtb_max_buffer())
        rt.init_group("g", ratio=0.3)
        tasks = spawn_n(rt, 10, label="g", sig=lambda i: (i + 1) / 20.0)
        rt.finish()
        accurate = {t.args[0] for t in tasks
                    if t.decision is ExecutionKind.ACCURATE}
        assert accurate == {7, 8, 9}  # the 3 highest significances

    def test_quota_is_ceiling(self):
        """'at least the specified percentage' -> ceil(R*B)."""
        rt = make_scheduler(policy=gtb_max_buffer())
        rt.init_group("g", ratio=0.35)
        spawn_n(rt, 10, label="g")
        report = rt.finish()
        assert report.accurate_tasks == 4  # ceil(3.5)

    def test_forced_significance_one_always_accurate(self):
        rt = make_scheduler(policy=gtb_max_buffer())
        rt.init_group("g", ratio=0.0)
        tasks = spawn_n(rt, 5, label="g", sig=1.0)
        rt.finish()
        assert all(t.decision is ExecutionKind.ACCURATE for t in tasks)

    def test_forced_significance_zero_always_approx(self):
        rt = make_scheduler(policy=gtb_max_buffer())
        rt.init_group("g", ratio=1.0)
        tasks = spawn_n(rt, 5, label="g", sig=0.0)
        rt.finish()
        assert all(
            t.decision is ExecutionKind.APPROXIMATE for t in tasks
        )

    def test_droppable_tasks_get_dropped(self):
        rt = make_scheduler(policy=gtb_max_buffer())
        rt.init_group("g", ratio=0.5)
        tasks = spawn_n(rt, 10, label="g", approx=False)
        rt.finish()
        dropped = [t for t in tasks if t.decision is ExecutionKind.DROPPED]
        assert len(dropped) == 5

    def test_stable_tie_break_by_spawn_order(self):
        """Uniform significance: GTB deterministically picks the first
        spawned tasks (paper: Kmeans 'GTB policies behave
        deterministically')."""
        rt = make_scheduler(policy=gtb_max_buffer())
        rt.init_group("g", ratio=0.4)
        tasks = spawn_n(rt, 10, label="g", sig=0.5)
        rt.finish()
        accurate = [t.args[0] for t in tasks
                    if t.decision is ExecutionKind.ACCURATE]
        assert accurate == [0, 1, 2, 3]


class TestWindowedQuota:
    def test_quota_applied_per_window(self):
        rt = make_scheduler(policy=GlobalTaskBuffering(5))
        rt.init_group("g", ratio=0.4)
        spawn_n(rt, 10, label="g")
        report = rt.finish()
        # ceil(0.4*5)=2 accurate per window, 2 windows
        assert report.accurate_tasks == 4

    def test_partial_window_flushed_at_barrier(self):
        rt = make_scheduler(policy=GlobalTaskBuffering(8))
        rt.init_group("g", ratio=0.5)
        spawn_n(rt, 3, label="g")  # window never fills
        rt.taskwait(label="g")
        report = rt.finish()
        assert report.tasks_total == 3
        assert report.accurate_tasks == 2  # ceil(1.5)

    def test_no_inversions_within_any_run_max_buffer(self):
        rt = make_scheduler(policy=gtb_max_buffer())
        rt.init_group("g", ratio=0.37)
        spawn_n(rt, 60, label="g")
        report = rt.finish()
        assert report.total_inversion_pct() == 0.0
        assert report.mean_ratio_offset() < 0.02

    def test_reset_clears_buffers(self):
        p = GlobalTaskBuffering(100)
        rt = make_scheduler(policy=p)
        spawn_n(rt, 5, label="g")
        p.reset()
        assert not p._buffers or all(
            not b for b in p._buffers.values()
        )
        # Scheduler can still finish cleanly: tasks were dropped from
        # the policy's view, so the barrier must not hang on them.
        # (They were never issued; groups.outstanding counts them, so
        # finish would stall — this is exactly what the stall handler
        # reports.)
