"""The precomputed overhead constants must never shadow overrides."""

from repro.runtime.policies import (
    GlobalTaskBuffering,
    LocalQueueHistory,
    SignificanceAgnostic,
)
from repro.runtime.policies.base import PolicyOverheads
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import TaskCost


class TestConstsMatchMethods:
    def test_builtins_declare_consistent_constants(self):
        for policy in (
            SignificanceAgnostic(),
            GlobalTaskBuffering(8),
            GlobalTaskBuffering(None),
            LocalQueueHistory(),
        ):
            task = object.__new__(object)  # methods ignore the task
            assert policy.spawn_overhead_const == policy.spawn_overhead(
                task
            )
            assert policy.decide_overhead_const == policy.decide_overhead(
                task
            )


class TestSubclassOverrides:
    def test_overriding_method_resets_inherited_const(self):
        class TaskDependentGtb(GlobalTaskBuffering):
            def decide_overhead(self, task):
                return 1000.0 * task.significance

        assert TaskDependentGtb.decide_overhead_const is None
        # The un-overridden spawn side keeps the parent's fast path.
        assert (
            TaskDependentGtb.spawn_overhead_const
            == GlobalTaskBuffering.spawn_overhead_const
        )

    def test_explicit_const_in_subclass_is_kept(self):
        class Recalibrated(GlobalTaskBuffering):
            decide_overhead_const = 99.0

            def decide_overhead(self, task):
                return 99.0

        assert Recalibrated.decide_overhead_const == 99.0

    def test_engine_charges_the_override(self):
        class ExpensiveDecisions(SignificanceAgnostic):
            def decide_overhead(self, task):
                return 1e6  # 0.5 ms at 2 GOPS, dwarfing the task cost

        cheap = Scheduler(policy=SignificanceAgnostic(), n_workers=1)
        cheap.spawn(lambda: None, cost=TaskCost(100.0))
        base = cheap.finish().makespan_s

        costly = Scheduler(policy=ExpensiveDecisions(), n_workers=1)
        costly.spawn(lambda: None, cost=TaskCost(100.0))
        slow = costly.finish().makespan_s

        assert slow > base + 4e-4  # the 1e6-unit override was charged
