"""Unit tests for Local Queue History (paper section 3.4)."""

import pytest

from repro.runtime.policies import LocalQueueHistory
from repro.runtime.policies.lqh import GroupHistory
from repro.runtime.task import ExecutionKind, Task

from ..conftest import make_scheduler, spawn_n

A, X = ExecutionKind.ACCURATE, ExecutionKind.APPROXIMATE


class TestGroupHistory:
    def test_observe_updates_counts(self):
        h = GroupHistory()
        h.observe(50, A)
        h.observe(50, X)
        h.observe(10, X)
        assert h.total == 3
        assert h.counts[50] == 2 and h.counts[10] == 1
        assert h.approx_counts[50] == 1

    def test_cumulative_below(self):
        h = GroupHistory()
        for level in (10, 20, 30):
            h.observe(level, A)
        assert h.cumulative_below(25) == 2
        assert h.cumulative_below(10) == 0
        assert h.cumulative_below(101) == 3


class TestClassifyRule:
    """Direct tests of the paper's inequality via _classify."""

    def classify(self, hist, level, ratio):
        return LocalQueueHistory._classify(hist, level, ratio)

    def test_ratio_one_always_accurate(self):
        h = GroupHistory()
        for _ in range(10):
            kind = self.classify(h, 50, 1.0)
            assert kind is A
            h.observe(50, kind)

    def test_ratio_zero_always_approximate(self):
        h = GroupHistory()
        for _ in range(10):
            kind = self.classify(h, 50, 0.0)
            assert kind is X
            h.observe(50, kind)

    def test_quantile_rule_above_threshold_accurate(self):
        """A level wholly above the (1-R) quantile runs accurately:
        the observations strictly below it already exhaust the
        approximate budget (t_g(s) > (1-R_g) t_g(1.0))."""
        h = GroupHistory()
        for _ in range(70):
            h.observe(10, X)
        for _ in range(30):
            h.observe(90, A)
        # quota = 0.6 * 101 = 60.6 <= 70 below -> accurate
        assert self.classify(h, 90, 0.4) is A

    def test_quantile_rule_below_threshold_approximate(self):
        h = GroupHistory()
        for _ in range(40):
            h.observe(10, X)
        for _ in range(30):
            h.observe(10, A)
        for _ in range(30):
            h.observe(90, A)
        # Level 10 sits inside the bottom 60% and its within-level
        # approximation credit (40 spent of 60.6 budget) is not yet
        # exhausted -> approximate.
        assert self.classify(h, 10, 0.4) is X

    def test_uniform_level_converges_to_ratio(self):
        """Within-level credit splits a single-level group to R_g."""
        h = GroupHistory()
        acc = 0
        n = 1000
        for _ in range(n):
            kind = self.classify(h, 50, 0.6)
            h.observe(50, kind)
            acc += kind is A
        assert acc / n == pytest.approx(0.6, abs=0.01)

    @pytest.mark.parametrize("ratio", [0.2, 0.35, 0.5, 0.8])
    def test_mixed_levels_converge(self, ratio):
        h = GroupHistory()
        acc = 0
        n = 9000
        for i in range(n):
            level = (i % 9 + 1) * 10
            kind = self.classify(h, level, ratio)
            h.observe(level, kind)
            acc += kind is A
        assert acc / n == pytest.approx(ratio, abs=0.02)

    def test_mixed_levels_respect_significance_in_steady_state(self):
        """After warm-up, high levels run accurately, low levels not."""
        h = GroupHistory()
        for i in range(900):
            level = (i % 9 + 1) * 10
            h.observe(level, self.classify(h, level, 0.5))
        # fresh decisions after warm-up:
        assert self.classify(h, 90, 0.5) is A
        assert self.classify(h, 10, 0.5) is X


class TestLqhInScheduler:
    def test_converges_with_many_tasks(self):
        rt = make_scheduler(policy=LocalQueueHistory(), workers=4)
        rt.init_group("g", ratio=0.5)
        spawn_n(rt, 2000, label="g")
        report = rt.finish()
        assert report.accurate_tasks / 2000 == pytest.approx(0.5, abs=0.03)
        assert report.total_inversion_pct() < 2.0

    def test_undershoots_like_the_paper(self):
        """Footnote 2: LQH approximates slightly more than requested."""
        rt = make_scheduler(policy=LocalQueueHistory(), workers=8)
        rt.init_group("g", ratio=0.8)
        spawn_n(rt, 400, label="g")
        report = rt.finish()
        assert report.accurate_tasks / 400 <= 0.8 + 1e-9

    def test_per_worker_histories_are_independent(self):
        p = LocalQueueHistory()
        p.make_worker_state(4)
        h0 = p.history(0, "g")
        h1 = p.history(1, "g")
        h0.observe(50, A)
        assert h1.total == 0

    def test_histories_grow_on_demand(self):
        p = LocalQueueHistory()
        # no make_worker_state call (sequential debugging engine)
        h = p.history(7, "g")
        assert h.total == 0

    def test_per_group_histories_are_independent(self):
        p = LocalQueueHistory()
        p.make_worker_state(1)
        p.history(0, "a").observe(10, A)
        assert p.history(0, "b").total == 0

    def test_forced_values_bypass_history(self):
        rt = make_scheduler(policy=LocalQueueHistory())
        rt.init_group("g", ratio=0.0)
        forced = spawn_n(rt, 5, label="g", sig=1.0)
        rt.finish()
        assert all(t.decision is A for t in forced)

    def test_decide_overhead_is_histogram_update(self):
        from repro.runtime.policies.base import PolicyOverheads

        p = LocalQueueHistory()
        t = Task(fn=lambda: None, significance=0.5)
        assert p.decide_overhead(t) == PolicyOverheads.HISTOGRAM_UPDATE

    def test_drop_semantics_without_approxfun(self):
        rt = make_scheduler(policy=LocalQueueHistory())
        rt.init_group("g", ratio=0.0)
        tasks = spawn_n(rt, 6, label="g", sig=0.5, approx=False)
        rt.finish()
        assert all(
            t.decision is ExecutionKind.DROPPED for t in tasks
        )
