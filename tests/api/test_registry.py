"""Unit tests for the component registry (spec parsing + resolution)."""

import pytest

from repro.registry import (
    Registry,
    available,
    format_spec,
    parse_spec,
    registry_for,
    resolve,
)
from repro.runtime.errors import RegistryError
from repro.runtime.policies import (
    GlobalTaskBuffering,
    LocalQueueHistory,
    SignificanceAgnostic,
)


class TestParseSpec:
    def test_bare_name(self):
        assert parse_spec("gtb") == ("gtb", {})

    def test_single_kwarg(self):
        assert parse_spec("gtb:buffer_size=16") == (
            "gtb",
            {"buffer_size": 16},
        )

    def test_multiple_kwargs_and_types(self):
        name, kw = parse_spec(
            "x:count=3,rate=0.5,flag=true,off=false,hole=none,tag=hi"
        )
        assert name == "x"
        assert kw == {
            "count": 3,
            "rate": 0.5,
            "flag": True,
            "off": False,
            "hole": None,
            "tag": "hi",
        }

    def test_quoted_string_literal(self):
        assert parse_spec("m:name='a b'")[1] == {"name": "a b"}

    @pytest.mark.parametrize(
        "bad", ["", "  ", ":x=1", "gtb:", "gtb:notkv", "gtb:1bad=2"]
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(RegistryError):
            parse_spec(bad)

    def test_round_trip_through_format_spec(self):
        spec = format_spec("gtb", {"buffer_size": 16, "tag": "hi"})
        assert parse_spec(spec) == (
            "gtb",
            {"buffer_size": 16, "tag": "hi"},
        )

    def test_commas_inside_literals_survive(self):
        kwargs = {"tag": "a,b", "dims": (2, 8), "n": 3}
        assert parse_spec(format_spec("m", kwargs))[1] == kwargs


class TestRegistry:
    def test_register_and_create(self):
        reg = Registry("widget")

        @reg.register("frob", "frobnicator")
        class Frob:
            def __init__(self, size=1):
                self.size = size

        assert reg.create("frob").size == 1
        assert reg.create("frob:size=4").size == 4
        assert reg.create("frobnicator").size == 1  # alias
        assert "frob" in reg and "FROB" in reg

    def test_underscore_dash_equivalence(self):
        reg = Registry("widget")
        reg.register("two-part")(lambda: "yes")
        assert reg.create("two_part") == "yes"

    def test_unknown_name_lists_known(self):
        reg = Registry("widget")
        reg.register("a")(lambda: 1)
        with pytest.raises(RegistryError, match="unknown widget 'b'.*a"):
            reg.factory("b")

    def test_duplicate_name_rejected(self):
        reg = Registry("widget")
        reg.register("a")(lambda: 1)
        with pytest.raises(RegistryError, match="duplicate"):
            reg.register("a")(lambda: 2)

    def test_reregistering_same_factory_is_noop(self):
        reg = Registry("widget")

        def factory():
            return 1

        reg.register("a")(factory)
        reg.register("a")(factory)  # module re-imports must not explode
        assert reg.create("a") == 1


class TestResolve:
    def test_policy_specs(self):
        assert isinstance(resolve("policy", "gtb"), GlobalTaskBuffering)
        assert isinstance(resolve("policy", "lqh"), LocalQueueHistory)
        assert isinstance(
            resolve("policy", "agnostic"), SignificanceAgnostic
        )

    def test_inline_kwargs(self):
        assert resolve("policy", "gtb:buffer_size=16").buffer_size == 16

    def test_gtb_max_aliases(self):
        for alias in ("gtb-max", "gtb_max", "gtbmax", "max-buffer"):
            assert resolve("policy", alias).buffer_size is None

    def test_instance_passthrough(self):
        policy = GlobalTaskBuffering(8)
        assert resolve("policy", policy) is policy

    def test_instance_with_overrides_rejected(self):
        with pytest.raises(RegistryError):
            resolve("policy", GlobalTaskBuffering(8), buffer_size=4)

    def test_override_kwargs_beat_spec_kwargs(self):
        p = resolve("policy", "gtb:buffer_size=16", buffer_size=4)
        assert p.buffer_size == 4

    def test_unknown_kwargs_raise(self):
        with pytest.raises(TypeError):
            resolve("policy", "gtb:frobnicate=1")
        with pytest.raises(TypeError):
            resolve("policy", "lqh:buffer_size=3")
        with pytest.raises(TypeError):
            resolve("policy", "gtb-max:buffer_size=3")

    def test_builtin_kinds_populated(self):
        kinds = available()
        assert {"gtb", "lqh", "oracle", "accurate"} <= set(
            kinds["policy"]
        )
        assert {"simulated", "threaded", "sequential", "faulty"} <= set(
            kinds["engine"]
        )
        assert {"analytic", "measured", "hybrid"} <= set(
            kinds["cost-model"]
        )
        assert "xeon-e5-2650" in kinds["machine"]
        assert available("policy") == registry_for("policy").names()

    def test_machine_spec_overrides(self):
        m = resolve("machine", "xeon:frequency_ghz=2.5")
        assert m.frequency_ghz == 2.5


class TestMakePolicyShim:
    """The deprecated string switch now routes through the registry."""

    def test_warns_and_resolves(self):
        from repro.runtime.policies import make_policy

        with pytest.warns(DeprecationWarning):
            p = make_policy("gtb", buffer_size=7)
        assert p.buffer_size == 7

    def test_unknown_kwargs_no_longer_discarded(self):
        from repro.runtime.policies import make_policy

        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                make_policy("lqh", buffer_size=3)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                make_policy("oracle", depth=2)

    def test_make_engine_warns(self):
        from repro.runtime.engine import make_engine
        from repro.runtime.errors import SchedulerError

        with pytest.warns(DeprecationWarning):
            with pytest.raises(SchedulerError):
                make_engine(
                    "quantum", 2, None, None, None, lambda t, now: None
                )
