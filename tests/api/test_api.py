"""Unit tests for the programming-model layer (Runtime / sig_task)."""

import numpy as np
import pytest

from repro.api import (
    Runtime,
    current_runtime,
    has_runtime,
    ref,
    sig_task,
    taskwait,
)
from repro.runtime.errors import SchedulerError
from repro.runtime.policies import gtb_max_buffer
from repro.runtime.task import ExecutionKind, Task, TaskCost

COST = TaskCost(10_000.0, 1_000.0)


class TestRuntimeContext:
    def test_no_ambient_runtime_raises(self):
        with pytest.raises(SchedulerError):
            current_runtime()

    def test_has_runtime(self):
        assert not has_runtime()
        with Runtime(n_workers=2):
            assert has_runtime()
        assert not has_runtime()

    def test_report_populated_on_exit(self):
        with Runtime(n_workers=2) as rt:
            rt.spawn(lambda: 1, cost=COST)
        assert rt.report is not None
        assert rt.report.tasks_total == 1

    def test_nested_runtimes(self):
        with Runtime(n_workers=2) as outer:
            with Runtime(n_workers=2) as inner:
                assert current_runtime() is inner
            assert current_runtime() is outer

    def test_exception_skips_finish(self):
        with pytest.raises(RuntimeError):
            with Runtime(n_workers=2) as rt:
                raise RuntimeError("user code failed")
        assert rt.report is None

    def test_module_level_taskwait(self):
        with Runtime(n_workers=2) as rt:
            rt.init_group("g", ratio=1.0)
            rt.spawn(lambda: 1, label="g", cost=COST)
            taskwait(label="g")
            assert rt.groups.get("g").outstanding == 0


class TestSigTask:
    def test_plain_call_without_runtime_executes_directly(self):
        @sig_task(cost=COST)
        def double(x):
            return x * 2

        assert double(21) == 42

    def test_call_inside_runtime_spawns(self):
        @sig_task(label="g", cost=COST)
        def double(x):
            return x * 2

        with Runtime(n_workers=2):
            t = double(21)
            assert isinstance(t, Task)
        assert t.result == 42

    def test_per_call_significance_override(self):
        @sig_task(label="g", significance=0.9, cost=COST)
        def f():
            return 1

        with Runtime(n_workers=2):
            t = f(significance=0.2)
        assert t.significance == 0.2

    def test_callable_clauses_evaluated_on_args(self):
        @sig_task(
            label="g",
            significance=lambda i: (i % 9 + 1) / 10.0,
            cost=lambda i: COST,
        )
        def f(i):
            return i

        with Runtime(n_workers=2):
            t = f(3)
        assert t.significance == pytest.approx(0.4)

    def test_in_out_clauses(self):
        data = np.zeros(4)

        @sig_task(
            label="g",
            out=lambda d, i: [ref(d, region=i)],
            cost=COST,
        )
        def write(d, i):
            d[i] = 1.0

        with Runtime(n_workers=2):
            t = write(data, 2)
        assert len(t.outs) == 1
        assert t.outs[0].region == 2
        assert data[2] == 1.0

    def test_approxfun_used_when_ratio_low(self):
        @sig_task(
            label="g",
            approxfun=lambda x: -x,
            significance=0.5,
            cost=COST,
        )
        def f(x):
            return x

        with Runtime(policy=gtb_max_buffer(), n_workers=2) as rt:
            rt.init_group("g", ratio=0.0)
            t = f(5)
        assert t.decision is ExecutionKind.APPROXIMATE
        assert t.result == -5

    def test_plain_and_approx_direct_access(self):
        @sig_task(approxfun=lambda x: x - 1)
        def f(x):
            return x + 1

        assert f.plain(1) == 2
        assert f.approx(1) == 0

    def test_approx_without_approxfun_returns_none(self):
        @sig_task
        def f(x):
            return x

        assert f.approx(1) is None

    def test_bare_decorator_form(self):
        @sig_task
        def f(x):
            return x * 3

        assert f(2) == 6  # no runtime: direct execution

    def test_wrapper_metadata(self):
        @sig_task(label="g")
        def my_kernel(x):
            "docs"
            return x

        assert my_kernel.__name__ == "my_kernel"
        assert my_kernel.__doc__ == "docs"
