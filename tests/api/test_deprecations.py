"""Deprecated entry points: still functional, warn once per call site.

`make_policy` / `make_engine` and the positional-policy `Scheduler`
form are kept for compatibility but deprecated since the registry
became the front door.  Under Python's default warning filter a
``DeprecationWarning`` fires once per *call site* (message, category,
lineno), so a hot loop over a legacy call does not spam — these tests
pin exactly that contract.  No example or benchmark in the repository
uses the deprecated forms anymore; only these tests (and the shims'
own unit tests) may touch them.
"""

from __future__ import annotations

import warnings

from repro.energy.cost import HybridCost
from repro.energy.machine_model import XEON_E5_2650
from repro.runtime.engine import make_engine
from repro.runtime.policies import SignificanceAgnostic, make_policy
from repro.runtime.scheduler import Scheduler


def _collect(body) -> list[warnings.WarningMessage]:
    """Run ``body`` under the default once-per-location filter."""
    with warnings.catch_warnings(record=True) as record:
        warnings.resetwarnings()
        warnings.simplefilter("default")
        body()
    return [
        w for w in record if issubclass(w.category, DeprecationWarning)
    ]


class TestOncePerCallSite:
    def test_make_policy_warns_once_per_site(self):
        def body():
            for _ in range(5):
                make_policy("gtb")  # one site, five calls

        assert len(_collect(body)) == 1

    def test_make_policy_distinct_sites_warn_separately(self):
        def body():
            make_policy("gtb")
            make_policy("lqh")  # a different line -> a fresh warning

        assert len(_collect(body)) == 2

    def test_make_engine_warns_once_per_site(self):
        machine = XEON_E5_2650.with_workers(2)

        def build():
            return make_engine(
                "simulated",
                2,
                machine,
                HybridCost(),
                SignificanceAgnostic(),
                lambda task, now: None,
            )

        def body():
            for _ in range(3):
                build()  # make_engine's own line is the site

        assert len(_collect(body)) == 1

    def test_positional_policy_scheduler_warns_once_per_site(self):
        def body():
            for _ in range(4):
                Scheduler(SignificanceAgnostic(), n_workers=2)

        warns = _collect(body)
        assert len(warns) == 1
        assert "positional" in str(warns[0].message)

    def test_direct_process_engine_warns_once_per_site(self):
        from repro.runtime.process_engine import ProcessPoolEngine

        machine = XEON_E5_2650.with_workers(2)

        def build():
            return ProcessPoolEngine(
                2,
                machine,
                HybridCost(),
                SignificanceAgnostic(),
                lambda task, now: None,
            )

        def body():
            for _ in range(3):
                build()

        warns = _collect(body)
        assert len(warns) == 1
        assert "engine spec string" in str(warns[0].message)

    def test_spec_string_construction_is_warning_free(self):
        def body():
            for spec in ("process", "process:shm=true"):
                rt = Scheduler(policy="accurate", n_workers=2, engine=spec)
                rt.finish()

        assert _collect(body) == []


class TestDeprecatedFormsStillWork:
    def test_make_policy_returns_working_policy(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            policy = make_policy("gtb", buffer_size=4)
        assert policy.buffer_size == 4

    def test_no_deprecated_usage_in_examples_or_benchmarks(self):
        """The satellite guarantee: the deprecated spellings are gone
        from all runnable example/benchmark code."""
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        offenders = []
        for folder in ("examples", "benchmarks"):
            for path in (root / folder).rglob("*.py"):
                text = path.read_text()
                if (
                    "make_policy(" in text
                    or "make_engine(" in text
                    or "ProcessPoolEngine(" in text
                ):
                    offenders.append(str(path))
        assert offenders == []
