"""Unit tests for ExperimentSpec / run / ResultSet (the batch front door)."""

import json

import pytest

import repro
from repro import ExperimentSpec, ResultSet, RuntimeConfig
from repro.runtime.errors import ConfigError

SMALL_CFG = RuntimeConfig(policy="gtb:buffer_size=16", n_workers=4)


def sobel_spec(**kw) -> ExperimentSpec:
    base = dict(
        workload="sobel", param=0.5, small=True, config=SMALL_CFG
    )
    base.update(kw)
    return ExperimentSpec(**base)


class TestExperimentSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ExperimentSpec(workload="")
        with pytest.raises(ConfigError):
            sobel_spec(mode="warp")
        with pytest.raises(ConfigError):
            sobel_spec(repeats=0)
        with pytest.raises(ConfigError):
            ExperimentSpec(workload="sobel", config="gtb")

    def test_dict_round_trip(self):
        spec = sobel_spec(repeats=3, seed=7)
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = sobel_spec()
        text = json.dumps(spec.to_dict())
        assert ExperimentSpec.from_dict(json.loads(text)) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="unknown ExperimentSpec"):
            ExperimentSpec.from_dict({"workload": "sobel", "x": 1})

    def test_sweep_cross_product(self):
        specs = sobel_spec().sweep(
            policy=["gtb", "lqh"], n_workers=[2, 4], param=[0.3, 0.8]
        )
        assert len(specs) == 8
        combos = {
            (s.config.policy, s.config.n_workers, s.param)
            for s in specs
        }
        assert ("gtb", 2, 0.3) in combos
        assert ("lqh", 4, 0.8) in combos
        # Row-major order of the given axes: first axis varies slowest.
        assert [s.config.policy for s in specs[:4]] == ["gtb"] * 4

    def test_sweep_spec_vs_config_axis_routing(self):
        specs = sobel_spec().sweep(seed=[1, 2], engine=["simulated"])
        assert {s.seed for s in specs} == {1, 2}
        assert all(s.config.engine == "simulated" for s in specs)
        # Un-swept fields are preserved.
        assert all(s.config.policy == SMALL_CFG.policy for s in specs)

    def test_sweep_unknown_axis(self):
        with pytest.raises(ConfigError, match="unknown sweep axis"):
            sobel_spec().sweep(turbo=[1, 2])

    def test_sweep_empty_axis(self):
        with pytest.raises(ConfigError, match="empty"):
            sobel_spec().sweep(policy=[])


class TestRun:
    def test_single_spec(self):
        rs = repro.run(sobel_spec())
        assert isinstance(rs, ResultSet)
        assert len(rs) == 1
        res = rs[0]
        assert res.makespan_s > 0
        assert res.energy_j > 0
        assert res.tasks_total == (
            res.accurate + res.approximate + res.dropped
        )
        assert res.report is not None

    def test_native_param_default(self):
        res = repro.run(sobel_spec(param=None))[0]
        # Native knob = ratio 1.0: even under GTB everything is accurate.
        assert res.approximate == 0
        assert res.accurate == res.tasks_total

    def test_repeats_vary_seed(self):
        rs = repro.run(sobel_spec(repeats=2))
        assert [r.seed for r in rs] == [2015, 2016]

    def test_rows_and_json(self):
        rs = repro.run(sobel_spec())
        rows = rs.to_rows()
        assert rows[0]["workload"] == "sobel"
        assert rows[0]["policy"] == "gtb:buffer_size=16"
        assert json.loads(rs.to_json()) == json.loads(
            json.dumps(rows)
        )

    def test_table_renders(self):
        table = repro.run(sobel_spec()).table()
        assert "sobel" in table and "gtb:buffer_size=16" in table

    def test_filter_and_best(self):
        rs = repro.run(sobel_spec().sweep(policy=["gtb", "lqh"]))
        gtb_only = rs.filter(policy="gtb")
        assert len(gtb_only) == 1
        assert gtb_only[0].to_row()["policy"] == "gtb"
        best = rs.best("energy_j")
        assert best.energy_j == min(r.energy_j for r in rs)

    def test_parallel_matches_serial(self):
        specs = sobel_spec().sweep(policy=["gtb", "lqh"])
        serial = repro.run(specs)
        fanned = repro.run(specs, parallel=2)
        assert [r.energy_j for r in serial] == [
            r.energy_j for r in fanned
        ]
        # Parallel rows are flat: no report objects cross processes.
        assert all(r.report is None for r in fanned)

    def test_parallel_requires_serializable_config(self):
        from repro.runtime.policies import LocalQueueHistory

        spec = sobel_spec(
            config=RuntimeConfig(
                policy=LocalQueueHistory(), n_workers=2
            )
        )
        with pytest.raises(ConfigError):
            repro.run([spec, spec], parallel=2)

    def test_rejects_non_specs(self):
        with pytest.raises(ConfigError):
            repro.run(["sobel"])

    def test_harness_export_consumes_resultset(self, tmp_path):
        from repro.harness.export import write_csv, write_json

        rs = repro.run(sobel_spec())
        path = write_json(rs, tmp_path / "rows.json")
        assert json.loads(path.read_text())[0]["workload"] == "sobel"
        csv_path = write_csv(rs, tmp_path / "rows.csv")
        assert "energy_j" in csv_path.read_text().splitlines()[0]


class TestHarnessBridge:
    def test_run_cell_equals_run_one(self):
        """The legacy cell API and the new spec API agree exactly."""
        from repro.harness.experiment import ExperimentCell, run_cell
        from repro.kernels.base import Degree

        cell = ExperimentCell(
            "Sobel", "policy:gtb", Degree.MEDIUM, n_workers=4, small=True
        )
        old = run_cell(cell)
        new = repro.run(cell.to_spec())[0]
        assert old.makespan_s == new.makespan_s
        assert old.energy_j == new.energy_j
        assert old.quality.value == new.quality_value
