"""Unit tests for RuntimeConfig and the redesigned Scheduler front door."""

import pytest

from repro import Runtime, RuntimeConfig, Scheduler
from repro.energy.cost import AnalyticCost, HybridCost
from repro.energy.machine_model import XEON_E5_2650
from repro.runtime.errors import ConfigError, SchedulerError
from repro.runtime.policies import GlobalTaskBuffering, LocalQueueHistory

from ..conftest import SMALL_COST, spawn_n


class TestRuntimeConfig:
    def test_defaults(self):
        cfg = RuntimeConfig()
        assert cfg.policy == "accurate"
        assert cfg.n_workers == 16
        assert cfg.engine == "simulated"

    def test_dict_round_trip(self):
        cfg = RuntimeConfig(
            policy="gtb:buffer_size=16",
            n_workers=8,
            machine="xeon",
            cost_model="analytic",
            engine="sequential",
        )
        assert RuntimeConfig.from_dict(cfg.to_dict()) == cfg

    def test_to_dict_rejects_instances(self):
        cfg = RuntimeConfig(policy=GlobalTaskBuffering(4))
        with pytest.raises(ConfigError, match="spec strings serialize"):
            cfg.to_dict()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="unknown RuntimeConfig"):
            RuntimeConfig.from_dict({"policy": "gtb", "turbo": True})

    def test_invalid_n_workers(self):
        with pytest.raises(ConfigError):
            RuntimeConfig(n_workers=0)
        # ConfigError stays inside the SchedulerError family.
        with pytest.raises(SchedulerError):
            RuntimeConfig(n_workers=-3)

    def test_unknown_component_spec_fails_at_construction(self):
        with pytest.raises(ConfigError, match="invalid policy spec"):
            RuntimeConfig(policy="quantum")
        with pytest.raises(ConfigError, match="invalid engine spec"):
            RuntimeConfig(engine="quantum")

    def test_replace_revalidates(self):
        cfg = RuntimeConfig()
        assert cfg.replace(n_workers=4).n_workers == 4
        with pytest.raises(ConfigError):
            cfg.replace(n_workers=0)

    def test_build_policy_fresh_per_call(self):
        cfg = RuntimeConfig(policy="gtb:buffer_size=4")
        assert cfg.build_policy() is not cfg.build_policy()

    def test_build_machine_resizes_specs_not_instances(self):
        assert RuntimeConfig(n_workers=4).build_machine().n_cores >= 4
        spec_built = RuntimeConfig(
            machine="xeon", n_workers=24
        ).build_machine()
        assert spec_built.n_cores >= 24
        explicit = RuntimeConfig(
            machine=XEON_E5_2650, n_workers=4
        ).build_machine()
        assert explicit is XEON_E5_2650  # used as-is

    def test_build_cost_model(self):
        assert isinstance(
            RuntimeConfig(cost_model="analytic").build_cost_model(),
            AnalyticCost,
        )
        assert isinstance(
            RuntimeConfig().build_cost_model(), HybridCost
        )


class TestDataPlane:
    """The validated ``data_plane`` field (zero-copy API redesign)."""

    def test_default_is_engine_choice(self):
        assert RuntimeConfig().data_plane is None

    def test_valid_planes_normalize(self):
        assert RuntimeConfig(data_plane="pickle").data_plane == "pickle"
        assert RuntimeConfig(data_plane="shm").data_plane == "shm"
        cfg = RuntimeConfig(data_plane="shm:min_bytes=65536")
        assert cfg.data_plane == "shm:min_bytes=65536"

    @pytest.mark.parametrize(
        "bad",
        [
            "mmap",                 # unknown plane
            "shm:wat=1",            # unknown option
            "shm:min_bytes=-1",     # ill-typed option value
            "shm:min_bytes=true",
            42,                     # not a spec string
        ],
    )
    def test_unknown_planes_and_options_rejected(self, bad):
        with pytest.raises(ConfigError, match="data.plane"):
            RuntimeConfig(data_plane=bad)

    def test_json_round_trip(self):
        cfg = RuntimeConfig(
            engine="process", data_plane="shm:min_bytes=8192"
        )
        assert RuntimeConfig.from_dict(cfg.to_dict()) == cfg

    def test_shm_plane_configures_process_engine(self):
        cfg = RuntimeConfig(
            engine="process", n_workers=2, data_plane="shm"
        )
        sched = Scheduler(cfg)
        assert sched.engine.data_plane_stats is not None
        sched.finish()

    def test_explicit_engine_spec_wins_over_data_plane(self):
        cfg = RuntimeConfig(
            engine="process:shm=false", n_workers=2, data_plane="shm"
        )
        sched = Scheduler(cfg)
        assert sched.engine.data_plane_stats is None
        sched.finish()

    def test_plane_is_inert_for_inprocess_engines(self):
        cfg = RuntimeConfig(
            engine="threaded", n_workers=2, data_plane="shm"
        )
        sched = Scheduler(cfg)  # no unexpected-kwarg explosion
        sched.finish()

    def test_describe_mentions_plane(self):
        cfg = RuntimeConfig(data_plane="shm")
        assert "data_plane=shm" in cfg.describe()


def _run(sched: Scheduler):
    spawn_n(sched, 12, label="g")
    sched.init_group("g", ratio=0.5)
    return sched.finish()


class TestSchedulerFrontDoor:
    def test_config_object(self):
        cfg = RuntimeConfig(policy="gtb:buffer_size=4", n_workers=2)
        rep = _run(Scheduler(cfg))
        assert rep.n_workers == 2
        assert rep.tasks_total == 12

    def test_spec_kwargs(self):
        sched = Scheduler(policy="lqh", n_workers=3, engine="simulated")
        assert isinstance(sched.policy, LocalQueueHistory)
        assert sched.engine.n_workers == 3

    def test_kwargs_override_config(self):
        cfg = RuntimeConfig(policy="gtb", n_workers=8)
        sched = Scheduler(cfg, n_workers=2, policy="lqh")
        assert sched.engine.n_workers == 2
        assert isinstance(sched.policy, LocalQueueHistory)

    def test_config_recorded(self):
        cfg = RuntimeConfig(policy="oracle", n_workers=2)
        assert Scheduler(cfg).config == cfg

    def test_equivalence_of_all_fronts(self):
        """Config, spec-kwargs, and programmatic instances agree."""
        reports = [
            _run(Scheduler(RuntimeConfig("gtb:buffer_size=4", 2))),
            _run(Scheduler(policy="gtb:buffer_size=4", n_workers=2)),
            _run(
                Scheduler(policy=GlobalTaskBuffering(4), n_workers=2)
            ),
        ]
        baseline = reports[0]
        for rep in reports[1:]:
            assert rep.makespan_s == baseline.makespan_s
            assert rep.energy_j == baseline.energy_j
            assert rep.tasks_by_kind == baseline.tasks_by_kind

    def test_legacy_positional_policy_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="positional"):
            sched = Scheduler(GlobalTaskBuffering(4), 2)
        assert isinstance(sched.policy, GlobalTaskBuffering)
        rep = _run(sched)
        baseline = _run(
            Scheduler(policy=GlobalTaskBuffering(4), n_workers=2)
        )
        assert rep.energy_j == baseline.energy_j

    def test_positional_and_keyword_policy_conflict(self):
        with pytest.raises(SchedulerError, match="two policies"):
            Scheduler(GlobalTaskBuffering(4), policy="lqh")

    def test_unknown_engine_rejected_as_scheduler_error(self):
        with pytest.raises(SchedulerError):
            Scheduler(engine="quantum")

    def test_scheduler_exit_stores_report(self):
        """Bare Scheduler context now keeps the RunReport, like Runtime."""
        with Scheduler(n_workers=2) as sched:
            sched.spawn(lambda: 1, cost=SMALL_COST)
        assert sched.report is not None
        assert sched.report.tasks_total == 1

    def test_finish_also_stores_report(self):
        sched = Scheduler(n_workers=2)
        spawn_n(sched, 3)
        rep = sched.finish()
        assert sched.report is rep


class TestRuntimeFrontDoor:
    def test_runtime_accepts_specs_end_to_end(self):
        with Runtime(policy="gtb:buffer_size=16", n_workers=2) as rt:
            rt.init_group("g", ratio=0.5)
            spawn_n(rt, 8, label="g")
        assert rt.report is not None
        assert rt.report.tasks_total == 8

    def test_runtime_threaded_engine_spec(self):
        with Runtime(
            policy="gtb-max", engine="threaded", n_workers=2
        ) as rt:
            rt.init_group("g", ratio=0.5)
            spawn_n(rt, 10, label="g")
        assert rt.report.accurate_tasks == 5

    def test_runtime_accepts_config(self):
        cfg = RuntimeConfig(policy="lqh", n_workers=2)
        with Runtime(cfg) as rt:
            spawn_n(rt, 4)
        assert rt.report.tasks_total == 4
