"""Energy measurement over live runs (meter sessions + RAPL reads).

The meter/RAPL unit tests use hand-built traces; these drive them from
real scheduler executions, the way a user instruments phases of an
application.
"""

import pytest

from repro.energy.meter import EnergyMeter, EnergyReport
from repro.energy.rapl import RaplDomain, SimulatedRapl
from repro.runtime.policies import gtb_max_buffer
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import TaskCost

COST = TaskCost(100_000.0, 10_000.0)


def run_two_phase(ratio2: float = 0.0):
    """Phase 1 fully accurate, phase 2 at ``ratio2``; return report
    plus the barrier timestamps bracketing each phase."""
    rt = Scheduler(policy=gtb_max_buffer(), n_workers=4)
    rt.init_group("p1", ratio=1.0)
    rt.init_group("p2", ratio=ratio2)
    for _ in range(16):
        rt.spawn(
            lambda: None,
            significance=0.5,
            approxfun=lambda: None,
            label="p1",
            cost=COST,
        )
    t1 = rt.taskwait(label="p1")
    for _ in range(16):
        rt.spawn(
            lambda: None,
            significance=0.5,
            approxfun=lambda: None,
            label="p2",
            cost=COST,
        )
    t2 = rt.taskwait(label="p2")
    report = rt.finish()
    return report, t1, t2, rt.machine_model


class TestMeterSessions:
    def test_phase_energies_sum_to_total(self):
        report, t1, t2, machine = run_two_phase()
        assert report.trace is not None
        meter = EnergyMeter(machine)
        meter.begin(report.trace, 0.0)
        phase1 = meter.end(report.trace, t1)
        meter.begin(report.trace, t1)
        phase2 = meter.end(report.trace, t2)
        total = EnergyReport.from_trace(
            report.trace, machine, window_s=report.makespan_s
        )
        assert phase1.total_j + phase2.total_j == pytest.approx(
            total.total_j, rel=1e-6
        )

    def test_approximate_phase_cheaper(self):
        report, t1, t2, machine = run_two_phase(ratio2=0.0)
        assert report.trace is not None
        meter = EnergyMeter(machine)
        meter.begin(report.trace, 0.0)
        accurate_phase = meter.end(report.trace, t1)
        meter.begin(report.trace, t1)
        approx_phase = meter.end(report.trace, t2)
        assert approx_phase.total_j < accurate_phase.total_j
        assert approx_phase.window_s < accurate_phase.window_s


class TestRaplOnLiveRuns:
    def test_package_counters_cover_run(self):
        report, _, _, machine = run_two_phase()
        assert report.trace is not None
        rapl = SimulatedRapl(machine)
        total = 0.0
        for s in range(machine.topology.sockets):
            total += rapl.read_joules_between(
                RaplDomain("package", s),
                report.trace,
                0.0,
                report.makespan_s,
            )
            total += rapl.read_joules_between(
                RaplDomain("dram", s),
                report.trace,
                0.0,
                report.makespan_s,
            )
        # Counter quantization (15.3 uJ units) allows tiny slack.
        assert total == pytest.approx(report.energy_j, rel=1e-3)

    def test_counters_monotone_in_time(self):
        report, t1, _, machine = run_two_phase()
        assert report.trace is not None
        rapl = SimulatedRapl(machine)
        dom = RaplDomain("pp0", 0)
        early = rapl.read(dom, report.trace, t1 / 2)
        late = rapl.read(dom, report.trace, report.makespan_s)
        assert late >= early  # no wrap at these magnitudes
