"""Unit tests for energy integration, the meter and simulated RAPL."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.machine_model import MachineModel
from repro.energy.meter import EnergyMeter, EnergyReport
from repro.energy.rapl import (
    COUNTER_WRAP,
    ENERGY_UNIT_J,
    RaplDomain,
    SimulatedRapl,
    rapl_delta,
)
from repro.runtime.errors import EnergyModelError
from repro.runtime.task import ExecutionKind
from repro.sim.topology import Topology
from repro.sim.trace import ExecutionTrace, Segment

MACHINE = MachineModel(topology=Topology(1, 2))  # 1 socket, 2 cores


def trace_one_busy_second() -> ExecutionTrace:
    tr = ExecutionTrace(2)
    tr.record(Segment(0, 0.0, 1.0, 0, ExecutionKind.ACCURATE))
    return tr


class TestEnergyReport:
    def test_manual_integration(self):
        tr = trace_one_busy_second()
        rep = EnergyReport.from_trace(tr, MACHINE)
        # window = 1 s; core0 busy 1 s; core1 idle 1 s.
        assert rep.window_s == 1.0
        assert rep.package_uncore_j == pytest.approx(MACHINE.uncore_w)
        assert rep.dram_j == pytest.approx(MACHINE.dram_w)
        assert rep.core_active_j == pytest.approx(MACHINE.core_active_w)
        assert rep.core_idle_j == pytest.approx(MACHINE.core_idle_w)
        expected = (
            MACHINE.uncore_w
            + MACHINE.dram_w
            + MACHINE.core_active_w
            + MACHINE.core_idle_w
        )
        assert rep.total_j == pytest.approx(expected)

    def test_longer_window_adds_idle(self):
        tr = trace_one_busy_second()
        r1 = EnergyReport.from_trace(tr, MACHINE)
        r2 = EnergyReport.from_trace(tr, MACHINE, window_s=2.0)
        assert r2.total_j > r1.total_j

    def test_window_shorter_than_trace_rejected(self):
        tr = trace_one_busy_second()
        with pytest.raises(EnergyModelError):
            EnergyReport.from_trace(tr, MACHINE, window_s=0.5)

    def test_more_workers_than_cores_rejected(self):
        tr = ExecutionTrace(4)
        with pytest.raises(EnergyModelError):
            EnergyReport.from_trace(tr, MACHINE)

    def test_average_power(self):
        rep = EnergyReport.from_trace(trace_one_busy_second(), MACHINE)
        assert rep.average_power_w == pytest.approx(rep.total_j)

    def test_addition(self):
        rep = EnergyReport.from_trace(trace_one_busy_second(), MACHINE)
        both = rep + rep
        assert both.total_j == pytest.approx(2 * rep.total_j)
        assert both.window_s == 2.0

    def test_approximation_saves_energy(self):
        """Shorter busy time at equal window -> strictly less energy."""
        busy = trace_one_busy_second()
        lighter = ExecutionTrace(2)
        lighter.record(Segment(0, 0.0, 0.2, 0, ExecutionKind.APPROXIMATE))
        r_busy = EnergyReport.from_trace(busy, MACHINE, window_s=1.0)
        r_light = EnergyReport.from_trace(lighter, MACHINE, window_s=1.0)
        assert r_light.total_j < r_busy.total_j


class TestEnergyMeter:
    def test_session_measures_window(self):
        tr = trace_one_busy_second()
        m = EnergyMeter(MACHINE)
        m.begin(tr, 0.0)
        rep = m.end(tr, 0.5)
        assert rep.window_s == pytest.approx(0.5)
        assert rep.busy_s == pytest.approx(0.5)

    def test_end_without_begin(self):
        m = EnergyMeter(MACHINE)
        with pytest.raises(EnergyModelError):
            m.end(trace_one_busy_second(), 1.0)

    def test_inverted_window(self):
        m = EnergyMeter(MACHINE)
        m.begin(trace_one_busy_second(), 1.0)
        with pytest.raises(EnergyModelError):
            m.end(trace_one_busy_second(), 0.5)


class TestRapl:
    def test_domains_enumerated(self):
        rapl = SimulatedRapl(MACHINE)
        names = {d.name for d in rapl.domains()}
        assert names == {"package-0", "pp0-0", "dram-0"}

    def test_counter_monotone_and_consistent(self):
        rapl = SimulatedRapl(MACHINE)
        tr = trace_one_busy_second()
        dom = RaplDomain("package", 0)
        j = rapl.read_joules_between(dom, tr, 0.0, 1.0)
        expected = (
            MACHINE.uncore_w
            + MACHINE.core_active_w
            + MACHINE.core_idle_w
        )
        assert j == pytest.approx(expected, rel=1e-4)

    def test_pp0_excludes_uncore(self):
        rapl = SimulatedRapl(MACHINE)
        tr = trace_one_busy_second()
        pkg = rapl.read_joules_between(RaplDomain("package", 0), tr, 0, 1)
        pp0 = rapl.read_joules_between(RaplDomain("pp0", 0), tr, 0, 1)
        assert pkg - pp0 == pytest.approx(MACHINE.uncore_w, rel=1e-4)

    def test_dram_constant_power(self):
        rapl = SimulatedRapl(MACHINE)
        tr = trace_one_busy_second()
        j = rapl.read_joules_between(RaplDomain("dram", 0), tr, 0.0, 2.0)
        assert j == pytest.approx(2.0 * MACHINE.dram_w, rel=1e-4)

    def test_register_is_32bit(self):
        rapl = SimulatedRapl(MACHINE)
        tr = trace_one_busy_second()
        val = rapl.read(RaplDomain("package", 0), tr, 1.0)
        assert 0 <= val < COUNTER_WRAP

    def test_unknown_socket_rejected(self):
        rapl = SimulatedRapl(MACHINE)
        with pytest.raises(EnergyModelError):
            rapl.read(RaplDomain("package", 5), trace_one_busy_second(), 1.0)

    def test_wraparound_delta(self):
        assert rapl_delta(COUNTER_WRAP - 10, 5) == 15
        assert rapl_delta(5, 10) == 5

    def test_delta_range_checked(self):
        with pytest.raises(EnergyModelError):
            rapl_delta(-1, 5)
        with pytest.raises(EnergyModelError):
            rapl_delta(0, COUNTER_WRAP)

    def test_energy_unit_is_sandy_bridge(self):
        assert ENERGY_UNIT_J == pytest.approx(1 / 65536)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=COUNTER_WRAP - 1),
        st.integers(min_value=0, max_value=COUNTER_WRAP - 1),
    )
    def test_delta_never_negative(self, a, b):
        assert 0 <= rapl_delta(a, b) < COUNTER_WRAP
