"""Unit tests for cost models and the DVFS what-if replay."""

import pytest

from repro.energy.cost import AnalyticCost, HybridCost, MeasuredCost
from repro.energy.dvfs import DvfsPlan, replay_with_dvfs
from repro.energy.machine_model import MachineModel
from repro.runtime.errors import CostModelError, EnergyModelError
from repro.runtime.task import ExecutionKind, Task, TaskCost
from repro.sim.topology import Topology
from repro.sim.trace import ExecutionTrace, Segment

M = MachineModel(topology=Topology(1, 2))
A, X, D = (
    ExecutionKind.ACCURATE,
    ExecutionKind.APPROXIMATE,
    ExecutionKind.DROPPED,
)


def task(cost=None):
    return Task(fn=lambda: None, cost=cost)


class TestAnalyticCost:
    def test_uses_task_cost(self):
        c = AnalyticCost()
        t = task(TaskCost(M.ops_per_second, M.ops_per_second / 10))
        assert c.duration(t, A, M) == pytest.approx(1.0)
        assert c.duration(t, X, M) == pytest.approx(0.1)

    def test_dropped_is_free(self):
        c = AnalyticCost()
        assert c.duration(task(TaskCost(1e9)), D, M) == 0.0

    def test_missing_cost_raises(self):
        with pytest.raises(CostModelError):
            AnalyticCost().duration(task(), A, M)


class TestMeasuredCost:
    def test_scales_wall_time(self):
        c = MeasuredCost(scale=0.5)
        assert c.duration(task(), A, M, measured_wall=2.0) == 1.0

    def test_requires_measurement(self):
        with pytest.raises(CostModelError):
            MeasuredCost().duration(task(), A, M)

    def test_invalid_scale(self):
        with pytest.raises(CostModelError):
            MeasuredCost(scale=0.0)

    def test_dropped_free_without_measurement(self):
        assert MeasuredCost().duration(task(), D, M) == 0.0


class TestHybridCost:
    def test_prefers_analytic(self):
        c = HybridCost()
        t = task(TaskCost(M.ops_per_second))
        assert c.duration(t, A, M, measured_wall=99.0) == pytest.approx(
            1.0
        )

    def test_falls_back_to_measured(self):
        c = HybridCost(scale=2.0)
        assert c.duration(task(), A, M, measured_wall=1.5) == 3.0


def two_kind_trace() -> ExecutionTrace:
    tr = ExecutionTrace(2)
    tr.record(Segment(0, 0.0, 1.0, 0, A))
    tr.record(Segment(0, 1.0, 2.0, 1, X))
    tr.record(Segment(1, 0.0, 1.5, 2, A))
    return tr


class TestDvfs:
    def test_identity_plan_preserves_schedule(self):
        out = replay_with_dvfs(two_kind_trace(), M, DvfsPlan())
        assert out.makespan_s == pytest.approx(2.0)
        assert out.energy.busy_s == pytest.approx(3.5)

    def test_slowing_approximate_stretches_their_segments(self):
        plan = DvfsPlan(accurate=1.0, approximate=0.5)
        out = replay_with_dvfs(two_kind_trace(), M, plan)
        # worker 0: 1.0 (acc) + 2.0 (apx stretched) = 3.0
        assert out.makespan_s == pytest.approx(3.0)

    def test_downclocking_cuts_dynamic_energy(self):
        base = replay_with_dvfs(two_kind_trace(), M, DvfsPlan())
        slow = replay_with_dvfs(
            two_kind_trace(), M, DvfsPlan(accurate=1.0, approximate=0.5)
        )
        # Dynamic energy of the approximate second: stretched 2x but
        # power scaled by 0.5^3 -> net 0.25x for that segment.
        assert slow.energy.core_active_j < base.energy.core_active_j

    def test_overclocking_shortens_but_burns(self):
        fast = replay_with_dvfs(
            two_kind_trace(), M, DvfsPlan(accurate=2.0, approximate=2.0)
        )
        base = replay_with_dvfs(two_kind_trace(), M, DvfsPlan())
        assert fast.makespan_s < base.makespan_s
        assert fast.energy.core_active_j > base.energy.core_active_j

    def test_invalid_plan(self):
        with pytest.raises(EnergyModelError):
            DvfsPlan(accurate=0.0)

    def test_replay_is_work_conserving(self):
        """Idle gaps compress: per-worker busy time is preserved/scaled."""
        tr = ExecutionTrace(1)
        tr.record(Segment(0, 0.0, 1.0, 0, A))
        tr.record(Segment(0, 5.0, 6.0, 1, A))  # long idle gap
        out = replay_with_dvfs(tr, M, DvfsPlan())
        assert out.makespan_s == pytest.approx(2.0)
