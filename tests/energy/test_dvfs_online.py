"""Online-DVFS substrate: frequency tables, epoch integration, samplers.

The ISSUE-4 satellite coverage for :mod:`repro.energy.dvfs` edge cases:
clamping to the frequency table, zero-length intervals, and round-trips
through :class:`~repro.config.RuntimeConfig` serialization.
"""

from __future__ import annotations

import pytest

from repro import RuntimeConfig, Scheduler
from repro.energy import (
    DEFAULT_FREQUENCY_TABLE,
    XEON_E5_2650,
    DvfsEpoch,
    EnergyReport,
    FrequencyTable,
    IntervalSampler,
    SimulatedRapl,
    best_factor,
    energy_with_epochs,
    predicted_energy,
)
from repro.runtime.errors import EnergyModelError
from repro.runtime.task import ExecutionKind
from repro.sim.trace import ExecutionTrace, Segment

MACHINE = XEON_E5_2650.with_workers(4)


def _trace(segments):
    trace = ExecutionTrace(4)
    for worker, start, end in segments:
        trace.record(
            Segment(worker, start, end, tid=0, kind=ExecutionKind.ACCURATE)
        )
    return trace


class TestFrequencyTable:
    def test_default_table_contains_nominal(self):
        assert 1.0 in DEFAULT_FREQUENCY_TABLE.factors
        assert DEFAULT_FREQUENCY_TABLE.factors == (0.6, 0.8, 1.0, 1.2)

    @pytest.mark.parametrize(
        "requested, expected",
        [
            (1.0, 1.0),
            (0.95, 1.0),
            (0.85, 0.8),
            (0.05, 0.6),  # below the table: clamp to the slowest step
            (9.99, 1.2),  # above the table: clamp to the fastest step
            (0.7, 0.6),   # float midpoint: 0.7-0.6 <= 0.8-0.7
            (1.05, 1.0),
            (1.15, 1.2),
        ],
    )
    def test_clamp(self, requested, expected):
        assert DEFAULT_FREQUENCY_TABLE.clamp(requested) == expected

    def test_clamp_nan_raises(self):
        with pytest.raises(EnergyModelError):
            DEFAULT_FREQUENCY_TABLE.clamp(float("nan"))

    def test_factors_are_sorted_on_construction(self):
        table = FrequencyTable((1.2, 0.6, 1.0))
        assert table.factors == (0.6, 1.0, 1.2)
        assert table.min_factor == 0.6
        assert table.max_factor == 1.2
        assert list(table) == [0.6, 1.0, 1.2]

    @pytest.mark.parametrize(
        "factors",
        [(), (0.0, 1.0), (-0.5, 1.0), (0.8, 0.8, 1.0), (0.8, 1.2)],
    )
    def test_invalid_tables_raise(self, factors):
        with pytest.raises(EnergyModelError):
            FrequencyTable(factors)


class TestEnergyWithEpochs:
    def test_no_epochs_matches_plain_integration(self):
        trace = _trace([(0, 0.0, 1.0), (1, 0.5, 2.0)])
        plain = EnergyReport.from_trace(trace, MACHINE)
        piecewise = energy_with_epochs(trace, MACHINE, [])
        assert piecewise.total_j == pytest.approx(plain.total_j)
        assert piecewise.busy_s == pytest.approx(plain.busy_s)

    def test_nominal_epochs_match_plain_integration(self):
        trace = _trace([(0, 0.0, 2.0)])
        plain = EnergyReport.from_trace(trace, MACHINE)
        piecewise = energy_with_epochs(
            trace, MACHINE, [DvfsEpoch(0.0, 1.0), DvfsEpoch(1.0, 1.0)]
        )
        assert piecewise.total_j == pytest.approx(plain.total_j)

    def test_downclocked_epoch_cuts_active_power(self):
        trace = _trace([(0, 0.0, 2.0)])
        nominal = energy_with_epochs(trace, MACHINE, [])
        halfway = energy_with_epochs(
            trace, MACHINE, [DvfsEpoch(1.0, 0.6)]
        )
        # Active power in [1, 2] drops to idle + extra*0.6^3; static
        # power is frequency-independent, so only the active channel
        # shrinks.
        expected_drop = (
            MACHINE.busy_extra_w() * (1.0 - 0.6**3) * 1.0
        )
        assert nominal.total_j - halfway.total_j == pytest.approx(
            expected_drop
        )

    def test_zero_length_epoch_contributes_nothing(self):
        trace = _trace([(0, 0.0, 2.0)])
        a = energy_with_epochs(
            trace, MACHINE, [DvfsEpoch(1.0, 0.6)]
        )
        b = energy_with_epochs(
            trace,
            MACHINE,
            # A switch to 1.2 that is immediately superseded at the
            # same instant: the 1.2 epoch has zero length.
            [DvfsEpoch(1.0, 1.2), DvfsEpoch(1.0, 0.6)],
        )
        assert b.total_j == pytest.approx(a.total_j)

    def test_zero_length_window(self):
        report = energy_with_epochs(ExecutionTrace(4), MACHINE, [], 0.0)
        assert report.total_j == 0.0
        assert report.window_s == 0.0

    def test_epoch_beyond_window_is_clipped(self):
        trace = _trace([(0, 0.0, 1.0)])
        capped = energy_with_epochs(
            trace, MACHINE, [DvfsEpoch(5.0, 0.6)], window_s=1.0
        )
        plain = energy_with_epochs(trace, MACHINE, [], window_s=1.0)
        assert capped.total_j == pytest.approx(plain.total_j)

    @pytest.mark.parametrize(
        "epochs",
        [[DvfsEpoch(0.0, 0.0)], [DvfsEpoch(-1.0, 0.8)]],
    )
    def test_invalid_epochs_raise(self, epochs):
        with pytest.raises(EnergyModelError):
            energy_with_epochs(_trace([(0, 0.0, 1.0)]), MACHINE, epochs)

    def test_window_shorter_than_trace_raises(self):
        with pytest.raises(EnergyModelError):
            energy_with_epochs(
                _trace([(0, 0.0, 2.0)]), MACHINE, [], window_s=1.0
            )


class TestPredictedEnergy:
    def test_zero_work_is_free(self):
        assert predicted_energy(MACHINE, 1.0, 0.0, 4) == 0.0

    def test_downclock_trades_static_for_dynamic(self):
        # E(f) = static/(width*f)*W + extra*f^2*W: U-shaped in f.
        energies = {
            f: predicted_energy(MACHINE, f, 10.0, 4)
            for f in (0.6, 0.8, 1.0, 1.2)
        }
        best = best_factor(MACHINE, 10.0, 4)
        assert energies[best] == min(energies.values())

    def test_best_factor_zero_work_is_nominal(self):
        assert best_factor(MACHINE, 0.0, 4) == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"factor": 0.0},
            {"factor": -1.0},
            {"busy_nominal_s": -1.0},
            {"width": 0},
        ],
    )
    def test_invalid_inputs_raise(self, kwargs):
        args = {"factor": 1.0, "busy_nominal_s": 1.0, "width": 4}
        args.update(kwargs)
        with pytest.raises(EnergyModelError):
            predicted_energy(MACHINE, **args)


class TestIntervalSampler:
    def test_intervals_sum_to_cumulative(self):
        trace = _trace([(0, 0.0, 1.0), (1, 1.0, 3.0), (2, 2.5, 4.0)])
        sampler = IntervalSampler(MACHINE, trace)
        total = 0.0
        for t in (0.5, 1.0, 2.0, 4.0):
            total += sampler.sample(t).total_j
        direct = EnergyReport.from_trace(trace, MACHINE, window_s=4.0)
        assert total == pytest.approx(direct.total_j)
        assert sampler.cumulative.total_j == pytest.approx(direct.total_j)

    def test_zero_length_interval_is_zero(self):
        trace = _trace([(0, 0.0, 1.0)])
        sampler = IntervalSampler(MACHINE, trace)
        sampler.sample(0.5)
        again = sampler.sample(0.5)
        assert again.total_j == 0.0
        assert again.window_s == 0.0

    def test_late_recorded_segment_is_not_lost(self):
        """A task in flight at sample time lands in a later interval —
        cumulative-differencing keeps the total exact."""
        trace = ExecutionTrace(2)
        sampler = IntervalSampler(MACHINE, trace)
        first = sampler.sample(1.0)  # nothing recorded yet: idle energy
        assert first.busy_s == 0.0
        # The segment spanning the first window is recorded afterwards
        # (it finished after the sample), as live engines do.
        trace.record(
            Segment(0, 0.5, 1.5, tid=0, kind=ExecutionKind.ACCURATE)
        )
        second = sampler.sample(2.0)
        direct = EnergyReport.from_trace(trace, MACHINE, window_s=2.0)
        assert first.total_j + second.total_j == pytest.approx(
            direct.total_j
        )

    def test_time_running_backwards_raises(self):
        sampler = IntervalSampler(MACHINE, ExecutionTrace(2))
        sampler.sample(1.0)
        with pytest.raises(EnergyModelError):
            sampler.sample(0.5)

    def test_epoch_aware_sampling(self):
        trace = _trace([(0, 0.0, 2.0)])
        epochs = [DvfsEpoch(1.0, 0.6)]
        sampler = IntervalSampler(MACHINE, trace, epochs=epochs)
        total = sampler.sample(1.0).total_j + sampler.sample(2.0).total_j
        direct = energy_with_epochs(trace, MACHINE, epochs, window_s=2.0)
        assert total == pytest.approx(direct.total_j)


class TestRaplSampler:
    def test_domain_intervals_sum_to_reads(self):
        trace = _trace([(0, 0.0, 1.0), (1, 0.5, 2.0)])
        rapl = SimulatedRapl(MACHINE)
        sampler = rapl.sampler(trace)
        totals: dict[str, float] = {}
        for t in (0.7, 2.0):
            for name, joules in sampler.sample(t).items():
                totals[name] = totals.get(name, 0.0) + joules
        for domain in rapl.domains():
            direct = rapl.read_joules_between(domain, trace, 0.0, 2.0)
            assert totals[domain.name] == pytest.approx(
                direct, abs=2e-5  # one RAPL LSB per differencing step
            )

    def test_backwards_time_raises(self):
        sampler = SimulatedRapl(MACHINE).sampler(ExecutionTrace(4))
        sampler.sample(1.0)
        with pytest.raises(EnergyModelError):
            sampler.sample(0.1)


class TestRuntimeConfigRoundTrip:
    """DVFS knobs survive the spec-string serialization boundary."""

    def test_governor_dvfs_spec_round_trips(self):
        cfg = RuntimeConfig(
            policy="lqh",
            governor=(
                "governor:budget_j=2.5,interval=0.002,dvfs=true,"
                "freq_table=(0.6,1.0)"
            ),
        )
        restored = RuntimeConfig.from_dict(cfg.to_dict())
        assert restored == cfg
        gov = restored.build_governor()
        assert gov.dvfs is True
        assert gov.freq_table.factors == (0.6, 1.0)

    def test_scaled_machine_spec_round_trips(self):
        cfg = RuntimeConfig(machine="xeon:frequency_ghz=2.5", n_workers=4)
        restored = RuntimeConfig.from_dict(cfg.to_dict())
        assert restored == cfg
        assert restored.build_machine().frequency_ghz == 2.5

    def test_scheduler_set_frequency_reflected_in_report(self):
        """An online switch shows up in epochs and the final energy."""
        from repro.runtime.task import TaskCost

        def run(factor: float | None):
            sched = Scheduler(policy="accurate", n_workers=2)
            cost = TaskCost(2.0e9)  # 1 virtual second nominal
            for _ in range(4):
                sched.spawn(lambda: None, cost=cost)
            if factor is not None:
                sched.engine.set_frequency_factor(factor, at=0.0)
            report = sched.finish()
            return sched, report

        _, nominal = run(None)
        sched, slowed = run(0.5)
        assert sched.engine.accounting.dvfs_epochs == [
            DvfsEpoch(0.0, 0.5)
        ]
        # Half frequency: tasks take twice the virtual time...
        assert slowed.makespan_s == pytest.approx(
            2 * nominal.makespan_s, rel=0.01
        )
        # ...and the energy integration billed the 0.5-factor power
        # point (busy time at idle + extra*f^3), not the nominal one.
        machine = sched.machine_model
        scaled_active_w = (
            machine.core_idle_w + machine.busy_extra_w() * 0.5**3
        )
        expected_active = slowed.energy.busy_s * scaled_active_w
        assert slowed.energy.core_active_j == pytest.approx(
            expected_active, rel=0.01
        )
