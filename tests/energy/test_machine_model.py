"""Unit tests for the machine performance/power model."""

import pytest

from repro.energy.machine_model import XEON_E5_2650, MachineModel
from repro.runtime.errors import EnergyModelError
from repro.sim.topology import Topology


class TestDefaults:
    def test_paper_testbed(self):
        m = XEON_E5_2650
        assert m.topology.n_cores == 16
        assert m.frequency_ghz == pytest.approx(2.0)

    def test_tdp_plausible_for_dual_e5_2650(self):
        """Two 95 W packages plus DRAM: full-load power in 150-250 W."""
        assert 150.0 <= XEON_E5_2650.tdp_w() <= 250.0

    def test_idle_floor_below_tdp(self):
        m = XEON_E5_2650
        assert m.all_idle_w() < m.tdp_w()

    def test_duration_of(self):
        m = MachineModel()
        assert m.duration_of(m.ops_per_second) == pytest.approx(1.0)
        assert m.duration_of(0.0) == 0.0

    def test_duration_negative_rejected(self):
        with pytest.raises(EnergyModelError):
            MachineModel().duration_of(-1.0)

    def test_busy_extra_positive(self):
        assert XEON_E5_2650.busy_extra_w() > 0


class TestValidation:
    def test_zero_throughput_rejected(self):
        with pytest.raises(EnergyModelError):
            MachineModel(ops_per_second=0)

    def test_negative_power_rejected(self):
        with pytest.raises(EnergyModelError):
            MachineModel(core_active_w=-1.0)

    def test_idle_above_active_rejected(self):
        with pytest.raises(EnergyModelError):
            MachineModel(core_idle_w=20.0, core_active_w=10.0)

    def test_zero_frequency_rejected(self):
        with pytest.raises(EnergyModelError):
            MachineModel(frequency_ghz=0.0)


class TestDerivation:
    def test_with_workers_resizes(self):
        m = XEON_E5_2650.with_workers(4)
        assert m.topology.sockets == 1
        m24 = XEON_E5_2650.with_workers(24)
        assert m24.topology.sockets == 3

    def test_scaled_frequency_throughput_linear(self):
        m = MachineModel().scaled_frequency(0.5)
        assert m.ops_per_second == pytest.approx(
            MachineModel().ops_per_second * 0.5
        )

    def test_scaled_frequency_power_cubic(self):
        base = MachineModel()
        slow = base.scaled_frequency(0.5)
        dyn_base = base.core_active_w - base.core_idle_w
        dyn_slow = slow.core_active_w - slow.core_idle_w
        assert dyn_slow == pytest.approx(dyn_base * 0.125)

    def test_scaled_frequency_keeps_idle_power(self):
        base = MachineModel()
        assert base.scaled_frequency(0.5).core_idle_w == base.core_idle_w

    def test_invalid_scale_rejected(self):
        with pytest.raises(EnergyModelError):
            MachineModel().scaled_frequency(0.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            XEON_E5_2650.ops_per_second = 1.0  # type: ignore[misc]

    def test_custom_topology(self):
        m = MachineModel(topology=Topology(1, 4))
        assert m.n_cores == 4
        assert m.package_static_w() == pytest.approx(
            m.uncore_w + m.dram_w
        )
