"""Tests for the experiment harness (cells, figures, tables, report)."""

import pytest

from repro.harness.experiment import (
    NATIVE_PARAMS,
    ExperimentCell,
    run_cell,
)
from repro.harness.figures import (
    POLICY_MODES,
    fig1_sobel_approximation,
    fig3_sobel_perforation,
    fig4_overhead,
)
from repro.harness.report import bar_chart, format_float, format_table
from repro.harness.tables import table1, table2_policy_accuracy
from repro.kernels.base import Degree, PerforationNotApplicable


class TestReportRendering:
    def test_format_table_alignment(self):
        out = format_table(
            ["a", "bb"], [[1, 2.5], ["x", 3.0]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "|" in lines[1] and "-+-" in lines[2]

    def test_format_table_row_length_checked(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_float_widths(self):
        assert len(format_float(1.23456789)) <= 9
        assert len(format_float(1.2e-12)) <= 12

    def test_bar_chart(self):
        art = bar_chart(["x", "yy"], [1.0, 2.0])
        assert art.count("|") == 4
        assert "##" in art

    def test_bar_chart_length_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["x"], [1.0, 2.0])


class TestExperimentCells:
    def test_accurate_cell(self):
        res = run_cell(
            ExperimentCell("Sobel", "accurate", None, 4, True)
        )
        assert res.quality.value == 0.0  # reference vs itself
        assert res.makespan_s > 0 and res.energy_j > 0

    def test_policy_cell(self):
        res = run_cell(
            ExperimentCell("Sobel", "policy:lqh", Degree.MEDIUM, 4, True)
        )
        assert res.report.approximate_tasks > 0

    def test_perforated_cell(self):
        res = run_cell(
            ExperimentCell("Sobel", "perforated", Degree.MILD, 4, True)
        )
        assert res.report.tasks_total < 62  # rows dropped up front

    def test_perforation_not_applicable(self):
        with pytest.raises(PerforationNotApplicable):
            run_cell(
                ExperimentCell(
                    "Fluidanimate", "perforated", Degree.MILD, 4, True
                )
            )

    def test_policy_mode_requires_degree(self):
        with pytest.raises(ValueError):
            run_cell(ExperimentCell("Sobel", "policy:gtb", None, 4, True))

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            run_cell(
                ExperimentCell("Sobel", "turbo", Degree.MILD, 4, True)
            )

    def test_native_params_cover_all_benchmarks(self):
        from repro.kernels.base import benchmark_names

        assert {n.lower() for n in benchmark_names()} == set(
            NATIVE_PARAMS
        )

    def test_describe(self):
        cell = ExperimentCell("Sobel", "policy:gtb", Degree.MILD, 4, True)
        assert "Sobel" in cell.describe()
        assert "Mild" in cell.describe()


class TestFigures:
    def test_fig1_quadrants(self, tmp_path):
        fig = fig1_sobel_approximation(
            small=True, n_workers=4, out_path=tmp_path / "f1.pgm"
        )
        assert fig.mosaic.shape == (64, 64)
        assert fig.psnr_db[0] == float("inf")  # accurate quadrant
        assert (tmp_path / "f1.pgm").exists()
        assert "Figure 1" in fig.render()

    def test_fig3_perforation_worse_than_fig1(self):
        f1 = fig1_sobel_approximation(small=True, n_workers=4)
        f3 = fig3_sobel_perforation(small=True, n_workers=4)
        # Compare the most aggressive quadrants: 100% perforation is
        # catastrophically worse than 100% approximation.
        assert f3.psnr_db[3] < f1.psnr_db[3]

    def test_fig4_overhead_bounded(self):
        data = fig4_overhead(
            benchmarks=("Sobel",), small=True, n_workers=4
        )
        for mode in POLICY_MODES:
            v = data.normalized[("Sobel", mode)]
            assert 0.9 < v < 2.0  # small-scale: generous bound
        assert "Figure 4" in data.render()


class TestTables:
    def test_table1_static_content(self):
        out = table1()
        assert "Sobel" in out and "Fluidanimate" in out
        assert "80%" in out and "12.5%" in out
        assert "0.0001" in out  # Jacobi tolerance column

    def test_table2_small_run(self):
        data = table2_policy_accuracy(
            benchmarks=("Sobel",), small=True, n_workers=4
        )
        gtb_mb = data.inversions[("Sobel", "policy:gtb-max")]
        assert gtb_mb == 0.0  # max-buffer GTB never inverts
        assert data.ratio_diff[("Sobel", "policy:gtb-max")] < 0.05
        assert "Table 2" in data.render()
