"""Tests for JSON/CSV export of harness results."""

import csv
import json

import pytest

from repro.harness.export import (
    fig2_to_rows,
    to_dict,
    write_csv,
    write_json,
)
from repro.harness.figures import (
    fig1_sobel_approximation,
    fig2_benchmark,
)
from repro.harness.tables import table2_policy_accuracy


@pytest.fixture(scope="module")
def small_fig2():
    return fig2_benchmark("Jacobi", small=True, n_workers=4)


class TestFig2Export:
    def test_rows_cover_all_cells(self, small_fig2):
        rows = fig2_to_rows(small_fig2)
        # 1 accurate + 9 policy cells + 3 perforated
        assert len(rows) == 13
        modes = {r["mode"] for r in rows}
        assert {"accurate", "policy:gtb", "perforated"} <= modes

    def test_row_schema(self, small_fig2):
        row = fig2_to_rows(small_fig2)[0]
        assert set(row) == {
            "benchmark",
            "mode",
            "degree",
            "makespan_s",
            "energy_j",
            "quality_metric",
            "quality_value",
            "accurate",
            "approximate",
            "dropped",
        }

    def test_json_roundtrip(self, small_fig2, tmp_path):
        p = write_json(small_fig2, tmp_path / "fig2.json")
        rows = json.loads(p.read_text())
        assert len(rows) == 13
        assert all(isinstance(r["energy_j"], float) for r in rows)

    def test_csv_roundtrip(self, small_fig2, tmp_path):
        p = write_csv(small_fig2, tmp_path / "fig2.csv")
        with p.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 13
        assert rows[0]["benchmark"] == "Jacobi"


class TestOtherExports:
    def test_table2_rows(self):
        data = table2_policy_accuracy(
            benchmarks=("Jacobi",), small=True, n_workers=4
        )
        rows = to_dict(data)
        assert len(rows) == 3  # three policies
        assert all("inversion_pct" in r for r in rows)

    def test_quadrant_rows_inf_cleaned(self):
        fig = fig1_sobel_approximation(small=True, n_workers=4)
        rows = to_dict(fig)
        assert rows[0]["psnr_db"] is None  # inf -> None for JSON
        assert all(
            isinstance(r["psnr_db"], (float, type(None))) for r in rows
        )

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            to_dict({"not": "a result"})
