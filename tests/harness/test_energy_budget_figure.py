"""The fig-energy-budget harness target (governor-in-the-loop frontier)."""

from __future__ import annotations

from repro.harness.figures import GOVERNOR_ENGINES, fig_energy_budget


class TestEnergyBudgetFigure:
    def test_virtual_time_engines_track_their_budgets(self):
        data = fig_energy_budget(
            small=True,
            n_workers=16,
            engines=("simulated", "sequential"),
            budget_fracs=(0.6, 0.8),
            drop_params=(0.5, 0.9),
            governor_ticks=40,
        )
        assert set(data.accurate) == {"simulated", "sequential"}
        for engine in data.engines:
            for frac in data.budget_fracs:
                cell = data.cells[(engine, frac)]
                assert cell["error_pct"] <= 10.0, (engine, frac, cell)
                assert cell["converged"]
        # Lower budget -> worse (higher) PSNR^-1 on the same engine.
        sim = data.cells
        assert (
            sim[("simulated", 0.6)]["quality"]
            >= sim[("simulated", 0.8)]["quality"]
        )

    def test_drop_frontier_rows_present(self):
        data = fig_energy_budget(
            small=True,
            engines=("sequential",),
            budget_fracs=(0.7,),
            drop_params=(0.5,),
        )
        assert set(data.drop_frontier) == {0.5}
        row = data.drop_frontier[0.5]
        assert row["energy_j"] > 0
        assert row["quality"] > 0

    def test_render_is_a_table_per_engine(self):
        data = fig_energy_budget(
            small=True,
            engines=("sequential",),
            budget_fracs=(0.7,),
            drop_params=(0.5,),
        )
        text = data.render()
        assert "governed energy/quality on 'sequential'" in text
        assert "significance-agnostic drop baseline" in text
        assert "budget frac" in text

    def test_default_engine_matrix_is_all_four(self):
        assert GOVERNOR_ENGINES == (
            "simulated",
            "sequential",
            "threaded",
            "process",
        )
