"""Smoke tests for the harness command-line interface."""

import pytest

from repro.harness.__main__ import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Sobel" in out and "Fluidanimate" in out

    def test_fig1_small_with_output(self, capsys, tmp_path):
        assert main(["fig1", "--small", "--workers", "4",
                     "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig1_sobel_approx.pgm").exists()
        assert "Figure 1" in capsys.readouterr().out

    def test_fig3_small(self, capsys):
        assert main(["fig3", "--small", "--workers", "4"]) == 0
        assert "perforation" in capsys.readouterr().out

    def test_fig2_single_benchmark(self, capsys):
        assert main(
            ["fig2", "--small", "--workers", "4",
             "--benchmark", "Jacobi"]
        ) == 0
        out = capsys.readouterr().out
        assert "[Jacobi] time" in out
        assert "[Jacobi] energy" in out
        assert "[Jacobi] quality" in out

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig9"])
