"""TraceFrame: the pure-Python columnar frame behind the scenario
conformance harness."""

import pytest

from repro.harness.frames import TraceFrame
from repro.runtime.errors import ConfigError


@pytest.fixture()
def frame():
    return TraceFrame.from_records(
        [
            {"tenant": "a", "code": 200, "energy": 1.0},
            {"tenant": "b", "code": 429, "energy": 0.0},
            {"tenant": "a", "code": 200, "energy": 3.0},
        ]
    )


class TestConstruction:
    def test_misaligned_columns_rejected(self):
        with pytest.raises(ConfigError, match="align"):
            TraceFrame({"a": [1, 2], "b": [1]})

    def test_from_records_fills_missing_keys_with_none(self):
        f = TraceFrame.from_records(
            [{"a": 1}, {"a": 2, "b": 3}]
        )
        assert f.col("b") == [None, 3]
        assert f.columns == ["a", "b"]

    def test_from_reports_uses_to_dict(self):
        from repro.serve.server import JobReport

        f = TraceFrame.from_reports(
            [JobReport(job_id="j", tenant="t", kernel="k")]
        )
        assert f.col("tenant") == ["t"]

    def test_empty_frame(self):
        f = TraceFrame()
        assert len(f) == 0
        assert f.render() == "(empty frame)"


class TestAccess:
    def test_len_and_col(self, frame):
        assert len(frame) == 3
        assert frame.col("tenant") == ["a", "b", "a"]

    def test_unknown_column_raises(self, frame):
        with pytest.raises(ConfigError, match="no column"):
            frame.col("nope")

    def test_rows_round_trip(self, frame):
        assert TraceFrame.from_records(frame.rows()).col(
            "code"
        ) == frame.col("code")

    def test_select(self, frame):
        assert frame.select("tenant", "code").columns == [
            "tenant", "code",
        ]


class TestTransforms:
    def test_filter(self, frame):
        ok = frame.filter(lambda r: r["code"] == 200)
        assert len(ok) == 2
        assert set(ok.col("tenant")) == {"a"}

    def test_groupby(self, frame):
        groups = frame.groupby("tenant")
        assert set(groups) == {"a", "b"}
        assert len(groups["a"]) == 2

    def test_with_column(self, frame):
        f = frame.with_column("ok", lambda r: r["code"] == 200)
        assert f.col("ok") == [True, False, True]


class TestAggregation:
    def test_mean_sum_min_max(self, frame):
        assert frame.mean("energy") == pytest.approx(4.0 / 3)
        assert frame.sum("energy") == pytest.approx(4.0)
        assert frame.min("energy") == 0.0
        assert frame.max("energy") == 3.0

    def test_aggregates_skip_none(self):
        f = TraceFrame({"x": [1.0, None, 3.0]})
        assert f.mean("x") == 2.0

    def test_empty_aggregates_are_zero(self):
        f = TraceFrame({"x": []})
        assert f.mean("x") == 0.0
        assert f.sum("x") == 0.0

    def test_value_counts(self, frame):
        assert frame.value_counts("code") == {200: 2, 429: 1}

    def test_percentile(self, frame):
        assert frame.percentile("energy", 0.95) == 3.0


class TestBridges:
    def test_to_records(self, frame):
        records = frame.to_records()
        assert records[1] == {
            "tenant": "b", "code": 429, "energy": 0.0,
        }

    def test_to_pandas_without_pandas_raises_clear_error(self, frame):
        # pandas is deliberately absent from this toolchain; the
        # bridge must explain itself rather than ImportError.
        try:
            import pandas  # noqa: F401

            pytest.skip("pandas installed in this environment")
        except ImportError:
            pass
        with pytest.raises(ConfigError, match="pandas"):
            frame.to_pandas()

    def test_render_truncates(self):
        f = TraceFrame.from_records(
            [{"i": i} for i in range(20)]
        )
        out = f.render(max_rows=5)
        assert "more rows" in out
