"""Property-based tests (hypothesis) for the serving-layer invariants
the streaming/anytime shapes lean on: cache band lookups, canonical
argument identity, and cross-tenant routing keys."""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.cluster.hashring import job_key  # noqa: E402
from repro.serve.cache import ApproxResultCache, _ratio_key  # noqa: E402
from repro.serve.kernels import get_servable  # noqa: E402

SETTINGS = settings(max_examples=60, deadline=None, derandomize=True)

ratios = st.floats(
    min_value=0.0, max_value=1.0,
    allow_nan=False, allow_infinity=False,
)


class TestCacheBandLookup:
    @SETTINGS
    @given(
        cached=st.lists(ratios, min_size=1, max_size=12),
        max_ratio=ratios,
        min_ratio=ratios,
    )
    def test_get_degraded_band_invariants(
        self, cached, max_ratio, min_ratio
    ):
        """The band lookup returns the highest cached ratio inside
        ``[min_ratio, max_ratio]`` (after quantization), or nothing."""
        cache = ApproxResultCache(capacity=64)
        for r in cached:
            cache.put("k", "d", r, output=r)
        entry = cache.get_degraded(
            "k", "d", max_ratio=max_ratio, min_ratio=min_ratio
        )
        lo, hi = _ratio_key(min_ratio), _ratio_key(max_ratio)
        in_band = [
            r for r in {_ratio_key(c) for c in cached} if lo <= r <= hi
        ]
        if entry is None:
            assert not in_band
        else:
            # Returned ratio is in the requested band...
            assert lo <= entry.ratio <= hi
            # ...never exceeds what was asked for...
            assert entry.ratio <= hi
            # ...and is the best (highest) entry available there.
            assert entry.ratio == max(in_band)

    @SETTINGS
    @given(
        cached=st.lists(ratios, min_size=1, max_size=8),
        ratio=ratios,
    )
    def test_exact_get_only_hits_same_quantized_ratio(
        self, cached, ratio
    ):
        cache = ApproxResultCache(capacity=64)
        for r in cached:
            cache.put("k", "d", r, output=r)
        entry = cache.get("k", "d", ratio)
        present = _ratio_key(ratio) in {_ratio_key(c) for c in cached}
        assert (entry is not None) == present
        if entry is not None:
            assert entry.ratio == _ratio_key(ratio)

    @SETTINGS
    @given(cached=st.lists(ratios, min_size=1, max_size=8))
    def test_wrong_work_never_answers(self, cached):
        """Band lookups never cross kernel or digest identity."""
        cache = ApproxResultCache(capacity=64)
        for r in cached:
            cache.put("k", "d", r, output=r)
        assert cache.get_degraded("k2", "d", max_ratio=1.0) is None
        assert cache.get_degraded("k", "d2", max_ratio=1.0) is None


sobel_args = st.fixed_dictionaries(
    {},
    optional={
        "size": st.integers(min_value=8, max_value=256),
        "seed": st.integers(min_value=0, max_value=2**31 - 1),
    },
)


class TestCanonicalArgs:
    @SETTINGS
    @given(args=sobel_args)
    def test_canonical_args_round_trip(self, args):
        """Canonicalization is idempotent and digest-stable: feeding
        the canonical form back yields the same identity."""
        kernel = get_servable("sobel")
        canon = kernel.canonical_args(args)
        assert kernel.canonical_args(canon) == canon
        assert kernel.digest(args) == kernel.digest(canon)

    @SETTINGS
    @given(
        a=st.integers(min_value=8, max_value=256),
        b=st.integers(min_value=8, max_value=256),
    )
    def test_digest_separates_distinct_args(self, a, b):
        kernel = get_servable("sobel")
        same = kernel.digest({"size": a}) == kernel.digest({"size": b})
        assert same == (a == b)

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_defaults_do_not_change_identity(self, seed):
        """Omitted args and explicit defaults digest identically."""
        kernel = get_servable("mc-pi")
        explicit = kernel.canonical_args({"seed": seed})
        partial = dict(explicit)
        assert kernel.digest(partial) == kernel.digest(explicit)


#: Realistic tenant/kernel/stream identifiers: printable, no control
#: characters (the routing key's separators are \x1f / \x1e).
idents = st.text(
    alphabet=st.characters(
        whitelist_categories=("L", "N", "P"), max_codepoint=0x2FF
    ),
    min_size=1,
    max_size=24,
)


class TestRoutingKeys:
    @SETTINGS
    @given(
        t1=idents, t2=idents, kernel=idents, digest=idents
    )
    def test_no_cross_tenant_key_collisions(
        self, t1, t2, kernel, digest
    ):
        k1 = job_key(t1, kernel, digest)
        k2 = job_key(t2, kernel, digest)
        assert (k1 == k2) == (t1 == t2)

    @SETTINGS
    @given(tenant=idents, s1=idents, s2=idents)
    def test_stream_keys_separate_streams(self, tenant, s1, s2):
        k1 = job_key(tenant, "\x1estream", s1)
        k2 = job_key(tenant, "\x1estream", s2)
        assert (k1 == k2) == (s1 == s2)

    @SETTINGS
    @given(tenant=idents, kernel=idents, digest=idents)
    def test_stream_lane_never_collides_with_batch_lane(
        self, tenant, kernel, digest
    ):
        """The stream routing lane uses a reserved kernel token no
        wire-supplied kernel name can contain."""
        assert job_key(tenant, "\x1estream", digest) != job_key(
            tenant, kernel, digest
        )
