"""Anytime/iterative job shape: per-round quality, early take,
deadlines, and budget exhaustion (ISSUE 9 tentpole)."""

import pytest

from repro.serve import (
    AnytimeServable,
    JobRequest,
    RoundResult,
    TaskService,
    get_servable,
)
from repro.serve.tenants import TenantSpec

JACOBI_ARGS = {"n": 64, "chunk": 8, "seed": 3}
KMEANS_ARGS = {"points": 256, "k": 4, "chunk": 64, "seed": 5}

#: Monotonicity slack: at convergence the iterate grazes machine
#: precision and consecutive qualities may wobble at the 1e-7 level.
EPS = 1e-6


@pytest.fixture()
def svc():
    service = TaskService(tenants=("premium:name='lab'",))
    yield service
    service.close()


class TestAnytimeShapeValidation:
    def test_rounds_must_be_positive_int(self):
        with pytest.raises(Exception):
            JobRequest(tenant="t", kernel="jacobi", rounds=0)
        with pytest.raises(Exception):
            JobRequest(tenant="t", kernel="jacobi", rounds=True)

    def test_deadline_must_be_positive(self):
        with pytest.raises(Exception):
            JobRequest(tenant="t", kernel="jacobi", deadline_s=0.0)

    def test_anytime_property(self):
        assert JobRequest(tenant="t", kernel="jacobi", rounds=4).anytime
        assert JobRequest(
            tenant="t", kernel="jacobi", deadline_s=0.5
        ).anytime
        assert not JobRequest(tenant="t", kernel="jacobi").anytime

    def test_submit_rejects_anytime_shape(self, svc):
        r = svc.submit(
            JobRequest(
                tenant="lab", kernel="jacobi", args=JACOBI_ARGS, rounds=4
            )
        )
        assert r.status == "rejected-bad-shape"
        assert r.code == 400
        assert "submit_anytime" in r.detail

    def test_submit_anytime_rejects_non_anytime_kernel(self, svc):
        r = svc.submit_anytime(
            JobRequest(tenant="lab", kernel="sobel", rounds=4)
        )
        assert r.status == "rejected-not-anytime"
        assert r.code == 400

    def test_submit_anytime_rejects_unknown_tenant(self, svc):
        r = svc.submit_anytime(
            JobRequest(tenant="ghost", kernel="jacobi", rounds=2)
        )
        assert r.code == 404


class TestAnytimeQualityCurves:
    def test_jacobi_quality_improves_monotonically(self, svc):
        r = svc.submit_anytime(
            JobRequest(
                tenant="lab",
                kernel="jacobi",
                args=JACOBI_ARGS,
                ratio=1.0,
                rounds=8,
            )
        )
        assert r.status == "executed"
        assert r.rounds_run == 8
        q = r.round_quality
        assert len(q) == 8
        assert all(
            q[i + 1] <= q[i] + EPS for i in range(len(q) - 1)
        ), q
        # Meaningful refinement, not a flat line.
        assert q[0] > 1e-3
        assert q[-1] < q[0] / 10
        assert r.quality == q[-1]

    def test_kmeans_quality_improves(self, svc):
        r = svc.submit_anytime(
            JobRequest(
                tenant="lab",
                kernel="kmeans",
                args=KMEANS_ARGS,
                ratio=1.0,
                rounds=8,
            )
        )
        assert r.status == "executed"
        q = r.round_quality
        assert q[0] > 0
        assert q[-1] <= q[0]

    def test_round_energy_is_accounted(self, svc):
        r = svc.submit_anytime(
            JobRequest(
                tenant="lab", kernel="jacobi", args=JACOBI_ARGS, rounds=3
            )
        )
        assert r.energy_j > 0
        assert r.tasks_total > 0
        state = svc.tenants["lab"]
        assert state.spent_j == pytest.approx(r.energy_j)

    def test_anytime_output_not_cached(self, svc):
        svc.submit_anytime(
            JobRequest(
                tenant="lab", kernel="jacobi", args=JACOBI_ARGS, rounds=3
            )
        )
        kernel = get_servable("jacobi")
        digest = kernel.digest(JACOBI_ARGS)
        assert (
            svc.cache.get_degraded("jacobi", digest, max_ratio=1.0)
            is None
        )


class TestAnytimeEarlyTake:
    def test_callback_false_takes_current_answer(self, svc):
        seen = []

        def on_round(rr: RoundResult):
            seen.append(rr)
            return rr.round < 3  # stop after the 4th round

        r = svc.submit_anytime(
            JobRequest(
                tenant="lab", kernel="jacobi", args=JACOBI_ARGS, rounds=10
            ),
            on_round=on_round,
        )
        assert r.status == "executed"
        assert r.rounds_run == 4
        assert "early take after round 4" in r.detail
        assert len(seen) == 4
        assert [rr.round for rr in seen] == [0, 1, 2, 3]
        assert all(rr.energy_j > 0 for rr in seen)
        assert r.quality == seen[-1].quality

    def test_callback_none_return_continues(self, svc):
        calls = []
        r = svc.submit_anytime(
            JobRequest(
                tenant="lab", kernel="jacobi", args=JACOBI_ARGS, rounds=3
            ),
            on_round=lambda rr: calls.append(rr.round),
        )
        assert r.rounds_run == 3
        assert calls == [0, 1, 2]


class TestAnytimeDeadline:
    def test_tiny_deadline_stops_after_first_round(self, svc):
        r = svc.submit_anytime(
            JobRequest(
                tenant="lab",
                kernel="jacobi",
                args=JACOBI_ARGS,
                rounds=10,
                deadline_s=1e-9,
            )
        )
        assert r.status == "executed"
        assert r.rounds_run == 1
        assert "deadline" in r.detail
        assert r.output is not None

    def test_generous_deadline_runs_all_rounds(self, svc):
        r = svc.submit_anytime(
            JobRequest(
                tenant="lab",
                kernel="jacobi",
                args=JACOBI_ARGS,
                rounds=3,
                deadline_s=1e6,
            )
        )
        assert r.rounds_run == 3
        assert r.detail == ""


class TestAnytimeBudget:
    def test_budget_exhaustion_keeps_best_answer(self):
        spec = TenantSpec(name="poor", budget_j=1e-6)
        svc = TaskService(tenants=[spec])
        r = svc.submit_anytime(
            JobRequest(
                tenant="poor",
                kernel="jacobi",
                args=JACOBI_ARGS,
                rounds=10,
            )
        )
        # Degraded, not wrong: the job completes with the rounds it
        # could afford and the best answer so far.
        assert r.status == "executed"
        assert 1 <= r.rounds_run < 10
        assert "budget exhausted" in r.detail
        assert r.output is not None
        svc.close()

    def test_already_over_budget_is_429(self):
        spec = TenantSpec(name="poor", budget_j=1e-6)
        svc = TaskService(tenants=[spec])
        svc.submit_anytime(
            JobRequest(
                tenant="poor", kernel="jacobi", args=JACOBI_ARGS,
                rounds=10,
            )
        )
        r = svc.submit_anytime(
            JobRequest(
                tenant="poor", kernel="jacobi", args=JACOBI_ARGS,
                rounds=2, job_id="second",
            )
        )
        assert r.status == "rejected-budget"
        assert r.code == 429
        svc.close()


class TestAnytimeSurface:
    def test_jacobi_and_kmeans_are_anytime(self):
        assert isinstance(get_servable("jacobi"), AnytimeServable)
        assert isinstance(get_servable("kmeans"), AnytimeServable)

    def test_batch_kernels_are_not(self):
        for name in ("sobel", "mc-pi", "dct", "fluidanimate"):
            assert not isinstance(get_servable(name), AnytimeServable)

    def test_report_dict_carries_round_fields(self, svc):
        r = svc.submit_anytime(
            JobRequest(
                tenant="lab", kernel="jacobi", args=JACOBI_ARGS, rounds=2
            )
        )
        d = r.to_dict()
        assert d["rounds_run"] == 2
        assert len(d["round_quality"]) == 2
