"""The fig-serve harness target and the serve CLI smoke mode."""

from repro.harness.__main__ import main


class TestFigServeCli:
    def test_fig_serve_renders(self, capsys):
        assert main(["fig-serve", "--small", "--workers", "8"]) == 0
        out = capsys.readouterr().out
        assert "[fig-serve]" in out
        assert "-> PASS" in out


class TestServeSmokeCli:
    def test_smoke_pushes_jobs_across_two_backends(self, capsys):
        assert main(["serve", "--smoke", "24", "--workers", "4"]) == 0
        captured = capsys.readouterr()
        assert "serve smoke OK" in captured.err
        assert "[serve-smoke] simulated" in captured.out
        assert "[serve-smoke] threaded" in captured.out
