"""The ISSUE's acceptance scenario: two tenants on one shared engine,
tenant A budgeted at 60 % of its solo energy — the service degrades A
(ratio and/or degraded cache) while tenant B's quality and p95 latency
stay within 5 % of B's solo run.

Everything runs on the simulated backend, so latencies are virtual
seconds and every assertion is deterministic.
"""

import pytest

from repro.serve.figure import (
    ISOLATION_TOLERANCE,
    ServeFigData,
    fig_serve,
    percentile,
)


@pytest.fixture(scope="module")
def data() -> ServeFigData:
    return fig_serve(small=True, n_workers=16)


class TestAcceptance:
    def test_a_is_degraded_under_budget(self, data):
        assert data.a_degraded
        # The governor actually moved the knob: A's mean served ratio
        # sits strictly between the floor and fully accurate.
        assert 0.0 < data.a_mean_served_ratio < 0.95

    def test_a_tracks_its_budget(self, data):
        spent = data.tenant_stats["a"]["spent_j"]
        # Within 15% of the 60%-of-solo budget -- and far below the
        # unbudgeted solo energy.
        assert spent <= data.a_budget_j * 1.15
        assert spent < data.a_solo_energy_j * 0.75

    def test_b_quality_unaffected(self, data):
        assert data.b_quality_delta <= ISOLATION_TOLERANCE
        # B runs accurate in both worlds: quality is exactly reference.
        assert all(r.quality == 0.0 for r in data.b_shared_reports)

    def test_b_p95_latency_within_5pct_of_solo(self, data):
        assert abs(data.b_p95_delta) <= ISOLATION_TOLERANCE

    def test_acceptance_bit(self, data):
        assert data.isolated

    def test_every_b_job_really_executed(self, data):
        # The latency comparison must not be a cache artifact.
        assert all(
            r.status == "executed" for r in data.b_solo_reports
        )
        assert all(
            r.status == "executed" for r in data.b_shared_reports
        )

    def test_deterministic_on_simulated_engine(self, data):
        again = fig_serve(small=True, n_workers=16)
        assert again.b_p95_delta == data.b_p95_delta
        assert again.a_mean_served_ratio == data.a_mean_served_ratio


class TestRendering:
    def test_render_carries_the_verdict(self, data):
        text = data.render()
        assert "fig-serve" in text
        assert "60%" in text
        assert "-> PASS" in text
        assert "A degraded under budget: yes" in text
        assert "B solo" in text and "B shared" in text


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 0.95) == 95
        assert percentile(values, 1.0) == 100
        assert percentile([7.0], 0.95) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 0.5)
        with pytest.raises(ValueError, match="q must be"):
            percentile([1], 1.5)
