"""Tenant specs, the ``"tenant"`` registry family, admission control
(queue caps, budget exhaustion -> 429) and per-tenant governors."""

import pytest

from repro.config import RuntimeConfig
from repro.registry import available, resolve
from repro.runtime.errors import ConfigError
from repro.serve import JobRequest, LocalGateway, TenantSpec
from repro.serve.tenants import TenantState


class TestTenantRegistry:
    def test_tiers_registered(self):
        names = available("tenant")
        assert {"premium", "standard", "free"} <= set(names)

    def test_spec_string_resolves_with_overrides(self):
        spec = resolve("tenant", "free:name='bob',budget_j=2.0")
        assert isinstance(spec, TenantSpec)
        assert spec.name == "bob"
        assert spec.tier == "free"
        assert spec.budget_j == 2.0
        assert spec.max_pending == 8  # free-tier default

    def test_tier_defaults_differ(self):
        premium = resolve("tenant", "premium")
        free = resolve("tenant", "free")
        assert premium.max_pending > free.max_pending
        assert premium.ratio_floor > free.ratio_floor

    def test_validation(self):
        with pytest.raises(ConfigError, match="budget"):
            TenantSpec(name="x", budget_j=0.0)
        with pytest.raises(ConfigError, match="max_pending"):
            TenantSpec(name="x", max_pending=0)
        with pytest.raises(ConfigError, match="ratio_floor"):
            TenantSpec(name="x", ratio_floor=1.5)
        with pytest.raises(ConfigError, match="name"):
            TenantSpec(name="")


class TestRuntimeConfigTenants:
    def test_tenants_field_round_trips(self):
        cfg = RuntimeConfig(
            policy="gtb-max",
            tenants=["premium:name='a'", "free:name='b'"],
        )
        assert cfg.tenants == ("premium:name='a'", "free:name='b'")
        clone = RuntimeConfig.from_dict(cfg.to_dict())
        assert clone == cfg
        specs = clone.build_tenants()
        assert [s.name for s in specs] == ["a", "b"]

    def test_describe_mentions_tenants(self):
        cfg = RuntimeConfig(tenants=("standard:name='x'",))
        assert "tenants=1" in cfg.describe()

    def test_bad_tenants_rejected(self):
        with pytest.raises(ConfigError, match="tenant"):
            RuntimeConfig(tenants="standard")  # a bare string is a bug
        with pytest.raises(ConfigError, match="tenant"):
            RuntimeConfig(tenants=("standard:=",))

    def test_instances_do_not_serialize(self):
        cfg = RuntimeConfig(tenants=(TenantSpec(name="x"),))
        with pytest.raises(ConfigError, match="serialize"):
            cfg.to_dict()


class TestAdmissionControl:
    def test_unknown_tenant_404(self):
        with LocalGateway(tenants=("standard:name='known'",)) as gw:
            report = gw.submit(
                JobRequest(tenant="nobody", kernel="sobel")
            )
            assert report.status == "rejected-unknown-tenant"
            assert report.code == 404

    def test_unknown_kernel_404(self):
        with LocalGateway(tenants=("standard:name='t'",)) as gw:
            report = gw.submit(
                JobRequest(tenant="t", kernel="no-such-kernel")
            )
            assert report.status == "rejected-unknown-kernel"
            assert report.code == 404

    def test_queue_saturation_429(self):
        with LocalGateway(
            tenants=("standard:name='t',max_pending=2",)
        ) as gw:
            jobs = [
                gw.submit(
                    JobRequest(
                        tenant="t", kernel="sobel",
                        args={"size": 32, "seed": i},
                    )
                )
                for i in range(4)
            ]
            statuses = [j.status for j in jobs]
            assert statuses[:2] == ["queued", "queued"]
            assert statuses[2:] == ["rejected-queue"] * 2
            assert all(j.code == 429 for j in jobs[2:])
            gw.drain()
            assert jobs[0].status == "executed"

    def test_saturated_tenant_can_still_be_served_from_cache(self):
        with LocalGateway(
            tenants=("standard:name='t',max_pending=1",)
        ) as gw:
            gw.submit_many(
                [JobRequest(tenant="t", kernel="sobel", args={"size": 32})]
            )
            # Fill the queue, then ask for the cached work again.
            gw.submit(
                JobRequest(
                    tenant="t", kernel="sobel",
                    args={"size": 32, "seed": 7},
                )
            )
            shed = gw.submit(
                JobRequest(tenant="t", kernel="sobel", args={"size": 32})
            )
            assert shed.served_from_cache
            assert shed.code == 200
            assert "over-queue" in shed.detail

    def test_duplicate_queued_job_id_rejected_409(self):
        with LocalGateway(tenants=("standard:name='t'",)) as gw:
            first = gw.submit(
                JobRequest(
                    tenant="t", kernel="sobel",
                    args={"size": 32}, job_id="dup",
                )
            )
            assert first.status == "queued"
            clash = gw.submit(
                JobRequest(
                    tenant="t", kernel="sobel",
                    args={"size": 48}, job_id="dup",
                )
            )
            assert clash.status == "rejected-duplicate-id"
            assert clash.code == 409
            gw.drain()
            assert first.status == "executed"
            # Once settled, the id is free again.
            again = gw.submit(
                JobRequest(
                    tenant="t", kernel="sobel",
                    args={"size": 48}, job_id="dup",
                )
            )
            assert again.status == "queued"

    def test_duplicate_tenant_names_rejected(self):
        from repro.serve import TaskService

        with pytest.raises(ConfigError, match="duplicate"):
            TaskService(
                tenants=("standard:name='x'", "free:name='x'")
            )


class TestPerTenantGovernor:
    def test_unmetered_tenant_has_no_governor(self):
        state = TenantState(TenantSpec(name="x"))
        assert state.governor is None
        assert state.ratio == 1.0
        assert state.steer(0.0, 100) == 1.0

    def test_budgeted_tenant_governor_steers_down(self):
        spec = TenantSpec(name="x", budget_j=1.0, ratio_floor=0.1)
        state = TenantState(spec)
        assert state.governor is not None
        assert state.governor.budget_j == 1.0
        state.e_acc_j = 0.02
        state.e_apx_j = 0.002
        # 100 tasks at 0.02 J accurate = 2 J >> 1 J budget.
        ratio = state.steer(0.0, 100)
        assert ratio < 1.0
        # The governor records its control history like the run-level
        # controller.
        assert state.governor.history[-1].remaining_tasks == 100

    def test_budget_exhaustion_collapses_to_floor(self):
        spec = TenantSpec(
            name="x", budget_j=1.0, ratio_floor=0.25, smoothing=1.0
        )
        state = TenantState(spec)
        state.e_acc_j = 0.02
        state.e_apx_j = 0.0
        state.spent_j = 1.5  # over budget
        assert state.over_budget
        assert state.steer(0.0, 50) == pytest.approx(0.25)

    def test_energy_observations_fold_in(self):
        state = TenantState(TenantSpec(name="x", budget_j=1.0))
        state.observe_energy("acc", busy_s=1.0, tasks=10, watts=5.0)
        assert state.e_acc_j == pytest.approx(0.5)
        state.observe_energy("acc", busy_s=1.0, tasks=10, watts=15.0)
        assert 0.5 < state.e_acc_j < 1.5  # EWMA, not replacement
        state.observe_energy("apx", busy_s=0.0, tasks=0, watts=5.0)
        assert state.e_apx_j is None  # empty rounds don't pollute
