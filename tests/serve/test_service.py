"""TaskService end-to-end: shared-engine multiplexing, correct
outputs, per-job reports, coalescing, chrome-trace tagging, and
backend-agnosticism."""

import json

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.serve import (
    JobRequest,
    LocalGateway,
    TaskService,
    get_servable,
)


def _cfg(engine: str = "simulated", workers: int = 8) -> RuntimeConfig:
    return RuntimeConfig(
        policy="gtb-max", n_workers=workers, engine=engine
    )


class TestJobExecution:
    def test_accurate_sobel_job_matches_reference(self):
        kernel = get_servable("sobel")
        args = {"size": 32, "seed": 5}
        with LocalGateway(
            config=_cfg(), tenants=("premium:name='t'",)
        ) as gw:
            report = gw.submit_many(
                [JobRequest(tenant="t", kernel="sobel", args=args)]
            )[0]
            assert report.status == "executed"
            assert report.ratio_served == 1.0
            assert report.quality == 0.0  # bit-identical to reference
            np.testing.assert_array_equal(
                report.output, kernel.reference(args)
            )
            assert report.accurate == report.tasks_total == 30
            assert report.energy_j > 0
            assert report.latency_s > 0

    def test_ratio_honored_exactly_per_job_group(self):
        with LocalGateway(
            config=_cfg(), tenants=("free:name='t'",)
        ) as gw:
            report = gw.submit_many(
                [
                    JobRequest(
                        tenant="t", kernel="sobel",
                        args={"size": 32}, ratio=0.5,
                    )
                ]
            )[0]
            # GTB Max-Buffer: exactly ceil(0.5 * 30) accurate tasks.
            assert report.accurate == 15
            assert report.approximate == 15
            assert report.quality > 0

    def test_mc_pi_drop_mode(self):
        with LocalGateway(
            config=_cfg(), tenants=("free:name='t'",)
        ) as gw:
            report = gw.submit_many(
                [
                    JobRequest(
                        tenant="t", kernel="mc-pi",
                        args={"blocks": 10, "samples": 500},
                        ratio=0.6,
                    )
                ]
            )[0]
            assert report.dropped == 4  # no approxfun -> dropped
            assert report.accurate == 6
            assert report.output == pytest.approx(3.14, abs=0.2)

    def test_jobs_report_schema_on_wire(self):
        with LocalGateway(tenants=("standard:name='t'",)) as gw:
            report = gw.submit_many(
                [
                    JobRequest(
                        tenant="t", kernel="mc-pi",
                        args={"blocks": 4, "samples": 64},
                    )
                ]
            )[0]
            wire = report.to_dict()
            json.dumps(wire)  # must be JSON-clean
            assert wire["status"] == "executed"
            assert isinstance(wire["result"], float)  # scalar rides along
            assert "output" not in wire


class TestMultiplexing:
    def test_rounds_batch_across_tenants(self):
        service = TaskService(
            _cfg(), tenants=("standard:name='a'", "standard:name='b'"),
            max_batch=4,
        )
        with service:
            for i in range(4):
                service.submit(
                    JobRequest(
                        tenant="a" if i % 2 == 0 else "b",
                        kernel="sobel",
                        args={"size": 32, "seed": i},
                    )
                )
            reports = service.flush()
            assert len(reports) == 4
            assert service.rounds == 1
            # One group per job on the one shared scheduler.
            labels = [
                g.name for g in service.scheduler.groups
                if "/" in g.name
            ]
            assert len(labels) == 4
            assert {lbl.split("/")[0] for lbl in labels} == {"a", "b"}

    def test_identical_in_round_jobs_coalesce(self):
        service = TaskService(
            _cfg(), tenants=("standard:name='t'",), max_batch=4
        )
        with service:
            jobs = [
                service.submit(
                    JobRequest(
                        tenant="t", kernel="sobel", args={"size": 32}
                    )
                )
                for _ in range(3)
            ]
            service.flush()
            statuses = sorted(j.status for j in jobs)
            assert statuses == ["coalesced", "coalesced", "executed"]
            leader = next(j for j in jobs if j.status == "executed")
            for j in jobs:
                if j.status == "coalesced":
                    assert j.energy_j == 0.0
                    assert j.quality == leader.quality
                    np.testing.assert_array_equal(
                        j.output, leader.output
                    )
            # Only the leader was billed.
            assert service.tenants["t"].spent_j == pytest.approx(
                leader.energy_j
            )

    def test_close_returns_canonical_run_report(self):
        gw = LocalGateway(tenants=("standard:name='t'",))
        gw.submit_many(
            [JobRequest(tenant="t", kernel="sobel", args={"size": 32})]
        )
        report = gw.close()
        assert report is not None
        assert report.tasks_total == 30
        # Idempotent close.
        assert gw.close() is report

    def test_submit_after_close_raises(self):
        from repro.runtime.errors import SchedulerError

        gw = LocalGateway(tenants=("standard:name='t'",))
        gw.close()
        with pytest.raises(SchedulerError, match="closed"):
            gw.submit(JobRequest(tenant="t", kernel="sobel"))


class TestTraceTagging:
    def test_chrome_trace_carries_tenant_and_job_ids(self, tmp_path):
        service = TaskService(_cfg(), tenants=("standard:name='t'",))
        with service:
            report = service.submit(
                JobRequest(tenant="t", kernel="sobel", args={"size": 32})
            )
            service.flush()
            path = service.write_trace(tmp_path / "serve_trace.json")
        data = json.loads(path.read_text())
        tagged = [
            e for e in data["traceEvents"]
            if e.get("args", {}).get("job") == report.job_id
        ]
        assert tagged, "no events tagged with the job id"
        for event in tagged:
            assert event["args"]["tenant"] == "t"
            assert event["args"]["kernel"] == "sobel"
            assert "tenant:t" in event["cat"]


@pytest.mark.parametrize("engine", ["simulated", "threaded"])
class TestBackends:
    def test_service_serves_on_backend(self, engine):
        with LocalGateway(
            config=_cfg(engine=engine, workers=4),
            tenants=("standard:name='t'",),
        ) as gw:
            reports = gw.submit_many(
                [
                    JobRequest(
                        tenant="t", kernel="sobel",
                        args={"size": 32, "seed": i},
                    )
                    for i in range(3)
                ]
            )
            kernel = get_servable("sobel")
            for i, report in enumerate(reports):
                assert report.status == "executed"
                np.testing.assert_array_equal(
                    report.output,
                    kernel.reference({"size": 32, "seed": i}),
                )


class TestServiceProtocol:
    """The explicit service contract (submit/flush/pending_jobs/stats/
    close) — both service implementations satisfy it, and gateways
    validate it up front instead of duck-typing."""

    def test_task_service_implements_protocol(self):
        from repro.serve import ServiceProtocol

        svc = TaskService(_cfg(), tenants=("standard:name='t'",))
        assert isinstance(svc, ServiceProtocol)
        svc.close()

    def test_cluster_service_implements_protocol(self):
        from repro.cluster.service import ClusterService
        from repro.serve import ServiceProtocol

        cs = ClusterService(_cfg(workers=2), cluster=2)
        assert isinstance(cs, ServiceProtocol)
        cs.close()

    def test_gateways_reject_non_services(self):
        from repro.runtime.errors import ConfigError
        from repro.serve import ServeServer

        with pytest.raises(ConfigError, match="ServiceProtocol"):
            LocalGateway(object())
        with pytest.raises(ConfigError, match="ServiceProtocol"):
            ServeServer(service=object())

    def test_gateway_accepts_any_protocol_service(self):
        from repro.cluster.service import ClusterService

        cs = ClusterService(_cfg(workers=2), cluster=2)
        with LocalGateway(cs) as gw:
            report = gw.submit_many(
                [
                    JobRequest(
                        tenant="standard",
                        kernel="mc-pi",
                        args={"blocks": 4, "samples": 64},
                    )
                ]
            )[0]
            assert report.status == "executed"
