"""The scenario conformance harness: every registered scenario must
produce a figure AND a passing machine-checked assertion set."""

import pytest

from repro.runtime.errors import ConfigError
from repro.serve.scenarios import (
    SCENARIOS,
    Check,
    ScenarioReport,
    run_scenarios,
    scenario,
)

EXPECTED = {
    "streaming-degrade",
    "streaming-cache-replay",
    "anytime-jacobi",
    "anytime-kmeans",
    "faults-under-serve",
    "faults-under-cluster",
}


class TestRegistry:
    def test_all_issue_scenarios_registered(self):
        assert EXPECTED <= set(SCENARIOS)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError):

            @scenario("streaming-degrade", "dup")
            def dup(**kwargs):  # pragma: no cover - never runs
                raise AssertionError

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError, match="unknown scenario"):
            run_scenarios(["no-such-scenario"])


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_conforms(name):
    """The conformance contract: run the scenario small, demand a
    non-empty frame, a renderable figure, and all checks green."""
    report = run_scenarios([name], small=True, n_workers=8)[0]
    assert isinstance(report, ScenarioReport)
    assert report.name == name
    assert len(report.frame) > 0, "scenario produced an empty trace"
    assert report.checks, "scenario registered no assertions"
    assert all(isinstance(c, Check) for c in report.checks)
    rendered = report.render()
    assert name in rendered
    for check in report.checks:
        assert check.passed, f"{name}: {check.name} — {check.detail}"
    assert "CONFORMS" in rendered


class TestReportRendering:
    def test_failed_check_renders_violation(self):
        from repro.harness.frames import TraceFrame

        report = ScenarioReport(
            name="x",
            title="t",
            frame=TraceFrame({"a": [1]}),
            checks=[Check("bad", False, "boom")],
        )
        assert not report.passed
        rendered = report.render()
        assert "FAIL" in rendered
        assert "VIOLATION" in rendered
