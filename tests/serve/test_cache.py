"""Approximate-result cache: LRU eviction, degraded lookups, and the
budget-triggered degradation path through a live service."""

import pytest

from repro.config import RuntimeConfig
from repro.runtime.errors import ConfigError
from repro.serve import (
    ApproxResultCache,
    JobRequest,
    LocalGateway,
)


class TestLruMechanics:
    def test_put_get_roundtrip(self):
        cache = ApproxResultCache(capacity=4)
        cache.put("sobel", "d1", 1.0, output="full", quality=0.0)
        entry = cache.get("sobel", "d1", 1.0)
        assert entry is not None
        assert entry.output == "full"
        assert entry.hits == 1
        assert cache.stats.hits == 1

    def test_miss_counts(self):
        cache = ApproxResultCache(capacity=4)
        assert cache.get("sobel", "nope", 1.0) is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.0

    def test_capacity_evicts_lru(self):
        cache = ApproxResultCache(capacity=2)
        cache.put("k", "a", 1.0, output=1)
        cache.put("k", "b", 1.0, output=2)
        cache.get("k", "a", 1.0)  # refresh a -> b is now LRU
        cache.put("k", "c", 1.0, output=3)
        assert cache.stats.evictions == 1
        assert cache.get("k", "b", 1.0) is None  # evicted
        assert cache.get("k", "a", 1.0) is not None
        assert cache.get("k", "c", 1.0) is not None

    def test_put_same_key_refreshes_not_grows(self):
        cache = ApproxResultCache(capacity=2)
        cache.put("k", "a", 0.5, output=1)
        cache.put("k", "a", 0.5, output=2)
        assert len(cache) == 1
        assert cache.get("k", "a", 0.5).output == 2

    def test_ratio_is_part_of_identity(self):
        cache = ApproxResultCache(capacity=8)
        cache.put("k", "a", 0.4, output="low")
        assert cache.get("k", "a", 1.0) is None

    def test_ratio_quantized_to_levels(self):
        cache = ApproxResultCache(capacity=8)
        cache.put("k", "a", 0.400000001, output="low")
        assert cache.get("k", "a", 0.4) is not None

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigError, match="capacity"):
            ApproxResultCache(capacity=0)


class TestDegradedLookup:
    def test_picks_highest_ratio_in_band(self):
        cache = ApproxResultCache(capacity=8)
        cache.put("k", "a", 0.2, output="worst")
        cache.put("k", "a", 0.6, output="better")
        cache.put("k", "a", 0.9, output="best-but-too-high")
        entry = cache.get_degraded("k", "a", max_ratio=0.8)
        assert entry.output == "better"
        assert cache.stats.degraded_hits == 1

    def test_band_floor_excludes_too_degraded(self):
        cache = ApproxResultCache(capacity=8)
        cache.put("k", "a", 0.2, output="worst")
        assert (
            cache.get_degraded("k", "a", max_ratio=1.0, min_ratio=0.5)
            is None
        )

    def test_exact_top_of_band_counts_as_plain_hit(self):
        cache = ApproxResultCache(capacity=8)
        cache.put("k", "a", 0.8, output="x")
        entry = cache.get_degraded("k", "a", max_ratio=0.8)
        assert entry is not None
        assert cache.stats.hits == 1
        assert cache.stats.degraded_hits == 0

    def test_other_work_never_matches(self):
        cache = ApproxResultCache(capacity=8)
        cache.put("k", "other-digest", 0.5, output="x")
        cache.put("other-kernel", "a", 0.5, output="y")
        assert cache.get_degraded("k", "a", max_ratio=1.0) is None


class TestBudgetTriggeredDegradation:
    """The serving policy end to end: a tenant over its energy budget
    is answered from the cache at a lower ratio instead of executing
    or erroring."""

    def _gateway(self) -> LocalGateway:
        return LocalGateway(
            config=RuntimeConfig(policy="gtb-max", n_workers=8),
            tenants=(
                "standard:name='t',budget_j=0.0005,ratio_floor=0.2",
            ),
        )

    def _job(self) -> JobRequest:
        return JobRequest(
            tenant="t", kernel="sobel", args={"size": 32}, ratio=1.0
        )

    def test_over_budget_serves_degraded_cache_with_zero_energy(self):
        with self._gateway() as gw:
            first = gw.submit_many([self._job()])[0]
            assert first.status == "executed"
            assert first.ratio_served < 1.0  # budget-steered already
            assert first.energy_j > 0
            state = gw.service.tenants["t"]
            assert state.over_budget  # tiny budget: one job blows it

            second = gw.submit_many([self._job()])[0]
            assert second.status == "cached-degraded"
            assert second.code == 200
            assert second.energy_j == 0.0
            assert second.ratio_served == pytest.approx(
                round(first.ratio_served, 2)
            )
            # No extra spend: the whole point of the degradation path.
            assert state.spent_j == pytest.approx(first.energy_j)

    def test_over_budget_without_cache_rejects_429(self):
        with self._gateway() as gw:
            gw.submit_many([self._job()])
            assert gw.service.tenants["t"].over_budget
            # Different work -> nothing cached -> shed.
            miss = gw.submit(
                JobRequest(tenant="t", kernel="sobel", args={"size": 48})
            )
            assert miss.status == "rejected-budget"
            assert miss.code == 429

    def test_degrade_to_cache_optout_rejects_instead(self):
        with LocalGateway(
            config=RuntimeConfig(policy="gtb-max", n_workers=8),
            tenants=(
                "standard:name='t',budget_j=0.0005,"
                "degrade_to_cache=false",
            ),
        ) as gw:
            gw.submit_many([self._job()])
            report = gw.submit(self._job())
            assert report.status == "rejected-budget"
            assert report.code == 429
