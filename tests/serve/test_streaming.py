"""Streaming job shape: ordered frames, per-stream admission, and the
re-submission cache regression (ISSUE 9 satellite)."""

import pytest

from repro.serve import (
    STREAM_MIN_RATIO,
    STREAM_WINDOW,
    JobRequest,
    StreamState,
    TaskService,
)
from repro.serve.tenants import TenantSpec


def _frame_args(i: int) -> dict:
    """Distinct per-frame work (distinct digests)."""
    return {"size": 24, "seed": 100 + i}


class TestStreamShapeValidation:
    def test_stream_must_be_nonempty_string(self):
        with pytest.raises(Exception):
            JobRequest(tenant="t", kernel="sobel", stream="")
        with pytest.raises(Exception):
            JobRequest(tenant="t", kernel="sobel", stream=7)

    def test_frame_requires_stream(self):
        with pytest.raises(Exception):
            JobRequest(tenant="t", kernel="sobel", frame=0)

    def test_stream_and_anytime_are_exclusive(self):
        with pytest.raises(Exception):
            JobRequest(tenant="t", kernel="jacobi", stream="s", rounds=4)
        with pytest.raises(Exception):
            JobRequest(
                tenant="t", kernel="jacobi", stream="s", deadline_s=1.0
            )

    def test_from_dict_round_trips_stream_fields(self):
        req = JobRequest.from_dict(
            {
                "tenant": "t",
                "kernel": "sobel",
                "stream": "cam0",
                "frame": 3,
            }
        )
        assert req.stream == "cam0"
        assert req.frame == 3
        assert not req.anytime


class TestStreamOrdering:
    def test_frames_default_to_next_in_sequence(self):
        svc = TaskService(tenants=("standard:name='s'",))
        for i in range(3):
            r = svc.submit(
                JobRequest(
                    tenant="s",
                    kernel="sobel",
                    args=_frame_args(i),
                    stream="cam0",
                )
            )
            assert r.frame == i
        svc.flush()
        assert svc.stats()["streams"]["s/cam0"]["next_frame"] == 3
        svc.close()

    def test_out_of_order_frame_is_409(self):
        svc = TaskService(tenants=("standard:name='s'",))
        svc.submit(
            JobRequest(
                tenant="s",
                kernel="sobel",
                args=_frame_args(0),
                stream="cam0",
                frame=0,
            )
        )
        skip = svc.submit(
            JobRequest(
                tenant="s",
                kernel="sobel",
                args=_frame_args(2),
                stream="cam0",
                frame=2,
            )
        )
        assert skip.status == "rejected-out-of-order"
        assert skip.code == 409
        # The lane still expects frame 1: order is preserved.
        nxt = svc.submit(
            JobRequest(
                tenant="s",
                kernel="sobel",
                args=_frame_args(1),
                stream="cam0",
                frame=1,
            )
        )
        assert nxt.status == "queued"
        svc.flush()
        svc.close()

    def test_streams_are_isolated_per_tenant_and_name(self):
        svc = TaskService(
            tenants=("standard:name='a'", "standard:name='b'")
        )
        svc.submit(
            JobRequest(
                tenant="a", kernel="sobel", args=_frame_args(0),
                stream="cam",
            )
        )
        # Same stream name under another tenant starts at frame 0.
        r = svc.submit(
            JobRequest(
                tenant="b", kernel="sobel", args=_frame_args(0),
                stream="cam",
            )
        )
        assert r.frame == 0
        assert r.status == "queued"
        svc.flush()
        svc.close()


class TestStreamBackpressure:
    def test_window_full_is_429_without_consuming_frame_index(self):
        svc = TaskService(tenants=("standard:name='s'",))
        ss = svc._streams  # noqa: SLF001 - white-box window shrink
        for i in range(2):
            svc.submit(
                JobRequest(
                    tenant="s",
                    kernel="sobel",
                    args=_frame_args(i),
                    stream="cam0",
                )
            )
        ss[("s", "cam0")].max_inflight = 2
        pushed = svc.submit(
            JobRequest(
                tenant="s",
                kernel="sobel",
                args=_frame_args(2),
                stream="cam0",
            )
        )
        assert pushed.status == "rejected-stream-backpressure"
        assert pushed.code == 429
        # The index was NOT consumed: the retry of the same frame is
        # in-order once the window drains.
        svc.flush()
        retry = svc.submit(
            JobRequest(
                tenant="s",
                kernel="sobel",
                args=_frame_args(2),
                stream="cam0",
            )
        )
        assert retry.frame == 2
        assert retry.status == "queued"
        svc.flush()
        summary = svc.stats()["streams"]["s/cam0"]
        assert summary["rejected"] == 1
        assert summary["frames"] == 3
        svc.close()

    def test_default_window_is_module_constant(self):
        ss = StreamState(tenant="t", stream="s")
        assert ss.max_inflight == STREAM_WINDOW

    def test_stream_frames_do_not_count_against_batch_queue_cap(self):
        spec = TenantSpec(name="s", max_pending=1)
        svc = TaskService(tenants=[spec])
        svc.submit(
            JobRequest(
                tenant="s", kernel="sobel", args=_frame_args(0),
                stream="cam0",
            )
        )
        svc.submit(
            JobRequest(
                tenant="s", kernel="sobel", args=_frame_args(1),
                stream="cam0",
            )
        )
        # Two frames in flight, yet a batch job still fits under the
        # max_pending=1 queue cap: streams have their own lane.
        batch = svc.submit(
            JobRequest(
                tenant="s", kernel="mc-pi",
                args={"blocks": 4, "samples": 200},
            )
        )
        assert batch.status == "queued"
        svc.flush()
        svc.close()


class TestStreamDegradeNotDrop:
    def test_over_budget_frames_degrade_instead_of_dropping(self):
        spec = TenantSpec(name="cam", tier="free", budget_j=1e-6)
        svc = TaskService(tenants=[spec])
        reports = []
        for i in range(6):
            reports.append(
                svc.submit(
                    JobRequest(
                        tenant="cam",
                        kernel="sobel",
                        args=_frame_args(i),
                        stream="cam0",
                        ratio=0.9,
                    )
                )
            )
            svc.flush()
        # Every frame completed: none rejected, none dropped.
        assert all(r.ok for r in reports)
        assert [r.frame for r in reports] == list(range(6))
        degraded = [
            r for r in reports
            if r.ratio_served == pytest.approx(STREAM_MIN_RATIO)
        ]
        assert degraded, "budget never tightened in 6 frames"
        assert "not dropped" in degraded[-1].detail
        summary = svc.stats()["streams"]["cam/cam0"]
        assert summary["degraded"] == len(degraded)
        assert summary["rejected"] == 0
        svc.close()

    def test_degraded_frames_respect_ratio_floor(self):
        spec = TenantSpec(name="cam", budget_j=1e-6, ratio_floor=0.4)
        svc = TaskService(tenants=[spec])
        reports = []
        for i in range(5):
            reports.append(
                svc.submit(
                    JobRequest(
                        tenant="cam",
                        kernel="sobel",
                        args=_frame_args(i),
                        stream="cam0",
                        ratio=0.9,
                    )
                )
            )
            svc.flush()
        assert all(r.ok for r in reports)
        for r in reports:
            assert r.ratio_served >= 0.4 - 1e-9


class TestStreamCacheReplay:
    def test_identical_frame_replays_from_cache(self):
        svc = TaskService(tenants=("standard:name='s'",))
        args = {"size": 24, "seed": 1}
        first = svc.submit(
            JobRequest(
                tenant="s", kernel="sobel", args=args, stream="cam0",
            )
        )
        svc.flush()
        assert first.status == "executed"
        replay = svc.submit(
            JobRequest(
                tenant="s", kernel="sobel", args=args, stream="cam0",
            )
        )
        assert replay.served_from_cache
        assert replay.energy_j == 0.0
        assert "replayed from cache" in replay.detail
        # The replay still advanced the lane.
        assert replay.frame == 1
        assert svc.stats()["streams"]["s/cam0"]["next_frame"] == 2
        svc.close()


class TestResubmissionCacheRegression:
    """A frame re-submitted with an identical digest must be served
    from the cache even when the tenant's ratio floor lifts the served
    ratio above the requested one.

    Regression: the round cache window was ``[effective, requested]``,
    which is *empty* whenever ``ratio_floor > requested`` — identical
    re-submitted frames always missed and re-executed.
    """

    def test_resubmitted_frame_above_floor_is_cache_served(self):
        svc = TaskService(tenants=("premium:name='p'",))  # floor 0.7
        args = {"blocks": 6, "samples": 400, "seed": 7}
        r1 = svc.submit(
            JobRequest(tenant="p", kernel="mc-pi", args=args, ratio=0.5)
        )
        svc.flush()
        assert r1.status == "executed"
        # The floor lifts the served ratio above the request.
        assert r1.ratio_served == pytest.approx(0.7)

        r2 = svc.submit(
            JobRequest(tenant="p", kernel="mc-pi", args=args, ratio=0.5)
        )
        svc.flush()
        assert r2.served_from_cache, r2.status
        assert r2.energy_j == 0.0
        assert r2.output == r1.output
        svc.close()

    def test_resubmission_at_floor_exactly_still_hits(self):
        svc = TaskService(tenants=("standard:name='s'",))  # floor 0.3
        args = {"blocks": 4, "samples": 300, "seed": 1}
        r1 = svc.submit(
            JobRequest(tenant="s", kernel="mc-pi", args=args, ratio=0.3)
        )
        svc.flush()
        assert r1.status == "executed"
        r2 = svc.submit(
            JobRequest(tenant="s", kernel="mc-pi", args=args, ratio=0.3)
        )
        svc.flush()
        assert r2.status == "cached"
        svc.close()
