"""Servable kernels: registry, digests, plans, combine and quality."""

import numpy as np
import pytest

from repro.registry import available
from repro.runtime.errors import ConfigError
from repro.serve import get_servable, servable_names


class TestRegistry:
    def test_builtins_registered(self):
        assert {"sobel", "mc-pi", "jacobi", "kmeans", "dct"} <= set(
            servable_names()
        )
        assert "sobel" in available("servable")

    def test_alias(self):
        assert get_servable("pi").name == "mc-pi"

    def test_unknown_raises(self):
        from repro.runtime.errors import RegistryError

        with pytest.raises(RegistryError, match="unknown servable"):
            get_servable("nope")


class TestDigests:
    def test_digest_stable_and_canonical(self):
        kernel = get_servable("sobel")
        assert kernel.digest({"size": 64, "seed": 2015}) == kernel.digest(
            {"seed": 2015, "size": 64}
        )
        # Defaults fill in: {} == the default argument set.
        assert kernel.digest(None) == kernel.digest(
            {"size": 64, "seed": 2015}
        )

    def test_digest_separates_args(self):
        kernel = get_servable("sobel")
        assert kernel.digest({"size": 64}) != kernel.digest({"size": 32})

    def test_bad_args_rejected(self):
        kernel = get_servable("sobel")
        with pytest.raises(ConfigError, match="size"):
            kernel.canonical_args({"size": 4})
        with pytest.raises(ConfigError, match="size"):
            kernel.canonical_args({"size": "big"})
        with pytest.raises(ConfigError, match="blocks"):
            get_servable("mc-pi").canonical_args({"blocks": 0})


class TestSobelPlan:
    def test_plan_covers_interior_rows(self):
        kernel = get_servable("sobel")
        plan = kernel.plan({"size": 32})
        assert plan.n_tasks == 30
        assert plan.approxfun is not None
        assert plan.cost.accurate > plan.cost.approximate > 0

    def test_plan_executes_to_reference(self):
        kernel = get_servable("sobel")
        args = {"size": 16, "seed": 3}
        plan = kernel.plan(args)
        results = [plan.fn(*a) for a in plan.args_list]
        output = kernel.combine(args, results)
        np.testing.assert_array_equal(output, kernel.reference(args))
        assert kernel.quality(kernel.reference(args), output) == 0.0

    def test_dropped_rows_degrade_quality(self):
        kernel = get_servable("sobel")
        args = {"size": 16, "seed": 3}
        plan = kernel.plan(args)
        results = [plan.fn(*a) for a in plan.args_list]
        results[3] = None  # a dropped task contributes nothing
        output = kernel.combine(args, results)
        assert kernel.quality(kernel.reference(args), output) > 0.0


class TestMcPiPlan:
    def test_reference_close_to_pi(self):
        kernel = get_servable("mc-pi")
        estimate = kernel.reference({"blocks": 16, "samples": 4000})
        assert estimate == pytest.approx(np.pi, abs=0.05)

    def test_combine_renormalizes_over_surviving_blocks(self):
        kernel = get_servable("mc-pi")
        args = {"blocks": 8, "samples": 1000}
        plan = kernel.plan(args)
        full = [plan.fn(*a) for a in plan.args_list]
        dropped = list(full)
        dropped[1] = dropped[5] = None
        partial = kernel.combine(args, dropped)
        # Still a pi estimate, just noisier.
        assert partial == pytest.approx(np.pi, abs=0.2)
        assert kernel.quality(
            kernel.combine(args, full), partial
        ) < 0.1

    def test_empty_results_do_not_divide_by_zero(self):
        kernel = get_servable("mc-pi")
        assert kernel.combine({"blocks": 2}, [None, None]) == 0.0

    def test_significances_stay_decidable(self):
        # Never 0.0/1.0: forced values would bypass the policy.
        kernel = get_servable("mc-pi")
        plan = kernel.plan({"blocks": 32, "samples": 64})
        sigs = [plan.significance(*a) for a in plan.args_list]
        assert all(0.0 < s < 1.0 for s in sigs)
        assert len(set(sigs)) > 1


class TestJacobiPlan:
    def test_digest_stable(self):
        kernel = get_servable("jacobi")
        assert kernel.digest({"n": 128, "chunk": 32}) == kernel.digest(
            {"chunk": 32, "n": 128, "seed": 2015}
        )

    def test_block_count(self):
        kernel = get_servable("jacobi")
        plan = kernel.plan({"n": 128, "chunk": 32})
        assert plan.n_tasks == 4
        assert plan.approxfun is None  # D-mode: drop, don't approximate
        assert plan.cost.accurate > 0

    def test_full_plan_matches_reference(self):
        kernel = get_servable("jacobi")
        args = {"n": 96, "chunk": 24, "seed": 5}
        plan = kernel.plan(args)
        results = [plan.fn(*a) for a in plan.args_list]
        output = kernel.combine(args, results)
        assert kernel.quality(kernel.reference(args), output) == 0.0

    def test_dropped_block_degrades_not_corrupts(self):
        kernel = get_servable("jacobi")
        args = {"n": 96, "chunk": 24, "seed": 5}
        plan = kernel.plan(args)
        results = [plan.fn(*a) for a in plan.args_list]
        results[2] = None
        output = kernel.combine(args, results)
        quality = kernel.quality(kernel.reference(args), output)
        assert 0.0 < quality < 1.0
        assert np.all(np.isfinite(output))

    def test_chunk_larger_than_n_rejected(self):
        kernel = get_servable("jacobi")
        with pytest.raises(ConfigError, match="chunk"):
            kernel.canonical_args({"n": 32, "chunk": 64})


class TestKmeansPlan:
    def test_digest_stable(self):
        kernel = get_servable("kmeans")
        assert kernel.digest({"points": 512, "k": 4}) == kernel.digest(
            {"k": 4, "points": 512}
        )

    def test_plan_shape(self):
        kernel = get_servable("kmeans")
        plan = kernel.plan({"points": 512, "k": 4, "chunk": 128})
        assert plan.n_tasks == 4
        assert plan.approxfun is None
        sigs = [plan.significance(*a) for a in plan.args_list]
        assert all(0.0 < s < 1.0 for s in sigs)

    def test_full_plan_matches_reference(self):
        kernel = get_servable("kmeans")
        args = {"points": 512, "k": 4, "dims": 4, "seed": 9}
        plan = kernel.plan(args)
        results = [plan.fn(*a) for a in plan.args_list]
        output = kernel.combine(args, results)
        assert kernel.quality(kernel.reference(args), output) == 0.0

    def test_dropped_chunks_keep_centroids_finite(self):
        kernel = get_servable("kmeans")
        args = {"points": 512, "k": 4, "dims": 4, "seed": 9}
        plan = kernel.plan(args)
        results = [plan.fn(*a) for a in plan.args_list]
        results[0] = results[1] = None  # half the votes lost
        output = kernel.combine(args, results)
        assert np.all(np.isfinite(output))
        assert kernel.quality(kernel.reference(args), output) < 1.0

    def test_more_clusters_than_points_rejected(self):
        kernel = get_servable("kmeans")
        with pytest.raises(ConfigError, match="k"):
            kernel.canonical_args({"points": 64, "k": 65})


class TestDctPlan:
    def test_digest_stable(self):
        kernel = get_servable("dct")
        assert kernel.digest({"size": 32}) == kernel.digest(
            {"size": 32, "seed": 2015}
        )
        assert kernel.digest({"size": 32}) != kernel.digest(
            {"size": 32, "seed": 7}
        )

    def test_plan_shape(self):
        from repro.kernels.dct import N_BANDS

        kernel = get_servable("dct")
        plan = kernel.plan({"size": 32})
        assert plan.n_tasks == N_BANDS
        assert plan.approxfun is None  # D mode: drop, don't approximate
        sigs = [plan.significance(*a) for a in plan.args_list]
        assert all(0.0 < s < 1.0 for s in sigs)
        # Low frequencies matter more: significance strictly decreases.
        assert sigs == sorted(sigs, reverse=True)
        costs = [plan.cost(*a).accurate for a in plan.args_list]
        assert all(c > 0 for c in costs)
        # The middle diagonal (k=7) has the most coefficients.
        assert costs[7] == max(costs)

    def test_size_must_be_block_multiple(self):
        kernel = get_servable("dct")
        with pytest.raises(ConfigError, match="multiple"):
            kernel.canonical_args({"size": 36})

    def test_full_plan_matches_reference(self):
        kernel = get_servable("dct")
        args = {"size": 32, "seed": 4}
        plan = kernel.plan(args)
        results = [plan.fn(*a) for a in plan.args_list]
        output = kernel.combine(args, results)
        assert kernel.quality(kernel.reference(args), output) == 0.0

    def test_dropped_high_bands_degrade_gracefully(self):
        kernel = get_servable("dct")
        args = {"size": 32, "seed": 4}
        plan = kernel.plan(args)
        results = [plan.fn(*a) for a in plan.args_list]
        for k in range(4, len(results)):  # truncate the zigzag tail
            results[k] = None
        output = kernel.combine(args, results)
        quality = kernel.quality(kernel.reference(args), output)
        assert 0.0 < quality < 0.5
        assert output.dtype == np.uint8

    def test_dropping_low_bands_hurts_more(self):
        kernel = get_servable("dct")
        args = {"size": 32, "seed": 4}
        plan = kernel.plan(args)
        results = [plan.fn(*a) for a in plan.args_list]
        ref = kernel.reference(args)
        lo = list(results)
        lo[0] = lo[1] = None
        hi = list(results)
        hi[-1] = hi[-2] = None
        assert kernel.quality(ref, kernel.combine(args, lo)) > (
            kernel.quality(ref, kernel.combine(args, hi))
        )

    def test_served_end_to_end(self):
        from repro.config import RuntimeConfig
        from repro.serve.server import TaskService

        cfg = RuntimeConfig(policy="gtb-max", n_workers=4)
        with TaskService(cfg) as svc:
            report = svc.submit(
                {
                    "job_id": "d1",
                    "tenant": "standard",
                    "kernel": "dct",
                    "args": {"size": 32},
                    "ratio": 0.6,
                }
            )
            svc.flush()
        assert report.status == "executed"
        assert report.tasks_total == 15
        assert report.dropped > 0  # D mode sheds the tail bands
        assert report.quality is not None and report.quality < 0.5


class TestFluidanimatePlan:
    def test_registered_with_alias(self):
        kernel = get_servable("fluidanimate")
        assert kernel.name == "fluidanimate"
        assert get_servable("fluid").name == "fluidanimate"
        assert "fluidanimate" in servable_names()

    def test_digest_stable_and_canonical(self):
        kernel = get_servable("fluidanimate")
        assert kernel.digest({"particles": 192}) == kernel.digest(None)
        assert kernel.digest({"particles": 64}) != kernel.digest(
            {"particles": 128}
        )

    def test_plan_shape(self):
        kernel = get_servable("fluidanimate")
        plan = kernel.plan({"particles": 128, "chunk": 32})
        assert plan.n_tasks == 4
        assert plan.approxfun is not None  # A mode: ballistic body
        assert plan.cost.accurate > plan.cost.approximate > 0

    def test_chunk_larger_than_particles_rejected(self):
        kernel = get_servable("fluidanimate")
        with pytest.raises(ConfigError):
            kernel.canonical_args({"particles": 16, "chunk": 64})

    def test_full_plan_matches_reference(self):
        kernel = get_servable("fluidanimate")
        args = {"particles": 96, "chunk": 24, "seed": 3}
        plan = kernel.plan(args)
        results = [plan.fn(*a) for a in plan.args_list]
        output = kernel.combine(args, results)
        ref = kernel.reference(args)
        np.testing.assert_allclose(output, ref)
        assert kernel.quality(ref, output) == pytest.approx(0.0)

    def test_ballistic_chunks_degrade_not_corrupt(self):
        kernel = get_servable("fluidanimate")
        args = {"particles": 96, "chunk": 24, "seed": 3}
        plan = kernel.plan(args)
        results = [
            plan.approxfun(*a) if i % 2 else plan.fn(*a)
            for i, a in enumerate(plan.args_list)
        ]
        output = kernel.combine(args, results)
        ref = kernel.reference(args)
        q = kernel.quality(ref, output)
        assert 0.0 < q < 0.5
        assert np.isfinite(output).all()

    def test_dropped_chunk_keeps_previous_positions(self):
        kernel = get_servable("fluidanimate")
        args = {"particles": 96, "chunk": 24, "seed": 3}
        plan = kernel.plan(args)
        results = [plan.fn(*a) for a in plan.args_list]
        results[1] = None  # omission fault: stale, not wrong
        output = kernel.combine(args, results)
        assert np.isfinite(output).all()
        q = kernel.quality(kernel.reference(args), output)
        assert 0.0 < q < 1.0

    def test_served_end_to_end(self):
        from repro.config import RuntimeConfig
        from repro.serve.server import TaskService

        cfg = RuntimeConfig(policy="gtb-max", n_workers=4)
        with TaskService(cfg) as svc:
            full = svc.submit(
                {
                    "job_id": "f1",
                    "tenant": "standard",
                    "kernel": "fluidanimate",
                    "args": {"particles": 128, "chunk": 16},
                    "ratio": 1.0,
                }
            )
            svc.flush()
            approx = svc.submit(
                {
                    "job_id": "f2",
                    "tenant": "standard",
                    "kernel": "fluidanimate",
                    "args": {"particles": 128, "chunk": 16, "seed": 9},
                    "ratio": 0.3,
                }
            )
            svc.flush()
        assert full.status == "executed"
        assert full.quality == pytest.approx(0.0)
        assert approx.status == "executed"
        assert approx.approximate > 0  # A mode, not D mode
        assert approx.dropped == 0
        assert approx.quality is not None and approx.quality < 0.5

    def test_all_six_paper_kernels_servable(self):
        names = set(servable_names())
        assert {
            "sobel", "mc-pi", "jacobi", "kmeans", "dct", "fluidanimate"
        } <= names
