"""The asyncio JSON-lines gateway and its sync/async clients."""

import asyncio
import json
import threading

import pytest

from repro.config import RuntimeConfig
from repro.serve import (
    AsyncServeClient,
    ServeClient,
    ServeClientError,
    ServeServer,
    TaskService,
)


@pytest.fixture()
def gateway():
    """A live TCP gateway on an ephemeral port, torn down after."""
    service = TaskService(
        RuntimeConfig(policy="gtb-max", n_workers=4),
        tenants=(
            "standard:name='t1'",
            "free:name='t2',budget_j=0.0004",
        ),
        max_batch=4,
    )
    server = ServeServer(service, batch_window_s=0.002)
    loop = asyncio.new_event_loop()

    def pump() -> None:
        asyncio.set_event_loop(loop)
        loop.run_forever()

    thread = threading.Thread(target=pump, daemon=True)
    thread.start()
    host, port = asyncio.run_coroutine_threadsafe(
        server.start(), loop
    ).result(30)
    try:
        yield host, port, service, loop
    finally:
        asyncio.run_coroutine_threadsafe(server.close(), loop).result(30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        service.close()


class TestSyncClient:
    def test_ping(self, gateway):
        host, port, _, _ = gateway
        with ServeClient(host, port) as client:
            assert client.ping()

    def test_submit_executes_and_reports(self, gateway):
        host, port, _, _ = gateway
        with ServeClient(host, port) as client:
            job = client.submit(
                "t1", "mc-pi", {"blocks": 6, "samples": 400}, ratio=0.9
            )
            assert job["status"] == "executed"
            assert job["code"] == 200
            assert job["result"] == pytest.approx(3.14, abs=0.4)
            assert job["wall_latency_s"] > 0

    def test_budget_shedding_over_the_wire(self, gateway):
        host, port, _, _ = gateway
        with ServeClient(host, port) as client:
            outcomes = [
                client.submit("t2", "sobel", {"size": 32})["status"]
                for _ in range(4)
            ]
            assert outcomes[0] == "executed"
            # The tiny budget forces cache/shedding afterwards.
            assert set(outcomes[1:]) <= {
                "cached", "cached-degraded", "rejected-budget"
            }

    def test_rejection_is_not_a_transport_error(self, gateway):
        host, port, _, _ = gateway
        with ServeClient(host, port) as client:
            job = client.submit("nobody", "sobel")
            assert job["status"] == "rejected-unknown-tenant"
            assert job["code"] == 404

    def test_stats(self, gateway):
        host, port, _, _ = gateway
        with ServeClient(host, port) as client:
            client.submit("t1", "sobel", {"size": 32})
            stats = client.stats()
            assert set(stats["tenants"]) == {"t1", "t2"}
            assert stats["rounds"] >= 1
            assert "cache" in stats

    def test_connect_refused_raises_client_error(self):
        with pytest.raises(ServeClientError, match="connect"):
            ServeClient("127.0.0.1", 1, timeout_s=0.5)

    def test_malformed_op_reports_error(self, gateway):
        host, port, _, _ = gateway
        client = ServeClient(host, port)
        try:
            response = client._roundtrip({"op": "explode"})
            assert response["ok"] is False
            assert "unknown op" in response["error"]
            with pytest.raises(ServeClientError, match="gateway error"):
                client.submit("t1", "sobel", ratio=7.0)  # invalid ratio
        finally:
            client.close()


class TestAsyncClient:
    def test_async_submit_and_stats(self, gateway):
        host, port, _, loop = gateway

        async def drive():
            async with AsyncServeClient(host, port) as client:
                assert await client.ping()
                job = await client.submit(
                    "t1", "sobel", {"size": 32}, ratio=1.0
                )
                stats = await client.stats()
                return job, stats

        job, stats = asyncio.run_coroutine_threadsafe(
            drive(), loop
        ).result(60)
        assert job["status"] in ("executed", "cached")
        assert job["code"] == 200
        assert stats["tenants"]["t1"]["executed"] >= 1


class TestWireProtocol:
    def test_concurrent_submissions_batch_into_rounds(self, gateway):
        host, port, service, loop = gateway

        async def burst():
            clients = []
            for _ in range(3):
                c = AsyncServeClient(host, port)
                await c.connect()
                clients.append(c)
            jobs = await asyncio.gather(
                *(
                    c.submit(
                        "t1", "sobel", {"size": 32, "seed": i}
                    )
                    for i, c in enumerate(clients)
                )
            )
            for c in clients:
                await c.close()
            return jobs

        jobs = asyncio.run_coroutine_threadsafe(burst(), loop).result(60)
        assert all(j["code"] == 200 for j in jobs)
        assert {j["status"] for j in jobs} <= {"executed", "coalesced"}

    def test_raw_frame_is_json_line(self, gateway):
        import socket

        host, port, _, _ = gateway
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b'{"op": "ping"}\n')
            line = sock.makefile("rb").readline()
        assert json.loads(line) == {"ok": True, "pong": True}


class TestJobShapesOverWire:
    def test_streaming_frames_over_tcp(self, gateway):
        host, port, _, _ = gateway
        with ServeClient(host, port) as client:
            jobs = [
                client.submit(
                    "t1",
                    "sobel",
                    {"size": 24, "seed": 100 + i},
                    stream="cam0",
                )
                for i in range(3)
            ]
            assert [j["frame"] for j in jobs] == [0, 1, 2]
            assert all(j["stream"] == "cam0" for j in jobs)
            assert all(j["code"] == 200 for j in jobs)
            stats = client.stats()
            assert stats["streams"]["t1/cam0"]["next_frame"] == 3

    def test_out_of_order_frame_is_409_over_tcp(self, gateway):
        host, port, _, _ = gateway
        with ServeClient(host, port) as client:
            client.submit(
                "t1", "sobel", {"size": 24, "seed": 1},
                stream="cam1", frame=0,
            )
            bad = client.submit(
                "t1", "sobel", {"size": 24, "seed": 2},
                stream="cam1", frame=5,
            )
            assert bad["status"] == "rejected-out-of-order"
            assert bad["code"] == 409

    def test_anytime_job_over_tcp(self, gateway):
        host, port, _, _ = gateway
        with ServeClient(host, port) as client:
            job = client.submit(
                "t1",
                "jacobi",
                {"n": 64, "chunk": 8, "seed": 3},
                ratio=1.0,
                rounds=4,
            )
            assert job["status"] == "executed"
            assert job["rounds_run"] == 4
            q = job["round_quality"]
            assert len(q) == 4
            assert all(
                q[i + 1] <= q[i] + 1e-6 for i in range(len(q) - 1)
            )

    def test_anytime_deadline_over_tcp(self, gateway):
        host, port, _, _ = gateway
        with ServeClient(host, port) as client:
            job = client.submit(
                "t1",
                "jacobi",
                {"n": 64, "chunk": 8, "seed": 3},
                rounds=10,
                deadline_s=1e-9,
            )
            assert job["status"] == "executed"
            assert job["rounds_run"] < 10
            assert "deadline" in job["detail"]

    def test_anytime_on_batch_kernel_is_400_over_tcp(self, gateway):
        host, port, _, _ = gateway
        with ServeClient(host, port) as client:
            job = client.submit("t1", "sobel", {"size": 24}, rounds=3)
            assert job["status"] == "rejected-not-anytime"
            assert job["code"] == 400
