"""Deterministic-timer tests for the bench sampling primitives."""

import pytest

from repro.bench.timers import BenchSample, sample


class FakeTimer:
    """Scripted clock: returns the given readings in order."""

    def __init__(self, *readings: float):
        self._readings = list(readings)
        self.calls = 0

    def __call__(self) -> float:
        self.calls += 1
        return self._readings.pop(0)


class SteppingTimer:
    """Clock advancing by a fixed step per reading."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        t = self.now
        self.now += self.step
        return t


class TestSample:
    def test_single_repeat(self):
        s = sample(lambda: None, repeats=1, timer=FakeTimer(10.0, 12.5))
        assert s.best_s == 2.5
        assert s.mean_s == 2.5
        assert s.repeats == 1

    def test_best_is_minimum_mean_is_average(self):
        # Three repeats: durations 4, 1, 1 -> best 1, mean 2.
        timer = FakeTimer(0.0, 4.0, 10.0, 11.0, 20.0, 21.0)
        s = sample(lambda: None, repeats=3, timer=timer)
        assert s.best_s == 1.0
        assert s.mean_s == pytest.approx(2.0)

    def test_timer_called_twice_per_repeat(self):
        timer = SteppingTimer()
        sample(lambda: None, repeats=4, timer=timer)
        assert timer.now == 8.0

    def test_setup_runs_outside_timed_region(self):
        log = []
        timer = SteppingTimer()

        def setup():
            log.append(("setup", timer.now))

        def fn():
            log.append(("fn", timer.now))

        sample(fn, repeats=2, timer=timer, setup=setup)
        # setup sees the clock *before* the repeat's t0 reading.
        assert log == [
            ("setup", 0.0),
            ("fn", 1.0),
            ("setup", 2.0),
            ("fn", 3.0),
        ]

    def test_fn_really_called_per_repeat(self):
        calls = []
        sample(lambda: calls.append(1), repeats=3, timer=SteppingTimer())
        assert len(calls) == 3

    def test_backwards_timer_rejected(self):
        with pytest.raises(ValueError, match="backwards"):
            sample(lambda: None, repeats=1, timer=FakeTimer(5.0, 4.0))

    def test_zero_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            sample(lambda: None, repeats=0, timer=SteppingTimer())


class TestBenchSample:
    def test_validation(self):
        with pytest.raises(ValueError):
            BenchSample(best_s=1.0, mean_s=1.0, repeats=0)
        with pytest.raises(ValueError):
            BenchSample(best_s=-1.0, mean_s=1.0, repeats=1)

    def test_frozen(self):
        s = BenchSample(best_s=1.0, mean_s=2.0, repeats=3)
        with pytest.raises(AttributeError):
            s.best_s = 0.0
