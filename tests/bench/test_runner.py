"""End-to-end tests of the bench runner and its CLI wiring.

The injectable timer makes the whole pipeline deterministic: with a
stepping fake clock every timed region lasts exactly one virtual second,
so metric values are exact functions of the workload sizes.
"""

import json

import pytest

from repro.bench import BenchConfig, run_bench
from repro.bench.report import SCHEMA, Metric
from repro.bench.workloads import CALIBRATION_OPS
from repro.harness.__main__ import main
from repro.runtime.errors import ConfigError


class SteppingTimer:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        t = self.now
        self.now += 1.0
        return t


class TestRunBench:
    def test_deterministic_metrics_with_fake_timer(self):
        report = run_bench(
            BenchConfig(
                small=True,
                repeats=1,
                workloads=("spawn_overhead",),
                timer=SteppingTimer(),
            )
        )
        # Every timed region lasts exactly 1 fake second.
        assert report.calibration_ops_per_s == CALIBRATION_OPS
        us = report.metrics["spawn_overhead.us_per_task"]
        assert us.value == pytest.approx(1.0 / 400 * 1e6)
        assert not us.higher_is_better
        kop = report.metrics["spawn_overhead.kop_per_task"]
        assert kop.value == pytest.approx(CALIBRATION_OPS / 400 / 1e3)
        assert kop.gated

    def test_all_workloads_report_expected_metrics(self):
        report = run_bench(BenchConfig(small=True, repeats=1))
        names = set(report.metrics)
        for expected in (
            "scheduler_throughput.accurate.tasks_per_s",
            "scheduler_throughput.gtb.tasks_per_mop",
            "scheduler_throughput.lqh.tasks_per_mop",
            "spawn_overhead.us_per_task",
            "spawn_many.us_per_task",
            "spawn_many.speedup_vs_loop",
            "backend_matrix.simulated.tasks_per_s",
            "backend_matrix.threaded.tasks_per_s",
            "backend_matrix.process.tasks_per_s",
            "payload_bandwidth.bytes_not_copied_frac",
            "payload_bandwidth.shm_speedup_min1_5x",
            "end_to_end.sobel_gtb_s",
            "governor_convergence.budget_within_10pct",
            "serve_throughput.jobs_per_s",
            "serve_throughput.p95_latency_ms",
            "serve_throughput.jobs_per_mop",
            "obs_overhead.gate",
            "obs_overhead.throughput_ratio",
            "compile_specialization.serve_speedup_min1_15x",
            "compile_specialization.e2e_sobel_speedup_min1_2x",
            "compile_specialization.profile_overhead_lt_5pct",
            "sweep_pool.reuse_speedup",
            "sweep_pool.reuse_speedup_min2x",
            "serve_cluster.speedup_4shard",
            "serve_cluster.speedup_8shard",
            "serve_cluster.parity_within_2pct",
            "serve_cluster.isolated",
            "serve_scenarios.streaming_frames_per_s",
            "serve_scenarios.streaming_frames_per_mop",
            "serve_scenarios.anytime_monotone",
            "serve_scenarios.fault_degraded_not_wrong",
        ):
            assert expected in names
        gated = [n for n, m in report.metrics.items() if m.gated]
        # One normalized twin per throughput policy + spawn_overhead +
        # end_to_end, plus spawn_many's kop/task and loop-speedup pair,
        # plus the governor probe's budget-bar and steps-to-converge,
        # plus the serving layer's jobs/Mop and the sweep-pool capped
        # reuse-speedup bar, plus the cluster probe's four bars (two
        # capped speedups, ledger parity, isolation), plus the data
        # plane's bytes-not-copied fraction and capped shm speedup,
        # plus the compile tier's two capped speedups and the shallow
        # profiler's <5% overhead bar, plus the job-shape probe's
        # frames/Mop and its two conformance booleans, plus the
        # telemetry plane's capped ON/OFF throughput-ratio gate.
        assert len(gated) == 24

    def test_baseline_comparison_attached(self, tmp_path):
        base = run_bench(
            BenchConfig(
                small=True,
                repeats=1,
                workloads=("spawn_overhead",),
                timer=SteppingTimer(),
            )
        )
        path = base.write(tmp_path / "base.json")
        report = run_bench(
            BenchConfig(
                small=True,
                repeats=1,
                workloads=("spawn_overhead",),
                timer=SteppingTimer(),
                baselines={"baseline": path},
            )
        )
        cmp_ = report.comparisons["baseline"]
        # Identical fake clocks -> identical metrics -> speedup 1.0.
        assert cmp_.ok
        for row in cmp_.metrics:
            assert row.speedup == pytest.approx(1.0)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError, match="unknown bench workloads"):
            BenchConfig(workloads=("nope",))

    def test_bad_repeats_rejected(self):
        with pytest.raises(ConfigError, match="repeats"):
            BenchConfig(repeats=0)


class TestCli:
    def test_bench_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_runtime.json"
        code = main(
            [
                "bench",
                "--small",
                "--repeats", "1",
                "--bench-workload", "spawn_overhead",
                "--no-baseline",
                "--json", str(out),
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["schema"] == SCHEMA
        assert "spawn_overhead.us_per_task" in data["metrics"]
        assert "spawn_overhead" in capsys.readouterr().out

    def test_bench_regression_exits_nonzero(self, tmp_path, capsys):
        # A baseline claiming absurdly better numbers must trip the gate.
        from repro.bench.report import BenchReport

        impossible = BenchReport(
            small=True,
            repeats=1,
            n_workers=16,
            calibration_ops_per_s=1e9,
            metrics={
                "spawn_overhead.kop_per_task": Metric(
                    1e-9, "kop/task", higher_is_better=False, gated=True
                ),
            },
        )
        base = impossible.write(tmp_path / "impossible.json")
        code = main(
            [
                "bench",
                "--small",
                "--repeats", "1",
                "--bench-workload", "spawn_overhead",
                "--baseline", str(base),
                "--json", str(tmp_path / "out.json"),
            ]
        )
        assert code == 1
        assert "PERF REGRESSION" in capsys.readouterr().err

    def test_bench_update_baseline(self, tmp_path):
        target = tmp_path / "baseline.json"
        code = main(
            [
                "bench",
                "--small",
                "--repeats", "1",
                "--bench-workload", "spawn_overhead",
                "--no-baseline",
                "--baseline", str(target),
                "--json", str(tmp_path / "out.json"),
                "--update-baseline",
            ]
        )
        assert code == 0
        assert json.loads(target.read_text())["schema"] == SCHEMA


class TestBaselineSizeGuard:
    def test_size_mismatched_gate_baseline_rejected(self, tmp_path):
        from repro.bench.report import BenchReport

        full_baseline = BenchReport(
            small=False,
            repeats=1,
            n_workers=16,
            calibration_ops_per_s=1e8,
            metrics={
                "spawn_overhead.kop_per_task": Metric(
                    0.1, "kop/task", higher_is_better=False, gated=True
                ),
            },
        ).write(tmp_path / "full.json")
        with pytest.raises(ConfigError, match="other workload size"):
            main(
                [
                    "bench",
                    "--small",
                    "--repeats", "1",
                    "--bench-workload", "spawn_overhead",
                    "--baseline", str(full_baseline),
                    "--json", str(tmp_path / "out.json"),
                ]
            )

    def test_size_matched_gate_baseline_accepted(self, tmp_path):
        base = run_bench(
            BenchConfig(
                small=True,
                repeats=1,
                workloads=("spawn_overhead",),
                timer=SteppingTimer(),
            )
        ).write(tmp_path / "small.json")
        code = main(
            [
                "bench",
                "--small",
                "--repeats", "1",
                "--bench-workload", "spawn_overhead",
                "--baseline", str(base),
                "--json", str(tmp_path / "out.json"),
            ]
        )
        assert code in (0, 1)  # gate ran; verdict depends on host speed
