"""Tests for the bench report schema and baseline-comparison logic."""

import json

import pytest

from repro.bench.report import (
    SCHEMA,
    BenchReport,
    Metric,
    compare_to_baseline,
    format_metrics_table,
    load_report,
    merge_metrics,
)
from repro.runtime.errors import ConfigError


def mk_report(**metrics) -> BenchReport:
    return BenchReport(
        small=True,
        repeats=2,
        n_workers=16,
        calibration_ops_per_s=1e8,
        metrics=dict(metrics),
    )


HIGHER = dict(unit="tasks/s", higher_is_better=True)
LOWER = dict(unit="s", higher_is_better=False)


class TestMetric:
    def test_round_trip(self):
        m = Metric(42.5, "tasks/s", higher_is_better=True, gated=True)
        assert Metric.from_dict(m.to_dict()) == m

    def test_from_dict_defaults(self):
        m = Metric.from_dict({"value": 3})
        assert m.value == 3.0
        assert not m.higher_is_better and not m.gated


class TestStableJson:
    def test_schema_tag_and_shape(self):
        data = json.loads(mk_report(x=Metric(1.0, **HIGHER)).to_json())
        assert data["schema"] == SCHEMA
        assert data["config"] == {
            "small": True, "repeats": 2, "n_workers": 16,
        }
        assert "x" in data["metrics"]

    def test_serialization_is_deterministic(self):
        a = mk_report(b=Metric(2.0, **LOWER), a=Metric(1.0, **HIGHER))
        b = mk_report(a=Metric(1.0, **HIGHER), b=Metric(2.0, **LOWER))
        assert a.to_json() == b.to_json()

    def test_newline_terminated(self):
        assert mk_report().to_json().endswith("}\n")

    def test_write_and_load_round_trip(self, tmp_path):
        report = mk_report(
            m1=Metric(123.456789, **HIGHER),
            m2=Metric(0.5, unit="s", higher_is_better=False, gated=True),
        )
        path = report.write(tmp_path / "bench.json")
        loaded = load_report(path)
        assert set(loaded) == {"m1", "m2"}
        assert loaded["m2"].gated and not loaded["m1"].gated
        assert loaded["m1"].value == pytest.approx(123.457, rel=1e-4)

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/v9", "metrics": {}}))
        with pytest.raises(ConfigError, match="schema"):
            load_report(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            load_report(tmp_path / "absent.json")

    def test_load_rejects_missing_metrics(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": SCHEMA}))
        with pytest.raises(ConfigError, match="metrics"):
            load_report(path)


class TestCompare:
    def test_improvement_higher_is_better(self):
        cmp_ = compare_to_baseline(
            {"t": Metric(200.0, gated=True, **HIGHER)},
            {"t": Metric(100.0, gated=True, **HIGHER)},
        )
        (row,) = cmp_.metrics
        assert row.speedup == pytest.approx(2.0)
        assert not row.regressed and cmp_.ok

    def test_improvement_lower_is_better(self):
        cmp_ = compare_to_baseline(
            {"t": Metric(0.5, gated=True, **LOWER)},
            {"t": Metric(1.0, gated=True, **LOWER)},
        )
        assert cmp_.metrics[0].speedup == pytest.approx(2.0)
        assert cmp_.ok

    def test_regression_beyond_tolerance_fails(self):
        cmp_ = compare_to_baseline(
            {"t": Metric(70.0, gated=True, **HIGHER)},
            {"t": Metric(100.0, gated=True, **HIGHER)},
            tolerance=0.25,
        )
        assert not cmp_.ok
        assert cmp_.regressions[0].name == "t"

    def test_regression_within_tolerance_passes(self):
        cmp_ = compare_to_baseline(
            {"t": Metric(80.0, gated=True, **HIGHER)},
            {"t": Metric(100.0, gated=True, **HIGHER)},
            tolerance=0.25,
        )
        assert cmp_.ok  # 0.80 >= 1 - 0.25

    def test_lower_is_better_regression(self):
        cmp_ = compare_to_baseline(
            {"t": Metric(2.0, gated=True, **LOWER)},
            {"t": Metric(1.0, gated=True, **LOWER)},
            tolerance=0.25,
        )
        assert not cmp_.ok

    def test_ungated_metric_never_regresses_by_default(self):
        cmp_ = compare_to_baseline(
            {"t": Metric(1.0, **HIGHER)},
            {"t": Metric(100.0, **HIGHER)},
        )
        assert cmp_.ok
        assert cmp_.metrics[0].speedup == pytest.approx(0.01)

    def test_gating_follows_the_baseline_flag(self):
        # The *baseline* decides gating, so un-gating a metric requires
        # touching the committed file, not the code under test.
        cmp_ = compare_to_baseline(
            {"t": Metric(1.0, **HIGHER)},
            {"t": Metric(100.0, gated=True, **HIGHER)},
        )
        assert not cmp_.ok

    def test_gated_only_off_gates_everything(self):
        cmp_ = compare_to_baseline(
            {"t": Metric(1.0, **HIGHER)},
            {"t": Metric(100.0, **HIGHER)},
            gated_only_regressions=False,
        )
        assert not cmp_.ok

    def test_disjoint_metrics_ignored(self):
        cmp_ = compare_to_baseline(
            {"new": Metric(1.0, gated=True, **HIGHER)},
            {"old": Metric(100.0, gated=True, **HIGHER)},
        )
        assert cmp_.metrics == () and cmp_.ok

    def test_degenerate_baseline_skipped(self):
        cmp_ = compare_to_baseline(
            {"t": Metric(1.0, gated=True, **HIGHER)},
            {"t": Metric(0.0, gated=True, **HIGHER)},
        )
        assert cmp_.metrics == ()

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigError, match="tolerance"):
            compare_to_baseline({}, {}, tolerance=-0.1)

    def test_summary_mentions_regressions(self):
        cmp_ = compare_to_baseline(
            {"t": Metric(1.0, gated=True, **HIGHER)},
            {"t": Metric(100.0, gated=True, **HIGHER)},
            label="seed",
        )
        text = cmp_.summary()
        assert "REGRESSED" in text and "[seed]" in text


class TestHelpers:
    def test_merge_metrics_unions(self):
        merged = merge_metrics(
            [{"a": Metric(1.0, **HIGHER)}, {"b": Metric(2.0, **LOWER)}]
        )
        assert set(merged) == {"a", "b"}

    def test_merge_metrics_rejects_duplicates(self):
        with pytest.raises(ConfigError, match="duplicate"):
            merge_metrics(
                [{"a": Metric(1.0, **HIGHER)}, {"a": Metric(2.0, **LOWER)}]
            )

    def test_format_table_lists_all_metrics(self):
        text = format_metrics_table(
            {
                "a.fast": Metric(1.0, gated=True, **HIGHER),
                "b.slow": Metric(2.0, **LOWER),
            }
        )
        assert "a.fast" in text and "b.slow" in text
        assert "[gated]" in text

    def test_format_table_empty(self):
        assert "no metrics" in format_metrics_table({})
