"""The governor_convergence bench probe: gated control-quality metrics."""

from __future__ import annotations

from repro.bench.report import compare_to_baseline
from repro.bench.timers import default_timer
from repro.bench.workloads import WORKLOADS, bench_governor_convergence


class TestGovernorConvergenceProbe:
    def test_registered_in_workloads(self):
        assert WORKLOADS["governor_convergence"] is (
            bench_governor_convergence
        )

    def test_metrics_schema_and_gating(self):
        metrics = bench_governor_convergence(
            True, 1, default_timer, 1.0e8
        )
        assert set(metrics) == {
            "governor_convergence.budget_within_10pct",
            "governor_convergence.budget_error_pct",
            "governor_convergence.steps_to_converge",
            "governor_convergence.final_ratio",
            "governor_convergence.ticks",
        }
        gated = {n for n, m in metrics.items() if m.gated}
        assert gated == {
            "governor_convergence.budget_within_10pct",
            "governor_convergence.steps_to_converge",
        }

    def test_meets_the_acceptance_bar(self):
        metrics = bench_governor_convergence(
            True, 1, default_timer, 1.0e8
        )
        assert (
            metrics["governor_convergence.budget_within_10pct"].value
            == 1.0
        )
        from repro.bench.workloads import UNCONVERGED_STEPS

        steps = metrics["governor_convergence.steps_to_converge"].value
        assert steps != UNCONVERGED_STEPS
        assert steps <= metrics["governor_convergence.ticks"].value

    def test_deterministic_across_invocations(self):
        a = bench_governor_convergence(True, 1, default_timer, 1.0e8)
        b = bench_governor_convergence(True, 1, default_timer, 1.0e8)
        assert {n: m.value for n, m in a.items()} == {
            n: m.value for n, m in b.items()
        }

    def test_divergence_would_gate(self):
        """A budget miss flips the gated boolean and fails comparison."""
        good = bench_governor_convergence(True, 1, default_timer, 1.0e8)
        bad = dict(good)
        miss = good["governor_convergence.budget_within_10pct"]
        bad["governor_convergence.budget_within_10pct"] = type(miss)(
            0.0, miss.unit, miss.higher_is_better, miss.gated
        )
        comparison = compare_to_baseline(bad, good)
        assert not comparison.ok
        assert [m.name for m in comparison.regressions] == [
            "governor_convergence.budget_within_10pct"
        ]
