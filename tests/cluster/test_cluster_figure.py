"""fig-cluster: scaling, ledger parity, and isolation gates (small)."""

import pytest

from repro.cluster.figure import (
    PARITY_TOLERANCE,
    cluster_smoke_jobs,
    fig_cluster,
    run_cluster_scale,
)


@pytest.fixture(scope="module")
def fig():
    """One small fig-cluster run shared by the gate assertions."""
    return fig_cluster(small=True)


class TestSmokeWorkload:
    def test_two_tenants_distinct_seeds(self):
        jobs = cluster_smoke_jobs(5, small=True)
        assert len(jobs) == 10
        assert {j.tenant for j in jobs} == {"a", "b"}
        seeds = [j.args["seed"] for j in jobs]
        assert len(set(seeds)) == len(seeds)


class TestScaleRun:
    def test_single_run_shape(self):
        run = run_cluster_scale(2, 10, small=True)
        assert run["shards"] == 2
        assert run["ok"] == run["jobs"] == 20
        assert run["makespan_s"] > 0
        assert set(run["spread"]) == {0, 1}
        assert sum(run["spread"].values()) == 20


class TestGates:
    def test_scaling_gates(self, fig):
        # The ISSUE's acceptance bars on the deterministic virtual
        # timeline: >=3x jobs/s at 4 shards, >=5x at 8.
        assert fig.speedup(4) >= 3.0
        assert fig.speedup(8) >= 5.0

    def test_every_job_served_at_every_width(self, fig):
        for run in fig.scale_runs.values():
            assert run["ok"] == run["jobs"]
            assert all(n > 0 for n in run["spread"].values())

    def test_ledger_parity_within_band(self, fig):
        assert fig.parity_error <= PARITY_TOLERANCE
        assert fig.parity_ok

    def test_isolation_band(self, fig):
        assert fig.isolated
        assert fig.b_quality_delta == pytest.approx(0.0, abs=0.05)
        # A was actually squeezed by its 60% budget...
        assert 0.0 < fig.a_mean_served_ratio <= 1.0
        assert fig.a_budget_j < fig.a_solo_energy_j

    def test_render_mentions_verdicts(self, fig):
        text = fig.render()
        assert "ledger parity" in text
        assert "PASS" in text
        assert "isolation" in text
