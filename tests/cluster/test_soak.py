"""Soak: 500 mixed-shape jobs over live TCP against a 3-shard faulty
cluster — zero wrong answers, bounded tail latency, ledger parity.

The ISSUE 9 acceptance run: batch, streaming, and anytime traffic from
multiple tenants interleaved through one JSON-lines gateway whose
shards all run the deterministic omission-fault engine.  Everything the
PR claims has to hold at once here: frames stay ordered and are never
dropped, anytime curves come back well-formed, faults degrade rather
than corrupt, and cluster-wide energy accounting stays within 2%.
"""

import asyncio
import math
import threading

import pytest

from repro.cluster import ClusterService, ClusterSpec
from repro.config import RuntimeConfig
from repro.serve import ServeClient, ServeServer
from repro.serve.figure import percentile

N_JOBS = 500
FAULTY_ENGINE = "faulty:fault_rate=0.05,protect_threshold=0.7,seed=11"
LEDGER_PARITY = 0.02


@pytest.fixture(scope="module")
def soak_gateway():
    """A live TCP gateway over a 3-shard faulty cluster."""
    service = ClusterService(
        RuntimeConfig(
            policy="gtb-max", n_workers=4, engine=FAULTY_ENGINE
        ),
        tenants=(
            "standard:name='acme'",
            "premium:name='vip'",
            "free:name='hobby',budget_j=0.02,max_pending=1024",
        ),
        cluster=ClusterSpec(shards=3),
        max_batch=8,
    )
    server = ServeServer(service, batch_window_s=0.002)
    loop = asyncio.new_event_loop()

    def pump() -> None:
        asyncio.set_event_loop(loop)
        loop.run_forever()

    thread = threading.Thread(target=pump, daemon=True)
    thread.start()
    host, port = asyncio.run_coroutine_threadsafe(
        server.start(), loop
    ).result(30)
    try:
        yield host, port, service
    finally:
        asyncio.run_coroutine_threadsafe(server.close(), loop).result(30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        service.close()


def _mixed_job(client: ServeClient, i: int) -> dict:
    """One job of the soak mix: ~60% batch, ~30% streaming, ~10%
    anytime, spread over three tenants and four kernels."""
    tenant = ("acme", "vip", "hobby")[i % 3]
    shape = i % 10
    if shape < 6:  # batch
        if i % 2 == 0:
            return client.submit(
                tenant,
                "mc-pi",
                {"blocks": 4, "samples": 200, "seed": i % 11},
                ratio=0.8,
            )
        return client.submit(
            tenant,
            "sobel",
            {"size": 24, "seed": i % 13},
            ratio=0.8,
        )
    if shape < 9:  # streaming: per-tenant camera lanes
        return client.submit(
            tenant,
            "sobel",
            {"size": 24, "seed": i},
            ratio=0.9,
            stream=f"cam-{tenant}",
        )
    # anytime
    return client.submit(
        tenant,
        "jacobi",
        {"n": 32, "chunk": 8, "seed": i % 7},
        ratio=1.0,
        rounds=3,
    )


@pytest.mark.slow
def test_soak_500_mixed_jobs(soak_gateway):
    host, port, service = soak_gateway
    jobs: list[dict] = []
    with ServeClient(host, port, timeout_s=300.0) as client:
        assert client.ping()
        for i in range(N_JOBS):
            jobs.append(_mixed_job(client, i))
        stats = client.stats()

    assert len(jobs) == N_JOBS

    # -- zero wrong answers -------------------------------------------
    # Shedding (429) is legal under a tiny budget; transport errors,
    # server errors, and ordering violations are not.
    assert all(j["code"] in (200, 429) for j in jobs), {
        j["code"] for j in jobs
    }
    for j in jobs:
        if j["status"] == "executed" and "result" in j:
            if j["kernel"] == "mc-pi" and j["result"] is not None:
                assert math.isfinite(j["result"])
                assert abs(j["result"] - math.pi) < 0.8
        if j.get("quality") is not None:
            assert 0.0 <= j["quality"] < 1.0

    # -- streaming held its contract ----------------------------------
    stream_jobs = [j for j in jobs if j.get("stream")]
    assert stream_jobs, "the mix produced no stream frames"
    by_stream: dict[tuple, list] = {}
    for j in stream_jobs:
        by_stream.setdefault((j["tenant"], j["stream"]), []).append(j)
    for frames in by_stream.values():
        served = [f["frame"] for f in frames if f["code"] == 200]
        # In-order admission: the served frame indices are strictly
        # increasing (the gateway is one synchronous connection).
        assert served == sorted(served)
        assert len(set(served)) == len(served)
        # Degrade-not-drop: no stream frame was budget-rejected.
        assert all(
            f["status"] != "rejected-budget" for f in frames
        )

    # -- anytime curves came back well-formed -------------------------
    anytime_jobs = [j for j in jobs if j.get("rounds_run")]
    assert anytime_jobs, "the mix produced no anytime jobs"
    for j in anytime_jobs:
        assert 1 <= j["rounds_run"] <= 3
        q = j["round_quality"]
        assert len(q) == j["rounds_run"]
        assert all(
            q[i + 1] <= q[i] + 1e-6 for i in range(len(q) - 1)
        )

    # -- faults fired, load was served --------------------------------
    faults = sum(
        len(w.service.scheduler.engine.fault_log.records)
        for w in service.shards
    )
    assert faults > 0
    served = [j for j in jobs if j["code"] == 200]
    assert len(served) >= N_JOBS // 2

    # -- bounded tail latency -----------------------------------------
    p95 = percentile(
        [j["wall_latency_s"] for j in served], 0.95
    )
    assert p95 < 5.0, f"p95 wall latency {p95:.3f}s"

    # -- cluster-wide ledger parity -----------------------------------
    summary = service.tenant_summary("hobby")
    spent = summary["spent_j"]
    settled = summary["ledger_settled_j"]
    top = max(spent, settled)
    parity = abs(spent - settled) / top if top > 0 else 0.0
    assert parity <= LEDGER_PARITY, (
        f"ledger parity {parity:.2%}: shards {spent} J vs "
        f"ledger {settled} J"
    )

    # The gateway's digest agrees the cluster did real work.
    assert stats["cluster"]["shards"] == 3
    assert sum(s["rounds"] for s in stats["per_shard"]) > 0
