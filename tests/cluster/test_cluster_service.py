"""ClusterService: routing, rounds, budgets, and the duck-typed door."""

import pytest

from repro.cluster import ClusterService, ClusterSpec
from repro.config import RuntimeConfig
from repro.runtime.errors import ConfigError, SchedulerError
from repro.serve import JobRequest, LocalGateway


def make_cluster(shards=4, tenants=("standard:name='t'",), **kw):
    return ClusterService(
        RuntimeConfig(policy="gtb-max", n_workers=4),
        tenants=tenants,
        cluster=ClusterSpec(shards=shards),
        **kw,
    )


def mc_job(tenant="t", seed=0, samples=300):
    return JobRequest(
        tenant=tenant,
        kernel="mc-pi",
        args={"blocks": 4, "samples": samples, "seed": seed},
    )


class TestSpec:
    def test_validation(self):
        with pytest.raises(ConfigError, match="shards"):
            ClusterSpec(shards=0)
        with pytest.raises(ConfigError, match="lease_frac"):
            ClusterSpec(lease_frac=0.0)

    def test_config_cluster_field_round_trips(self):
        cfg = RuntimeConfig(policy="gtb-max", cluster=4)
        assert cfg.cluster == "cluster:shards=4"
        assert RuntimeConfig.from_dict(cfg.to_dict()) == cfg
        assert cfg.build_cluster().shards == 4
        with pytest.raises(ConfigError, match="cluster"):
            RuntimeConfig(cluster=True)
        # Spec syntax is validated at construction; unknown options at
        # build time, when the cluster registry family is resolved.
        with pytest.raises(ConfigError, match="bogus"):
            RuntimeConfig(
                policy="gtb-max", cluster="cluster:bogus=1"
            ).build_cluster()

    def test_service_reads_config_cluster(self):
        service = ClusterService(
            RuntimeConfig(policy="gtb-max", n_workers=4, cluster=3),
            tenants=("standard:name='t'",),
        )
        with service:
            assert len(service.shards) == 3


class TestRouting:
    def test_same_request_same_shard(self):
        with make_cluster() as service:
            a = service.route(mc_job(seed=1))
            assert a == service.route(mc_job(seed=1))
            assert 0 <= a < 4

    def test_distinct_work_spreads(self):
        with make_cluster(shards=4) as service:
            shards = {
                service.route(mc_job(seed=s)) for s in range(60)
            }
            assert len(shards) == 4

    def test_unknown_kernel_still_routes_to_a_404(self):
        with make_cluster() as service:
            report = service.submit(
                JobRequest(tenant="t", kernel="nope", args={})
            )
            assert report.code == 404

    def test_bad_args_route_to_a_400(self):
        with make_cluster() as service:
            report = service.submit(
                JobRequest(
                    tenant="t", kernel="sobel", args={"size": -1}
                )
            )
            assert report.code == 400


class TestServing:
    def test_jobs_execute_across_shards(self):
        with make_cluster() as service:
            reports = [
                service.submit(mc_job(seed=s)) for s in range(24)
            ]
            while service.pending_jobs:
                service.flush()
            assert all(r.status == "executed" for r in reports)
            assert all(
                r.output == pytest.approx(3.14, abs=0.6)
                for r in reports
            )
            # The work actually landed on more than one scheduler.
            busy = [
                w.index
                for w in service.shards
                if w.service.tenants["t"].executed > 0
            ]
            assert len(busy) > 1

    def test_identical_jobs_cache_across_shards(self):
        # Two tenants, same kernel+args: different route keys, one
        # shared cache entry.
        tenants = ("standard:name='a'", "standard:name='b'")
        with make_cluster(tenants=tenants) as service:
            first = service.submit(mc_job(tenant="a", seed=7))
            while service.pending_jobs:
                service.flush()
            second = service.submit(mc_job(tenant="b", seed=7))
            while service.pending_jobs:
                service.flush()
            assert first.status == "executed"
            assert second.status == "cached"
            assert second.output == first.output

    def test_cluster_budget_enforced_across_shards(self):
        tenants = ("standard:name='t',budget_j=0.0005,max_pending=256",)
        with make_cluster(tenants=tenants) as service:
            # Interleave submits and rounds: shedding happens at
            # admission time, once executed rounds have booked spend.
            for s in range(60):
                service.submit(mc_job(seed=s, samples=400))
                service.flush()
            while service.pending_jobs:
                service.flush()
            summary = service.tenant_summary("t")
            # The ledger cut the tenant off cluster-wide: some jobs
            # were shed, and lifetime spend stayed near the budget
            # (within the in-flight slack of one round per shard).
            shed = (
                summary["rejected"]
                + summary["cached"]
                + summary["cached_degraded"]
            )
            assert shed > 0
            assert summary["over_budget"]
        assert service.ledger.spent_j("t") == pytest.approx(
            summary["spent_j"]
        )

    def test_stats_shape(self):
        with make_cluster(shards=2) as service:
            service.submit(mc_job())
            service.flush()
            stats = service.stats()
            assert stats["cluster"]["shards"] == 2
            assert stats["rounds"] >= 1
            assert len(stats["per_shard"]) == 2
            assert "t" in stats["tenants"]
            assert "cache" in stats and "ledger" in stats

    def test_close_is_idempotent_and_final(self):
        service = make_cluster(shards=2)
        service.submit(mc_job())
        reports = service.close()
        assert len(reports) == 2
        assert service.close() is reports
        with pytest.raises(SchedulerError, match="closed"):
            service.submit(mc_job())
        with pytest.raises(SchedulerError, match="closed"):
            service.flush()

    def test_duplicate_tenants_raise(self):
        with pytest.raises(ConfigError, match="duplicate"):
            make_cluster(
                tenants=("standard:name='x'", "premium:name='x'")
            )


class TestGatewayFronting:
    def test_local_gateway_fronts_a_cluster(self):
        service = make_cluster(shards=3)
        gateway = LocalGateway(service=service)
        try:
            reports = gateway.submit_many(
                [mc_job(seed=s) for s in range(9)]
            )
            assert all(r.ok for r in reports)
        finally:
            gateway.close()
