"""Streaming and anytime job shapes on the sharded cluster: stream
pinning, cluster-wide ordering, and ledger-settled anytime rounds."""

import pytest

from repro.config import RuntimeConfig
from repro.cluster.service import ClusterService
from repro.serve import JobRequest
from repro.serve.tenants import TenantSpec


@pytest.fixture()
def cluster():
    svc = ClusterService(
        RuntimeConfig(policy="gtb-max", n_workers=4),
        tenants=[
            TenantSpec(name="a", tier="standard"),
            TenantSpec(name="b", tier="standard", budget_j=0.002),
        ],
        cluster=3,
    )
    yield svc
    svc.close()


class TestStreamPinning:
    def test_all_frames_of_a_stream_route_to_one_shard(self, cluster):
        shards = {
            cluster.route(
                JobRequest(
                    tenant="a",
                    kernel="sobel",
                    args={"size": 24, "seed": i},
                    stream="cam0",
                    frame=i,
                )
            )
            for i in range(12)
        }
        assert len(shards) == 1

    def test_distinct_streams_can_spread(self, cluster):
        shards = {
            cluster.route(
                JobRequest(
                    tenant="a", kernel="sobel", stream=f"cam{i}"
                )
            )
            for i in range(16)
        }
        assert len(shards) > 1

    def test_same_stream_name_different_tenants_are_independent(
        self, cluster
    ):
        # Routing may or may not coincide, but the frame lanes must be
        # independent: both tenants start at frame 0.
        for tenant in ("a", "b"):
            r = cluster.submit(
                JobRequest(
                    tenant=tenant,
                    kernel="sobel",
                    args={"size": 24, "seed": 1},
                    stream="cam",
                )
            )
            assert r.frame == 0
        cluster.flush()

    def test_stream_order_holds_cluster_wide(self, cluster):
        reports = []
        for i in range(6):
            reports.append(
                cluster.submit(
                    JobRequest(
                        tenant="a",
                        kernel="sobel",
                        args={"size": 24, "seed": 100 + i},
                        stream="cam0",
                    )
                )
            )
        cluster.flush()
        assert [r.frame for r in reports] == list(range(6))
        assert all(r.ok for r in reports)
        bad = cluster.submit(
            JobRequest(
                tenant="a",
                kernel="sobel",
                args={"size": 24, "seed": 7},
                stream="cam0",
                frame=99,
            )
        )
        assert bad.status == "rejected-out-of-order"


class TestClusterAnytime:
    ARGS = {"n": 64, "chunk": 8, "seed": 3}

    def test_anytime_runs_on_owning_shard(self, cluster):
        r = cluster.submit_anytime(
            JobRequest(
                tenant="a", kernel="jacobi", args=self.ARGS, rounds=4
            )
        )
        assert r.status == "executed"
        assert r.rounds_run == 4
        q = r.round_quality
        assert all(
            q[i + 1] <= q[i] + 1e-6 for i in range(len(q) - 1)
        )

    def test_anytime_energy_lands_in_ledger(self, cluster):
        r = cluster.submit_anytime(
            JobRequest(
                tenant="b", kernel="jacobi", args=self.ARGS, rounds=3
            )
        )
        assert r.status == "executed"
        assert r.energy_j > 0
        account = cluster.ledger.account("b")
        # The post-call settle folded the shard's spend into the ledger.
        assert account.settled_j == pytest.approx(r.energy_j)
        summary = cluster.tenant_summary("b")
        assert summary["spent_j"] == pytest.approx(r.energy_j)

    def test_anytime_budget_enforced_cluster_wide(self, cluster):
        reports = [
            cluster.submit_anytime(
                JobRequest(
                    tenant="b",
                    kernel="jacobi",
                    args={"n": 64, "chunk": 8, "seed": s},
                    rounds=6,
                    job_id=f"any-{s}",
                )
            )
            for s in range(12)
        ]
        statuses = {r.status for r in reports}
        assert "executed" in statuses
        # The 0.002 J budget cannot survive 12 six-round jobs: later
        # ones are cut short or rejected, never wrong.
        assert any(
            r.status == "rejected-budget"
            or "budget exhausted" in r.detail
            for r in reports
        ), statuses
        spent = cluster.tenant_summary("b")["spent_j"]
        budget = 0.002
        assert spent <= budget * 1.5  # bounded lease-chunk overshoot
