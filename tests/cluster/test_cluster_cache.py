"""The sharded result cache: ownership, read-through, shard death."""

import pytest

from repro.cluster import ShardedResultCache
from repro.runtime.errors import ConfigError


def fill(cache, n=40, kernel="sobel", ratio=1.0):
    """Insert n distinct entries; returns their digests."""
    digests = [f"{i:08x}" for i in range(n)]
    for d in digests:
        cache.put(kernel, d, ratio, output=d)
    return digests


class TestRoutedOperations:
    def test_put_lands_on_the_owner(self):
        cache = ShardedResultCache(range(4))
        for d in fill(cache, 30):
            owner = cache.owner("sobel", d)
            assert (
                cache.partition(owner).get("sobel", d, 1.0) is not None
            )

    def test_get_round_trips(self):
        cache = ShardedResultCache(range(4))
        digests = fill(cache, 30)
        for d in digests:
            entry = cache.get("sobel", d, 1.0)
            assert entry is not None and entry.output == d

    def test_degraded_lookup_routes_to_owner(self):
        cache = ShardedResultCache(range(4))
        cache.put("sobel", "aa", 0.5, output="half")
        entry = cache.get_degraded("sobel", "aa", max_ratio=0.9)
        assert entry is not None and entry.ratio == 0.5

    def test_entries_spread_across_partitions(self):
        cache = ShardedResultCache(range(4))
        fill(cache, 200)
        sizes = [len(cache.partition(s)) for s in cache.shards]
        assert all(n > 0 for n in sizes)
        assert sum(sizes) == len(cache) == 200

    def test_aggregate_stats_sum_partitions(self):
        cache = ShardedResultCache(range(2))
        digests = fill(cache, 10)
        for d in digests:
            cache.get("sobel", d, 1.0)
        cache.get("sobel", "nothere", 1.0)
        assert cache.stats.puts == 10
        assert cache.stats.hits == 10
        assert cache.stats.misses == 1


class TestCacheView:
    def test_view_duck_types_and_counts_local_traffic(self):
        cache = ShardedResultCache(range(4))
        view = cache.view(0)
        view.put("sobel", "aa", 1.0, output=1)
        assert view.get("sobel", "aa", 1.0).output == 1
        assert view.get("sobel", "zz", 1.0) is None
        assert view.stats.puts == 1
        assert view.stats.hits == 1
        assert view.stats.misses == 1

    def test_read_through_counts_remote_hits(self):
        cache = ShardedResultCache(range(4))
        digests = fill(cache, 40)
        view = cache.view(0)
        for d in digests:
            assert view.get("sobel", d, 1.0) is not None
        remote = sum(
            1 for d in digests if cache.owner("sobel", d) != 0
        )
        assert remote > 0
        assert view.remote_hits == remote

    def test_degraded_view_hit_classification(self):
        cache = ShardedResultCache(range(2))
        cache.put("sobel", "aa", 0.5, output="half")
        view = cache.view(0)
        entry = view.get_degraded("sobel", "aa", max_ratio=0.9)
        assert entry is not None
        assert view.stats.degraded_hits == 1

    def test_unknown_view_shard_raises(self):
        with pytest.raises(ConfigError, match="unknown cache shard"):
            ShardedResultCache(range(2)).view(7)


class TestShardDeath:
    def test_dead_shard_keys_miss_then_recompute_path(self):
        cache = ShardedResultCache(range(4))
        digests = fill(cache, 60)
        dead = cache.owner("sobel", digests[0])
        orphaned = [
            d for d in digests if cache.owner("sobel", d) == dead
        ]
        cache.mark_dead(dead)
        assert dead in cache.dead and cache.deaths == 1
        for d in digests:
            entry = cache.get("sobel", d, 1.0)
            if d in orphaned:
                # Remapped to a successor that never saw the key: a
                # miss, so the serving layer recomputes, never errors.
                assert entry is None
                assert cache.owner("sobel", d) != dead
            else:
                assert entry is not None

    def test_recompute_repopulates_the_successor(self):
        cache = ShardedResultCache(range(4))
        (digest,) = fill(cache, 1)
        dead = cache.owner("sobel", digest)
        cache.mark_dead(dead)
        assert cache.get("sobel", digest, 1.0) is None
        cache.put("sobel", digest, 1.0, output="again")
        assert cache.get("sobel", digest, 1.0).output == "again"

    def test_last_shard_cannot_die(self):
        cache = ShardedResultCache(range(2))
        cache.mark_dead(0)
        with pytest.raises(ConfigError, match="last live"):
            cache.mark_dead(1)
        # The refused death left the ring intact.
        assert cache.shards == [1]

    def test_dead_shard_twice_raises(self):
        cache = ShardedResultCache(range(3))
        cache.mark_dead(0)
        with pytest.raises(ConfigError, match="not on the ring"):
            cache.mark_dead(0)

    def test_empty_shard_list_raises(self):
        with pytest.raises(ConfigError, match="at least one"):
            ShardedResultCache([])
