"""The JSON-lines TCP gateway fronting a whole cluster."""

import asyncio
import threading

import pytest

from repro.cluster import ClusterService, ClusterSpec
from repro.config import RuntimeConfig
from repro.serve import ServeClient, ServeServer


@pytest.fixture()
def cluster_gateway():
    """A live TCP gateway over a 3-shard cluster, torn down after."""
    service = ClusterService(
        RuntimeConfig(policy="gtb-max", n_workers=4),
        tenants=(
            "standard:name='t1'",
            "free:name='t2',budget_j=0.0004",
        ),
        cluster=ClusterSpec(shards=3),
        max_batch=4,
    )
    server = ServeServer(service, batch_window_s=0.002)
    loop = asyncio.new_event_loop()

    def pump() -> None:
        asyncio.set_event_loop(loop)
        loop.run_forever()

    thread = threading.Thread(target=pump, daemon=True)
    thread.start()
    host, port = asyncio.run_coroutine_threadsafe(
        server.start(), loop
    ).result(30)
    try:
        yield host, port, service
    finally:
        asyncio.run_coroutine_threadsafe(server.close(), loop).result(30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        service.close()


class TestClusterOverTcp:
    def test_ping_and_submit(self, cluster_gateway):
        host, port, _ = cluster_gateway
        with ServeClient(host, port) as client:
            assert client.ping()
            job = client.submit(
                "t1", "mc-pi", {"blocks": 6, "samples": 400}, ratio=0.9
            )
            assert job["status"] == "executed"
            assert job["code"] == 200
            assert job["result"] == pytest.approx(3.14, abs=0.4)

    def test_stream_spreads_across_shards(self, cluster_gateway):
        host, port, service = cluster_gateway
        with ServeClient(host, port) as client:
            for seed in range(18):
                job = client.submit(
                    "t1", "mc-pi",
                    {"blocks": 4, "samples": 300, "seed": seed},
                )
                assert job["code"] == 200
        busy = [
            w.index
            for w in service.shards
            if w.service.tenants["t1"].executed > 0
        ]
        assert len(busy) > 1

    def test_stats_carry_the_cluster_digest(self, cluster_gateway):
        host, port, _ = cluster_gateway
        with ServeClient(host, port) as client:
            client.submit("t1", "sobel", {"size": 32})
            stats = client.stats()
            assert stats["cluster"]["shards"] == 3
            assert len(stats["per_shard"]) == 3
            assert "ledger" in stats

    def test_budget_shedding_over_the_wire(self, cluster_gateway):
        host, port, _ = cluster_gateway
        with ServeClient(host, port) as client:
            outcomes = [
                client.submit(
                    "t2", "sobel", {"size": 32, "seed": s % 2}
                )["status"]
                for s in range(6)
            ]
        assert outcomes[0] == "executed"
        assert set(outcomes) <= {
            "executed", "cached", "cached-degraded", "rejected-budget"
        }
        assert set(outcomes) != {"executed"}
