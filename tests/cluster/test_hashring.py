"""Consistent-hash ring: stability, balance, and remap bounds."""

import pytest

from repro.cluster import HashRing, cache_key, job_key, stable_hash
from repro.runtime.errors import ConfigError


def _keys(n: int) -> list[str]:
    return [job_key(f"t{i % 5}", "sobel", f"{i:08x}") for i in range(n)]


class TestStableHash:
    def test_content_derived_and_host_independent(self):
        # Pinned value: the hash must never depend on process salt.
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash("abc") == 0xA9993E364706816A

    def test_distinct_keys_distinct_points(self):
        assert stable_hash("abc") != stable_hash("abd")

    def test_key_builders_separate_components(self):
        # The separator keeps ("ab","c") distinct from ("a","bc").
        assert job_key("ab", "c", "d") != job_key("a", "bc", "d")
        assert cache_key("sobel", "123") != cache_key("sobel1", "23")


class TestRingBasics:
    def test_lookup_deterministic(self):
        a = HashRing(range(4))
        b = HashRing(range(4))
        for key in _keys(200):
            assert a.lookup(key) == b.lookup(key)

    def test_membership(self):
        ring = HashRing(range(3))
        assert len(ring) == 3
        assert 2 in ring and 3 not in ring
        assert ring.shards == [0, 1, 2]

    def test_duplicate_add_raises(self):
        ring = HashRing(range(2))
        with pytest.raises(ConfigError, match="already"):
            ring.add(1)

    def test_remove_unknown_raises(self):
        with pytest.raises(ConfigError, match="not on the ring"):
            HashRing(range(2)).remove(9)

    def test_empty_ring_lookup_raises(self):
        with pytest.raises(ConfigError, match="empty"):
            HashRing().lookup("k")

    def test_bad_replicas_raises(self):
        with pytest.raises(ConfigError, match="replicas"):
            HashRing(range(2), replicas=0)

    def test_spread_covers_all_shards(self):
        ring = HashRing(range(8))
        counts = ring.spread(_keys(4000))
        assert set(counts) == set(range(8))
        assert all(n > 0 for n in counts.values())
        # 128 vnodes keep skew moderate: no shard owns > 2x its share.
        assert max(counts.values()) <= 2 * 4000 / 8


class TestRemapBounds:
    def test_join_remaps_about_one_share(self):
        keys = _keys(4000)
        ring = HashRing(range(8))
        before = {k: ring.lookup(k) for k in keys}
        ring.add(8)
        moved = sum(1 for k in keys if ring.lookup(k) != before[k])
        # Expected 1/9 of the key space; allow 2.5x for hash noise.
        assert moved <= 2.5 * len(keys) / 9
        # Every moved key lands on the new shard — joins never shuffle
        # keys between existing shards.
        for k in keys:
            if ring.lookup(k) != before[k]:
                assert ring.lookup(k) == 8

    def test_leave_remaps_only_the_dead_shards_keys(self):
        keys = _keys(4000)
        ring = HashRing(range(8))
        before = {k: ring.lookup(k) for k in keys}
        ring.remove(3)
        for k in keys:
            if before[k] == 3:
                assert ring.lookup(k) != 3
            else:
                assert ring.lookup(k) == before[k]

    def test_rejoin_restores_placement(self):
        keys = _keys(1000)
        ring = HashRing(range(4))
        before = {k: ring.lookup(k) for k in keys}
        ring.remove(2)
        ring.add(2)
        assert {k: ring.lookup(k) for k in keys} == before
