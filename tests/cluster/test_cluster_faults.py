"""The faults engine under a cluster smoke: degraded, never wrong."""

import pytest

from repro.cluster import ClusterService, ClusterSpec
from repro.config import RuntimeConfig
from repro.serve import JobRequest


@pytest.fixture(scope="module")
def smoke():
    """A 4-shard cluster smoke on the fault-injecting engine: every
    shard's simulated machine silently drops unprotected task effects,
    one tenant is tightly budgeted, and quality scoring stays on."""
    config = RuntimeConfig(
        policy="gtb-max",
        n_workers=4,
        engine="faulty:fault_rate=0.1,protect_threshold=0.7,seed=3",
    )
    service = ClusterService(
        config,
        tenants=(
            "standard:name='a',budget_j=0.002,max_pending=256",
            "premium:name='b',max_pending=256",
        ),
        cluster=ClusterSpec(shards=4),
    )
    reports = []
    with service:
        for w in range(20):
            reports.append(
                service.submit(
                    JobRequest(
                        tenant="a",
                        kernel="mc-pi",
                        args={
                            "blocks": 6,
                            "samples": 400,
                            "seed": 100 + w,
                        },
                    )
                )
            )
            reports.append(
                service.submit(
                    JobRequest(
                        tenant="b",
                        kernel="sobel",
                        args={"size": 32, "seed": 200 + w},
                    )
                )
            )
        while service.pending_jobs:
            service.flush()
        summaries = {
            name: service.tenant_summary(name) for name in ("a", "b")
        }
    return reports, summaries, service


class TestDegradedNotWrong:
    def test_no_server_errors(self, smoke):
        reports, _, _ = smoke
        assert {r.code for r in reports} <= {200, 429}

    def test_executed_answers_stay_plausible(self, smoke):
        reports, _, _ = smoke
        executed = [r for r in reports if r.status == "executed"]
        assert executed
        for r in executed:
            if r.kernel == "mc-pi":
                # Omission faults drop blocks; combine renormalizes,
                # so the estimate degrades instead of corrupting.
                assert r.output == pytest.approx(3.14, abs=0.8)
            assert r.quality is not None
            assert 0.0 <= r.quality < 1.0

    def test_shedding_respects_the_ratio_floor(self, smoke):
        reports, _, _ = smoke
        served = [
            r for r in reports
            if r.ratio_served is not None and r.tenant == "a"
        ]
        assert served
        # standard tier: ratio_floor=0.3 — however hard the budget
        # squeezes under faults, the served ratio never goes below it.
        assert all(r.ratio_served >= 0.3 - 1e-9 for r in served)

    def test_accounting_adds_up(self, smoke):
        reports, summaries, service = smoke
        for name, summary in summaries.items():
            outcomes = sum(
                1 for r in reports if r.tenant == name
            )
            counted = (
                summary["executed"]
                + summary["cached"]
                + summary["cached_degraded"]
                + summary["coalesced"]
                + summary["rejected"]
            )
            assert counted == outcomes == 20
        # The budgeted tenant's ledger books match its shard books.
        assert service.ledger.spent_j("a") == pytest.approx(
            summaries["a"]["spent_j"]
        )

    def test_faults_actually_fired(self, smoke):
        _, _, service = smoke
        fault_events = sum(
            len(w.service.scheduler.engine.fault_log.records)
            for w in service.shards
        )
        assert fault_events > 0
