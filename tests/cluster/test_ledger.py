"""The cluster energy ledger: lease protocol, cut-off bound, exactness."""

import pytest

from repro.cluster import EnergyLedger
from repro.cluster.ledger import DEFAULT_CHUNK_FRAC, LOW_WATER_FRAC
from repro.runtime.errors import ConfigError


def make_ledger(budget=1.0, shards=4, chunk=None):
    ledger = EnergyLedger()
    ledger.open_account("a", budget)
    leases = [
        ledger.lease("a", i, chunk_j=chunk) for i in range(shards)
    ]
    return ledger, leases


class TestAccounts:
    def test_open_and_headroom(self):
        ledger = EnergyLedger()
        acct = ledger.open_account("a", 2.0)
        assert acct.headroom_j == 2.0
        assert ledger.tenants == ["a"]
        assert ledger.spent_j("a") == 0.0

    def test_duplicate_account_raises(self):
        ledger = EnergyLedger()
        ledger.open_account("a", 1.0)
        with pytest.raises(ConfigError, match="already exists"):
            ledger.open_account("a", 1.0)

    def test_bad_budget_raises(self):
        with pytest.raises(ConfigError, match="budget"):
            EnergyLedger().open_account("a", 0.0)

    def test_unknown_tenant_raises(self):
        with pytest.raises(ConfigError, match="no ledger account"):
            EnergyLedger().account("ghost")


class TestLeaseProtocol:
    def test_default_chunk_is_a_budget_fraction(self):
        ledger = EnergyLedger()
        ledger.open_account("a", 16.0)
        lease = ledger.lease("a", 0)
        assert lease.chunk_j == pytest.approx(
            DEFAULT_CHUNK_FRAC * 16.0
        )

    def test_first_ensure_pulls_a_chunk(self):
        ledger, (lease, *_) = make_ledger(budget=1.0, chunk=0.25)
        assert lease.remaining_j == 0.0
        assert lease.ensure()
        assert lease.remaining_j == pytest.approx(0.25)
        assert ledger.account("a").granted_j == pytest.approx(0.25)

    def test_refill_only_below_low_water(self):
        ledger, (lease, *_) = make_ledger(budget=10.0, chunk=1.0)
        lease.ensure()
        granted = lease.granted_j
        # Above the low-water mark: ensure() must not touch the ledger.
        lease.draw((1.0 - LOW_WATER_FRAC) * 0.9)
        assert lease.ensure()
        assert lease.granted_j == granted
        # Below it: topped back up to a full chunk.
        lease.draw(0.5)
        assert lease.ensure()
        assert lease.remaining_j == pytest.approx(1.0)

    def test_overdraw_settles_against_next_grant(self):
        ledger, (lease, *_) = make_ledger(budget=10.0, chunk=1.0)
        lease.ensure()
        lease.draw(1.4)  # energy is measured after the job ran
        assert lease.remaining_j == pytest.approx(-0.4)
        lease.ensure()
        acct = ledger.account("a")
        # The overdraw was settled, and the new grant covers it: the
        # account never double-counts those Joules as free headroom.
        assert acct.settled_j == pytest.approx(1.4)
        assert lease.remaining_j == pytest.approx(1.0)
        assert acct.granted_j >= acct.settled_j

    def test_settle_all_folds_every_lease(self):
        ledger, leases = make_ledger(budget=10.0, chunk=1.0)
        for lease in leases:
            lease.ensure()
            lease.draw(0.2)
        ledger.settle_all()
        assert ledger.spent_j("a") == pytest.approx(0.2 * len(leases))

    def test_bad_chunk_raises(self):
        ledger = EnergyLedger()
        ledger.open_account("a", 1.0)
        with pytest.raises(ConfigError, match="chunk"):
            ledger.lease("a", 0, chunk_j=0.0)


class TestSteering:
    def test_steer_target_decays_to_local_quota(self):
        ledger, (l0, l1) = make_ledger(budget=1.0, shards=2, chunk=0.5)
        # Before any grant both shards optimistically see the full
        # budget...
        assert l0.steer_target_j == pytest.approx(1.0)
        l0.ensure()
        l1.ensure()
        # ...after the account drains, each steers to what it holds.
        assert ledger.account("a").headroom_j == pytest.approx(0.0)
        assert l0.steer_target_j == pytest.approx(l0.granted_j)
        assert l1.steer_target_j == pytest.approx(l1.granted_j)


class TestStarvation:
    def test_cut_off_within_one_lease_chunk(self):
        """A tenant over budget stops within one lease, not one job.

        Four shards draw fixed-size jobs; each gates every draw on
        ensure().  Grants can never exceed the budget, and each shard
        can overshoot its grants by at most the one in-flight job.
        """
        budget, chunk, job = 1.0, 1.0 / 16.0, 0.01
        ledger, leases = make_ledger(budget=budget, chunk=chunk)
        live = set(range(len(leases)))
        drawn = 0.0
        for _ in range(10_000):
            if not live:
                break
            for i in sorted(live):
                if not leases[i].ensure():
                    live.discard(i)
                    continue
                leases[i].draw(job)
                drawn += job
        assert not live, "every shard must eventually be cut off"
        acct = ledger.account("a")
        assert acct.granted_j <= budget + 1e-12
        # Overshoot bound: one in-flight job per shard, far inside one
        # lease chunk each.
        assert drawn <= budget + len(leases) * job + 1e-12
        for lease in leases:
            assert lease.exhausted
        ledger.settle_all()
        assert ledger.spent_j("a") == pytest.approx(drawn)

    def test_exhausted_is_read_only(self):
        ledger, (lease, *_) = make_ledger(budget=1.0, chunk=0.5)
        assert not lease.exhausted  # headroom exists, lease is dry
        before = ledger.account("a").granted_j
        _ = lease.exhausted
        assert ledger.account("a").granted_j == before


class TestReclaim:
    def test_reclaim_returns_unspent_grants(self):
        ledger, leases = make_ledger(budget=1.0, shards=2, chunk=0.25)
        leases[0].ensure()
        leases[0].draw(0.1)
        leases[1].ensure()
        ledger.reclaim()
        acct = ledger.account("a")
        assert acct.settled_j == pytest.approx(0.1)
        # Headroom reflects only Joules truly spent.
        assert acct.headroom_j == pytest.approx(1.0 - 0.1)
        for lease in leases:
            assert lease.remaining_j == pytest.approx(0.0)
