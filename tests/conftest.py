"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.runtime.policies import (
    GlobalTaskBuffering,
    LocalQueueHistory,
    OraclePolicy,
    SignificanceAgnostic,
    gtb_max_buffer,
)
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import TaskCost


def make_scheduler(policy=None, workers: int = 4, **kw) -> Scheduler:
    """Small scheduler for unit tests (4 simulated workers)."""
    return Scheduler(policy=policy, n_workers=workers, **kw)


@pytest.fixture
def scheduler() -> Scheduler:
    return make_scheduler()


@pytest.fixture(
    params=["gtb", "gtb-max", "lqh", "agnostic", "oracle"],
    ids=["GTB", "GTB-MB", "LQH", "agnostic", "oracle"],
)
def any_policy(request):
    """One instance of every policy (fresh per test)."""
    return {
        "gtb": lambda: GlobalTaskBuffering(8),
        "gtb-max": gtb_max_buffer,
        "lqh": LocalQueueHistory,
        "agnostic": SignificanceAgnostic,
        "oracle": OraclePolicy,
    }[request.param]()


SMALL_COST = TaskCost(accurate=10_000.0, approximate=1_000.0)


def spawn_n(rt: Scheduler, n: int, *, label="g", sig=None, approx=True,
            cost=SMALL_COST, results=None):
    """Spawn n trivial tasks with round-robin significance."""
    out = []

    def body(i):
        if results is not None:
            results.append(("acc", i))
        return i * 2

    def appr(i):
        if results is not None:
            results.append(("apx", i))
        return i

    for i in range(n):
        s = sig(i) if callable(sig) else (
            sig if sig is not None else (i % 9 + 1) / 10.0
        )
        out.append(
            rt.spawn(
                body,
                i,
                significance=s,
                approxfun=appr if approx else None,
                label=label,
                cost=cost,
            )
        )
    return out
