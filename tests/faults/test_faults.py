"""Tests for the unreliable-hardware substrate (paper section 6)."""

import pytest

from repro.faults import FaultLog, FaultModel, FaultRecord, faulty_scheduler
from repro.faults.model import FaultConfigError
from repro.runtime.policies import SignificanceAgnostic, gtb_max_buffer
from repro.runtime.task import TaskCost

COST = TaskCost(10_000.0, 1_000.0)


class TestFaultModel:
    def test_split_machine(self):
        m = FaultModel.split_machine(16, 0.5, 0.1)
        assert m.unreliable_cores == frozenset(range(8, 16))

    def test_split_rounding(self):
        m = FaultModel.split_machine(4, 0.3, 0.1)
        assert len(m.unreliable_cores) == 1

    def test_invalid_rate(self):
        with pytest.raises(FaultConfigError):
            FaultModel(fault_rate=1.5)

    def test_invalid_fraction(self):
        with pytest.raises(FaultConfigError):
            FaultModel.split_machine(8, -0.1, 0.1)

    def test_reliable_cores_never_fault(self):
        m = FaultModel.split_machine(4, 0.5, 1.0)
        assert not m.draws_fault(0, task_key=1)
        assert m.draws_fault(3, task_key=1)

    def test_deterministic_draws(self):
        m = FaultModel.split_machine(4, 0.5, 0.5, seed=9)
        draws_a = [m.draws_fault(3, t) for t in range(100)]
        draws_b = [m.draws_fault(3, t) for t in range(100)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)

    def test_group_changes_stream(self):
        m = FaultModel.split_machine(4, 0.5, 0.5, seed=9)
        a = [m.draws_fault(3, t, group="a") for t in range(200)]
        b = [m.draws_fault(3, t, group="b") for t in range(200)]
        assert a != b

    def test_rate_zero_never_faults(self):
        m = FaultModel.split_machine(4, 1.0, 0.0)
        assert not any(m.draws_fault(w, t) for w in range(4)
                       for t in range(50))


class TestFaultLog:
    def test_counters(self):
        log = FaultLog()
        log.add(FaultRecord(1, 0, 0.0, 0.5, protected=False))
        log.add(FaultRecord(2, 0, 0.0, 0.9, protected=True))
        assert log.total == 2
        assert log.silent == 1
        assert log.recovered == 1


def run_faulty(fault_rate, protect_threshold, n=200, workers=4):
    """Tasks append to a list; omitted (faulted) tasks leave gaps."""
    model = FaultModel.split_machine(
        workers, 0.5, fault_rate, seed=7
    )
    rt = faulty_scheduler(
        SignificanceAgnostic(),
        n_workers=workers,
        fault_model=model,
        protect_threshold=protect_threshold,
    )
    done = []
    for i in range(n):
        rt.spawn(
            lambda i=i: done.append(i),
            significance=(i % 9 + 1) / 10.0,
            cost=COST,
        )
    report = rt.finish()
    return done, rt.engine.fault_log, report


class TestFaultInjection:
    def test_no_faults_at_zero_rate(self):
        done, log, _ = run_faulty(0.0, 1.0)
        assert len(done) == 200 and log.total == 0

    def test_silent_faults_omit_effects(self):
        done, log, _ = run_faulty(0.3, 1.1 if False else 1.0, n=200)
        # protect_threshold=1.0 -> only significance==1.0 protected;
        # all our tasks are < 1.0, so every fault is silent.
        assert log.silent > 0
        assert len(done) == 200 - log.silent

    def test_protection_recovers_significant_tasks(self):
        done, log, _ = run_faulty(0.3, protect_threshold=0.0, n=200)
        # Everything protected -> no silent faults, all effects present.
        assert log.silent == 0
        assert len(done) == 200
        assert log.recovered > 0

    def test_partial_protection_threshold(self):
        done, log, _ = run_faulty(0.3, protect_threshold=0.5, n=300)
        silent_sigs = [
            r.significance for r in log.records if not r.protected
        ]
        recovered_sigs = [
            r.significance for r in log.records if r.protected
        ]
        assert all(s < 0.5 for s in silent_sigs)
        assert all(s >= 0.5 for s in recovered_sigs)

    def test_protection_costs_time(self):
        _, log_unprot, rep_unprot = run_faulty(0.4, 1.0)
        _, log_prot, rep_prot = run_faulty(0.4, 0.0)
        assert rep_prot.makespan_s > rep_unprot.makespan_s

    def test_determinism(self):
        a = run_faulty(0.25, 0.5)
        b = run_faulty(0.25, 0.5)
        assert a[0] == b[0]
        assert a[1].total == b[1].total
        assert a[2].makespan_s == b[2].makespan_s

    def test_composes_with_significance_policy(self):
        model = FaultModel.split_machine(4, 0.5, 0.2, seed=3)
        rt = faulty_scheduler(
            gtb_max_buffer(),
            n_workers=4,
            fault_model=model,
            protect_threshold=0.6,
        )
        rt.init_group("g", ratio=0.5)
        for i in range(100):
            rt.spawn(
                lambda: None,
                significance=(i % 9 + 1) / 10.0,
                approxfun=lambda: None,
                label="g",
                cost=COST,
            )
        report = rt.finish()
        assert report.accurate_tasks == 50
