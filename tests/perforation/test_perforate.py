"""Unit and property tests for the loop-perforation baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perforation import (
    PerforationError,
    perforate_loop,
    perforated_indices,
)


class TestPerforatedIndices:
    def test_keep_all(self):
        assert np.array_equal(
            perforated_indices(10, 1.0), np.arange(10)
        )

    def test_keep_none(self):
        assert perforated_indices(10, 0.0).size == 0

    def test_truncate_scheme(self):
        idx = perforated_indices(10, 0.3, scheme="truncate")
        assert np.array_equal(idx, [0, 1, 2])

    def test_stride_scheme_spreads(self):
        idx = perforated_indices(10, 0.5, scheme="stride")
        assert len(idx) == 5
        # spread: no two adjacent-only cluster; gaps ~2
        assert np.all(np.diff(idx) == 2)

    def test_random_scheme_seeded(self):
        a = perforated_indices(100, 0.4, scheme="random", seed=7)
        b = perforated_indices(100, 0.4, scheme="random", seed=7)
        c = perforated_indices(100, 0.4, scheme="random", seed=8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_invalid_fraction(self):
        with pytest.raises(PerforationError):
            perforated_indices(10, 1.5)

    def test_negative_n(self):
        with pytest.raises(PerforationError):
            perforated_indices(-1, 0.5)

    def test_unknown_scheme(self):
        with pytest.raises(PerforationError):
            perforated_indices(10, 0.5, scheme="chaotic")

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=500),
        st.floats(min_value=0.0, max_value=1.0),
        st.sampled_from(["stride", "truncate", "random"]),
    )
    def test_count_and_bounds_property(self, n, keep, scheme):
        idx = perforated_indices(n, keep, scheme=scheme)
        assert len(idx) <= max(1, int(round(keep * n)))
        assert len(set(idx.tolist())) == len(idx)  # unique
        if len(idx):
            assert idx.min() >= 0 and idx.max() < n
            assert np.all(np.diff(idx) > 0)  # sorted

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=300))
    def test_full_keep_identity(self, n):
        assert np.array_equal(
            perforated_indices(n, 1.0), np.arange(n)
        )


class TestPerforateLoop:
    def test_decorator_executes_subset(self):
        acc = []

        @perforate_loop(0.5)
        def body(i, sink):
            sink.append(i)

        body(range(10), acc)
        assert len(acc) == 5

    def test_decorator_passes_original_indices(self):
        acc = []

        @perforate_loop(0.5, scheme="truncate")
        def body(i, sink):
            sink.append(i)

        body([10, 20, 30, 40], acc)
        assert acc == [10, 20]

    def test_metadata_attached(self):
        @perforate_loop(0.25, scheme="random")
        def body(i):
            pass

        assert body.keep_fraction == 0.25
        assert body.scheme == "random"
