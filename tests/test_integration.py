"""Cross-module integration tests: the paper's claims, end to end.

Each test asserts a *shape* from the paper's evaluation on shrunken
workloads — who wins, what degrades gracefully, what the knob does.
"""

import numpy as np

from repro import (
    Runtime,
    TaskCost,
    sig_task,
    taskwait,
)
from repro.harness.experiment import ExperimentCell, run_cell
from repro.kernels.base import Degree, get_benchmark
from repro.runtime.policies import (
    GlobalTaskBuffering,
    LocalQueueHistory,
    SignificanceAgnostic,
    gtb_max_buffer,
)
from repro.runtime.scheduler import Scheduler


class TestHeadlineClaims:
    """Section 4.2's qualitative results, at test scale."""

    def test_energy_decreases_with_aggressiveness_sobel(self):
        energies = []
        for degree in (Degree.MILD, Degree.MEDIUM, Degree.AGGRESSIVE):
            res = run_cell(
                ExperimentCell("Sobel", "policy:gtb", degree, 8, True)
            )
            energies.append(res.energy_j)
        assert energies[0] > energies[1] > energies[2]

    def test_approximation_beats_accurate_in_time_and_energy(self):
        acc = run_cell(ExperimentCell("DCT", "accurate", None, 8, True))
        med = run_cell(
            ExperimentCell("DCT", "policy:gtb", Degree.MEDIUM, 8, True)
        )
        assert med.makespan_s < acc.makespan_s
        assert med.energy_j < acc.energy_j

    def test_quality_degrades_gracefully_not_catastrophically(self):
        for name in ("Kmeans", "Jacobi"):
            res = run_cell(
                ExperimentCell(
                    name, "policy:gtb", Degree.AGGRESSIVE, 8, True
                )
            )
            assert res.quality.value < 10.0  # percent

    def test_sobel_perforation_fast_but_ugly(self):
        ours = run_cell(
            ExperimentCell("Sobel", "policy:gtb", Degree.MEDIUM, 8, True)
        )
        perf = run_cell(
            ExperimentCell("Sobel", "perforated", Degree.MEDIUM, 8, True)
        )
        assert perf.makespan_s <= ours.makespan_s  # perforation faster
        assert perf.quality.value > ours.quality.value  # but worse

    def test_mc_perforation_quality_collapse(self):
        """Dropped MC points keep zeros: relative error explodes
        versus the significance-aware runs (paper Figure 2, MC row)."""
        ours = run_cell(
            ExperimentCell("MC", "policy:gtb", Degree.AGGRESSIVE, 8, True)
        )
        perf = run_cell(
            ExperimentCell("MC", "perforated", Degree.AGGRESSIVE, 8, True)
        )
        assert perf.quality.value > 2 * ours.quality.value


class TestKnobFlexibility:
    """'one can explore different points in the quality/energy space
    ... simply by specifying the percentage of tasks' (section 1)."""

    def test_ratio_sweep_monotone_energy(self):
        bench = get_benchmark("Sobel", small=True)
        img = bench.build_input()
        energies = []
        for ratio in (1.0, 0.75, 0.5, 0.25, 0.0):
            rt = Scheduler(policy=gtb_max_buffer(), n_workers=8)
            bench.run_tasks(rt, img, ratio)
            energies.append(rt.finish().energy_j)
        assert all(a >= b for a, b in zip(energies, energies[1:]))

    def test_no_code_changes_between_policies(self):
        """The same program runs under every policy unmodified."""
        bench = get_benchmark("DCT", small=True)
        img = bench.build_input()
        outputs = []
        for policy in (
            SignificanceAgnostic(),
            GlobalTaskBuffering(16),
            gtb_max_buffer(),
            LocalQueueHistory(),
        ):
            rt = Scheduler(policy=policy, n_workers=8)
            outputs.append(bench.run_tasks(rt, img, 0.4))
            rt.finish()
        assert all(o.shape == outputs[0].shape for o in outputs)
        # The agnostic run is bit-exact against the plain reference.
        assert np.array_equal(outputs[0], bench.run_reference(img))


class TestProgrammingModelEndToEnd:
    def test_mixed_groups_and_barriers(self):
        log = []

        @sig_task(label="stage1", cost=TaskCost(5000.0, 500.0),
                  approxfun=lambda i: log.append(("s1~", i)))
        def stage1(i):
            log.append(("s1", i))

        @sig_task(label="stage2", cost=TaskCost(5000.0, 500.0),
                  approxfun=lambda i: log.append(("s2~", i)))
        def stage2(i):
            log.append(("s2", i))

        with Runtime(policy=gtb_max_buffer(), n_workers=4) as rt:
            rt.init_group("stage1", ratio=1.0)
            rt.init_group("stage2", ratio=0.5)
            for i in range(8):
                stage1(i, significance=0.5)
            taskwait(label="stage1")
            s1_done = len(log)
            for i in range(8):
                stage2(i, significance=0.5)
            taskwait(label="stage2")

        assert s1_done == 8
        assert sum(1 for e in log if e[0] == "s1") == 8
        assert sum(1 for e in log if e[0] == "s2") == 4
        assert sum(1 for e in log if e[0] == "s2~") == 4

    def test_interactive_ratio_change(self):
        """Ratio can change per invocation of the same kernel."""

        @sig_task(label="k", cost=TaskCost(1000.0, 100.0),
                  approxfun=lambda x: -x)
        def kernel(x):
            return x

        with Runtime(policy=gtb_max_buffer(), n_workers=2) as rt:
            for i in range(4):
                kernel(i, significance=0.5)
            taskwait(label="k", ratio=1.0)
            g = rt.groups.get("k")
            first = g.accurate_count
            for i in range(4):
                kernel(i, significance=0.5)
            taskwait(label="k", ratio=0.0)
            second = g.accurate_count - first
        assert first == 4 and second == 0

    def test_report_totals_consistent(self):
        with Runtime(policy=GlobalTaskBuffering(4), n_workers=4) as rt:
            rt.init_group("g", ratio=0.5)

            @sig_task(label="g", cost=TaskCost(1000.0, 100.0),
                      approxfun=lambda i: None)
            def f(i):
                return i

            for i in range(20):
                f(i, significance=(i % 9 + 1) / 10.0)
            taskwait(label="g")
        rep = rt.report
        assert rep is not None
        assert (
            rep.accurate_tasks
            + rep.approximate_tasks
            + rep.dropped_tasks
            == rep.tasks_total
        )
