"""Integration-style unit tests for the Scheduler front door."""

import numpy as np
import pytest

from repro.runtime.errors import SchedulerError
from repro.runtime.policies import (
    GlobalTaskBuffering,
    SignificanceAgnostic,
    gtb_max_buffer,
)
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import ref

from ..conftest import SMALL_COST, make_scheduler, spawn_n


class TestSpawnBasics:
    def test_results_available_after_finish(self):
        rt = make_scheduler()
        tasks = [
            rt.spawn(lambda x: x * 2, i, significance=1.0, cost=SMALL_COST)
            for i in range(5)
        ]
        rt.finish()
        assert [t.result for t in tasks] == [0, 2, 4, 6, 8]

    def test_spawn_after_finish_rejected(self):
        rt = make_scheduler()
        rt.finish()
        with pytest.raises(SchedulerError):
            rt.spawn(lambda: None)

    def test_double_finish_rejected(self):
        rt = make_scheduler()
        rt.finish()
        with pytest.raises(SchedulerError):
            rt.finish()

    def test_group_seq_assigned_in_spawn_order(self):
        rt = make_scheduler()
        ts = spawn_n(rt, 5, label="g")
        assert [t.group_seq for t in ts] == list(range(5))
        rt.finish()

    def test_context_manager_finishes(self):
        with make_scheduler() as rt:
            spawn_n(rt, 3)
        assert rt._finished

    def test_invalid_worker_count(self):
        with pytest.raises(SchedulerError):
            Scheduler(n_workers=0)


class TestTaskwait:
    def test_group_barrier_waits_only_that_group(self):
        rt = make_scheduler(policy=SignificanceAgnostic())
        a = spawn_n(rt, 4, label="a")
        b = spawn_n(rt, 4, label="b")
        rt.taskwait(label="a")
        assert all(t.result is not None for t in a)
        rt.finish()
        assert all(t.result is not None for t in b)

    def test_global_barrier_waits_everything(self):
        rt = make_scheduler()
        a = spawn_n(rt, 3, label="a")
        b = spawn_n(rt, 3, label="b")
        rt.taskwait()
        assert all(t.result is not None for t in a + b)
        rt.finish()

    def test_taskwait_on_object(self):
        rt = make_scheduler(policy=SignificanceAgnostic())
        data = np.zeros(4)

        def writer():
            data[0] = 42.0

        t = rt.spawn(writer, out=[ref(data)], cost=SMALL_COST)
        rt.taskwait(on=data)
        assert t.result is None and data[0] == 42.0
        rt.finish()

    def test_taskwait_ratio_sets_group_ratio(self):
        rt = make_scheduler(policy=gtb_max_buffer())
        spawn_n(rt, 10, label="g")
        rt.taskwait(label="g", ratio=0.5)
        g = rt.groups.get("g")
        assert g.ratio == 0.5
        assert g.accurate_count == 5
        rt.finish()

    def test_global_ratio_applies_to_all_groups(self):
        rt = make_scheduler()
        spawn_n(rt, 2, label="a")
        spawn_n(rt, 2, label="b")
        rt.taskwait(ratio=0.25)
        assert rt.groups.get("a").ratio == 0.25
        assert rt.groups.get("b").ratio == 0.25
        rt.finish()

    def test_barrier_increments_epoch(self):
        rt = make_scheduler()
        spawn_n(rt, 2, label="g")
        rt.taskwait(label="g")
        assert rt.groups.get("g").epoch == 1
        rt.finish()

    def test_taskwait_unknown_label_creates_empty_group(self):
        rt = make_scheduler()
        rt.taskwait(label="nothing")  # waits on an empty group: no-op
        rt.finish()


class TestDependenceExecution:
    def test_program_order_for_dependent_tasks(self):
        rt = make_scheduler(policy=SignificanceAgnostic())
        log = []
        d = np.zeros(1)

        def writer(tag):
            log.append(tag)

        for tag in "abc":
            rt.spawn(writer, tag, out=[ref(d)], cost=SMALL_COST)
        rt.finish()
        assert log == ["a", "b", "c"]

    def test_independent_tasks_parallelize(self):
        rt = make_scheduler(policy=SignificanceAgnostic(), workers=4)
        spawn_n(rt, 8, sig=1.0)
        report = rt.finish()
        # 8 equal tasks on 4 workers: every worker executed some.
        assert all(
            n > 0 for n in report.queue_stats.executed_per_worker
        )

    def test_dependent_chain_through_buffering_policy(self):
        """GTB buffers tasks; dependences must still be honoured."""
        rt = make_scheduler(policy=GlobalTaskBuffering(2))
        log = []
        d = np.zeros(1)
        for tag in "abcd":
            rt.spawn(
                lambda t: log.append(t),
                tag,
                significance=0.5,
                approxfun=lambda t: log.append(t.upper()),
                out=[ref(d)],
                cost=SMALL_COST,
            )
        rt.taskwait(ratio=1.0)
        assert [x.lower() for x in log] == ["a", "b", "c", "d"]
        rt.finish()

    def test_report_dep_stats(self):
        rt = make_scheduler(policy=SignificanceAgnostic())
        d = np.zeros(1)
        rt.spawn(lambda: None, out=[ref(d)], cost=SMALL_COST)
        rt.spawn(lambda: None, in_=[ref(d)], cost=SMALL_COST)
        report = rt.finish()
        assert report.dep_stats.raw_edges == 1


class TestRunReport:
    def test_report_task_counts(self):
        rt = make_scheduler(policy=gtb_max_buffer())
        rt.init_group("g", ratio=0.5)
        spawn_n(rt, 10, label="g")
        report = rt.finish()
        assert report.tasks_total == 10
        assert report.accurate_tasks == 5
        assert report.approximate_tasks == 5

    def test_report_dropped_counted(self):
        rt = make_scheduler(policy=gtb_max_buffer())
        rt.init_group("g", ratio=0.0)
        spawn_n(rt, 4, label="g", approx=False)  # no approxfun -> drop
        report = rt.finish()
        assert report.dropped_tasks == 4

    def test_energy_positive_and_consistent(self):
        rt = make_scheduler()
        spawn_n(rt, 10)
        report = rt.finish()
        assert report.energy_j > 0
        assert report.energy.window_s == pytest.approx(
            report.makespan_s
        )

    def test_makespan_positive(self):
        rt = make_scheduler()
        spawn_n(rt, 4)
        assert rt.finish().makespan_s > 0

    def test_summary_renders(self):
        rt = make_scheduler()
        spawn_n(rt, 3, label="g")
        s = rt.finish().summary()
        assert "group g" in s and "makespan" in s

    def test_trace_present(self):
        rt = make_scheduler()
        spawn_n(rt, 3)
        report = rt.finish()
        assert report.trace is not None
        assert len(report.trace.segments) == 3


class TestEngines:
    @pytest.mark.parametrize("engine", ["simulated", "sequential", "threaded"])
    def test_results_identical_across_engines(self, engine):
        rt = Scheduler(
            policy=SignificanceAgnostic(), n_workers=2, engine=engine
        )
        tasks = [
            rt.spawn(lambda x: x * x, i, cost=SMALL_COST) for i in range(6)
        ]
        rt.finish()
        assert [t.result for t in tasks] == [0, 1, 4, 9, 16, 25]

    def test_threaded_engine_respects_ratio(self):
        rt = Scheduler(
            policy=gtb_max_buffer(), n_workers=2, engine="threaded"
        )
        rt.init_group("g", ratio=0.5)
        spawn_n(rt, 10, label="g")
        rt.taskwait(label="g")
        report = rt.finish()
        assert report.accurate_tasks == 5

    def test_unknown_engine_rejected(self):
        with pytest.raises(SchedulerError):
            Scheduler(engine="quantum")

    def test_sequential_is_single_worker(self):
        rt = Scheduler(policy=SignificanceAgnostic(), engine="sequential")
        spawn_n(rt, 4)
        report = rt.finish()
        assert report.n_workers == 1


def _ident(x):
    return x


class TestTaskRecycling:
    """``retain_tasks=False`` + slab release (serve hot path)."""

    def test_default_retains_descriptors(self):
        rt = make_scheduler()
        spawn_n(rt, 3)
        rt.finish()
        assert rt.retains_tasks
        assert len(rt.tasks) == 3

    def test_release_refused_while_retaining(self):
        rt = make_scheduler()
        ts = spawn_n(rt, 2)
        rt.finish()
        with pytest.raises(SchedulerError, match="retain_tasks"):
            rt.release_tasks(ts)

    def test_non_retaining_scheduler_recycles(self):
        from repro.runtime.task import task_slab

        rt = Scheduler(
            policy=SignificanceAgnostic(),
            n_workers=2,
            retain_tasks=False,
        )
        assert not rt.retains_tasks
        ts = [rt.spawn(_ident, i, cost=SMALL_COST) for i in range(4)]
        rt.taskwait()
        assert rt.tasks == []  # nothing pinned by the scheduler
        assert [t.result for t in ts] == [0, 1, 2, 3]
        before = len(task_slab())
        rt.release_tasks(ts)
        assert len(task_slab()) >= before
        rt.finish()

    def test_recycled_spawns_reuse_storage(self):
        rt = Scheduler(
            policy=SignificanceAgnostic(),
            n_workers=2,
            retain_tasks=False,
        )
        a = rt.spawn(_ident, 1, cost=SMALL_COST)
        rt.taskwait()
        rt.release_tasks([a])
        b = rt.spawn(_ident, 2, cost=SMALL_COST)
        rt.taskwait()
        assert b.result == 2
        rt.finish()

    def test_report_counts_survive_recycling(self):
        rt = Scheduler(
            policy=SignificanceAgnostic(),
            n_workers=2,
            retain_tasks=False,
        )
        for i in range(6):
            rt.spawn(_ident, i, cost=SMALL_COST)
        report = rt.finish()
        assert report.tasks_total == 6
