"""The process-pool execution backend.

Bodies run in worker processes; these tests cover what is genuinely
different from the in-process engines: payload marshalling, result and
out-argument write-back, dependence release across process boundaries,
and the spec-string wiring through config/experiment layers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.experiment import ExperimentSpec, run_one
from repro.runtime.errors import SchedulerError
from repro.runtime.process_engine import ProcessPoolEngine
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import TaskCost, ref

COST = TaskCost(10_000.0, 1_000.0)


def procpool(policy="accurate", workers=2, **kw):
    return Scheduler(
        policy=policy, n_workers=workers, engine="process", **kw
    )


# --- module-level bodies: the picklability contract -------------------
def square(x):
    return x * x


def write_row(res, i):
    res[i, :] = i + 1


def append_item(log, item):
    log.append(item)


def set_key(d, key, value):
    d[key] = value


def approx_half(x):
    return x // 2


def negate(a):
    a[...] = -a


def fill_value(a, v):
    a[...] = v


def toggle(mask):
    mask[...] = ~mask


def bump_struct(rec):
    rec["x"] += 0.5
    rec["y"] += 1


class TestProcessExecution:
    def test_results_marshalled_back(self):
        rt = procpool()
        tasks = [rt.spawn(square, i, cost=COST) for i in range(10)]
        report = rt.finish()
        assert [t.result for t in tasks] == [i * i for i in range(10)]
        assert report.tasks_total == 10
        assert len(report.trace.segments) == 10

    def test_spec_string_and_registry(self):
        from repro.registry import available, resolve

        assert "process" in available("engine")
        rt = Scheduler(RuntimeConfig(engine="process", n_workers=2))
        assert isinstance(rt.engine, ProcessPoolEngine)
        rt.finish()
        # kwargs flow through the spec grammar.
        rt2 = Scheduler(
            policy="accurate", n_workers=2, engine="process:max_procs=1"
        )
        assert rt2.engine.max_procs == 1
        rt2.spawn(square, 3, cost=COST)
        rt2.finish()
        assert resolve is not None  # imported API exists

    def test_ndarray_writeback_disjoint_rows_merge(self):
        # The Sobel pattern: parallel tasks each mutate one row of a
        # shared array in their own process; the diff write-back must
        # merge all rows, not last-writer-win.
        rt = procpool(workers=4)
        res = np.zeros((8, 4), dtype=np.int64)
        for i in range(8):
            rt.spawn(
                write_row, res, i, out=[ref(res, region=i)], cost=COST
            )
        rt.finish()
        expected = np.arange(1, 9).reshape(-1, 1) * np.ones(
            (8, 4), dtype=np.int64
        )
        assert np.array_equal(res, expected)

    def test_list_writeback_with_dependence_chain(self):
        rt = procpool(workers=4)
        log: list = []
        for i in range(6):
            # out on the same object serializes the chain (WAW).
            rt.spawn(append_item, log, i, out=[ref(log)], cost=COST)
        rt.finish()
        assert log == list(range(6))

    def test_dict_writeback(self):
        rt = procpool()
        d: dict = {}
        for i in range(4):
            rt.spawn(set_key, d, f"k{i}", i, out=[ref(d)], cost=COST)
        rt.finish()
        assert d == {"k0": 0, "k1": 1, "k2": 2, "k3": 3}

    def test_dependences_enforced_across_processes(self):
        rt = procpool(workers=4)
        data = np.zeros(1)
        order: list = []
        for tag in range(8):
            rt.spawn(
                append_item, order, tag, out=[ref(data)], cost=COST
            )
        rt.finish()
        # The out-ref chain on `data` orders the tasks; `order` itself
        # is written back because it aliases no clause -> stays local.
        # (It is mutated in children; without an out clause the master
        # copy is untouched, which is exactly the documented contract.)
        assert order == []

    def test_unpicklable_body_raises_clear_error(self):
        rt = procpool()
        rt.spawn(lambda: 1, cost=COST)
        with pytest.raises(SchedulerError, match="picklable"):
            rt.finish()

    def test_body_exceptions_propagate(self):
        rt = procpool()

        def finishes():
            rt.finish()

        rt.spawn(np.linalg.inv, np.zeros((2, 2)), cost=COST)
        with pytest.raises(np.linalg.LinAlgError):
            finishes()

    def test_dropped_tasks_run_inline(self):
        rt = procpool(policy="gtb:buffer_size=4")
        rt.init_group("g", ratio=0.0)
        for i in range(8):
            rt.spawn(square, i, significance=0.5, label="g", cost=COST)
        report = rt.finish()
        assert report.dropped_tasks == 8
        # Nothing executed remotely: the pool was never started.
        assert report.host_seconds == 0.0

    def test_approxfun_runs_remotely(self):
        rt = procpool(policy="gtb:buffer_size=4")
        rt.init_group("g", ratio=0.5)
        tasks = [
            rt.spawn(
                square,
                i,
                significance=(i % 9 + 1) / 10.0,
                approxfun=approx_half,
                label="g",
                cost=COST,
            )
            for i in range(8)
        ]
        report = rt.finish()
        assert report.accurate_tasks == 4
        assert report.approximate_tasks == 4
        for t in tasks:
            assert t.result in (t.args[0] ** 2, t.args[0] // 2)

    def test_group_barrier(self):
        rt = procpool(workers=2)
        ts = [
            rt.spawn(square, i, label="g", cost=COST) for i in range(10)
        ]
        rt.taskwait(label="g")
        assert all(t.result == t.args[0] ** 2 for t in ts)
        rt.finish()

    def test_stall_is_detected(self):
        rt = procpool()
        engine = rt.engine
        with pytest.raises(SchedulerError, match="stalled"):
            engine.run_until(lambda: False, "never")
        rt._finished = True  # skip finish in teardown paths

    def test_worker_cap_vs_machine(self):
        from repro.energy.machine_model import XEON_E5_2650

        with pytest.raises(SchedulerError, match="exceed"):
            Scheduler(
                policy="accurate",
                n_workers=10,
                machine=XEON_E5_2650.with_workers(2),  # one 8-core socket
                engine="process",
            )


class TestWriteBackLayouts:
    """Change-diff write-back across dtypes and memory layouts.

    Regression: the diff protocol used to assume C-contiguous
    payloads.  It now enumerates elements in logical C order (so
    Fortran-ordered and strided parents round-trip), replaces 0-d and
    non-diffable arrays wholesale, and rejects read-only parents with
    a clear error instead of corrupting or silently dropping writes.
    """

    def test_fortran_order_roundtrip(self):
        rt = procpool()
        a = np.asfortranarray(np.arange(12.0).reshape(3, 4))
        rt.spawn(negate, a, out=[ref(a)], cost=COST)
        rt.finish()
        assert np.array_equal(a, -np.arange(12.0).reshape(3, 4))
        assert a.flags.f_contiguous

    def test_strided_view_writes_through_to_base(self):
        rt = procpool()
        base = np.zeros(16)
        view = base[::2]
        rt.spawn(fill_value, view, 3.0, out=[ref(view)], cost=COST)
        rt.finish()
        assert np.array_equal(base[::2], np.full(8, 3.0))
        assert base[1::2].sum() == 0.0  # untouched interleaved lanes

    def test_bool_dtype(self):
        rt = procpool()
        mask = np.array([True, False, True, False])
        rt.spawn(toggle, mask, out=[ref(mask)], cost=COST)
        rt.finish()
        assert mask.tolist() == [False, True, False, True]

    def test_structured_dtype(self):
        rt = procpool()
        rec = np.zeros(3, dtype=[("x", "f8"), ("y", "i4")])
        rt.spawn(bump_struct, rec, out=[ref(rec)], cost=COST)
        rt.finish()
        assert rec["x"].tolist() == [0.5, 0.5, 0.5]
        assert rec["y"].tolist() == [1, 1, 1]

    def test_zero_d_array_replaced_wholesale(self):
        rt = procpool()
        scalar = np.array(5.0)
        rt.spawn(fill_value, scalar, 7.0, out=[ref(scalar)], cost=COST)
        rt.finish()
        assert scalar.shape == () and float(scalar) == 7.0

    def test_readonly_parent_is_a_clear_error(self):
        rt = procpool()
        frozen = np.zeros(4)
        frozen.flags.writeable = False
        rt.spawn(fill_value, frozen, 1.0, out=[ref(frozen)], cost=COST)
        with pytest.raises(SchedulerError, match="writable in the parent"):
            rt.finish()


class TestFig2CellsAcrossBackends:
    """The acceptance run: one fig-2 experiment cell per backend."""

    def test_sobel_cells_run_with_identical_quality(self):
        rows = {}
        engines = (
            "simulated",
            "threaded",
            "process",
            "process:shm=true",
        )
        for engine in engines:
            spec = ExperimentSpec(
                workload="sobel",
                param=0.7,
                small=True,
                config=RuntimeConfig(
                    policy="gtb:buffer_size=16",
                    n_workers=4,
                    engine=engine,
                ),
            )
            row = run_one(spec).to_row()
            assert row["engine"] == engine
            assert row["tasks_total"] == 62
            assert row["energy_j"] > 0
            assert row["makespan_s"] > 0
            rows[engine] = row
        # GTB stamps decisions deterministically on the master, the
        # process backend writes mutated rows back, and the shm data
        # plane maps the same bytes instead of copying them — so every
        # backend must compute the *same* output image -> identical
        # quality (PSNR^-1) values (bit-identical acceptance).
        qualities = {r["quality_value"] for r in rows.values()}
        assert len(qualities) == 1

    def test_row_schemas_identical(self):
        rows = []
        for engine in ("simulated", "threaded", "process"):
            spec = ExperimentSpec(
                workload="sobel",
                param=0.7,
                small=True,
                config=RuntimeConfig(n_workers=2, engine=engine),
            )
            rows.append(run_one(spec).to_row())
        keys = {frozenset(r) for r in rows}
        assert len(keys) == 1
