"""Batched spawn: ``Scheduler.spawn_many`` and ``sig_task.map``.

The batch path must be semantically equivalent to a spawn loop (same
decisions, same dependence order, same counters) while being measurably
cheaper on the master timeline — the ≥1.5× bench target, asserted here
with a safety margin.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.api import Runtime, sig_task, taskwait
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import TaskCost, TaskState, ref

COST = TaskCost(10_000.0, 1_000.0)


def _val(i):
    return i * 3


def _appr(i):
    return i


class TestSpawnManySemantics:
    def test_results_and_counters(self, scheduler):
        tasks = scheduler.spawn_many(
            _val, [(i,) for i in range(10)], cost=COST
        )
        report = scheduler.finish()
        assert [t.result for t in tasks] == [i * 3 for i in range(10)]
        assert report.tasks_total == 10
        assert report.accurate_tasks == 10
        assert scheduler.deps.stats.tasks == 10
        assert scheduler.deps.stats.roots == 10

    def test_bare_elements_are_wrapped(self, scheduler):
        tasks = scheduler.spawn_many(_val, range(5), cost=COST)
        scheduler.finish()
        assert [t.result for t in tasks] == [0, 3, 6, 9, 12]

    def test_empty_batch(self, scheduler):
        assert scheduler.spawn_many(_val, []) == []
        report = scheduler.finish()
        assert report.tasks_total == 0

    def test_callable_clauses_evaluated_per_element(self, scheduler):
        tasks = scheduler.spawn_many(
            _val,
            [(i,) for i in range(6)],
            significance=lambda i: (i % 3) / 4.0 + 0.1,
            cost=lambda i: TaskCost(1000.0 * (i + 1)),
        )
        assert [t.significance for t in tasks] == pytest.approx(
            [(i % 3) / 4.0 + 0.1 for i in range(6)]
        )
        assert [t.cost.accurate for t in tasks] == [
            1000.0 * (i + 1) for i in range(6)
        ]
        scheduler.finish()

    def test_group_sequence_and_shared_creation_time(self, scheduler):
        scheduler.init_group("g", ratio=1.0)
        tasks = scheduler.spawn_many(
            _val, [(i,) for i in range(5)], label="g", cost=COST
        )
        assert [t.group_seq for t in tasks] == list(range(5))
        assert len({t.t_created for t in tasks}) == 1
        scheduler.finish()

    def test_matches_spawn_loop_decisions(self):
        """Same stream through both paths -> same decision mix."""

        def mix(batched: bool):
            rt = Scheduler(policy="gtb:buffer_size=8", n_workers=4)
            rt.init_group("g", ratio=0.5)
            sig = lambda i: (i % 9 + 1) / 10.0  # noqa: E731
            if batched:
                rt.spawn_many(
                    _val,
                    [(i,) for i in range(40)],
                    significance=sig,
                    approxfun=_appr,
                    label="g",
                    cost=COST,
                )
            else:
                for i in range(40):
                    rt.spawn(
                        _val,
                        i,
                        significance=sig(i),
                        approxfun=_appr,
                        label="g",
                        cost=COST,
                    )
            r = rt.finish()
            return (
                r.accurate_tasks,
                r.approximate_tasks,
                r.dropped_tasks,
            )

        assert mix(True) == mix(False)

    def test_master_charge_matches_loop(self):
        """The batch charges the same total policy overhead."""
        loop = Scheduler(policy="accurate", n_workers=2)
        for i in range(20):
            loop.spawn(_val, i, cost=COST)
        batch = Scheduler(policy="accurate", n_workers=2)
        batch.spawn_many(_val, [(i,) for i in range(20)], cost=COST)
        assert batch.engine.accounting.master_busy == pytest.approx(
            loop.engine.accounting.master_busy
        )
        loop.finish()
        batch.finish()

    def test_dependences_within_batch(self, scheduler):
        data = np.zeros(1)
        log: list = []

        def step(i):
            log.append(i)

        scheduler.spawn_many(
            step,
            [(i,) for i in range(8)],
            out=lambda i: [ref(data)],
            cost=COST,
        )
        scheduler.finish()
        assert log == list(range(8))

    def test_constant_clause_refs_shared(self, scheduler):
        img = np.zeros((4, 4))
        tasks = scheduler.spawn_many(
            _val, [(i,) for i in range(3)], in_=[img], cost=COST
        )
        assert tasks[0].ins == tasks[1].ins == tasks[2].ins
        scheduler.finish()

    def test_pending_tasks_parked_until_release(self, scheduler):
        data = np.zeros(1)
        first = scheduler.spawn(_val, 0, out=[ref(data)], cost=COST)
        batch = scheduler.spawn_many(
            _val, [(1,), (2,)], in_=[data], cost=COST
        )
        assert all(
            t.state in (TaskState.PENDING, TaskState.QUEUED)
            for t in batch
        )
        scheduler.finish()
        assert first.state is TaskState.FINISHED
        assert all(t.state is TaskState.FINISHED for t in batch)

    def test_after_finish_raises(self, scheduler):
        scheduler.finish()
        from repro.runtime.errors import SchedulerError

        with pytest.raises(SchedulerError):
            scheduler.spawn_many(_val, [(1,)])

    @pytest.mark.parametrize("engine", ["threaded", "process"])
    def test_spawn_many_on_real_backends(self, engine):
        rt = Scheduler(policy="accurate", n_workers=2, engine=engine)
        tasks = rt.spawn_many(_val, [(i,) for i in range(12)], cost=COST)
        rt.finish()
        assert [t.result for t in tasks] == [i * 3 for i in range(12)]

    def test_lqh_batch_respects_ratio(self):
        rt = Scheduler(policy="lqh", n_workers=4)
        rt.init_group("g", ratio=0.5)
        rt.spawn_many(
            _val,
            [(i,) for i in range(400)],
            significance=lambda i: (i % 9 + 1) / 10.0,
            approxfun=_appr,
            label="g",
            cost=COST,
        )
        report = rt.finish()
        assert 0.3 < report.accurate_tasks / 400 < 0.7


class TestSigTaskMap:
    def test_map_without_runtime_runs_bodies(self):
        @sig_task(label="m")
        def body(i):
            return i + 100

        assert body.map(range(3)) == [100, 101, 102]

    def test_map_spawns_through_batch_path(self):
        @sig_task(
            label="m",
            significance=lambda i: (i % 9 + 1) / 10.0,
            cost=COST,
        )
        def body(i):
            return i * 2

        with Runtime(policy="accurate", n_workers=2) as rt:
            tasks = body.map(range(10))
            taskwait(label="m")
        assert [t.result for t in tasks] == [i * 2 for i in range(10)]
        assert rt.report.tasks_total == 10

    def test_clause_callables_see_shared_kwargs(self):
        """Clause callables get kwargs, matching single-call clauses."""

        @sig_task(
            label="m",
            significance=lambda i, b=0: (i + b) / 10.0,
            cost=COST,
        )
        def body(i, b=0):
            return i + b

        with Runtime(policy="accurate", n_workers=2):
            tasks = body.map([(1,)], b=2)
        assert tasks[0].significance == pytest.approx(0.3)
        assert tasks[0].result == 3
        # A clause lambda with a *required* kwarg-supplied parameter
        # must also work, exactly as it does for single calls.

        @sig_task(significance=lambda i, b: (i + b) / 10.0, cost=COST)
        def body2(i, b):
            return i * b

        with Runtime(policy="accurate", n_workers=2):
            tasks2 = body2.map([(2,)], b=3)
        assert tasks2[0].significance == pytest.approx(0.5)
        assert tasks2[0].result == 6

    def test_map_clause_overrides_and_kwargs(self):
        @sig_task(label="m", cost=COST)
        def body(i, offset=0):
            return i + offset

        with Runtime(policy="accurate", n_workers=2) as rt:
            tasks = body.map(range(4), label="other", offset=5)
        assert [t.result for t in tasks] == [5, 6, 7, 8]
        assert all(t.group == "other" for t in tasks)
        assert rt.report.groups.keys() == {"other"}


class TestSpawnManyThroughput:
    def test_batch_beats_loop(self):
        """The bench acceptance bar (≥1.5×), with safety margin."""
        n = 3000
        cost = TaskCost(2000.0)

        def timed(fn):
            best = float("inf")
            for _ in range(3):
                rt = Scheduler(policy="accurate", n_workers=16)
                t0 = time.perf_counter()
                fn(rt)
                best = min(best, time.perf_counter() - t0)
            return best

        def loop(rt):
            spawn = rt.spawn
            for i in range(n):
                spawn(
                    _val, i, significance=(i % 101) / 100.0, cost=cost
                )

        def batch(rt):
            rt.spawn_many(
                _val,
                [(i,) for i in range(n)],
                significance=lambda i: (i % 101) / 100.0,
                cost=cost,
            )

        loop_s = timed(loop)
        batch_s = timed(batch)
        # Bench reports ~2x; assert 1.3x so a noisy CI host cannot
        # flake the suite while still catching a collapsed fast path.
        assert loop_s / batch_s > 1.3
