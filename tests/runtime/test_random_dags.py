"""Property-based scheduling tests over random task DAGs.

Hypothesis generates arbitrary dependence structures (random data
objects read/written by random tasks) and the properties assert the
runtime's fundamental guarantees, for every policy:

* no deadlock: every spawned task finishes;
* dataflow order: a reader observes the value of the last writer that
  program order placed before it;
* determinism: identical programs produce identical schedules.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.scheduler import Scheduler
from repro.runtime.task import TaskCost, TaskState, ref

COST = TaskCost(5_000.0, 500.0)

# A program = list of tasks; each task reads some objects and writes
# some objects, drawn from a small object pool.
task_specs = st.lists(
    st.tuples(
        st.lists(st.integers(0, 5), max_size=3),  # reads
        st.lists(st.integers(0, 5), max_size=2),  # writes
        st.floats(min_value=0.05, max_value=0.95),  # significance
    ),
    min_size=1,
    max_size=40,
)

policy_specs = st.sampled_from(["gtb", "gtb-max", "lqh", "agnostic"])


def run_program(specs, policy_spec, workers=3):
    """Execute the random program; log write order per object."""
    rt = Scheduler(policy=policy_spec, n_workers=workers)
    objects = [np.zeros(1) for _ in range(6)]
    observed: list[tuple[int, int, tuple[float, ...]]] = []
    tasks = []

    def body(idx, reads, writes):
        seen = tuple(float(objects[r][0]) for r in reads)
        for w in writes:
            objects[w][0] = idx
        observed.append((idx, 0, seen))

    for idx, (reads, writes, sig) in enumerate(specs):
        tasks.append(
            rt.spawn(
                body,
                idx,
                reads,
                writes,
                significance=sig,
                approxfun=None,
                in_=[ref(objects[r]) for r in reads],
                out=[ref(objects[w]) for w in writes],
                cost=COST,
            )
        )
    report = rt.finish()
    return tasks, observed, report, objects


@settings(max_examples=40, deadline=None)
@given(task_specs, policy_specs)
def test_no_deadlock_every_task_finishes(specs, policy_spec):
    tasks, observed, report, _ = run_program(specs, policy_spec)
    assert all(t.state is TaskState.FINISHED for t in tasks)
    assert len(observed) == len(specs)
    assert report.tasks_total == len(specs)


@settings(max_examples=40, deadline=None)
@given(task_specs, policy_specs)
def test_dataflow_respected(specs, policy_spec):
    """Each reader sees exactly the last program-order writer's value.

    Because every task that touches object ``o`` is totally ordered by
    the RAW/WAR/WAW edges on ``o``, the dataflow semantics of the
    parallel execution must equal sequential program order.
    """
    _, observed, _, _ = run_program(specs, policy_spec)
    # Reconstruct expected values by sequential simulation.
    vals = [0.0] * 6
    expected = {}
    for idx, (reads, writes, _sig) in enumerate(specs):
        expected[idx] = tuple(vals[r] for r in reads)
        for w in writes:
            vals[w] = float(idx)
    for idx, _, seen in observed:
        assert seen == expected[idx], (
            f"task {idx} read {seen}, expected {expected[idx]}"
        )


@settings(max_examples=20, deadline=None)
@given(task_specs, policy_specs)
def test_deterministic_replay(specs, policy_spec):
    a = run_program(specs, policy_spec)
    b = run_program(specs, policy_spec)
    assert a[1] == b[1]  # identical observation order
    assert a[2].makespan_s == b[2].makespan_s
    assert a[2].energy_j == b[2].energy_j


@settings(max_examples=25, deadline=None)
@given(task_specs)
def test_final_object_state_matches_sequential(specs):
    """Parallel execution leaves objects exactly as sequential would."""
    _, _, _, objects = run_program(specs, "agnostic", workers=4)
    vals = [0.0] * 6
    for idx, (_reads, writes, _sig) in enumerate(specs):
        for w in writes:
            vals[w] = float(idx)
    assert [float(o[0]) for o in objects] == vals
