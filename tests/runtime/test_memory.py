"""The zero-copy data plane: pools, refs, exporter, leak discipline.

Satellite guarantee (ISSUE 7): no leaked ``/dev/shm`` segments or
``ResourceWarning``s after pool close/eviction — including the
broken-pool eviction path and cluster shard shutdown.  Plus the unit
surface of :mod:`repro.runtime.memory`: bucketed segment reuse,
ArrayRef round-trips for non-trivial layouts, and the exporter's
three paths (reference / promote / pickle).
"""

from __future__ import annotations

import glob
import os
import warnings

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.runtime.errors import SchedulerError
from repro.runtime.memory import (
    SEGMENT_PREFIX,
    ArrayExporter,
    SharedArrayPool,
    active_segment_names,
    attach_array,
    discard_array_pool,
    shared_array_pool,
    shutdown_array_pools,
)
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import TaskCost

COST = TaskCost(10_000.0, 1_000.0)


def shm_segments() -> list[str]:
    """Names of this module's segments currently alive in /dev/shm."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return sorted(
        os.path.basename(p)
        for p in glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")
    )


@pytest.fixture(autouse=True)
def _no_leaks():
    """Every test must leave /dev/shm as it found it — and must not
    emit ResourceWarnings while getting there."""
    before = shm_segments()
    with warnings.catch_warnings():
        warnings.simplefilter("error", ResourceWarning)
        yield
        shutdown_array_pools()
    assert shm_segments() == before


# --- module-level bodies (picklability contract) ----------------------
def block_sum(block):
    return float(block.sum())


def fill_block(block, value):
    block[...] = value


def die_hard():  # pragma: no cover - runs in a child it kills
    os._exit(13)


class TestSharedArrayPool:
    def test_bucketed_reuse(self):
        pool = SharedArrayPool()
        seg = pool.acquire(5000)  # -> 8192 bucket
        assert seg.size == 8192
        assert seg.name.startswith(SEGMENT_PREFIX)
        pool.release(seg)
        seg2 = pool.acquire(8000)  # same bucket -> same segment back
        assert seg2.name == seg.name
        assert pool.segments_created == 1
        assert pool.segments_reused == 1
        pool.release(seg2)
        pool.close()

    def test_lease_accounting_and_close_unlinks(self):
        pool = SharedArrayPool(tag="t")
        a = pool.ndarray((64, 64))
        b = pool.acquire(4096)
        assert pool.leased_count == 2 and pool.free_count == 0
        pool.release(b)
        assert pool.leased_count == 1 and pool.free_count == 1
        assert len(pool.segment_names()) == 2
        assert a.sum() == 0.0  # fresh allocations read as zeros
        pool.close()
        pool.close()  # idempotent
        assert pool.segment_names() == []

    def test_release_array_returns_segment(self):
        pool = SharedArrayPool()
        arr = pool.ndarray(1024, dtype=np.int32)
        assert pool.leased_count == 1
        pool.release_array(arr)
        assert pool.leased_count == 0 and pool.free_count == 1
        with pytest.raises(SchedulerError, match="not a live"):
            pool.release_array(arr)
        pool.close()

    def test_object_dtype_rejected(self):
        pool = SharedArrayPool()
        with pytest.raises(SchedulerError, match="object-dtype"):
            pool.ndarray(4, dtype=object)
        pool.close()

    def test_closed_pool_refuses_leases(self):
        pool = SharedArrayPool()
        pool.close()
        with pytest.raises(SchedulerError, match="closed"):
            pool.acquire(100)

    def test_global_pools_are_tag_partitioned(self):
        a = shared_array_pool()
        b = shared_array_pool("shard-0")
        assert a is not b
        assert shared_array_pool() is a
        a.ndarray(128)
        b.ndarray(128)
        assert len(active_segment_names()) == 2
        discard_array_pool("shard-0")
        assert len(active_segment_names()) == 1
        shutdown_array_pools()
        assert active_segment_names() == []
        # A closed global pool is transparently rebuilt.
        assert shared_array_pool() is not a


class TestArrayRefRoundTrip:
    def test_views_resolve_identically(self):
        pool = shared_array_pool()
        base = pool.ndarray((16, 8))
        base[...] = np.arange(128.0).reshape(16, 8)
        exporter = ArrayExporter(pool, min_bytes=0)
        for view in (
            base,
            base[3:9],           # row slice
            base[::2, 1::3],     # strided 2-d view
            base.T,              # transposed (F-ordered strides)
        ):
            args, _, _ = exporter.encode((view,), {}, [])
            (ref,) = args
            got = attach_array(ref)
            assert np.array_equal(got, view)
            assert not got.flags.writeable  # in()-refs are read-only

    def test_writable_ref_writes_land_in_parent(self):
        pool = shared_array_pool()
        base = pool.ndarray((8, 8))
        exporter = ArrayExporter(pool, min_bytes=0)
        args, _, slots = exporter.encode(
            (base[2:4],), {}, [("a", 0)]
        )
        assert slots == []  # exported slots leave the diff protocol
        view = attach_array(args[0])
        assert view.flags.writeable
        view[...] = 7.0
        assert np.array_equal(base[2:4], np.full((2, 8), 7.0))
        assert base[4:].sum() == 0.0


class TestArrayExporter:
    def test_pool_backed_is_zero_copy(self):
        pool = shared_array_pool()
        arr = pool.ndarray((32, 32))
        exporter = ArrayExporter(pool)
        exporter.encode((arr,), {}, [])
        st = exporter.stats
        assert st.arrays_referenced == 1
        assert st.bytes_referenced == arr.nbytes
        assert st.bytes_not_copied_frac == 1.0

    def test_small_and_unsupported_arrays_pickle(self):
        pool = shared_array_pool()
        exporter = ArrayExporter(pool, min_bytes=4096)
        small = np.ones(4)
        zero_d = np.float64(3.0)[...]
        objs = np.array([object()])
        neg = np.arange(4096.0)[::-1]
        for value in (small, np.asarray(zero_d), objs, neg):
            args, _, _ = exporter.encode((value,), {}, [])
            assert args[0] is value  # untouched -> pickled
        assert exporter.stats.arrays_pickled == 4
        assert exporter.stats.arrays_referenced == 0

    def test_promotion_copies_once_per_phase(self):
        pool = shared_array_pool()
        exporter = ArrayExporter(pool, min_bytes=0)
        foreign = np.arange(64.0 * 64).reshape(64, 64)
        for i in range(4):
            exporter.encode((foreign[i * 16 : (i + 1) * 16],), {}, [])
        st = exporter.stats
        assert st.arrays_promoted == 1  # one owner, one copy-in
        assert st.bytes_copied_in == foreign.nbytes
        assert st.arrays_referenced == 4
        assert exporter.pending_promotions == 1
        exporter.end_phase()
        assert exporter.pending_promotions == 0
        assert pool.leased_count == 0  # promotion segment recycled

    def test_writable_promotion_syncs_at_end_phase(self):
        pool = shared_array_pool()
        exporter = ArrayExporter(pool, min_bytes=0)
        foreign = np.zeros((8, 8))
        args, _, _ = exporter.encode((foreign,), {}, [("a", 0)])
        attach_array(args[0])[...] = 5.0
        assert foreign.sum() == 0.0  # not yet synced
        exporter.end_phase()
        assert np.array_equal(foreign, np.full((8, 8), 5.0))
        assert exporter.stats.bytes_copied_out == foreign.nbytes

    def test_abort_phase_discards_without_sync(self):
        pool = shared_array_pool()
        exporter = ArrayExporter(pool, min_bytes=0)
        foreign = np.zeros(64)
        args, _, _ = exporter.encode((foreign,), {}, [("a", 0)])
        attach_array(args[0])[...] = 9.0
        exporter.abort_phase()
        assert foreign.sum() == 0.0
        assert pool.leased_count == 0

    def test_readonly_owner_never_promoted_writable(self):
        pool = shared_array_pool()
        exporter = ArrayExporter(pool, min_bytes=0)
        frozen = np.zeros(512)
        frozen.flags.writeable = False
        args, _, slots = exporter.encode((frozen,), {}, [("a", 0)])
        assert args[0] is frozen  # pickled: slot stays in the diff
        assert slots == [("a", 0)]


class TestEngineLifecycle:
    """The shm engine leaves nothing behind: per-run and on crashes."""

    def test_leases_return_after_finish(self):
        sched = Scheduler(
            config=RuntimeConfig(engine="process:shm=true", n_workers=2)
        )
        pool = shared_array_pool()
        img = pool.ndarray((128, 64))
        tasks = sched.spawn_many(
            block_sum,
            [(img[i * 16 : (i + 1) * 16],) for i in range(8)],
            cost=COST,
        )
        sched.finish()
        assert sum(t.result for t in tasks) == 0.0
        # Only the user's own array still leases a segment.
        assert pool.leased_count == 1
        assert sched.engine.data_plane_stats.bytes_not_copied_frac == 1.0
        pool.release_array(img)

    def test_promotions_recycle_at_quiescent_barrier(self):
        sched = Scheduler(
            config=RuntimeConfig(engine="process:shm=true", n_workers=2)
        )
        foreign = np.zeros((64, 64))
        sched.spawn_many(
            fill_block,
            [(foreign[i * 16 : (i + 1) * 16], float(i + 1)) for i in range(4)],
            out=lambda block, v: [block],
            cost=COST,
        )
        sched.finish()
        expected = np.repeat(
            np.arange(1.0, 5.0), 16
        ).reshape(64, 1) * np.ones((64, 64))
        assert np.array_equal(foreign, expected)
        assert shared_array_pool().leased_count == 0
        st = sched.engine.data_plane_stats
        assert st.arrays_promoted == 1
        assert st.bytes_copied_out == foreign.nbytes

    def test_broken_pool_aborts_phase_and_recycles(self):
        sched = Scheduler(
            config=RuntimeConfig(engine="process:shm=true", n_workers=2)
        )
        foreign = np.zeros(4096)
        sched.spawn(
            fill_block, foreign, 1.0, out=[foreign], cost=COST
        )
        sched.taskwait()
        sched.spawn(die_hard, cost=COST)
        with pytest.raises(SchedulerError, match="pool died"):
            sched.finish()
        exporter = sched.engine._exporter
        assert exporter.pending_promotions == 0
        assert shared_array_pool().leased_count == 0

    def test_cluster_shard_shutdown_leaves_no_segments(self):
        from repro.cluster.service import ClusterService

        cs = ClusterService(
            RuntimeConfig(
                policy="gtb-max",
                n_workers=2,
                engine="process:shm=true",
            ),
            cluster=2,
        )
        for i in range(4):
            report = cs.submit(
                {
                    "tenant": "standard",
                    "kernel": "pi",
                    "args": {"samples": 2000, "chunks": 4, "seed": i},
                }
            )
            assert report.code in (0, 200)
        while cs.pending_jobs:
            cs.flush()
        cs.close()
        # Every shard's exporter ended its phases: nothing leased.
        for name in active_segment_names():
            assert False, f"segment still live: {name}"
        shutdown_array_pools()
        assert shm_segments() == []
