"""Unit tests for OpenMP-4.0-style dependence tracking."""

import numpy as np
import pytest

from repro.runtime.dependencies import DependenceTracker
from repro.runtime.task import Task, TaskState, ref


def mk(ins=(), outs=()):
    return Task(fn=lambda: None, ins=tuple(ins), outs=tuple(outs))


@pytest.fixture
def tracker():
    return DependenceTracker()


class TestBasicEdges:
    def test_independent_tasks_are_ready(self, tracker):
        a, b = mk(), mk()
        assert tracker.register(a) and tracker.register(b)
        assert tracker.stats.edges == 0
        assert tracker.stats.roots == 2

    def test_raw_dependence(self, tracker):
        d = np.zeros(4)
        w = mk(outs=[ref(d)])
        r = mk(ins=[ref(d)])
        assert tracker.register(w)
        assert not tracker.register(r)
        assert r.unmet_deps == 1
        assert tracker.stats.raw_edges == 1

    def test_war_dependence(self, tracker):
        d = np.zeros(4)
        r = mk(ins=[ref(d)])
        w = mk(outs=[ref(d)])
        tracker.register(r)
        assert not tracker.register(w)
        assert tracker.stats.war_edges == 1

    def test_waw_dependence(self, tracker):
        d = np.zeros(4)
        w1 = mk(outs=[ref(d)])
        w2 = mk(outs=[ref(d)])
        tracker.register(w1)
        assert not tracker.register(w2)
        assert tracker.stats.waw_edges == 1

    def test_multiple_readers_one_writer(self, tracker):
        d = np.zeros(4)
        w = mk(outs=[ref(d)])
        readers = [mk(ins=[ref(d)]) for _ in range(3)]
        tracker.register(w)
        for r in readers:
            assert not tracker.register(r)
        assert len(w.successors) == 3

    def test_writer_after_readers_waits_for_all(self, tracker):
        d = np.zeros(4)
        readers = [mk(ins=[ref(d)]) for _ in range(3)]
        for r in readers:
            tracker.register(r)
        w = mk(outs=[ref(d)])
        tracker.register(w)
        assert w.unmet_deps == 3


class TestRetire:
    def test_retire_releases_ready_successors(self, tracker):
        d = np.zeros(4)
        w = mk(outs=[ref(d)])
        r = mk(ins=[ref(d)])
        tracker.register(w)
        tracker.register(r)
        w.state = TaskState.FINISHED
        released = tracker.retire(w)
        assert released == [r]
        assert r.unmet_deps == 0

    def test_retire_partial_release(self, tracker):
        d1, d2 = np.zeros(2), np.zeros(2)
        w1 = mk(outs=[ref(d1)])
        w2 = mk(outs=[ref(d2)])
        r = mk(ins=[ref(d1), ref(d2)])
        tracker.register(w1)
        tracker.register(w2)
        tracker.register(r)
        assert r.unmet_deps == 2
        w1.state = TaskState.FINISHED
        assert tracker.retire(w1) == []
        w2.state = TaskState.FINISHED
        assert tracker.retire(w2) == [r]

    def test_finished_predecessor_creates_no_edge(self, tracker):
        d = np.zeros(4)
        w = mk(outs=[ref(d)])
        tracker.register(w)
        w.state = TaskState.FINISHED
        tracker.retire(w)
        r = mk(ins=[ref(d)])
        assert tracker.register(r)
        assert r.unmet_deps == 0


class TestAliasing:
    def test_views_alias(self, tracker):
        a = np.zeros((4, 4))
        w = mk(outs=[ref(a[0:2])])
        r = mk(ins=[ref(a[2:4])])  # same base buffer
        tracker.register(w)
        assert not tracker.register(r)

    def test_regions_do_not_alias(self, tracker):
        a = np.zeros((4, 4))
        w1 = mk(outs=[ref(a, region=0)])
        w2 = mk(outs=[ref(a, region=1)])
        tracker.register(w1)
        assert tracker.register(w2)  # no WAW: disjoint regions

    def test_chain_of_writers(self, tracker):
        d = np.zeros(4)
        tasks = [mk(outs=[ref(d)]) for _ in range(5)]
        for t in tasks:
            tracker.register(t)
        # each writer depends only on the previous one
        assert [t.unmet_deps for t in tasks] == [0, 1, 1, 1, 1]

    def test_no_duplicate_edges(self, tracker):
        d = np.zeros(4)
        w = mk(outs=[ref(d)])
        r = mk(ins=[ref(d), ref(d)])  # same dep listed twice
        tracker.register(w)
        tracker.register(r)
        assert r.unmet_deps == 1

    def test_self_dependence_ignored(self, tracker):
        d = np.zeros(4)
        t = mk(ins=[ref(d)], outs=[ref(d)])  # in+out of same object
        assert tracker.register(t)
        assert t.unmet_deps == 0


class TestWaitersOn:
    def test_waiters_on_object(self, tracker):
        d = np.zeros(4)
        w = mk(outs=[ref(d)])
        tracker.register(w)
        r = mk(ins=[ref(d)])
        tracker.register(r)
        waiters = tracker.waiters_on(ref(d))
        assert w in waiters and r in waiters

    def test_waiters_on_untracked_object_empty(self, tracker):
        assert tracker.waiters_on(ref(np.zeros(1))) == []

    def test_reset_clears_state(self, tracker):
        d = np.zeros(4)
        tracker.register(mk(outs=[ref(d)]))
        tracker.reset()
        r = mk(ins=[ref(d)])
        assert tracker.register(r)


class TestDiamond:
    def test_diamond_dag(self, tracker):
        """   a
             / \\        a writes d1,d2; b reads d1, c reads d2;
            b   c        both write into d3 halves (regions); e reads d3.
             \\ /
              e
        """
        d1, d2, d3 = np.zeros(2), np.zeros(2), np.zeros(4)
        a = mk(outs=[ref(d1), ref(d2)])
        b = mk(ins=[ref(d1)], outs=[ref(d3, region=0)])
        c = mk(ins=[ref(d2)], outs=[ref(d3, region=1)])
        e = mk(ins=[ref(d3, region=0), ref(d3, region=1)])
        for t in (a, b, c, e):
            tracker.register(t)
        assert a.unmet_deps == 0
        assert b.unmet_deps == 1 and c.unmet_deps == 1
        assert e.unmet_deps == 2
        a.state = TaskState.FINISHED
        released = tracker.retire(a)
        assert set(released) == {b, c}
