"""Unit tests for task groups and the Table 2 statistics."""

import pytest

from repro.runtime.errors import GroupError, RatioError
from repro.runtime.groups import GLOBAL_GROUP, GroupRecord, GroupRegistry
from repro.runtime.task import ExecutionKind, Task


def record(group: GroupRecord, sig: float, kind: ExecutionKind):
    t = Task(fn=lambda: None, significance=sig)
    t.decision = kind
    group.spawned += 1
    group.record(t)


A, X, D = (
    ExecutionKind.ACCURATE,
    ExecutionKind.APPROXIMATE,
    ExecutionKind.DROPPED,
)


class TestGroupRecord:
    def test_ratio_validation(self):
        g = GroupRecord("g")
        with pytest.raises(RatioError):
            g.set_ratio(1.2)
        with pytest.raises(RatioError):
            g.set_ratio(-0.1)
        g.set_ratio(0.35)
        assert g.ratio == 0.35

    def test_outstanding_counts(self):
        g = GroupRecord("g")
        g.spawned = 3
        assert g.outstanding == 3
        record(g, 0.5, A)
        # record() bumps spawned too in this helper; compensate:
        g.spawned -= 1
        assert g.outstanding == 2

    def test_counts_by_kind(self):
        g = GroupRecord("g")
        for kind in (A, A, X, D):
            record(g, 0.5, kind)
        assert g.accurate_count == 2
        assert g.approx_count == 1
        assert g.dropped_count == 1

    def test_achieved_ratio(self):
        g = GroupRecord("g")
        for kind in (A, A, X, X):
            record(g, 0.5, kind)
        assert g.achieved_ratio == 0.5

    def test_achieved_ratio_empty_is_one(self):
        assert GroupRecord("g").achieved_ratio == 1.0


class TestRatioOffset:
    def test_exact_match_zero_offset(self):
        g = GroupRecord("g", ratio=0.5)
        for kind in (A, X, A, X):
            record(g, 0.5, kind)
        assert g.ratio_offset() == pytest.approx(0.0)

    def test_offset_magnitude(self):
        g = GroupRecord("g", ratio=1.0)
        for kind in (A, X, X, X):
            record(g, 0.5, kind)
        assert g.ratio_offset() == pytest.approx(0.75)

    def test_per_epoch_requested_ratio(self):
        """Phase-alternating ratios are judged per epoch (Fluidanimate)."""
        g = GroupRecord("g", ratio=1.0)
        for _ in range(4):
            record(g, 0.5, A)
        g.new_epoch()
        g.set_ratio(0.0)
        for _ in range(4):
            record(g, 0.5, X)
        g.new_epoch()
        assert g.ratio_offset() == pytest.approx(0.0)

    def test_override_requested(self):
        g = GroupRecord("g", ratio=1.0)
        for kind in (A, A, X, X):
            record(g, 0.5, kind)
        assert g.ratio_offset(requested=0.5) == pytest.approx(0.0)


class TestInversions:
    def test_no_inversion_when_order_respected(self):
        g = GroupRecord("g")
        record(g, 0.9, A)
        record(g, 0.8, A)
        record(g, 0.2, X)
        record(g, 0.1, X)
        assert g.inversion_count() == 0

    def test_inversion_detected(self):
        g = GroupRecord("g")
        record(g, 0.9, X)  # more significant task approximated ...
        record(g, 0.1, A)  # ... while less significant ran accurately
        assert g.inversion_count() == 1
        assert g.inversion_pct() == pytest.approx(50.0)

    def test_equal_significance_never_inverts(self):
        g = GroupRecord("g")
        record(g, 0.5, X)
        record(g, 0.5, A)
        record(g, 0.5, X)
        assert g.inversion_count() == 0

    def test_dropped_counts_as_approximate(self):
        g = GroupRecord("g")
        record(g, 0.9, D)
        record(g, 0.1, A)
        assert g.inversion_count() == 1

    def test_epochs_isolate_inversions(self):
        """An accurate task in epoch 2 cannot invert epoch 1 decisions."""
        g = GroupRecord("g")
        record(g, 0.9, X)
        g.new_epoch()
        record(g, 0.1, A)
        g.new_epoch()
        assert g.inversion_count() == 0

    def test_all_approx_epoch_no_inversions(self):
        g = GroupRecord("g")
        for s in (0.1, 0.5, 0.9):
            record(g, s, X)
        assert g.inversion_count() == 0


class TestGroupRegistry:
    def test_lazy_creation(self):
        reg = GroupRegistry()
        g = reg.get("a")
        assert g.name == "a" and "a" in reg

    def test_none_maps_to_global(self):
        reg = GroupRegistry()
        assert reg.get(None).name == GLOBAL_GROUP

    def test_get_nocreate_raises(self):
        reg = GroupRegistry()
        with pytest.raises(GroupError):
            reg.get("missing", create=False)

    def test_init_group_sets_ratio(self):
        reg = GroupRegistry()
        g = reg.init_group("g", ratio=0.25)
        assert g.ratio == 0.25

    def test_outstanding_across_groups(self):
        reg = GroupRegistry()
        reg.get("a").spawned = 2
        reg.get("b").spawned = 3
        assert reg.outstanding() == 5
        assert reg.outstanding("a") == 2

    def test_len_and_names(self):
        reg = GroupRegistry()
        reg.get("a")
        reg.get("b")
        assert len(reg) == 2 and set(reg.names()) == {"a", "b"}

    def test_mean_ratio_offset_ignores_empty_groups(self):
        reg = GroupRegistry()
        reg.init_group("empty", ratio=0.5)
        g = reg.init_group("used", ratio=1.0)
        record(g, 0.5, A)
        assert reg.mean_ratio_offset() == pytest.approx(0.0)

    def test_total_inversion_pct_weighted(self):
        reg = GroupRegistry()
        g1 = reg.get("a")
        record(g1, 0.9, X)
        record(g1, 0.1, A)  # 1 inversion over 2 tasks
        g2 = reg.get("b")
        record(g2, 0.5, A)
        record(g2, 0.5, A)  # 0 over 2
        assert reg.total_inversion_pct() == pytest.approx(25.0)
