"""Shared process pools: one warm executor across sweep cells."""

import pytest

from repro.runtime.pool import (
    discard_shared_pool,
    shared_process_pool,
    shutdown_shared_pools,
)
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import TaskCost


def _noop(i: int) -> int:
    return i


@pytest.fixture(autouse=True)
def _clean_pools():
    yield
    shutdown_shared_pools()


class TestSharedPoolRegistry:
    def test_same_key_same_executor(self):
        a = shared_process_pool(2)
        b = shared_process_pool(2)
        assert a is b

    def test_different_keys_different_executors(self):
        assert shared_process_pool(1) is not shared_process_pool(2)

    def test_discard_makes_fresh(self):
        a = shared_process_pool(2)
        discard_shared_pool(2)
        assert shared_process_pool(2) is not a

    def test_discard_unknown_is_noop(self):
        discard_shared_pool(63, "spawn")

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            shared_process_pool(0)

    def test_shutdown_clears_registry(self):
        a = shared_process_pool(2)
        shutdown_shared_pools()
        assert shared_process_pool(2) is not a


class TestEngineReuse:
    def _run_cell(self, reuse: bool) -> Scheduler:
        engine = (
            "process:max_procs=2,reuse_pool=true"
            if reuse
            else "process:max_procs=2,reuse_pool=false"
        )
        sched = Scheduler(policy="accurate", n_workers=2, engine=engine)
        sched.spawn_many(
            _noop, [(i,) for i in range(6)], cost=TaskCost(1000.0)
        )
        sched.finish()
        return sched

    def test_consecutive_cells_share_one_pool(self):
        first = self._run_cell(reuse=True)
        pool = shared_process_pool(2)
        second = self._run_cell(reuse=True)
        # The registry still holds the same warm executor: neither
        # finish() tore it down.
        assert shared_process_pool(2) is pool
        for sched in (first, second):
            assert all(t.result == t.args[0] for t in sched.tasks)

    def test_private_pool_opt_out(self):
        sched = self._run_cell(reuse=False)
        assert all(t.result == t.args[0] for t in sched.tasks)
        # finish() shut the private pool down and dropped the handle.
        assert sched.engine._pool is None

    def test_reuse_is_the_default(self):
        sched = Scheduler(
            policy="accurate", n_workers=2, engine="process:max_procs=2"
        )
        assert sched.engine.reuse_pool is True
        sched.spawn_many(_noop, [(1,)], cost=TaskCost(1000.0))
        sched.finish()


class TestExperimentFanout:
    def test_parallel_run_uses_shared_pool(self):
        from repro.config import RuntimeConfig
        from repro.experiment import ExperimentSpec, run

        spec = ExperimentSpec(
            workload="sobel",
            param=0.7,
            small=True,
            config=RuntimeConfig(policy="gtb:buffer_size=16"),
        )
        results = run(
            [spec, spec.replace(param=0.3)], parallel=2
        )
        assert len(results) == 2
        # The fan-out executor survives the run() call, warm.
        assert shared_process_pool(2) is shared_process_pool(2)
