"""Periodic engine ticks: the governor's clock on every backend."""

from __future__ import annotations

import pytest

from repro import Scheduler
from repro.runtime.errors import SchedulerError
from repro.runtime.task import TaskCost


def _noop():
    return None


class TestSimulatedTicks:
    def test_ticks_fire_at_the_configured_interval(self):
        sched = Scheduler(policy="accurate", n_workers=2)
        times: list[float] = []
        sched.engine.set_tick(0.25, times.append)
        cost = TaskCost(2.0e9)  # 1 virtual second each
        for _ in range(4):
            sched.spawn(_noop, cost=cost)
        sched.finish()
        assert times, "no tick ever fired"
        # Ticks land on the virtual grid 0.25, 0.5, ... (first arming
        # happens at the first enqueue, whose master time is ~0).
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert all(d == pytest.approx(0.25, abs=1e-9) for d in deltas)
        # Run spans ~2 virtual seconds on 2 workers -> ~7 ticks.
        assert 5 <= len(times) <= 9

    def test_ticks_do_not_keep_a_finished_run_alive(self):
        sched = Scheduler(policy="accurate", n_workers=2)
        sched.engine.set_tick(0.1, lambda now: None)
        sched.spawn(_noop, cost=TaskCost(2.0e9))
        report = sched.finish()  # must terminate
        assert report.tasks_total == 1

    def test_ticks_do_not_mask_a_genuine_stall(self):
        sched = Scheduler(policy="accurate", n_workers=2)
        sched.engine.set_tick(0.1, lambda now: None)
        blocker = sched.spawn(_noop, cost=TaskCost(2.0e9))
        # A dependence that can never be satisfied: waiting on a task
        # that waits on itself via an unspawned predecessor is not
        # constructible here, so instead wait on a predicate that never
        # holds once the queue drains.
        with pytest.raises(SchedulerError, match="stalled"):
            sched.engine.run_until(lambda: False, "never")
        assert blocker.tid >= 0

    def test_tick_callback_may_adjust_ratios(self):
        """Re-entrancy: the callback touches scheduler state mid-pump."""
        sched = Scheduler(policy="lqh", n_workers=2)
        sched.init_group("g", ratio=1.0)
        seen: list[float] = []

        def steer(now: float) -> None:
            sched.policy.set_ratio(0.5, group="g")
            seen.append(now)

        sched.engine.set_tick(0.25, steer)
        cost = TaskCost(1.0e9, 1.0e8)
        for i in range(8):
            sched.spawn(
                _noop,
                significance=(i % 9 + 1) / 10,
                approxfun=_noop,
                label="g",
                cost=cost,
            )
        sched.finish()
        assert seen
        assert sched.groups.get("g").ratio == 0.5

    def test_bad_interval_raises(self):
        sched = Scheduler(policy="accurate", n_workers=2)
        with pytest.raises(SchedulerError):
            sched.engine.set_tick(0.0, lambda now: None)
        sched.finish()

    def test_faulty_engine_inherits_ticks(self):
        """The fault-injecting machine subclasses SimulatedMachine, so
        the governor clock works on the unreliable-hardware scenario."""
        sched = Scheduler(
            policy="accurate",
            n_workers=2,
            engine="faulty:fault_rate=0.0",
        )
        times: list[float] = []
        sched.engine.set_tick(0.25, times.append)
        for _ in range(4):
            sched.spawn(_noop, cost=TaskCost(2.0e9))
        sched.finish()
        assert times


class TestWallClockTicks:
    def test_threaded_interval_honoured_below_idle_wait(self):
        """Ticks must fire at sub-50ms resolution (the old idle-wait
        granularity) while the master blocks at a barrier."""
        sched = Scheduler(policy="accurate", n_workers=2, engine="threaded")
        times: list[float] = []
        sched.engine.set_tick(0.005, times.append)
        for _ in range(20):
            sched.spawn(_sleepy)
        sched.finish()
        assert len(times) >= 3

    def test_bad_interval_raises_threaded(self):
        sched = Scheduler(policy="accurate", n_workers=2, engine="threaded")
        with pytest.raises(SchedulerError):
            sched.engine.set_tick(-1.0, lambda now: None)
        sched.finish()


def _sleepy():
    import time

    time.sleep(0.002)
