"""Focused tests for the real-thread execution engine.

The threaded engine shares every scheduler/policy/queue code path with
the simulated engine; these tests exercise what is genuinely different
— real concurrency, blocking barriers, and shutdown.
"""

import threading

import numpy as np

from repro.runtime.policies import (
    LocalQueueHistory,
    SignificanceAgnostic,
    gtb_max_buffer,
)
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import TaskCost, ref

COST = TaskCost(10_000.0, 1_000.0)


def threaded(policy=None, workers=2):
    return Scheduler(
        policy=policy or SignificanceAgnostic(),
        n_workers=workers,
        engine="threaded",
    )


class TestThreadedExecution:
    def test_many_tasks_complete(self):
        rt = threaded(workers=4)
        counter = {"n": 0}
        lock = threading.Lock()

        def bump():
            with lock:
                counter["n"] += 1

        for _ in range(200):
            rt.spawn(bump, cost=COST)
        rt.finish()
        assert counter["n"] == 200

    def test_worker_threads_actually_used(self):
        import time

        rt = threaded(workers=4)
        seen = set()
        lock = threading.Lock()

        def note():
            # Sleep releases the GIL, forcing genuine overlap; trivial
            # bodies would let one worker drain the whole queue.
            time.sleep(0.005)
            with lock:
                seen.add(threading.get_ident())

        for _ in range(40):
            rt.spawn(note, cost=COST)
        rt.finish()
        assert len(seen) >= 2  # at least two distinct worker threads

    def test_dependences_enforced_across_threads(self):
        rt = threaded(workers=4)
        data = np.zeros(1)
        order = []
        lock = threading.Lock()

        def step(tag):
            with lock:
                order.append(tag)

        for tag in range(10):
            rt.spawn(step, tag, out=[ref(data)], cost=COST)
        rt.finish()
        assert order == list(range(10))

    def test_group_barrier_blocks_until_done(self):
        rt = threaded(workers=2)
        done = []
        for i in range(20):
            rt.spawn(lambda i=i: done.append(i), label="g", cost=COST)
        rt.taskwait(label="g")
        assert len(done) == 20
        rt.finish()

    def test_lqh_worker_local_state_thread_safe(self):
        rt = threaded(policy=LocalQueueHistory(), workers=4)
        rt.init_group("g", ratio=0.5)
        for i in range(400):
            rt.spawn(
                lambda: None,
                significance=(i % 9 + 1) / 10.0,
                approxfun=lambda: None,
                label="g",
                cost=COST,
            )
        report = rt.finish()
        total = report.accurate_tasks + report.approximate_tasks
        assert total == 400
        assert 0.3 < report.accurate_tasks / 400 < 0.7

    def test_gtb_stamps_respected(self):
        rt = threaded(policy=gtb_max_buffer(), workers=4)
        rt.init_group("g", ratio=0.25)
        for i in range(40):
            rt.spawn(
                lambda: None,
                significance=(i % 9 + 1) / 10.0,
                approxfun=lambda: None,
                label="g",
                cost=COST,
            )
        report = rt.finish()
        assert report.accurate_tasks == 10

    def test_trace_and_energy_populated(self):
        rt = threaded(workers=2)
        for _ in range(10):
            rt.spawn(lambda: sum(range(1000)), cost=COST)
        report = rt.finish()
        assert report.trace is not None
        assert len(report.trace.segments) == 10
        assert report.energy_j > 0
        assert report.makespan_s > 0

    def test_results_and_decisions_visible_after_finish(self):
        rt = threaded(workers=2)
        tasks = [
            rt.spawn(lambda x=x: x * 3, cost=COST) for x in range(8)
        ]
        rt.finish()
        assert sorted(t.result for t in tasks) == [
            0, 3, 6, 9, 12, 15, 18, 21
        ]
