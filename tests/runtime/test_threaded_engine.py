"""Focused tests for the real-thread execution engine.

The threaded engine shares every scheduler/policy/queue code path with
the simulated engine; these tests exercise what is genuinely different
— real concurrency, blocking barriers, and shutdown.
"""

import threading

import numpy as np
import pytest

from repro.runtime.policies import (
    LocalQueueHistory,
    SignificanceAgnostic,
    gtb_max_buffer,
)
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import TaskCost, ref

COST = TaskCost(10_000.0, 1_000.0)


def threaded(policy=None, workers=2):
    return Scheduler(
        policy=policy or SignificanceAgnostic(),
        n_workers=workers,
        engine="threaded",
    )


class TestThreadedExecution:
    def test_many_tasks_complete(self):
        rt = threaded(workers=4)
        counter = {"n": 0}
        lock = threading.Lock()

        def bump():
            with lock:
                counter["n"] += 1

        for _ in range(200):
            rt.spawn(bump, cost=COST)
        rt.finish()
        assert counter["n"] == 200

    def test_worker_threads_actually_used(self):
        import time

        rt = threaded(workers=4)
        seen = set()
        lock = threading.Lock()

        def note():
            # Sleep releases the GIL, forcing genuine overlap; trivial
            # bodies would let one worker drain the whole queue.
            time.sleep(0.005)
            with lock:
                seen.add(threading.get_ident())

        for _ in range(40):
            rt.spawn(note, cost=COST)
        rt.finish()
        assert len(seen) >= 2  # at least two distinct worker threads

    def test_dependences_enforced_across_threads(self):
        rt = threaded(workers=4)
        data = np.zeros(1)
        order = []
        lock = threading.Lock()

        def step(tag):
            with lock:
                order.append(tag)

        for tag in range(10):
            rt.spawn(step, tag, out=[ref(data)], cost=COST)
        rt.finish()
        assert order == list(range(10))

    def test_group_barrier_blocks_until_done(self):
        rt = threaded(workers=2)
        done = []
        for i in range(20):
            rt.spawn(lambda i=i: done.append(i), label="g", cost=COST)
        rt.taskwait(label="g")
        assert len(done) == 20
        rt.finish()

    def test_lqh_worker_local_state_thread_safe(self):
        rt = threaded(policy=LocalQueueHistory(), workers=4)
        rt.init_group("g", ratio=0.5)
        for i in range(400):
            rt.spawn(
                lambda: None,
                significance=(i % 9 + 1) / 10.0,
                approxfun=lambda: None,
                label="g",
                cost=COST,
            )
        report = rt.finish()
        total = report.accurate_tasks + report.approximate_tasks
        assert total == 400
        assert 0.3 < report.accurate_tasks / 400 < 0.7

    def test_gtb_stamps_respected(self):
        rt = threaded(policy=gtb_max_buffer(), workers=4)
        rt.init_group("g", ratio=0.25)
        for i in range(40):
            rt.spawn(
                lambda: None,
                significance=(i % 9 + 1) / 10.0,
                approxfun=lambda: None,
                label="g",
                cost=COST,
            )
        report = rt.finish()
        assert report.accurate_tasks == 10

    def test_trace_and_energy_populated(self):
        rt = threaded(workers=2)
        for _ in range(10):
            rt.spawn(lambda: sum(range(1000)), cost=COST)
        report = rt.finish()
        assert report.trace is not None
        assert len(report.trace.segments) == 10
        assert report.energy_j > 0
        assert report.makespan_s > 0

    def test_results_and_decisions_visible_after_finish(self):
        rt = threaded(workers=2)
        tasks = [
            rt.spawn(lambda x=x: x * 3, cost=COST) for x in range(8)
        ]
        rt.finish()
        assert sorted(t.result for t in tasks) == [
            0, 3, 6, 9, 12, 15, 18, 21
        ]


class TestThreadedEnergyEstimate:
    """The engine's energy report: power model over *measured* busy
    intervals (the estimate the engine docstring promises)."""

    def test_busy_interval_attribution(self):
        rt = threaded(workers=2)
        import time

        for _ in range(6):
            rt.spawn(lambda: time.sleep(0.002), cost=COST)
        report = rt.finish()
        trace = report.trace
        # Busy seconds in the energy report are exactly the summed
        # trace segments — the shared accounting core's attribution.
        assert report.energy.busy_s == pytest.approx(trace.busy_time())
        assert report.energy.window_s == pytest.approx(
            report.makespan_s
        )
        machine = rt.machine_model
        assert report.energy.core_active_j == pytest.approx(
            trace.busy_time() * machine.core_active_w
        )
        assert report.energy.core_idle_j == pytest.approx(
            (machine.n_cores * report.energy.window_s
             - trace.busy_time()) * machine.core_idle_w
        )
        # Real threads measure real intervals: busy time is positive
        # and no single-worker interval exceeds the window.
        assert trace.busy_time() > 0
        for w, busy in enumerate(trace.busy_by_worker()):
            assert busy <= report.energy.window_s + 1e-9, w

    def test_master_busy_recorded_via_accounting(self):
        rt = threaded(workers=2)
        for i in range(10):
            rt.spawn(lambda: None, cost=COST)
        report = rt.finish()
        # Spawn overhead was charged through the shared core into the
        # trace (model-equivalent seconds, for reporting symmetry).
        assert report.trace.master_busy > 0
        assert report.trace.master_busy == pytest.approx(
            rt.engine.accounting.master_busy
        )

    def test_report_shape_parity_with_simulated(self):
        import dataclasses

        def run(engine):
            rt = Scheduler(
                policy=SignificanceAgnostic(),
                n_workers=2,
                engine=engine,
            )
            for i in range(10):
                rt.spawn(lambda i=i: i, cost=COST)
            return rt.finish()

        threaded_rep = run("threaded")
        simulated_rep = run("simulated")
        t_fields = {f.name for f in dataclasses.fields(threaded_rep)}
        s_fields = {f.name for f in dataclasses.fields(simulated_rep)}
        assert t_fields == s_fields
        assert dataclasses.asdict(threaded_rep.energy).keys() == (
            dataclasses.asdict(simulated_rep.energy).keys()
        )
        assert threaded_rep.tasks_by_kind.keys() == (
            simulated_rep.tasks_by_kind.keys()
        )
        for rep in (threaded_rep, simulated_rep):
            assert rep.energy.total_j == pytest.approx(
                rep.energy.package_uncore_j
                + rep.energy.dram_j
                + rep.energy.cores_j
            )
            assert rep.host_seconds >= 0

    def test_host_seconds_tracks_wall_time(self):
        import time

        rt = threaded(workers=2)
        for _ in range(4):
            rt.spawn(lambda: time.sleep(0.003), cost=COST)
        report = rt.finish()
        # 4 sleeps of 3ms measured inside segments.
        assert report.host_seconds >= 0.012 * 0.8
