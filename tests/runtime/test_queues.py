"""Unit tests for the work-sharing queue fabric."""

import threading

import pytest

from repro.runtime.errors import SchedulerError
from repro.runtime.queues import ShardedWorkerQueues, WorkerQueues
from repro.runtime.task import Task, TaskState


def mk(i=0):
    return Task(fn=lambda: None, args=(i,))


class TestPush:
    def test_round_robin_distribution(self):
        q = WorkerQueues(3)
        workers = [q.push(mk()) for _ in range(6)]
        assert workers == [0, 1, 2, 0, 1, 2]

    def test_explicit_worker(self):
        q = WorkerQueues(3)
        assert q.push(mk(), worker=2) == 2
        assert q.depth(2) == 1

    def test_push_sets_queued_state(self):
        q = WorkerQueues(1)
        t = mk()
        q.push(t)
        assert t.state is TaskState.QUEUED

    def test_invalid_worker_rejected(self):
        q = WorkerQueues(2)
        with pytest.raises(SchedulerError):
            q.push(mk(), worker=5)

    def test_zero_workers_rejected(self):
        with pytest.raises(SchedulerError):
            WorkerQueues(0)


class TestPopAndSteal:
    def test_pop_local_fifo(self):
        q = WorkerQueues(1)
        a, b = mk(1), mk(2)
        q.push(a)
        q.push(b)
        assert q.pop_local(0) is a  # oldest first (paper section 3)
        assert q.pop_local(0) is b

    def test_pop_empty_returns_none(self):
        q = WorkerQueues(2)
        assert q.pop_local(0) is None

    def test_steal_takes_oldest_of_victim(self):
        q = WorkerQueues(2)
        a, b = mk(1), mk(2)
        q.push(a, worker=1)
        q.push(b, worker=1)
        assert q.steal(0) is a

    def test_steal_scans_victims_after_thief(self):
        q = WorkerQueues(4)
        t = mk()
        q.push(t, worker=3)
        # thief 0 scans 1, 2, 3
        assert q.steal(0) is t

    def test_failed_steal_counted(self):
        q = WorkerQueues(2)
        assert q.steal(0) is None
        assert q.stats.failed_steals == 1

    def test_acquire_prefers_local(self):
        q = WorkerQueues(2)
        local, remote = mk(1), mk(2)
        q.push(local, worker=0)
        q.push(remote, worker=1)
        assert q.acquire(0) is local

    def test_acquire_falls_back_to_steal(self):
        q = WorkerQueues(2)
        remote = mk()
        q.push(remote, worker=1)
        assert q.acquire(0) is remote
        assert q.stats.steals == 1

    def test_acquire_updates_execution_stats(self):
        q = WorkerQueues(2)
        q.push(mk(), worker=0)
        q.acquire(0)
        assert q.stats.executed_per_worker[0] == 1


class TestBookkeeping:
    def test_len_counts_all_queues(self):
        q = WorkerQueues(3)
        for _ in range(5):
            q.push(mk())
        assert len(q) == 5

    def test_is_empty(self):
        q = WorkerQueues(2)
        assert q.is_empty()
        q.push(mk())
        assert not q.is_empty()

    def test_drain_returns_everything(self):
        q = WorkerQueues(2)
        tasks = [mk(i) for i in range(4)]
        for t in tasks:
            q.push(t)
        out = q.drain()
        assert set(out) == set(tasks)
        assert q.is_empty()

    def test_stats_pushed_counter(self):
        q = WorkerQueues(2)
        for _ in range(3):
            q.push(mk())
        assert q.stats.pushed == 3


class TestHotPathInvariants:
    """Fabric invariants after the O(1)-size/round-robin refactor."""

    def test_live_size_matches_sum_of_depths(self):
        q = WorkerQueues(3)
        for i in range(7):
            q.push(mk(i))
        assert len(q) == sum(q.depth(w) for w in range(3)) == 7
        q.pop_local(0)
        q.steal(0)
        assert len(q) == sum(q.depth(w) for w in range(3)) == 5

    def test_conservation_over_random_op_sequence(self):
        import random

        rng = random.Random(2015)
        q = WorkerQueues(4)
        drained = 0
        for step in range(500):
            op = rng.randrange(4)
            if op == 0:
                q.push(mk(step))
            elif op == 1:
                q.pop_local(rng.randrange(4))
            elif op == 2:
                q.steal(rng.randrange(4))
            elif op == 3 and rng.random() < 0.05:
                drained += len(q.drain())
            # Every task is accounted for at every step.
            s = q.stats
            assert len(q) == sum(q.depth(w) for w in range(4))
            assert (
                s.pushed
                == s.popped_local + s.steals + len(q) + drained
            )

    def test_round_robin_wraps_over_many_pushes(self):
        q = WorkerQueues(3)
        for i in range(9):
            q.push(mk(i))
        assert [q.depth(w) for w in range(3)] == [3, 3, 3]

    def test_explicit_push_does_not_advance_round_robin(self):
        q = WorkerQueues(3)
        q.push(mk(), worker=2)
        assert q.push(mk()) == 0  # rr pointer untouched

    def test_steal_ignores_thief_own_queue(self):
        q = WorkerQueues(3)
        q.push(mk(), worker=1)
        assert q.steal(1) is None  # own queue is not a victim
        assert q.stats.failed_steals == 1
        assert q.depth(1) == 1

    def test_drain_resets_live_size(self):
        q = WorkerQueues(2)
        for i in range(5):
            q.push(mk(i))
        q.drain()
        assert len(q) == 0 and q.is_empty()
        q.push(mk())
        assert len(q) == 1

    def test_fifo_preserved_across_mixed_pop_and_steal(self):
        q = WorkerQueues(2)
        a, b, c = mk(1), mk(2), mk(3)
        q.push(a, worker=0)
        q.push(b, worker=0)
        q.push(c, worker=0)
        assert q.steal(1) is a   # oldest first, even for thieves
        assert q.pop_local(0) is b
        assert q.steal(1) is c


class TestShardedFabric:
    """:class:`ShardedWorkerQueues` keeps the exact WorkerQueues
    discipline (round-robin push, FIFO pop, steal-after-thief) while
    worker-side operations run lock-free (DESIGN.md section 12)."""

    @pytest.mark.parametrize("make", [WorkerQueues, ShardedWorkerQueues])
    def test_discipline_matches_locked_fabric(self, make):
        q = make(3)
        workers = [q.push(mk(i)) for i in range(6)]
        assert workers == [0, 1, 2, 0, 1, 2]
        a = q.pop_local(0)
        assert a.args == (0,)            # FIFO
        assert q.steal(0).args == (1,)   # first victim after thief
        assert len(q) == 4
        assert q.depth(1) == 1

    def test_push_sets_queued_state_and_validates_worker(self):
        q = ShardedWorkerQueues(2)
        t = mk()
        q.push(t)
        assert t.state is TaskState.QUEUED
        with pytest.raises(SchedulerError):
            q.push(mk(), worker=5)
        with pytest.raises(SchedulerError):
            ShardedWorkerQueues(0)

    def test_steal_ignores_own_shard(self):
        q = ShardedWorkerQueues(3)
        q.push(mk(), worker=1)
        assert q.steal(1) is None
        assert q.stats.failed_steals == 1
        assert q.depth(1) == 1

    def test_acquire_local_then_steal(self):
        q = ShardedWorkerQueues(2)
        local, remote = mk(1), mk(2)
        q.push(local, worker=0)
        q.push(remote, worker=1)
        assert q.acquire(0) is local
        assert q.acquire(0) is remote
        s = q.stats
        assert s.popped_local == 1 and s.steals == 1
        assert s.executed_per_worker == [2, 0]

    def test_stats_snapshot_conserves_tasks(self):
        q = ShardedWorkerQueues(4)
        for i in range(10):
            q.push(mk(i))
        q.pop_local(0)
        q.steal(0)
        drained = q.drain()
        s = q.stats
        assert s.pushed == 10
        assert s.pushed == s.popped_local + s.steals + len(drained)
        assert q.is_empty() and len(q) == 0

    def test_concurrent_acquire_consumes_each_task_once(self):
        # Real threads hammer the lock-free pop path: every task must
        # leave by exactly one worker, with no duplicates or losses.
        n_workers, n_tasks = 4, 2000
        q = ShardedWorkerQueues(n_workers)
        tasks = [mk(i) for i in range(n_tasks)]
        for t in tasks:
            q.push(t)
        got: list[list[Task]] = [[] for _ in range(n_workers)]
        stop = threading.Event()

        def consume(w):
            while not stop.is_set():
                task = q.acquire(w)
                if task is None:
                    if q.is_empty():
                        return
                else:
                    got[w].append(task)

        threads = [
            threading.Thread(target=consume, args=(w,))
            for w in range(n_workers)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join(timeout=30)
        stop.set()
        consumed = [t for per in got for t in per]
        assert len(consumed) == n_tasks
        assert {id(t) for t in consumed} == {id(t) for t in tasks}
        s = q.stats
        assert s.popped_local + s.steals == n_tasks
        assert sum(s.executed_per_worker) == n_tasks
