"""The shared accounting core: recording, attribution, report assembly.

Every execution backend writes through one
:class:`~repro.runtime.accounting.AccountingCore`; these tests pin the
core's own behaviour and the cross-engine invariants it guarantees —
most importantly that simulated, threaded and process backends produce
*schema-identical* run reports.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.energy.machine_model import XEON_E5_2650
from repro.energy.meter import EnergyReport
from repro.runtime.accounting import AccountingCore, build_run_report
from repro.sim.trace import Segment
from repro.runtime.errors import SchedulerError
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import ExecutionKind, Task, TaskCost

COST = TaskCost(10_000.0, 1_000.0)


def _task(**kw) -> Task:
    return Task(fn=lambda: None, **kw)


class TestAccountingCore:
    def test_record_task_appends_segment(self):
        core = AccountingCore(2)
        t = _task(group="g")
        core.record_task(t, 1, 0.5, 2.0, ExecutionKind.ACCURATE)
        [seg] = core.trace.segments
        assert (seg.worker, seg.start, seg.end) == (1, 0.5, 2.0)
        assert seg.tid == t.tid
        assert seg.group == "g"

    def test_record_task_accumulates_host_seconds(self):
        core = AccountingCore(1)
        t = _task()
        core.record_task(t, 0, 0.0, 1.0, ExecutionKind.ACCURATE,
                         host_s=0.25)
        core.record_task(t, 0, 1.0, 2.0, ExecutionKind.ACCURATE,
                         host_s=0.5)
        assert core.host_seconds == pytest.approx(0.75)

    def test_record_task_validates_through_trace(self):
        core = AccountingCore(1)
        with pytest.raises(SchedulerError):
            core.record_task(_task(), 5, 0.0, 1.0, ExecutionKind.ACCURATE)
        with pytest.raises(SchedulerError):
            core.record_task(_task(), 0, 2.0, 1.0, ExecutionKind.ACCURATE)

    def test_master_busy_accumulates(self):
        core = AccountingCore(1)
        core.add_master_busy(0.1)
        core.add_master_busy(0.2)
        assert core.master_busy == pytest.approx(0.3)
        assert core.trace.master_busy == pytest.approx(0.3)

    def test_aggregate_views_delegate_to_trace(self):
        core = AccountingCore(2)
        t = _task()
        core.record_task(t, 0, 0.0, 1.0, ExecutionKind.ACCURATE)
        core.record_task(t, 1, 0.0, 3.0, ExecutionKind.APPROXIMATE)
        assert core.makespan == 3.0
        assert core.busy_by_worker() == [1.0, 3.0]
        assert core.utilization() == pytest.approx(4.0 / 6.0)

    def test_energy_report_matches_from_trace(self):
        core = AccountingCore(2)
        t = _task()
        core.record_task(t, 0, 0.0, 2.0, ExecutionKind.ACCURATE)
        machine = XEON_E5_2650.with_workers(2)
        direct = EnergyReport.from_trace(core.trace, machine, window_s=4.0)
        via_core = core.energy_report(machine, window_s=4.0)
        assert via_core == direct
        assert via_core.busy_s == pytest.approx(2.0)


class TestAccountingShards:
    """Thread-local deltas merged at barriers (DESIGN.md section 12)."""

    def test_records_are_deferred_until_merge(self):
        core = AccountingCore(2)
        s0, s1 = core.shard(0), core.shard(1)
        assert core.shard(0) is s0  # one shard per worker, cached
        s0.record(
            Segment(0, 0.0, 1.0, 1, ExecutionKind.ACCURATE, None), 0.25
        )
        s1.record(
            Segment(1, 0.0, 2.0, 2, ExecutionKind.APPROXIMATE, "g"), 0.5
        )
        assert core.trace.segments == []  # nothing visible yet
        assert core.merge_shards() == 2
        assert len(core.trace.segments) == 2
        assert core.host_seconds == pytest.approx(0.75)
        assert core.merge_shards() == 0  # shards drained

    def test_merge_validates_through_trace(self):
        core = AccountingCore(1)
        core.shard(0).record(
            Segment(5, 0.0, 1.0, 1, ExecutionKind.ACCURATE, None), 0.0
        )
        with pytest.raises(SchedulerError):
            core.merge_shards()

    def test_drain_leaves_concurrent_appends_for_next_merge(self):
        core = AccountingCore(1)
        shard = core.shard(0)
        seg = Segment(0, 0.0, 1.0, 1, ExecutionKind.ACCURATE, None)
        shard.record(seg, 0.1)
        taken = shard.drain()
        assert len(taken) == 1
        shard.record(seg, 0.1)  # arrives "mid-drain"
        assert len(shard.drain()) == 1


class TestEngineSharedCore:
    """Each engine owns exactly one core and exposes it uniformly."""

    @pytest.mark.parametrize(
        "engine", ["simulated", "threaded", "process"]
    )
    def test_engine_trace_is_accounting_trace(self, engine):
        rt = Scheduler(policy="accurate", n_workers=2, engine=engine)
        assert rt.engine.trace is rt.engine.accounting.trace
        rt.finish()

    def test_simulated_engine_shares_core_with_machine(self):
        rt = Scheduler(policy="accurate", n_workers=2)
        assert rt.engine.accounting is rt.engine.machine.accounting
        rt.finish()


def _double(x):
    return x * 2


class TestReportSchemaParity:
    """The acceptance invariant: one report schema for every backend."""

    @staticmethod
    def _report(engine):
        rt = Scheduler(policy="gtb:buffer_size=8", n_workers=2,
                       engine=engine)
        rt.init_group("g", ratio=0.5)
        for i in range(20):
            rt.spawn(
                _double,
                i,
                significance=(i % 9 + 1) / 10.0,
                label="g",
                cost=COST,
            )
        return rt.finish()

    def test_reports_are_schema_identical(self):
        reports = {
            engine: self._report(engine)
            for engine in ("simulated", "threaded", "process")
        }
        field_sets = {
            engine: {f.name for f in dataclasses.fields(rep)}
            for engine, rep in reports.items()
        }
        assert len(set(map(frozenset, field_sets.values()))) == 1
        for rep in reports.values():
            assert rep.tasks_total == 20
            assert set(rep.tasks_by_kind) == set(ExecutionKind)
            assert rep.groups.keys() == {"g"}
            assert rep.energy.total_j > 0
            assert rep.makespan_s > 0
            assert rep.trace is not None
            # Row form (what sweeps/exporters consume) is identical too.
            assert dataclasses.asdict(rep.energy).keys() == {
                "window_s", "busy_s", "package_uncore_j", "dram_j",
                "core_active_j", "core_idle_j",
            }

    def test_decision_counts_agree_across_backends(self):
        reports = [
            self._report(e)
            for e in ("simulated", "threaded", "process")
        ]
        mixes = {
            (r.accurate_tasks, r.approximate_tasks, r.dropped_tasks)
            for r in reports
        }
        # GTB stamps decisions at flush time on the master, so the
        # accurate/approximate split is engine-independent.
        assert len(mixes) == 1


class TestBuildRunReport:
    def test_counts_dropped_tasks_from_groups(self):
        rt = Scheduler(policy="gtb:buffer_size=4", n_workers=2)
        rt.init_group("g", ratio=0.0)
        for i in range(8):
            rt.spawn(_double, i, significance=0.5, label="g", cost=COST)
        report = rt.finish()
        assert report.dropped_tasks == 8
        assert report.accurate_tasks == 0

    def test_build_run_report_standalone(self):
        rt = Scheduler(policy="accurate", n_workers=2)
        for i in range(4):
            rt.spawn(_double, i, cost=COST)
        report = rt.finish()
        rebuilt = build_run_report(
            policy_name=rt.policy.describe(),
            n_workers=rt.engine.n_workers,
            trace=report.trace,
            makespan=report.makespan_s,
            machine=rt.machine_model,
            groups=rt.groups,
            queue_stats=rt.engine.queue_stats,
            dep_stats=rt.deps.stats,
            tasks_total=4,
        )
        assert rebuilt.energy == report.energy
        assert rebuilt.tasks_by_kind == report.tasks_by_kind
        assert rebuilt.makespan_s == report.makespan_s
