"""Unit tests for the task descriptor layer."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.runtime.errors import (
    CostModelError,
    DependenceError,
    SignificanceError,
)
from repro.runtime.task import (
    SIGNIFICANCE_LEVELS,
    DataRef,
    ExecutionKind,
    Task,
    TaskCost,
    TaskSlab,
    TaskState,
    quantize_significance,
    ref,
    refs,
    task_slab,
)


class TestQuantizeSignificance:
    def test_levels_constant_matches_paper(self):
        assert SIGNIFICANCE_LEVELS == 101  # paper section 3.4

    def test_endpoints(self):
        assert quantize_significance(0.0) == 0
        assert quantize_significance(1.0) == 100

    def test_steps_of_001(self):
        assert quantize_significance(0.5) == 50
        assert quantize_significance(0.35) == 35

    @pytest.mark.parametrize("bad", [-0.01, 1.01, 2.0, -5.0])
    def test_out_of_range_rejected(self, bad):
        with pytest.raises(SignificanceError):
            quantize_significance(bad)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_always_in_level_range(self, s):
        assert 0 <= quantize_significance(s) <= 100

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_monotone(self, a, b):
        if a <= b:
            assert quantize_significance(a) <= quantize_significance(b)


class TestTaskCost:
    def test_for_kind(self):
        c = TaskCost(accurate=100.0, approximate=10.0)
        assert c.for_kind(ExecutionKind.ACCURATE) == 100.0
        assert c.for_kind(ExecutionKind.APPROXIMATE) == 10.0
        assert c.for_kind(ExecutionKind.DROPPED) == 0.0

    def test_default_approximate_is_free(self):
        assert TaskCost(5.0).approximate == 0.0

    def test_negative_rejected(self):
        with pytest.raises(CostModelError):
            TaskCost(-1.0)
        with pytest.raises(CostModelError):
            TaskCost(1.0, -0.5)

    def test_scaled(self):
        c = TaskCost(100.0, 10.0).scaled(2.0)
        assert c.accurate == 200.0 and c.approximate == 20.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            TaskCost(1.0).accurate = 2.0  # type: ignore[misc]


class TestDataRef:
    def test_identity_same_object(self):
        a = np.zeros(4)
        assert ref(a) == ref(a)

    def test_distinct_objects_differ(self):
        assert ref(np.zeros(4)) != ref(np.zeros(4)) or True  # ids may
        # collide after GC; compare live objects instead:
        a, b = np.zeros(4), np.zeros(4)
        assert ref(a) != ref(b)

    def test_view_aliases_base(self):
        a = np.zeros((4, 4))
        v = a[1:3, :]
        assert ref(v).key == ref(a).key

    def test_view_of_view_aliases_base(self):
        a = np.zeros(16)
        v = a[2:12][1:5]
        assert ref(v).key == ref(a).key

    def test_region_distinguishes(self):
        a = np.zeros(8)
        assert ref(a, region=1) != ref(a, region=2)
        assert ref(a, region=1) == ref(a, region=1)

    def test_region_type_checked(self):
        with pytest.raises(DependenceError):
            ref(np.zeros(2), region=[1, 2])  # unhashable region

    def test_ref_of_ref_is_idempotent(self):
        a = np.zeros(2)
        r = ref(a, name="a")
        assert ref(r) is r

    def test_ref_of_ref_with_new_region(self):
        a = np.zeros(2)
        r = ref(a)
        r2 = ref(r, region=3)
        assert r2.key == r.key and r2.region == 3

    def test_refs_vector_form(self):
        a, b = np.zeros(2), np.ones(2)
        rs = refs(a, b)
        assert len(rs) == 2 and all(isinstance(r, DataRef) for r in rs)


class TestTask:
    def test_significance_validated(self):
        with pytest.raises(SignificanceError):
            Task(fn=lambda: None, significance=1.5)

    def test_fn_must_be_callable(self):
        with pytest.raises(TypeError):
            Task(fn=42)  # type: ignore[arg-type]

    def test_approxfun_must_be_callable(self):
        with pytest.raises(TypeError):
            Task(fn=lambda: None, approx_fn=3)  # type: ignore[arg-type]

    def test_droppable_iff_no_approxfun(self):
        assert Task(fn=lambda: None).droppable
        assert not Task(fn=lambda: None, approx_fn=lambda: None).droppable

    def test_execute_accurate(self):
        t = Task(fn=lambda x: x + 1, args=(41,))
        assert t.execute(ExecutionKind.ACCURATE) == 42
        assert t.decision is ExecutionKind.ACCURATE
        assert t.result == 42

    def test_execute_approximate(self):
        t = Task(
            fn=lambda x: x + 1, args=(41,), approx_fn=lambda x: x - 1
        )
        assert t.execute(ExecutionKind.APPROXIMATE) == 40

    def test_execute_dropped_runs_nothing(self):
        ran = []
        t = Task(fn=lambda: ran.append(1))
        assert t.execute(ExecutionKind.DROPPED) is None
        assert not ran and t.result is None

    def test_kwargs_forwarded(self):
        t = Task(fn=lambda x, y=0: x + y, args=(1,), kwargs={"y": 2})
        assert t.execute(ExecutionKind.ACCURATE) == 3

    def test_level_quantization(self):
        assert Task(fn=lambda: None, significance=0.35).level == 35

    def test_work_for_without_cost_is_zero(self):
        t = Task(fn=lambda: None)
        assert t.work_for(ExecutionKind.ACCURATE) == 0.0

    def test_work_for_with_cost(self):
        t = Task(fn=lambda: None, cost=TaskCost(7.0, 3.0))
        assert t.work_for(ExecutionKind.ACCURATE) == 7.0
        assert t.work_for(ExecutionKind.APPROXIMATE) == 3.0
        assert t.work_for(ExecutionKind.DROPPED) == 0.0

    def test_unique_increasing_tids(self):
        a = Task(fn=lambda: None)
        b = Task(fn=lambda: None)
        assert b.tid > a.tid

    def test_initial_state(self):
        t = Task(fn=lambda: None)
        assert t.state is TaskState.CREATED
        assert t.decision is None
        assert t.worker == -1


def _finished(slab, **kw):
    t = slab.acquire(lambda x: x, (1,), **kw)
    t.execute(ExecutionKind.ACCURATE)
    t.state = TaskState.FINISHED
    return t


class TestTaskSlab:
    """Slot recycling behind ``spawn_many`` (DESIGN.md section 12)."""

    def test_acquire_reuses_released_storage(self):
        slab = TaskSlab()
        t = _finished(slab)
        old_tid = t.tid
        assert slab.release(t)
        t2 = slab.acquire(lambda: None)
        assert t2 is t                    # same storage...
        assert t2.tid > old_tid           # ...fresh identity
        assert t2.state is TaskState.CREATED
        assert t2.decision is None and t2.result is None
        assert t2.worker == -1
        assert slab.reused == 1

    def test_recycled_task_level_recomputed(self):
        slab = TaskSlab()
        t = _finished(slab, significance=0.9)
        assert t.level == 90
        slab.release(t)
        t2 = slab.acquire(lambda: None, significance=0.35)
        assert t2.level == 35  # cached level must not leak across lives

    def test_recycled_path_validates_like_init(self):
        slab = TaskSlab()
        slab.release(_finished(slab))
        from repro.runtime.errors import SignificanceError

        with pytest.raises(SignificanceError):
            slab.acquire(lambda: None, significance=1.5)
        with pytest.raises(TypeError):
            slab.acquire(42)
        with pytest.raises(TypeError):
            slab.acquire(lambda: None, approx_fn=3)
        # The slot survives failed acquires for the next caller.
        assert len(slab) == 1
        assert slab.acquire(lambda: None) is not None

    def test_release_rejects_unfinished(self):
        slab = TaskSlab()
        t = slab.acquire(lambda: None)
        assert not slab.release(t)  # CREATED, still live
        assert len(slab) == 0

    def test_release_clears_payload_references(self):
        slab = TaskSlab()
        payload = object()
        t = slab.acquire(lambda x: None, (payload,), group="g",
                         cost=TaskCost(1.0))
        t.state = TaskState.FINISHED
        t.result = payload
        slab.release(t)
        assert t.args == () and t.result is None
        assert t.group is None and t.cost is None
        with pytest.raises(RuntimeError, match="released"):
            t.fn()

    def test_capacity_bounds_the_free_list(self):
        slab = TaskSlab(capacity=2)
        tasks = [_finished(slab) for _ in range(4)]
        assert slab.release_many(tasks) == 2
        assert len(slab) == 2
        with pytest.raises(ValueError):
            TaskSlab(capacity=-1)

    def test_default_slab_is_process_wide(self):
        assert task_slab() is task_slab()
