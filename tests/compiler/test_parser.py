"""Unit tests for the pragma directive parser."""

import pytest

from repro.compiler.parser import (
    is_pragma,
    parse_directive,
    scan_pragmas,
    split_arguments,
)
from repro.compiler.directives import TaskDirective, TaskwaitDirective
from repro.runtime.errors import DirectiveSyntaxError


class TestIsPragma:
    @pytest.mark.parametrize("line", [
        "#pragma omp task",
        "  # pragma omp taskwait",
        "\t#pragma  omp task significant(0.5)",
    ])
    def test_positive(self, line):
        assert is_pragma(line)

    @pytest.mark.parametrize("line", [
        "# a normal comment",
        "x = 1  # pragma omp task",  # not at line start
        "#pragma omp",  # handled by parse, but still scanned
        "pragma omp task",
    ])
    def test_negative_or_partial(self, line):
        # only the first three chars matter for the scan; the last two
        # are genuinely not pragmas
        if "x = 1" in line or line.startswith("pragma"):
            assert not is_pragma(line)


class TestSplitArguments:
    def test_simple(self):
        assert split_arguments("a, b, c") == ["a", "b", "c"]

    def test_nested_calls(self):
        assert split_arguments("ref(res, region=i), img") == [
            "ref(res, region=i)",
            "img",
        ]

    def test_strings_with_commas(self):
        assert split_arguments("'a,b', c") == ["'a,b'", "c"]

    def test_empty(self):
        assert split_arguments("") == []

    def test_unbalanced_rejected(self):
        with pytest.raises(DirectiveSyntaxError):
            split_arguments("f(a))")


class TestTaskDirective:
    def test_full_listing1_form(self):
        d = parse_directive(
            "#pragma omp task label(sobel) in(img) out(res) "
            "significant((i%9 + 1)/10.0) approxfun(sbl_task_appr)"
        )
        assert isinstance(d, TaskDirective)
        assert d.label == "sobel"
        assert d.ins == ["img"]
        assert d.outs == ["res"]
        assert d.significant == "(i%9 + 1)/10.0"
        assert d.approxfun == "sbl_task_appr"

    def test_minimal_task(self):
        d = parse_directive("#pragma omp task")
        assert isinstance(d, TaskDirective)
        assert d.significant is None and d.ins == []

    def test_multiple_in_args(self):
        d = parse_directive("#pragma omp task in(a, b, c)")
        assert d.ins == ["a", "b", "c"]

    def test_quoted_label(self):
        d = parse_directive('#pragma omp task label("my group")')
        assert d.label == "my group"

    def test_cost_extension(self):
        d = parse_directive("#pragma omp task cost(TaskCost(1e6, 1e3))")
        assert d.cost == "TaskCost(1e6, 1e3)"

    def test_nested_parens_in_clause(self):
        d = parse_directive(
            "#pragma omp task out(ref(res, region=(i, j)))"
        )
        assert d.outs == ["ref(res, region=(i, j))"]

    def test_duplicate_clause_rejected(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("#pragma omp task label(a) label(b)")

    def test_unknown_clause_rejected(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("#pragma omp task priority(1)")

    def test_invalid_expression_rejected(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("#pragma omp task significant(1 +)")

    def test_bad_label_rejected(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("#pragma omp task label(1bad)")

    def test_unbalanced_clause_rejected(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("#pragma omp task significant((i+1)")

    def test_ratio_not_valid_on_task(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("#pragma omp task ratio(0.5)")


class TestTaskwaitDirective:
    def test_listing1_form(self):
        d = parse_directive("#pragma omp taskwait label(sobel) ratio(0.35)")
        assert isinstance(d, TaskwaitDirective)
        assert d.label == "sobel" and d.ratio == "0.35"

    def test_bare_taskwait(self):
        d = parse_directive("#pragma omp taskwait")
        assert d.label is None and d.on is None and d.ratio is None

    def test_on_clause(self):
        d = parse_directive("#pragma omp taskwait on(result)")
        assert d.on == "result"

    def test_significant_not_valid_on_taskwait(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("#pragma omp taskwait significant(0.5)")

    def test_unknown_directive(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("#pragma omp parallel for")

    def test_missing_directive(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("#pragma omp")


class TestScanPragmas:
    def test_scans_all(self):
        src = (
            "x = 1\n"
            "#pragma omp task label(a)\n"
            "f(x)\n"
            "#pragma omp taskwait label(a)\n"
        )
        ds = scan_pragmas(src)
        assert len(ds) == 2
        assert ds[0].kind == "task" and ds[1].kind == "taskwait"

    def test_line_numbers_recorded(self):
        src = "x = 1\n\n#pragma omp task\nf()\n"
        ds = scan_pragmas(src)
        assert ds[0].line == 3

    def test_line_continuation(self):
        src = (
            "#pragma omp task label(sobel) in(img) \\\n"
            "#    significant((i%9 + 1)/10.0)\n"
            "f()\n"
        )
        ds = scan_pragmas(src)
        assert len(ds) == 1
        assert ds[0].label == "sobel"
        assert ds[0].significant == "(i%9 + 1)/10.0"

    def test_no_pragmas(self):
        assert scan_pragmas("x = 1\ny = 2\n") == []
