"""Unit tests for the pragma lowering / source rewriting stage."""

import ast

import pytest

from repro.api import Runtime
from repro.compiler.lowering import (
    compile_pragmas,
    lower_source,
    pragma_compile,
    preprocess_source,
)
from repro.runtime.errors import LoweringError
from repro.runtime.policies import gtb_max_buffer
from repro.runtime.task import TaskCost

COST = TaskCost(10_000.0, 1_000.0)


class TestPreprocess:
    def test_line_count_preserved(self):
        src = "a = 1\n#pragma omp task\nf()\n#pragma omp taskwait\n"
        out, ds = preprocess_source(src)
        assert len(out.splitlines()) == len(src.splitlines())
        assert len(ds) == 2

    def test_markers_inserted(self):
        out, _ = preprocess_source("#pragma omp task\nf()\n")
        assert "__repro_pragma__(0)" in out

    def test_indentation_preserved(self):
        src = "if x:\n    #pragma omp taskwait\n    pass\n"
        out, _ = preprocess_source(src)
        assert "    __repro_pragma__(0)" in out


class TestLowerSource:
    def lowered(self, src):
        return ast.unparse(lower_source(src))

    def test_task_call_rewritten(self):
        out = self.lowered("#pragma omp task significant(0.5)\nf(x)\n")
        assert "__repro_spawn__(f, x, significance=0.5)" in out

    def test_all_clauses_forwarded(self):
        out = self.lowered(
            "#pragma omp task significant(s) approxfun(g) label(L) "
            "in(a, b) out(c) cost(k)\n"
            "f(x, y)\n"
        )
        assert "significance=s" in out
        assert "approxfun=g" in out
        assert "label='L'" in out
        assert "in_=(a, b)" in out
        assert "out=(c,)" in out
        assert "cost=k" in out

    def test_keyword_args_preserved(self):
        out = self.lowered("#pragma omp task\nf(x, k=1)\n")
        assert "__repro_spawn__(f, x, k=1)" in out

    def test_taskwait_rewritten(self):
        out = self.lowered("#pragma omp taskwait label(g) ratio(0.35)\n")
        assert "__repro_taskwait__(label='g', ratio=0.35)" in out

    def test_task_inside_loop(self):
        out = self.lowered(
            "for i in range(3):\n"
            "    #pragma omp task significant(i/10)\n"
            "    f(i)\n"
        )
        assert "__repro_spawn__(f, i, significance=i / 10)" in out

    def test_task_inside_if_else(self):
        out = self.lowered(
            "if x:\n"
            "    #pragma omp task\n"
            "    f()\n"
            "else:\n"
            "    #pragma omp task\n"
            "    g()\n"
        )
        assert out.count("__repro_spawn__") == 2

    def test_task_without_following_statement_rejected(self):
        with pytest.raises(LoweringError):
            lower_source("#pragma omp task\n")

    def test_task_on_non_call_rejected(self):
        with pytest.raises(LoweringError):
            lower_source("#pragma omp task\nx = 1\n")

    def test_plain_code_untouched(self):
        src = "def f(x):\n    return x + 1\n"
        assert ast.unparse(lower_source(src)) == ast.unparse(
            ast.parse(src)
        )


class TestCompilePragmas:
    def test_namespace_execution(self):
        ns = compile_pragmas(
            "def program(sink):\n"
            "    #pragma omp task significant(0.9)\n"
            "    record(sink)\n"
            "    #pragma omp taskwait\n",
            globals_={
                "record": lambda sink: sink.append("ran"),
            },
        )
        sink: list = []
        with Runtime(n_workers=2):
            ns["program"](sink)
        assert sink == ["ran"]


def _approx_row(sink, i):
    sink.append(("approx", i))


def _acc_row(sink, i):
    sink.append(("acc", i))


@pragma_compile
def annotated_program(sink, n):
    for i in range(n):
        #pragma omp task label(g) significant((i % 9 + 1) / 10.0) approxfun(_approx_row) cost(COST)
        _acc_row(sink, i)
    #pragma omp taskwait label(g) ratio(0.5)


def _identity(fn):
    return fn


@_identity
@pragma_compile
def decorated_program(sink, n):
    for i in range(n):
        #pragma omp task label(g) significant(0.9)
        _acc_row(sink, i)
    #pragma omp taskwait label(g)


class TestPragmaCompile:
    def test_spawns_with_ratio(self):
        sink: list = []
        with Runtime(policy=gtb_max_buffer(), n_workers=2) as rt:
            annotated_program(sink, 20)
        acc = [x for x in sink if x[0] == "acc"]
        approx = [x for x in sink if x[0] == "approx"]
        assert len(acc) == 10 and len(approx) == 10

    def test_original_preserved(self):
        sink: list = []
        annotated_program.original(sink, 4)
        assert sink == [("acc", 0), ("acc", 1), ("acc", 2), ("acc", 3)]

    def test_no_runtime_direct_execution(self):
        """Compiled program outside a Runtime falls back to direct
        accurate calls through current_runtime()? No — it requires a
        runtime; the *original* is the serial fallback."""
        from repro.runtime.errors import SchedulerError

        with pytest.raises(SchedulerError):
            annotated_program([], 1)

    def test_metadata(self):
        assert annotated_program.__name__ == "annotated_program"

    def test_interactive_function_rejected(self):
        exec_ns: dict = {}
        exec("def g():\n    pass\n", exec_ns)
        with pytest.raises(LoweringError):
            pragma_compile(exec_ns["g"])


class TestIndentedPragmas:
    """Column-0 pragmas and non-module-level defs (regressions).

    A ``#pragma`` is a comment, so authors can (and do) leave it at
    column 0 inside an indented block; the inserted marker must adopt
    the *following statement's* indentation, not the comment's.
    Likewise ``pragma_compile`` must survive sources that
    ``inspect.getsource`` returns indented (nested defs, methods) —
    lowering dedents only after the pragma scan.
    """

    def test_column_zero_pragma_adopts_statement_indent(self):
        out = ast.unparse(
            lower_source(
                "for i in range(3):\n"
                "#pragma omp task significant(0.5)\n"
                "    f(i)\n"
            )
        )
        assert "__repro_spawn__(f, i, significance=0.5)" in out

    def test_column_zero_taskwait_in_nested_block(self):
        out = ast.unparse(
            lower_source(
                "def prog():\n"
                "    if x:\n"
                "#pragma omp taskwait label(g)\n"
                "        pass\n"
            )
        )
        assert "__repro_taskwait__(label='g')" in out

    def test_nested_def_pragma_compile(self):
        @pragma_compile
        def inner(sink, n):
            for i in range(n):
                #pragma omp task label(g) significant(0.9)
                _acc_row(sink, i)
            #pragma omp taskwait label(g)

        sink: list = []
        with Runtime(n_workers=2):
            inner(sink, 3)
        assert sorted(sink) == [("acc", 0), ("acc", 1), ("acc", 2)]

    def test_decorated_function_compiles(self):
        assert decorated_program.__name__ == "decorated_program"
        sink: list = []
        with Runtime(n_workers=2):
            decorated_program(sink, 2)
        assert sorted(sink) == [("acc", 0), ("acc", 1)]

    def test_column_zero_pragma_in_nested_def_source(self):
        def inner2(sink, n):
            for i in range(n):
#pragma omp task label(g) significant(0.9)
                _acc_row(sink, i)
            #pragma omp taskwait label(g)

        compiled = pragma_compile(inner2)
        sink: list = []
        with Runtime(n_workers=2):
            compiled(sink, 2)
        assert sorted(sink) == [("acc", 0), ("acc", 1)]


class TestLoweringErrorPaths:
    """Every front-end rejection names the offending source line."""

    def test_taskwait_label_and_on_conflict(self):
        with pytest.raises(LoweringError, match="at line 1") as ei:
            lower_source("#pragma omp taskwait label(g) on(x)\n")
        assert "label" in str(ei.value) and "on" in str(ei.value)

    def test_unknown_clause_is_lowering_error_with_line(self):
        with pytest.raises(LoweringError, match="unknown clause") as ei:
            lower_source("a = 1\n#pragma omp task frobnicate(1)\nf()\n")
        assert "line 2" in str(ei.value)

    def test_missing_statement_reports_line(self):
        with pytest.raises(LoweringError, match="at line 3"):
            lower_source("a = 1\nb = 2\n#pragma omp task\n")

    def test_non_call_statement_reports_line(self):
        with pytest.raises(LoweringError, match="at line 1"):
            lower_source("#pragma omp task\nx = 1\n")

    def test_directive_syntax_error_is_lowering_error(self):
        from repro.runtime.errors import DirectiveSyntaxError

        assert issubclass(DirectiveSyntaxError, LoweringError)
