"""The compile tier: decision folding, codegen, caching, profiling.

The load-bearing property is *semantic transparency*: a specialized
run must produce bit-identical outputs and identical logical task
counts to the interpreted GTB Max-Buffer run it replaces — the win is
throughput, never answers.
"""

import json
import pickle
import time

import numpy as np
import pytest

from repro.compiler.specialize import (
    KernelSpecializer,
    SpecializationCache,
    SpecializationError,
    SpecializationSpec,
    SpecializedBody,
    clear_profile,
    compile_chunk_body,
    decide_kinds,
    profile_snapshot,
)
from repro.config import RuntimeConfig
from repro.kernels.sobel import (
    sobel_row_cost,
    sobel_row_significance,
    sobel_row_value,
    sobel_row_value_approx,
)
from repro.quality.images import synthetic_image
from repro.runtime.errors import ConfigError
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import ExecutionKind, TaskCost


def _interpreted_kinds(sigs, droppable, ratio):
    """Ground truth: run the real scheduler under gtb-max."""
    rt = Scheduler(RuntimeConfig(policy="gtb-max", n_workers=4))
    rt.init_group("g", ratio)
    tasks = [
        rt.spawn(
            sobel_row_value,
            np.zeros((3, 8), dtype=np.uint8),
            i,
            significance=s,
            approxfun=None if droppable else sobel_row_value_approx,
            label="g",
        )
        for i, s in enumerate(sigs)
    ]
    rt.taskwait(label="g")
    rt.finish()
    return [t.decision for t in tasks]


class TestDecideKinds:
    @pytest.mark.parametrize("ratio", [0.0, 0.25, 0.5, 0.8, 1.0])
    @pytest.mark.parametrize("droppable", [False, True])
    def test_parity_with_gtb_max(self, ratio, droppable):
        sigs = [((i * 7) % 9 + 1) / 10.0 for i in range(23)]
        kinds = decide_kinds(sigs, droppable, ratio)
        assert kinds == _interpreted_kinds(sigs, droppable, ratio)

    def test_forced_values(self):
        # 1.0 is always accurate (and consumes quota); 0.0 is always
        # denied (and never consumes quota) — exactly the runtime's
        # forced_kind semantics.
        sigs = [1.0, 0.0, 0.5, 0.5]
        kinds = decide_kinds(sigs, False, 0.5)
        assert kinds == _interpreted_kinds(sigs, False, 0.5)
        assert kinds[0] is ExecutionKind.ACCURATE
        assert kinds[1] is ExecutionKind.APPROXIMATE
        kinds_d = decide_kinds(sigs, True, 0.5)
        assert kinds_d[1] is ExecutionKind.DROPPED

    def test_ties_resolve_in_spawn_order(self):
        # Stable sort: equal significance → earlier spawn wins quota.
        sigs = [0.5] * 4
        kinds = decide_kinds(sigs, False, 0.5)
        assert kinds == _interpreted_kinds(sigs, False, 0.5)
        assert kinds[:2] == [ExecutionKind.ACCURATE] * 2
        assert kinds[2:] == [ExecutionKind.APPROXIMATE] * 2


def _double(x):
    """A trivially inlinable body."""
    y = x * 2
    return y


class TestCompileChunkBody:
    def test_inlines_simple_module_function(self):
        loop, inlined = compile_chunk_body(_double, "k")
        assert inlined
        assert loop([(1,), (2,), (3,)], 0) == [2, 4, 6]

    def test_call_fallback_matches(self):
        loop, inlined = compile_chunk_body(
            sobel_row_value, "k", profile=True
        )
        assert not inlined  # profiled loops keep the probed call
        window = synthetic_image(8, 16, 1)[:3]
        [row] = loop([(window, 1)], 0)
        np.testing.assert_array_equal(row, sobel_row_value(window, 1))

    def test_lambda_rejected(self):
        with pytest.raises(SpecializationError, match="importable"):
            SpecializedBody("k", lambda x: x)


class TestSpec:
    def test_validation(self):
        with pytest.raises(ConfigError, match="ratio"):
            SpecializationSpec(ratio=1.5)
        with pytest.raises(ConfigError, match="dvfs"):
            SpecializationSpec(dvfs_factor=0.0)

    def test_key_quantizes_like_result_cache(self):
        assert (
            SpecializationSpec(0.701).key == SpecializationSpec(0.7).key
        )
        assert (
            SpecializationSpec(0.7).key != SpecializationSpec(0.6).key
        )


def _specializer(**kw):
    return KernelSpecializer(**kw)


def _sobel_args(size=34, seed=0):
    img = synthetic_image(size, size, seed)
    return img, [(img[i - 1 : i + 2], i) for i in range(1, size - 1)]


class TestSpecializedPlan:
    def test_counts_and_gather(self):
        sp = _specializer()
        img, args_list = _sobel_args()
        plan = sp.specialize(
            "sobel",
            sobel_row_value,
            args_list,
            significance=lambda w, i: sobel_row_significance(i),
            approxfun=sobel_row_value_approx,
            cost=sobel_row_cost(img.shape[1]),
            ratio=0.5,
            n_chunks=4,
        )
        n = len(args_list)
        assert plan.n_tasks == n
        assert plan.accurate + plan.approximate == n
        assert plan.dropped == 0  # approxfun present: A mode
        assert plan.n_chunks <= 8  # at most 4 per kind
        assert plan.work_acc > plan.work_apx > 0.0
        # Execute the chunks directly and scatter back.
        results = []
        for batch in plan.batches:
            for members, cid in batch.args_list:
                results.append(batch.body(members, cid))
        rows = plan.gather(results)
        for (window, i), row, kind in zip(args_list, rows, plan.kinds):
            expect = (
                sobel_row_value(window, i)
                if kind is ExecutionKind.ACCURATE
                else sobel_row_value_approx(window, i)
            )
            np.testing.assert_array_equal(row, expect)

    def test_dropped_elements_gather_none(self):
        sp = _specializer()
        _, args_list = _sobel_args()
        plan = sp.specialize(
            "sobel",
            sobel_row_value,
            args_list,
            significance=lambda w, i: sobel_row_significance(i),
            approxfun=None,  # D mode
            ratio=0.25,
            n_chunks=4,
        )
        assert plan.dropped > 0
        results = [
            batch.body(members, cid)
            for batch in plan.batches
            for members, cid in batch.args_list
        ]
        rows = plan.gather(results)
        for row, kind in zip(rows, plan.kinds):
            assert (row is None) == (kind is ExecutionKind.DROPPED)

    def test_gather_arity_checked(self):
        sp = _specializer()
        _, args_list = _sobel_args(10)
        plan = sp.specialize(
            "sobel", sobel_row_value, args_list, ratio=1.0, n_chunks=2
        )
        with pytest.raises(SpecializationError, match="chunk results"):
            plan.gather([])

    def test_chunk_costs_sum_member_work(self):
        sp = _specializer()
        img, args_list = _sobel_args()
        cost = sobel_row_cost(img.shape[1])
        plan = sp.specialize(
            "sobel",
            sobel_row_value,
            args_list,
            significance=lambda w, i: sobel_row_significance(i),
            approxfun=sobel_row_value_approx,
            cost=cost,
            ratio=0.5,
            n_chunks=4,
        )
        total = sum(
            batch.costs[cid].accurate
            for batch in plan.batches
            for _, cid in batch.args_list
        )
        expect = (
            plan.accurate * cost.accurate
            + plan.approximate * cost.approximate
        )
        assert total == pytest.approx(expect)

    def test_dvfs_factor_scales_chunk_work(self):
        sp = _specializer()
        _, args_list = _sobel_args(18)
        kw = dict(
            significance=0.9,
            cost=TaskCost(accurate=100.0),
            ratio=1.0,
            n_chunks=2,
        )
        base = sp.specialize(
            "sobel", sobel_row_value, args_list, **kw
        )
        fast = sp.specialize(
            "sobel", sobel_row_value, args_list, dvfs_factor=2.0, **kw
        )
        t_base = sum(
            b.costs[cid].accurate
            for b in base.batches
            for _, cid in b.args_list
        )
        t_fast = sum(
            b.costs[cid].accurate
            for b in fast.batches
            for _, cid in b.args_list
        )
        assert t_fast == pytest.approx(t_base / 2.0)


class TestCache:
    def test_hits_across_specializations(self):
        sp = _specializer()
        _, args_list = _sobel_args(12)
        for _ in range(3):
            sp.specialize(
                "sobel", sobel_row_value, args_list, ratio=1.0
            )
        stats = sp.stats()
        assert stats["compiles"] == 1
        assert stats["hits"] == 2

    def test_distinct_variants_compile_separately(self):
        sp = _specializer()
        _, args_list = _sobel_args(12)
        sp.specialize(
            "sobel",
            sobel_row_value,
            args_list,
            significance=0.5,
            approxfun=sobel_row_value_approx,
            ratio=0.5,
        )
        assert sp.stats()["compiles"] == 2  # one per variant body

    def test_lru_eviction(self):
        cache = SpecializationCache(capacity=1)
        cache.body("a", sobel_row_value, False)
        cache.body("b", sobel_row_value_approx, False)
        assert len(cache) == 1
        assert cache.stats.evictions == 1

    def test_invalidate_by_kernel(self):
        sp = _specializer()
        _, args_list = _sobel_args(12)
        sp.specialize("one", sobel_row_value, args_list, ratio=1.0)
        sp.specialize("two", sobel_row_value, args_list, ratio=1.0)
        assert sp.invalidate("one") == 1
        assert len(sp.cache) == 1
        sp.specialize("one", sobel_row_value, args_list, ratio=1.0)
        assert sp.stats()["compiles"] == 3  # recompiled after eviction

    def test_capacity_validated(self):
        with pytest.raises(ConfigError, match="capacity"):
            SpecializationCache(capacity=0)


class TestPickle:
    def test_body_roundtrip_reuses_compiled_loop(self):
        body = SpecializedBody("k", sobel_row_value)
        clone = pickle.loads(pickle.dumps(body))
        window = synthetic_image(8, 12, 0)[:3]
        np.testing.assert_array_equal(
            clone([(window, 1)], 0)[0], body([(window, 1)], 0)[0]
        )
        # A second unpickle hits the process-local rebuild cache.
        assert pickle.loads(pickle.dumps(body)) is clone

    def test_process_engine_executes_specialized_chunks(self):
        cfg = RuntimeConfig(
            policy="gtb-max",
            n_workers=2,
            engine="process",
            compile="specialize",
        )
        rt = Scheduler(cfg)
        img, args_list = _sobel_args(18)
        plan = rt.specializer.specialize(
            "sobel",
            sobel_row_value,
            args_list,
            significance=lambda w, i: sobel_row_significance(i),
            approxfun=sobel_row_value_approx,
            cost=sobel_row_cost(img.shape[1]),
            ratio=0.5,
            n_chunks=2,
        )
        rt.init_group("g", 0.5)
        tasks = rt.spawn_specialized(plan, label="g")
        rt.taskwait(label="g")
        rt.finish()
        rows = plan.gather([t.result for t in tasks])
        for (window, i), row, kind in zip(args_list, rows, plan.kinds):
            expect = (
                sobel_row_value(window, i)
                if kind is ExecutionKind.ACCURATE
                else sobel_row_value_approx(window, i)
            )
            np.testing.assert_array_equal(row, expect)


class TestSchedulerIntegration:
    def _interpreted(self, img, ratio):
        rt = Scheduler(RuntimeConfig(policy="gtb-max", n_workers=4))
        rt.init_group("g", ratio)
        tasks = [
            rt.spawn(
                sobel_row_value,
                img[i - 1 : i + 2],
                i,
                significance=sobel_row_significance(i),
                approxfun=sobel_row_value_approx,
                label="g",
                cost=sobel_row_cost(img.shape[1]),
            )
            for i in range(1, img.shape[0] - 1)
        ]
        rt.taskwait(label="g")
        return [t.result for t in tasks], rt.finish()

    def _specialized(self, img, ratio):
        rt = Scheduler(
            RuntimeConfig(
                policy="gtb-max", n_workers=4, compile="specialize"
            )
        )
        plan = rt.specializer.specialize(
            "sobel",
            sobel_row_value,
            [(img[i - 1 : i + 2], i) for i in range(1, img.shape[0] - 1)],
            significance=lambda w, i: sobel_row_significance(i),
            approxfun=sobel_row_value_approx,
            cost=sobel_row_cost(img.shape[1]),
            ratio=ratio,
            n_chunks=4,
        )
        rt.init_group("g", ratio)
        tasks = rt.spawn_specialized(plan, label="g")
        rt.taskwait(label="g")
        return plan.gather([t.result for t in tasks]), rt.finish(), plan

    @pytest.mark.parametrize("ratio", [0.0, 0.4, 1.0])
    def test_bit_identical_results_and_energy_parity(self, ratio):
        img = synthetic_image(34, 34, 3)
        rows_i, rep_i = self._interpreted(img, ratio)
        rows_s, rep_s, plan = self._specialized(img, ratio)
        for a, b in zip(rows_i, rows_s):
            np.testing.assert_array_equal(a, b)
        # Logical decisions match the interpreted group exactly.
        assert plan.accurate == rep_i.accurate_tasks
        assert plan.approximate == rep_i.approximate_tasks
        # Chunk costs sum member work → same busy-proportional energy.
        # (Total energy may differ either way: chunking changes the
        # makespan — fewer per-task overheads, but also fewer units of
        # parallelism — and idle/uncore energy scales with makespan.)
        assert rep_s.energy.core_active_j == pytest.approx(
            rep_i.energy.core_active_j, rel=0.10
        )

    def test_chunks_run_forced_accurate(self):
        img = synthetic_image(18, 18, 3)
        _, rep, plan = self._specialized(img, 0.5)
        assert rep.tasks_total == plan.n_chunks
        assert rep.accurate_tasks == plan.n_chunks


class TestServeIntegration:
    def _serve(self, compile_spec, jobs=4):
        from repro.serve.server import TaskService

        cfg = RuntimeConfig(
            policy="gtb-max", n_workers=4, compile=compile_spec
        )
        svc = TaskService(cfg, compute_quality=False)
        reports = []
        for j in range(jobs):
            for kernel in ("sobel", "dct"):
                reports.append(
                    svc.submit(
                        {
                            "job_id": f"{kernel}-{j}",
                            "tenant": "standard",
                            "kernel": kernel,
                            "args": {"size": 24 if kernel == "sobel" else 32, "seed": j},
                            "ratio": 0.7,
                        }
                    )
                )
            svc.flush()
        return reports, svc

    def test_outputs_and_counts_identical_on_vs_off(self):
        off, _ = self._serve("off")
        on, svc = self._serve("specialize")
        for a, b in zip(off, on):
            assert a.status == b.status == "executed"
            np.testing.assert_array_equal(a.output, b.output)
            assert (a.tasks_total, a.accurate, a.approximate, a.dropped) == (
                b.tasks_total,
                b.accurate,
                b.approximate,
                b.dropped,
            )
            assert b.energy_j == pytest.approx(a.energy_j, rel=0.10)
        # Bodies compiled once per (kernel, variant), reused across jobs.
        stats = svc._specializer.stats()
        assert stats["hits"] > stats["compiles"]

    def test_profile_lands_in_chrome_trace_group_meta(self, tmp_path):
        clear_profile()
        _, svc = self._serve("specialize:profile=true", jobs=2)
        metas = [
            meta
            for meta in svc.job_meta.values()
            if "profile" in meta
        ]
        assert metas
        prof = metas[0]["profile"]
        assert all(
            rec["calls"] > 0 and rec["total_s"] >= 0.0
            for rec in prof.values()
        )
        path = svc.write_trace(tmp_path / "trace.json")
        events = json.loads(path.read_text())["traceEvents"]
        tagged = [
            e
            for e in events
            if isinstance(e.get("args"), dict) and "profile" in e["args"]
        ]
        assert tagged
        assert "calls" in next(iter(tagged[0]["args"]["profile"].values()))


class TestProfilerOverhead:
    def test_overhead_under_5pct(self):
        """The recompyle-style wrapper must stay under 5% wall overhead."""
        # Rows wide enough that per-call work dwarfs both the probe
        # (two perf_counter reads) and the inlined-vs-call delta.
        img = synthetic_image(130, 1024, 1)
        members = tuple(
            (img[i - 1 : i + 2], i) for i in range(1, 129)
        )
        plain, _ = compile_chunk_body(sobel_row_value, "bench")
        profiled, _ = compile_chunk_body(
            sobel_row_value, "bench", profile=True
        )

        plain(members, 0)  # warm both paths
        profiled(members, 0)
        # Interleave the two variants and keep each one's best lap so
        # scheduler noise (other tests' worker pools winding down)
        # hits both paths alike.
        t_plain = t_prof = float("inf")
        for _ in range(15):
            t0 = time.perf_counter()
            plain(members, 0)
            t1 = time.perf_counter()
            profiled(members, 0)
            t2 = time.perf_counter()
            t_plain = min(t_plain, t1 - t0)
            t_prof = min(t_prof, t2 - t1)
        overhead = (t_prof - t_plain) / t_plain
        assert overhead < 0.05, f"profiler overhead {overhead:.1%}"

    def test_snapshot_windows_and_clears(self):
        clear_profile()
        loop, _ = compile_chunk_body(_double, "win", profile=True)
        loop([(1,), (2,)], 0)
        snap = profile_snapshot(kernel="win", clear=True)
        assert snap["_double"]["calls"] == 2
        assert profile_snapshot(kernel="win") == {}


class TestConfig:
    def test_off_builds_none(self):
        assert RuntimeConfig().build_compile() is None
        assert RuntimeConfig(compile=None).build_compile() is None
        assert RuntimeConfig().compile == "off"

    def test_specialize_builds_specializer(self):
        sp = RuntimeConfig(
            compile="specialize:cache_size=2,profile=true"
        ).build_compile()
        assert isinstance(sp, KernelSpecializer)
        assert sp.cache.capacity == 2
        assert sp.profile is True

    def test_validation(self):
        with pytest.raises(ConfigError, match="unknown compile tier"):
            RuntimeConfig(compile="jit")
        with pytest.raises(ConfigError, match="compile option"):
            RuntimeConfig(compile="specialize:nope=1")
        with pytest.raises(ConfigError, match="cache_size"):
            RuntimeConfig(compile="specialize:cache_size=0")
        with pytest.raises(ConfigError, match="spec string"):
            RuntimeConfig(compile=3.14)

    def test_round_trip_and_describe(self):
        cfg = RuntimeConfig(compile="specialize:cache_size=8")
        assert RuntimeConfig.from_dict(cfg.to_dict()) == cfg
        assert "compile=specialize" in cfg.describe()
        assert "compile" not in RuntimeConfig().describe()
        # Old serialized configs (no compile key) still load.
        data = RuntimeConfig().to_dict()
        data.pop("compile")
        assert RuntimeConfig.from_dict(data).compile == "off"

    def test_programmatic_instance_passes_through(self):
        sp = KernelSpecializer(cache_size=4)
        cfg = RuntimeConfig(compile=sp)
        assert cfg.build_compile() is sp
        with pytest.raises(ConfigError, match="serialize"):
            cfg.to_dict()
