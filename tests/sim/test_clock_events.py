"""Unit tests for the virtual clock and deterministic event queue."""

import pytest

from repro.runtime.errors import SchedulerError
from repro.sim.clock import VirtualClock
from repro.sim.events import EventQueue


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(SchedulerError):
            VirtualClock(-1.0)

    def test_advance_to(self):
        c = VirtualClock()
        assert c.advance_to(2.5) == 2.5
        assert c.now == 2.5

    def test_advance_to_past_rejected(self):
        c = VirtualClock(3.0)
        with pytest.raises(SchedulerError):
            c.advance_to(1.0)

    def test_advance_to_same_time_ok(self):
        c = VirtualClock(3.0)
        assert c.advance_to(3.0) == 3.0

    def test_advance_by(self):
        c = VirtualClock(1.0)
        assert c.advance_by(0.5) == 1.5

    def test_advance_by_negative_rejected(self):
        with pytest.raises(SchedulerError):
            VirtualClock().advance_by(-0.1)

    def test_reset(self):
        c = VirtualClock(9.0)
        c.reset()
        assert c.now == 0.0


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        fired = []
        q.push(3.0, lambda t: fired.append("c"))
        q.push(1.0, lambda t: fired.append("a"))
        q.push(2.0, lambda t: fired.append("b"))
        while q:
            ev = q.pop()
            ev.action(ev.time)
        assert fired == ["a", "b", "c"]

    def test_same_time_insertion_order(self):
        q = EventQueue()
        fired = []
        for tag in "abcde":
            q.push(1.0, lambda t, tag=tag: fired.append(tag))
        while q:
            ev = q.pop()
            ev.action(ev.time)
        assert fired == list("abcde")

    def test_cannot_schedule_into_processed_past(self):
        q = EventQueue()
        q.push(5.0, lambda t: None)
        q.pop()
        with pytest.raises(SchedulerError):
            q.push(4.0, lambda t: None)

    def test_scheduling_at_last_pop_time_ok(self):
        q = EventQueue()
        q.push(5.0, lambda t: None)
        q.pop()
        q.push(5.0, lambda t: None)  # same instant: allowed
        assert len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(SchedulerError):
            EventQueue().pop()

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(2.0, lambda t: None)
        q.push(1.0, lambda t: None)
        assert q.peek_time() == 1.0

    def test_clear(self):
        q = EventQueue()
        q.push(1.0, lambda t: None)
        q.clear()
        assert not q and q.peek_time() is None

    def test_len_and_bool(self):
        q = EventQueue()
        assert len(q) == 0 and not q
        q.push(1.0, lambda t: None)
        assert len(q) == 1 and q
