"""Behavioural tests of the discrete-event simulated machine.

These pin the scheduling semantics the experiments depend on:
parallelism across virtual cores, FIFO-per-worker order, stealing,
deterministic replay, and master/worker timeline interaction.
"""

import pytest

from repro.runtime.policies import SignificanceAgnostic
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import TaskCost

WORK = TaskCost(accurate=2_000_000.0, approximate=100_000.0)  # 1 ms / core


def sched(workers=4):
    return Scheduler(policy=SignificanceAgnostic(), n_workers=workers)


class TestParallelism:
    def test_ideal_speedup_for_independent_tasks(self):
        """N equal tasks on W workers take ~ceil(N/W) task times."""
        t1 = self._run(workers=1, n=8)
        t4 = self._run(workers=4, n=8)
        assert t1 / t4 == pytest.approx(4.0, rel=0.05)

    @staticmethod
    def _run(workers, n):
        rt = sched(workers)
        for _ in range(n):
            rt.spawn(lambda: None, cost=WORK)
        return rt.finish().makespan_s

    def test_makespan_lower_bound_total_work(self):
        rt = sched(4)
        for _ in range(8):
            rt.spawn(lambda: None, cost=WORK)
        rep = rt.finish()
        per_task = 2_000_000.0 / rt.machine_model.ops_per_second
        assert rep.makespan_s >= 2 * per_task  # 8 tasks / 4 workers

    def test_workers_all_used(self):
        rt = sched(4)
        for _ in range(16):
            rt.spawn(lambda: None, cost=WORK)
        rep = rt.finish()
        assert all(n > 0 for n in rep.queue_stats.executed_per_worker)

    def test_single_long_task_no_speedup(self):
        rt = sched(8)
        rt.spawn(lambda: None, cost=WORK)
        rep = rt.finish()
        per_task = 2_000_000.0 / rt.machine_model.ops_per_second
        assert rep.makespan_s == pytest.approx(per_task, rel=0.05)


class TestStealing:
    def test_stealing_balances_unbalanced_issue(self):
        """All tasks pushed to one queue still spread via stealing."""
        rt = sched(4)
        # bypass round-robin: force everything onto worker 0's queue by
        # issuing dependent bursts — simpler: issue 16 tasks, check
        # steals occurred at least when queues drained unevenly.
        for _ in range(17):  # odd count forces some imbalance
            rt.spawn(lambda: None, cost=WORK)
        rep = rt.finish()
        # With round-robin + equal durations there is little to steal,
        # but the fabric must never deadlock and all tasks must finish.
        assert rep.tasks_total == 17
        assert sum(rep.queue_stats.executed_per_worker) == 17

    def test_steal_count_reported(self):
        rt = sched(2)
        # one giant task on worker 0's queue position, many small ones
        rt.spawn(lambda: None, cost=TaskCost(8_000_000.0))
        for _ in range(6):
            rt.spawn(lambda: None, cost=TaskCost(200_000.0))
        rep = rt.finish()
        assert rep.queue_stats.steals > 0


class TestDeterminism:
    def test_bit_identical_replay(self):
        def run():
            rt = Scheduler(
                policy=SignificanceAgnostic(), n_workers=5
            )
            order = []
            for i in range(40):
                rt.spawn(
                    lambda i=i: order.append(i),
                    cost=TaskCost(1000.0 * (i % 7 + 1)),
                )
            rep = rt.finish()
            return order, rep.makespan_s, rep.energy_j

        a, b = run(), run()
        assert a[0] == b[0]
        assert a[1] == b[1]
        assert a[2] == b[2]


class TestMasterTimeline:
    def test_spawn_cost_advances_master(self):
        rt = sched(2)
        t0 = rt.engine.master_time
        rt.spawn(lambda: None, cost=WORK)
        assert rt.engine.master_time > t0

    def test_master_bound_when_tasks_tiny(self):
        """Tiny tasks: makespan ~ master spawn time, not worker time."""
        rt = sched(16)
        n = 500
        for _ in range(n):
            rt.spawn(lambda: None, cost=TaskCost(1.0))
        rep = rt.finish()
        spawn_s = (
            100.0 / rt.machine_model.ops_per_second
        ) * n  # SPAWN_BASE units each
        assert rep.makespan_s >= spawn_s * 0.9

    def test_barrier_syncs_master_to_workers(self):
        rt = sched(2)
        rt.spawn(lambda: None, cost=WORK)
        t = rt.taskwait()
        assert rt.engine.master_time == pytest.approx(t)
        rt.finish()

    def test_trace_master_busy_recorded(self):
        rt = sched(2)
        for _ in range(10):
            rt.spawn(lambda: None, cost=WORK)
        rep = rt.finish()
        assert rep.trace is not None
        assert rep.trace.master_busy > 0


class TestHostExecution:
    def test_bodies_really_execute(self):
        rt = sched(2)
        acc = []
        for i in range(5):
            rt.spawn(lambda i=i: acc.append(i), cost=WORK)
        rt.finish()
        assert sorted(acc) == [0, 1, 2, 3, 4]

    def test_host_seconds_accumulated(self):
        # No cost annotation -> the hybrid model falls back to measured
        # wall time, so the engine must time the body.
        rt = sched(2)
        rt.spawn(lambda: sum(range(10_000)))
        rep = rt.finish()
        assert rep.host_seconds > 0

    def test_host_measurement_skipped_for_analytic_tasks(self):
        # Annotated tasks take the analytic path under the default
        # hybrid model; the engine skips the perf_counter traffic and
        # the diagnostic counter stays zero.
        rt = sched(2)
        rt.spawn(lambda: sum(range(10_000)), cost=WORK)
        rep = rt.finish()
        assert rep.host_seconds == 0.0

    def test_exceptions_propagate_with_context(self):
        rt = sched(2)

        def boom():
            raise ValueError("task failed")

        rt.spawn(boom, cost=WORK)
        with pytest.raises(ValueError, match="task failed"):
            rt.finish()
