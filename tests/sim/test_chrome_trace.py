"""Tests for the Chrome trace-event exporter."""

import json

from repro.runtime.task import ExecutionKind
from repro.sim.chrome_trace import to_chrome_trace, write_chrome_trace
from repro.sim.trace import ExecutionTrace, Segment


def sample_trace() -> ExecutionTrace:
    tr = ExecutionTrace(2)
    tr.record(Segment(0, 0.0, 1e-3, 1, ExecutionKind.ACCURATE, "g"))
    tr.record(Segment(1, 0.0, 5e-4, 2, ExecutionKind.APPROXIMATE, "g"))
    tr.record(Segment(1, 5e-4, 5e-4, 3, ExecutionKind.DROPPED, None))
    return tr


class TestChromeTrace:
    def test_thread_metadata_per_worker(self):
        doc = to_chrome_trace(sample_trace())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(meta) == 2
        assert meta[0]["args"]["name"] == "worker-0"

    def test_complete_events_for_tasks(self):
        doc = to_chrome_trace(sample_trace())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 2
        span = next(s for s in spans if s["args"]["tid"] == 1)
        assert span["ts"] == 0.0
        assert span["dur"] == 1000.0  # 1 ms in microseconds
        assert span["cat"] == "accurate"
        assert "[g]" in span["name"]

    def test_zero_duration_becomes_instant(self):
        doc = to_chrome_trace(sample_trace())
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["cat"] == "dropped"

    def test_other_data(self):
        doc = to_chrome_trace(sample_trace())
        assert doc["otherData"]["workers"] == 2
        assert doc["otherData"]["makespan_s"] == 1e-3

    def test_write_roundtrip(self, tmp_path):
        p = write_chrome_trace(sample_trace(), tmp_path / "t.json")
        loaded = json.loads(p.read_text())
        assert loaded["traceEvents"]

    def test_group_meta_tags_events(self):
        meta = {"g": {"tenant": "acme", "job": "j7", "kernel": "sobel"}}
        doc = to_chrome_trace(sample_trace(), group_meta=meta)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        for span in spans:  # both spans belong to group "g"
            assert span["args"]["tenant"] == "acme"
            assert span["args"]["job"] == "j7"
            assert span["args"]["kernel"] == "sobel"
            assert span["cat"].endswith(",tenant:acme")
        # The untagged (groupless) instant event is untouched.
        instant = next(e for e in doc["traceEvents"] if e["ph"] == "i")
        assert "tenant" not in instant["args"]
        assert instant["cat"] == "dropped"

    def test_group_meta_absent_is_identical(self):
        assert to_chrome_trace(sample_trace()) == to_chrome_trace(
            sample_trace(), group_meta={}
        )

    def test_real_run_exports(self, tmp_path):
        from repro.runtime.scheduler import Scheduler
        from repro.runtime.task import TaskCost

        rt = Scheduler(n_workers=2)
        for i in range(6):
            rt.spawn(lambda: None, cost=TaskCost(1000.0))
        rep = rt.finish()
        assert rep.trace is not None
        p = write_chrome_trace(rep.trace, tmp_path / "run.json")
        doc = json.loads(p.read_text())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 6
