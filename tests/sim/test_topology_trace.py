"""Unit tests for machine topology and execution traces."""

import pytest

from repro.runtime.errors import EnergyModelError, SchedulerError
from repro.runtime.task import ExecutionKind
from repro.sim.topology import Topology
from repro.sim.trace import ExecutionTrace, Segment

A, X = ExecutionKind.ACCURATE, ExecutionKind.APPROXIMATE


class TestTopology:
    def test_paper_testbed_shape(self):
        t = Topology()  # default: the paper's 2 x 8 Xeon
        assert t.sockets == 2
        assert t.cores_per_socket == 8
        assert t.n_cores == 16

    def test_socket_of(self):
        t = Topology(2, 8)
        assert t.socket_of(0) == 0
        assert t.socket_of(7) == 0
        assert t.socket_of(8) == 1
        assert t.socket_of(15) == 1

    def test_socket_of_out_of_range(self):
        with pytest.raises(EnergyModelError):
            Topology(2, 8).socket_of(16)

    def test_cores_of(self):
        t = Topology(2, 4)
        assert list(t.cores_of(1)) == [4, 5, 6, 7]

    def test_cores_of_bad_socket(self):
        with pytest.raises(EnergyModelError):
            Topology(2, 4).cores_of(2)

    @pytest.mark.parametrize("workers,sockets", [
        (1, 1), (8, 1), (9, 2), (16, 2), (17, 3),
    ])
    def test_for_workers(self, workers, sockets):
        t = Topology.for_workers(workers)
        assert t.sockets == sockets
        assert t.n_cores >= workers

    def test_invalid_topology(self):
        with pytest.raises(EnergyModelError):
            Topology(0, 8)
        with pytest.raises(EnergyModelError):
            Topology.for_workers(0)


def seg(worker, start, end, tid=0, kind=A, group=None):
    return Segment(worker, start, end, tid, kind, group)


class TestExecutionTrace:
    def test_record_and_makespan(self):
        tr = ExecutionTrace(2)
        tr.record(seg(0, 0.0, 1.0))
        tr.record(seg(1, 0.5, 2.5))
        assert tr.makespan == 2.5

    def test_empty_makespan_zero(self):
        assert ExecutionTrace(2).makespan == 0.0

    def test_invalid_segment_rejected(self):
        tr = ExecutionTrace(2)
        with pytest.raises(SchedulerError):
            tr.record(seg(0, 2.0, 1.0))  # ends before start
        with pytest.raises(SchedulerError):
            tr.record(seg(5, 0.0, 1.0))  # worker out of range

    def test_busy_time(self):
        tr = ExecutionTrace(2)
        tr.record(seg(0, 0.0, 1.0))
        tr.record(seg(0, 1.0, 1.5))
        tr.record(seg(1, 0.0, 2.0))
        assert tr.busy_time(0) == pytest.approx(1.5)
        assert tr.busy_time() == pytest.approx(3.5)
        assert tr.busy_by_worker() == pytest.approx([1.5, 2.0])

    def test_utilization(self):
        tr = ExecutionTrace(2)
        tr.record(seg(0, 0.0, 2.0))
        tr.record(seg(1, 0.0, 1.0))
        assert tr.utilization() == pytest.approx(0.75)

    def test_utilization_empty_zero(self):
        assert ExecutionTrace(3).utilization() == 0.0

    def test_tasks_by_kind(self):
        tr = ExecutionTrace(1)
        tr.record(seg(0, 0, 1, kind=A))
        tr.record(seg(0, 1, 2, kind=X))
        tr.record(seg(0, 2, 3, kind=X))
        by = tr.tasks_by_kind()
        assert by[A] == 1 and by[X] == 2

    def test_window_clips_segments(self):
        tr = ExecutionTrace(1)
        tr.record(seg(0, 0.0, 10.0))
        w = tr.window(2.0, 5.0)
        assert len(w.segments) == 1
        assert w.segments[0].start == 2.0
        assert w.segments[0].end == 5.0

    def test_window_drops_outside_segments(self):
        tr = ExecutionTrace(1)
        tr.record(seg(0, 0.0, 1.0))
        tr.record(seg(0, 8.0, 9.0))
        w = tr.window(2.0, 5.0)
        assert len(w.segments) == 0

    def test_window_invalid(self):
        with pytest.raises(SchedulerError):
            ExecutionTrace(1).window(3.0, 1.0)

    def test_gantt_renders(self):
        tr = ExecutionTrace(2)
        tr.record(seg(0, 0.0, 1.0, kind=A))
        tr.record(seg(1, 0.0, 0.5, kind=X))
        art = tr.gantt(width=20)
        assert "w00" in art and "#" in art and "~" in art

    def test_gantt_empty(self):
        assert "empty" in ExecutionTrace(1).gantt()
