"""The repro test suite (importable package: shared fixtures live in conftest.py)."""
