"""EnergyBudgetGovernor: the online control loop (ISSUE 4 tentpole).

The acceptance scenario: on the Sobel workload with the budget at ~70%
of full-precision energy, the governor converges within the run, final
energy lands within 10% of budget, and quality beats the
significance-agnostic drop baseline at equal energy.
"""

from __future__ import annotations

import pytest

from repro import EnergyBudgetGovernor, RuntimeConfig, Scheduler
from repro.kernels.base import get_benchmark
from repro.registry import available, resolve
from repro.runtime.task import TaskCost
from repro.tuning.governor import GovernorError

N_WORKERS = 16
SEED = 2015


def _sobel(size: int):
    bench = get_benchmark("sobel", small=True)
    bench.height = bench.width = size
    return bench


def _accurate_run(bench, inputs):
    sched = Scheduler(policy="accurate", n_workers=N_WORKERS)
    out = bench.run_tasks(sched, inputs, 1.0)
    return out, sched.finish()


@pytest.fixture(scope="module")
def sobel_setup():
    bench = _sobel(256)
    inputs = bench.build_input(SEED)
    reference = bench.run_reference(inputs)
    _, full = _accurate_run(bench, inputs)
    return bench, inputs, reference, full


@pytest.fixture(scope="module")
def governed_70(sobel_setup):
    """The acceptance run: budget at 70% of full-precision energy."""
    bench, inputs, reference, full = sobel_setup
    budget = 0.7 * full.energy_j
    interval = full.makespan_s / 40
    sched = Scheduler(
        policy="lqh",
        n_workers=N_WORKERS,
        governor=f"governor:budget_j={budget},interval={interval}",
    )
    out = bench.run_tasks(sched, inputs, 1.0)
    report = sched.finish()
    return sched, report, out, budget


class TestAcceptance:
    def test_converges_within_the_run(self, governed_70):
        sched, report, out, budget = governed_70
        gov = sched.governor
        assert gov.ticks > 10
        assert gov.converged
        assert gov.steps_to_converge is not None
        assert gov.steps_to_converge < gov.ticks

    def test_final_energy_within_10pct_of_budget(self, governed_70):
        _, report, _, budget = governed_70
        assert abs(report.energy_j - budget) / budget <= 0.10

    def test_energy_well_below_full_precision(
        self, governed_70, sobel_setup
    ):
        _, report, _, _ = governed_70
        full = sobel_setup[3]
        assert report.energy_j < 0.80 * full.energy_j

    def test_quality_beats_agnostic_drop_at_equal_energy(
        self, governed_70, sobel_setup
    ):
        """Significance-aware approximation vs blind task dropping.

        The baseline sweeps the perforation (uniform-drop) knob and is
        interpolated to the governed run's exact energy; the governed
        quality (lower is better: PSNR^-1) must beat it.
        """
        bench, inputs, reference, _ = sobel_setup
        _, report, out, _ = governed_70
        gov_quality = bench.quality(reference, out).value

        frontier = []
        for param in (0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0):
            sched = Scheduler(policy="accurate", n_workers=N_WORKERS)
            dropped = bench.run_perforated(sched, inputs, param)
            rep = sched.finish()
            frontier.append(
                (rep.energy_j, bench.quality(reference, dropped).value)
            )
        frontier.sort()
        # Piecewise-linear interpolation of drop-quality at the
        # governed energy (clamped to the swept range).
        energy = min(
            max(report.energy_j, frontier[0][0]), frontier[-1][0]
        )
        drop_quality = frontier[-1][1]
        for (e0, q0), (e1, q1) in zip(frontier, frontier[1:]):
            if e0 <= energy <= e1:
                w = 0.0 if e1 == e0 else (energy - e0) / (e1 - e0)
                drop_quality = q0 + w * (q1 - q0)
                break
        assert gov_quality < drop_quality

    def test_mix_actually_approximates(self, governed_70):
        _, report, _, _ = governed_70
        assert report.approximate_tasks > 0
        assert report.accurate_tasks > 0

    def test_deterministic(self, governed_70, sobel_setup):
        """Same spec, same virtual-time trajectory, bit-equal energy."""
        bench, inputs, _, full = sobel_setup
        _, report, _, budget = governed_70
        interval = full.makespan_s / 40
        sched = Scheduler(
            policy="lqh",
            n_workers=N_WORKERS,
            governor=f"governor:budget_j={budget},interval={interval}",
        )
        bench.run_tasks(sched, inputs, 1.0)
        rerun = sched.finish()
        assert rerun.energy_j == report.energy_j
        assert sched.governor.ratio == pytest.approx(
            sched.governor.history[-1].ratio
        )


class TestControlSurface:
    def test_history_records_every_tick(self, governed_70):
        sched, *_ = governed_70
        gov = sched.governor
        assert len(gov.history) == gov.ticks
        assert [s.index for s in gov.history] == list(range(gov.ticks))
        times = [s.t for s in gov.history]
        assert times == sorted(times)

    def test_summary_schema(self, governed_70):
        sched, *_ = governed_70
        summary = sched.governor.summary()
        assert set(summary) == {
            "budget_j",
            "ticks",
            "converged",
            "steps_to_converge",
            "final_ratio",
            "final_factor",
            "spent_j_at_last_tick",
            "projected_j",
        }

    def test_generous_budget_keeps_full_quality(self, sobel_setup):
        """A budget above full-precision energy should not approximate."""
        bench, inputs, _, full = sobel_setup
        budget = 1.5 * full.energy_j
        interval = full.makespan_s / 40
        sched = Scheduler(
            policy="lqh",
            n_workers=N_WORKERS,
            governor=f"governor:budget_j={budget},interval={interval}",
        )
        bench.run_tasks(sched, inputs, 1.0)
        report = sched.finish()
        # LQH's cold-histogram undershoot allows a small leak, but the
        # governor must hold the ratio at its ceiling.
        assert sched.governor.ratio == 1.0
        assert report.accurate_tasks >= 0.95 * report.tasks_total

    def test_ratio_floor_is_respected(self, sobel_setup):
        """An unreachably small budget pins at the quality floor."""
        bench, inputs, _, full = sobel_setup
        interval = full.makespan_s / 40
        sched = Scheduler(
            policy="lqh",
            n_workers=N_WORKERS,
            governor=(
                f"governor:budget_j={full.energy_j * 0.01},"
                f"interval={interval},ratio_floor=0.3"
            ),
        )
        bench.run_tasks(sched, inputs, 1.0)
        sched.finish()
        assert sched.governor.ratio >= 0.3

    def test_quality_floor_mode_without_budget(self, sobel_setup):
        """budget_j=None: hold the cheapest ratio the floor allows."""
        bench, inputs, _, full = sobel_setup
        interval = full.makespan_s / 40
        sched = Scheduler(
            policy="lqh",
            n_workers=N_WORKERS,
            governor=(
                f"governor:interval={interval},ratio_floor=0.6"
            ),
        )
        bench.run_tasks(sched, inputs, 1.0)
        report = sched.finish()
        assert sched.governor.ratio == pytest.approx(0.6, abs=0.15)
        assert report.approximate_tasks > 0

    def test_policy_set_ratio_applies_globally(self):
        sched = Scheduler(policy="lqh", n_workers=4)
        sched.init_group("a", ratio=1.0)
        sched.init_group("b", ratio=0.9)
        sched.policy.set_ratio(0.25)
        assert sched.groups.get("a").ratio == 0.25
        assert sched.groups.get("b").ratio == 0.25
        assert sched.groups.get(None).ratio == 0.25
        sched.policy.set_ratio(0.75, group="a")
        assert sched.groups.get("a").ratio == 0.75
        assert sched.groups.get("b").ratio == 0.25
        sched.finish()


class TestDvfsMode:
    def test_dvfs_improves_quality_at_equal_budget(self, sobel_setup):
        """Downclocking + a higher ratio beats nominal at one budget —
        the paper's section-6 hypothesis, now measurable online."""
        bench, inputs, reference, full = sobel_setup
        budget = 0.7 * full.energy_j
        interval = full.makespan_s / 40
        nominal = Scheduler(
            policy="lqh",
            n_workers=N_WORKERS,
            governor=f"governor:budget_j={budget},interval={interval}",
        )
        out_nominal = bench.run_tasks(nominal, inputs, 1.0)
        rep_nominal = nominal.finish()

        dvfs = Scheduler(
            policy="lqh",
            n_workers=N_WORKERS,
            governor=(
                f"governor:budget_j={budget},interval={interval},"
                "dvfs=true"
            ),
        )
        out_dvfs = bench.run_tasks(dvfs, inputs, 1.0)
        rep_dvfs = dvfs.finish()

        assert abs(rep_dvfs.energy_j - budget) / budget <= 0.10
        assert dvfs.governor.factor < 1.0
        assert dvfs.engine.accounting.dvfs_epochs
        q_dvfs = bench.quality(reference, out_dvfs).value
        q_nominal = bench.quality(reference, out_nominal).value
        assert q_dvfs < q_nominal
        # The report's energy integration billed the downclocked epochs
        # (a nominal-rate integration would overcharge dynamic power).
        assert rep_nominal.energy_j == pytest.approx(
            rep_dvfs.energy_j, rel=0.15
        )

    def test_dvfs_factor_is_a_table_step(self, sobel_setup):
        bench, inputs, _, full = sobel_setup
        interval = full.makespan_s / 40
        sched = Scheduler(
            policy="lqh",
            n_workers=N_WORKERS,
            governor=(
                f"governor:budget_j={0.6 * full.energy_j},"
                f"interval={interval},dvfs=true"
            ),
        )
        bench.run_tasks(sched, inputs, 1.0)
        sched.finish()
        assert sched.governor.factor in sched.governor.freq_table.factors


class TestSpecLayer:
    def test_registered_in_governor_family(self):
        assert "governor" in available("governor")
        gov = resolve(
            "governor", "governor:budget_j=2.0,interval=0.01,dvfs=true"
        )
        assert isinstance(gov, EnergyBudgetGovernor)
        assert gov.budget_j == 2.0
        assert gov.dvfs is True

    def test_aliases(self):
        for alias in ("budget", "energy-budget"):
            gov = resolve("governor", f"{alias}:budget_j=1.0")
            assert isinstance(gov, EnergyBudgetGovernor)

    def test_config_round_trip(self):
        cfg = RuntimeConfig(
            policy="lqh",
            governor="governor:budget_j=1.5,interval=0.001",
        )
        assert RuntimeConfig.from_dict(cfg.to_dict()) == cfg
        assert "governor=" in cfg.describe()

    def test_sweepable_from_experiment_spec(self):
        import repro

        spec = repro.ExperimentSpec(
            workload="sobel", small=True, config=RuntimeConfig()
        )
        specs = spec.sweep(
            governor=[
                "governor:budget_j=1.0,interval=0.001",
                "governor:budget_j=2.0,interval=0.001",
            ]
        )
        assert [s.config.governor for s in specs] == [
            "governor:budget_j=1.0,interval=0.001",
            "governor:budget_j=2.0,interval=0.001",
        ]

    def test_invalid_governor_spec_fails_at_config_time(self):
        from repro.runtime.errors import ConfigError

        with pytest.raises(ConfigError):
            RuntimeConfig(governor="not-a-governor")

    def test_scheduler_without_governor_has_none(self):
        sched = Scheduler(policy="accurate", n_workers=2)
        assert sched.governor is None
        sched.finish()


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"budget_j": 0.0},
            {"budget_j": -1.0},
            {"interval": 0.0},
            {"interval": -0.5},
            {"ratio_floor": -0.1},
            {"ratio_floor": 0.9, "ratio_ceiling": 0.5},
            {"ratio_ceiling": 1.5},
            {"smoothing": 0.0},
            {"smoothing": 1.5},
            {"deadband": -0.01},
            {"settle_ticks": 0},
        ],
    )
    def test_bad_parameters_raise(self, kwargs):
        with pytest.raises(GovernorError):
            EnergyBudgetGovernor(**kwargs)

    def test_unbound_governor_raises(self):
        gov = EnergyBudgetGovernor(budget_j=1.0)
        with pytest.raises(GovernorError):
            gov.scheduler

    def test_double_bind_raises(self):
        gov = EnergyBudgetGovernor(budget_j=1.0, interval=0.01)
        sched = Scheduler(policy="accurate", n_workers=2, governor=gov)
        with pytest.raises(GovernorError):
            gov.bind(sched)
        sched.finish()


class TestWallClockBackends:
    """The loop must close (ticks fire, control acts) on real threads
    and processes; tight tracking is a virtual-time-only promise."""

    def test_threaded_backend_ticks(self):
        sched = Scheduler(
            policy="lqh",
            n_workers=4,
            engine="threaded",
            governor="governor:budget_j=10.0,interval=0.002",
        )
        for i in range(200):
            sched.spawn(
                _slow_noop,
                significance=(i % 9 + 1) / 10,
                approxfun=_slow_noop,
                cost=TaskCost(200000.0, 20000.0),
            )
        sched.taskwait()
        report = sched.finish()
        assert sched.governor.ticks >= 1
        assert report.tasks_total == 200

    def test_process_backend_ticks(self):
        sched = Scheduler(
            policy="lqh",
            n_workers=2,
            engine="process:max_procs=2",
            governor="governor:budget_j=10.0,interval=0.01",
        )
        sched.spawn_many(
            _slow_noop_arg,
            [(i,) for i in range(40)],
            significance=lambda i: (i % 9 + 1) / 10,
            cost=TaskCost(200000.0, 20000.0),
        )
        sched.taskwait()
        report = sched.finish()
        assert sched.governor.ticks >= 1
        assert report.tasks_total == 40


def _slow_noop(*_args):
    # A body slow enough (~100us) that wall-clock ticks can interleave.
    x = 0
    for i in range(2000):
        x += i & 7
    return x


def _slow_noop_arg(i):
    return _slow_noop(i)
