"""Tests for the Green-style QoS tuner."""

import pytest

from repro.tuning import CalibrationPoint, QosError, QosTuner


def linear_probe(ratio: float) -> tuple[float, float]:
    """Quality loss falls, energy rises, with the accurate ratio."""
    return (1.0 - ratio) * 10.0, 1.0 + 9.0 * ratio


class TestCalibration:
    def test_chooses_cheapest_feasible(self):
        tuner = QosTuner(
            probe=linear_probe,
            target_quality_loss=5.0,
            grid=(0.0, 0.25, 0.5, 0.75, 1.0),
        )
        chosen = tuner.calibrate()
        # loss(0.5) = 5.0 meets the target and is the cheapest such.
        assert chosen.ratio == 0.5
        assert tuner.ratio == 0.5

    def test_unsatisfiable_target(self):
        tuner = QosTuner(
            probe=lambda r: (3.0, 1.0),  # constant loss 3
            target_quality_loss=1.0,
        )
        with pytest.raises(QosError):
            tuner.calibrate()

    def test_zero_target_needs_accurate(self):
        tuner = QosTuner(probe=linear_probe, target_quality_loss=0.0)
        assert tuner.calibrate().ratio == 1.0

    def test_negative_probe_rejected(self):
        tuner = QosTuner(
            probe=lambda r: (-1.0, 1.0), target_quality_loss=1.0
        )
        with pytest.raises(QosError):
            tuner.calibrate()

    def test_invalid_config(self):
        with pytest.raises(QosError):
            QosTuner(probe=linear_probe, target_quality_loss=-1.0)
        with pytest.raises(QosError):
            QosTuner(probe=linear_probe, target_quality_loss=1.0, grid=())
        with pytest.raises(QosError):
            QosTuner(
                probe=linear_probe,
                target_quality_loss=1.0,
                grid=(0.5, 1.5),
            )

    def test_ratio_before_calibrate_raises(self):
        tuner = QosTuner(probe=linear_probe, target_quality_loss=1.0)
        with pytest.raises(QosError):
            _ = tuner.ratio


class TestMonitoring:
    def make(self):
        tuner = QosTuner(
            probe=linear_probe,
            target_quality_loss=5.0,
            violation_budget=0.2,
        )
        tuner.calibrate()
        return tuner

    def test_no_recalibration_when_clean(self):
        tuner = self.make()
        assert not any(tuner.observe(1.0) for _ in range(20))
        assert tuner.violation_rate == 0.0

    def test_recalibration_on_sustained_violations(self):
        tuner = self.make()
        fired = [tuner.observe(9.0) for _ in range(10)]
        assert fired[-1]  # all violations -> trigger
        assert tuner.violation_rate == 1.0

    def test_needs_minimum_evidence(self):
        tuner = self.make()
        assert not tuner.observe(9.0)  # single violation: no trigger

    def test_observe_before_calibrate(self):
        tuner = QosTuner(probe=linear_probe, target_quality_loss=5.0)
        with pytest.raises(QosError):
            tuner.observe(1.0)


class TestFrontier:
    def test_pareto_frontier_sorted_and_dominating(self):
        tuner = QosTuner(probe=linear_probe, target_quality_loss=5.0)
        tuner.calibrate()
        front = tuner.frontier()
        energies = [p.energy_j for p in front]
        losses = [p.quality_loss for p in front]
        assert energies == sorted(energies)
        assert losses == sorted(losses, reverse=True)


class TestEndToEndWithRuntime:
    def test_tunes_real_sobel(self):
        """Drive the tuner with actual runtime measurements."""
        from repro.kernels.sobel import SobelBenchmark
        from repro.runtime.policies import gtb_max_buffer
        from repro.runtime.scheduler import Scheduler

        bench = SobelBenchmark(small=True)
        img = bench.build_input()
        ref = bench.run_reference(img)

        def probe(ratio: float) -> tuple[float, float]:
            rt = Scheduler(policy=gtb_max_buffer(), n_workers=8)
            out = bench.run_tasks(rt, img, ratio)
            rep = rt.finish()
            return bench.quality(ref, out).value, rep.energy_j

        tuner = QosTuner(
            probe=probe,
            target_quality_loss=0.05,  # PSNR^-1 <= 0.05 (PSNR >= 20dB)
            grid=(0.0, 0.3, 0.6, 1.0),
        )
        chosen = tuner.calibrate()
        assert chosen.quality_loss <= 0.05
        # The tuner must pick something cheaper than fully accurate
        # whenever a cheaper feasible point exists.
        full = next(p for p in tuner.points if p.ratio == 1.0)
        assert chosen.energy_j <= full.energy_j
