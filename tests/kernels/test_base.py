"""Unit tests for the benchmark framework and Table 1 configuration."""

import pytest

from repro.kernels import (
    Benchmark,
    Degree,
    PerforationNotApplicable,
    benchmark_names,
    get_benchmark,
)


class TestRegistry:
    def test_all_six_registered(self):
        names = set(benchmark_names())
        assert names == {
            "Sobel",
            "DCT",
            "MC",
            "Kmeans",
            "Jacobi",
            "Fluidanimate",
        }

    def test_lookup_case_insensitive(self):
        assert get_benchmark("sobel").name == "Sobel"
        assert get_benchmark("SOBEL").name == "Sobel"

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            get_benchmark("linpack")

    def test_small_flag(self):
        assert get_benchmark("Sobel", small=True).small


class TestTable1Configuration:
    """The degree table must match the paper's Table 1 exactly."""

    @pytest.mark.parametrize("name,mild,med,aggr", [
        ("Sobel", 0.80, 0.30, 0.0),
        ("DCT", 0.80, 0.40, 0.10),
        ("MC", 1.00, 0.80, 0.50),
        ("Kmeans", 0.80, 0.60, 0.40),
        ("Jacobi", 1e-4, 1e-3, 1e-2),
        ("Fluidanimate", 0.50, 0.25, 0.125),
    ])
    def test_degrees(self, name, mild, med, aggr):
        b = get_benchmark(name, small=True)
        assert b.degree_param(Degree.MILD) == mild
        assert b.degree_param(Degree.MEDIUM) == med
        assert b.degree_param(Degree.AGGRESSIVE) == aggr

    @pytest.mark.parametrize("name,metric", [
        ("Sobel", "PSNR"),
        ("DCT", "PSNR"),
        ("MC", "Rel.Err"),
        ("Kmeans", "Rel.Err"),
        ("Jacobi", "Rel.Err"),
        ("Fluidanimate", "Rel.Err"),
    ])
    def test_quality_metrics(self, name, metric):
        assert get_benchmark(name, small=True).quality_metric == metric

    @pytest.mark.parametrize("name,mode", [
        ("Sobel", "A"),
        ("DCT", "D"),
        ("MC", "D, A"),
        ("Kmeans", "A"),
        ("Jacobi", "D, A"),
        ("Fluidanimate", "A"),
    ])
    def test_approx_modes(self, name, mode):
        assert get_benchmark(name, small=True).approx_mode == mode

    def test_perforation_applicability(self):
        """Perforation exists for all benchmarks except Fluidanimate
        (paper section 4.2)."""
        for name in benchmark_names():
            b = get_benchmark(name, small=True)
            expected = name != "Fluidanimate"
            assert b.perforation_applicable == expected

    def test_fluidanimate_perforation_raises(self):
        b = get_benchmark("Fluidanimate", small=True)
        with pytest.raises(PerforationNotApplicable):
            b.run_perforated(None, None, 0.5)

    def test_missing_degree_rejected(self):
        class Incomplete(Benchmark):
            name = "x"
            degrees = {}

            def build_input(self, seed=0):
                return None

            def run_tasks(self, rt, inputs, param):
                return None

            def run_reference(self, inputs):
                return None

            def quality(self, reference, output):
                raise NotImplementedError

        with pytest.raises(KeyError):
            Incomplete().degree_param(Degree.MILD)
