"""Unit tests for the Jacobi and Fluidanimate kernels."""

import numpy as np
import pytest

from repro.kernels.fluidanimate import (
    DT,
    FluidanimateBenchmark,
    FluidState,
    sph_chunk_accurate,
    sph_chunk_ballistic,
)
from repro.kernels.jacobi import (
    JacobiBenchmark,
    JacobiProblem,
    jacobi_chunk_accurate,
    jacobi_chunk_banded,
    jacobi_reference,
)
from repro.runtime.policies import gtb_max_buffer
from repro.runtime.scheduler import Scheduler


class TestJacobiProblem:
    def test_diagonally_dominant(self):
        p = JacobiProblem.generate(32)
        diag = np.abs(np.diagonal(p.a))
        off = np.abs(p.a).sum(axis=1) - diag
        assert (diag > off).all()

    def test_deterministic(self):
        a = JacobiProblem.generate(16, seed=3)
        b = JacobiProblem.generate(16, seed=3)
        assert np.array_equal(a.a, b.a) and np.array_equal(a.b, b.b)


class TestJacobiBodies:
    def test_accurate_matches_dense_formula(self):
        p = JacobiProblem.generate(16)
        x = np.random.default_rng(0).normal(size=16)
        out = np.empty(16)
        jacobi_chunk_accurate(out, p.a, p.b, x, 0, 16)
        diag = np.diagonal(p.a)
        expected = (p.b - (p.a @ x - diag * x)) / diag
        assert out == pytest.approx(expected)

    def test_banded_close_to_accurate(self):
        p = JacobiProblem.generate(64)
        x = np.random.default_rng(1).normal(size=64)
        acc = np.empty(64)
        apx = np.empty(64)
        jacobi_chunk_accurate(acc, p.a, p.b, x, 16, 32)
        jacobi_chunk_banded(apx, p.a, p.b, x, 16, 32)
        # The band keeps the diagonal, which dominates, so the banded
        # update is a genuine approximation, not noise.
        rel = np.linalg.norm(acc[16:32] - apx[16:32]) / np.linalg.norm(
            acc[16:32]
        )
        assert rel < 1.0

    def test_reference_solves_system(self):
        p = JacobiProblem.generate(48)
        x = jacobi_reference(p, tol=1e-10)
        assert p.a @ x == pytest.approx(p.b, abs=1e-6)


class TestJacobiBenchmark:
    def test_tolerance_ordering(self):
        """Tighter tolerance -> closer to the native solution."""
        b = JacobiBenchmark(small=True)
        prob = b.build_input()
        ref = b.run_reference(prob)
        errs = []
        for tol in (1e-4, 1e-3, 1e-2):
            rt = Scheduler(policy=gtb_max_buffer(), n_workers=4)
            out = b.run_tasks(rt, prob, tol)
            rt.finish()
            errs.append(b.quality(ref, out).value)
        assert errs[0] <= errs[1] <= errs[2]
        assert errs[2] < 5.0  # still graceful

    def test_first_iterations_approximate(self):
        b = JacobiBenchmark(small=True)
        prob = b.build_input()
        rt = Scheduler(policy=gtb_max_buffer(), n_workers=4)
        b.run_tasks(rt, prob, 1e-3)
        rep = rt.finish()
        # 5 approximate sweeps -> approx tasks = 5 * n_chunks
        n_chunks = len(b._chunks())
        assert rep.approximate_tasks == 5 * n_chunks

    def test_overhead_probe_all_accurate(self):
        b = JacobiBenchmark(small=True)
        prob = b.build_input()
        rt = Scheduler(policy=gtb_max_buffer(), n_workers=4)
        b.run_overhead_probe(rt, prob)
        rep = rt.finish()
        assert rep.approximate_tasks == 0
        assert rep.dropped_tasks == 0

    def test_perforated_converges(self):
        b = JacobiBenchmark(small=True)
        prob = b.build_input()
        ref = b.run_reference(prob)
        rt = Scheduler(n_workers=4)
        out = b.run_perforated(rt, prob, 1e-3)
        rt.finish()
        assert b.quality(ref, out).value < 5.0


class TestFluidState:
    def test_dam_break_inside_box(self):
        s = FluidState.dam_break(100)
        assert (s.pos >= 0).all() and (s.pos <= 1).all()
        assert np.allclose(s.vel, 0.0)

    def test_copy_independent(self):
        s = FluidState.dam_break(10)
        c = s.copy()
        c.pos[0, 0] = 0.99
        assert s.pos[0, 0] != 0.99


class TestSphBodies:
    def test_accurate_step_conserves_particles(self):
        s = FluidState.dam_break(64)
        nxt = s.copy()
        sph_chunk_accurate(nxt, s, 0, 64)
        assert (nxt.pos >= 0).all() and (nxt.pos <= 1).all()
        assert np.isfinite(nxt.vel).all()
        assert (nxt.rho > 0).all()

    def test_gravity_pulls_down(self):
        s = FluidState.dam_break(64)
        nxt = s.copy()
        sph_chunk_accurate(nxt, s, 0, 64)
        # Mean vertical velocity becomes negative from rest.
        assert nxt.vel[:, 1].mean() < 0

    def test_ballistic_is_linear_extrapolation(self):
        s = FluidState.dam_break(32)
        s.vel[:] = [[0.1, 0.0]] * 32
        nxt = s.copy()
        sph_chunk_ballistic(nxt, s, 0, 32)
        assert nxt.pos == pytest.approx(s.pos + DT * s.vel)
        assert np.array_equal(nxt.vel, s.vel)
        assert np.array_equal(nxt.rho, s.rho)

    def test_ballistic_bounces_at_walls(self):
        s = FluidState.dam_break(4)
        s.pos[0] = [0.9995, 0.5]
        s.vel[0] = [2.0, 0.0]
        nxt = s.copy()
        sph_chunk_ballistic(nxt, s, 0, 4)
        assert nxt.pos[0, 0] <= 1.0
        assert nxt.vel[0, 0] < 0  # reflected


class TestFluidBenchmark:
    def test_full_accurate_matches_reference(self):
        b = FluidanimateBenchmark(small=True)
        s = b.build_input()
        ref = b.run_reference(s)
        rt = Scheduler(policy=gtb_max_buffer(), n_workers=4)
        out = b.run_tasks(rt, s, 1.0)
        rt.finish()
        assert out.pos == pytest.approx(ref.pos)

    def test_error_grows_with_approximation(self):
        b = FluidanimateBenchmark(small=True)
        s = b.build_input()
        ref = b.run_reference(s)
        errs = []
        for frac in (0.5, 0.25, 0.125):
            rt = Scheduler(policy=gtb_max_buffer(), n_workers=4)
            out = b.run_tasks(rt, s, frac)
            rt.finish()
            errs.append(b.quality(ref, out).value)
        assert errs[0] < errs[1] < errs[2]

    def test_invalid_fraction_rejected(self):
        b = FluidanimateBenchmark(small=True)
        s = b.build_input()
        rt = Scheduler(n_workers=4)
        with pytest.raises(ValueError):
            b.run_tasks(rt, s, 0.0)

    def test_alternation_schedule(self):
        """Mild (period 2): half the steps accurate, half approximate."""
        b = FluidanimateBenchmark(small=True)
        s = b.build_input()
        rt = Scheduler(policy=gtb_max_buffer(), n_workers=4)
        b.run_tasks(rt, s, 0.5)
        rep = rt.finish()
        per_step = b.n_particles // b.chunk
        acc_steps = rep.accurate_tasks / per_step
        assert acc_steps == b.steps // 2
