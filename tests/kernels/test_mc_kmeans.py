"""Unit tests for the MC and Kmeans kernels."""

import numpy as np
import pytest

from repro.kernels.kmeans import (
    KmeansBenchmark,
    assign_chunk_accurate,
    assign_chunk_approx,
    inertia,
)
from repro.kernels.mc import (
    McBenchmark,
    boundary_g,
    subdomain_boundary_points,
    true_solution,
    walk_on_spheres_batch,
)
from repro.runtime.policies import LocalQueueHistory, gtb_max_buffer
from repro.runtime.scheduler import Scheduler


class TestMcGeometry:
    def test_boundary_points_on_subdomain(self):
        pts = subdomain_boundary_points(16)
        on_edge = (
            np.isclose(pts[:, 0], 0.25)
            | np.isclose(pts[:, 0], 0.75)
            | np.isclose(pts[:, 1], 0.25)
            | np.isclose(pts[:, 1], 0.75)
        )
        assert on_edge.all()
        assert (pts >= 0.25 - 1e-12).all() and (pts <= 0.75 + 1e-12).all()

    def test_points_distinct(self):
        pts = subdomain_boundary_points(32)
        assert len(np.unique(pts, axis=0)) == 32

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            subdomain_boundary_points(3)

    def test_g_harmonic_values(self):
        assert boundary_g(np.array([[1.0, 0.0]]))[0] == 1.0
        assert boundary_g(np.array([[0.0, 1.0]]))[0] == -1.0


class TestWalkOnSpheres:
    def test_estimates_harmonic_function(self):
        """WoS solves the Dirichlet problem: estimate ~ x^2 - y^2."""
        p = np.array([0.3, 0.6])
        est = walk_on_spheres_batch(p, 4000, eps=1e-3, seed=42)
        assert est == pytest.approx(true_solution(p[None])[0], abs=0.02)

    def test_deterministic_given_seed(self):
        p = np.array([0.5, 0.5])
        a = walk_on_spheres_batch(p, 50, 1e-3, seed=1)
        b = walk_on_spheres_batch(p, 50, 1e-3, seed=1)
        assert a == b

    def test_coarse_eps_is_biased_but_finite(self):
        p = np.array([0.4, 0.4])
        est = walk_on_spheres_batch(p, 500, eps=5e-2, seed=3)
        assert np.isfinite(est)

    def test_invalid_parameters(self):
        p = np.array([0.5, 0.5])
        with pytest.raises(ValueError):
            walk_on_spheres_batch(p, 0, 1e-3, seed=0)
        with pytest.raises(ValueError):
            walk_on_spheres_batch(p, 10, 0.7, seed=0)


class TestMcBenchmark:
    def test_mild_is_fully_accurate(self):
        """Table 1: MC Mild = 100% accurate -> zero error."""
        b = McBenchmark(small=True)
        pts = b.build_input()
        ref = b.run_reference(pts)
        rt = Scheduler(policy=gtb_max_buffer(), n_workers=4)
        out = b.run_tasks(rt, pts, 1.0)
        rt.finish()
        assert np.array_equal(out, ref)

    def test_aggressive_bounded_error(self):
        b = McBenchmark(small=True)
        pts = b.build_input()
        ref = b.run_reference(pts)
        rt = Scheduler(policy=gtb_max_buffer(), n_workers=4)
        out = b.run_tasks(rt, pts, 0.5)
        rt.finish()
        q = b.quality(ref, out)
        assert 0 < q.value < 60  # degraded but not garbage

    def test_approx_cost_much_cheaper(self):
        from repro.kernels.mc import mc_cost

        c = mc_cost(128)
        assert c.approximate < 0.35 * c.accurate


class TestKmeansBodies:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.points = rng.normal(size=(64, 16))
        self.centroids = self.points[:4].copy()
        self.labels = np.zeros(64, dtype=np.int64)

    def test_accurate_assigns_nearest(self):
        sums, counts, moved = assign_chunk_accurate(
            self.points, self.centroids, self.labels, 0, 64
        )
        assert counts.sum() == 64
        # centroid rows assign to themselves
        assert self.labels[0] == 0 and self.labels[3] == 3

    def test_accurate_counts_moves_vs_previous(self):
        assign_chunk_accurate(
            self.points, self.centroids, self.labels, 0, 64
        )
        _, _, moved = assign_chunk_accurate(
            self.points, self.centroids, self.labels, 0, 64
        )
        assert moved == 0  # second pass: nothing moves

    def test_approx_does_not_touch_labels(self):
        before = self.labels.copy()
        _, _, moved = assign_chunk_approx(
            self.points, self.centroids, self.labels, 0, 64
        )
        assert moved == 0
        assert np.array_equal(self.labels, before)

    def test_partial_sums_consistent(self):
        sums, counts, _ = assign_chunk_accurate(
            self.points, self.centroids, self.labels, 0, 32
        )
        assert counts.sum() == 32
        assert sums.sum(axis=0) == pytest.approx(
            self.points[:32].sum(axis=0)
        )

    def test_inertia_nonnegative_and_zero_on_centroids(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert inertia(pts, pts) == 0.0
        assert inertia(pts, np.array([[0.0, 0.0]])) > 0


class TestKmeansProblem:
    def test_farthest_point_init_spreads(self):
        b = KmeansBenchmark(small=True)
        prob = b.build_input()
        init = prob.initial_centroids
        dists = np.linalg.norm(
            init[:, None, :] - init[None, :, :], axis=2
        )
        np.fill_diagonal(dists, np.inf)
        # seeds land in distinct blobs: min pairwise distance is large
        assert dists.min() > 3.0

    def test_deterministic_input(self):
        b = KmeansBenchmark(small=True)
        a = b.build_input(seed=5)
        c = b.build_input(seed=5)
        assert np.array_equal(a.points, c.points)


class TestKmeansBenchmark:
    def test_reference_converges(self):
        b = KmeansBenchmark(small=True)
        prob = b.build_input()
        centroids = b.run_reference(prob)
        assert np.isfinite(centroids).all()

    def test_graceful_quality_at_aggressive(self):
        b = KmeansBenchmark(small=True)
        prob = b.build_input()
        ref = b.run_reference(prob)
        rt = Scheduler(policy=gtb_max_buffer(), n_workers=4)
        out = b.run_tasks(rt, prob, 0.4)
        rt.finish()
        assert b.quality(ref, out).value < 5.0  # percent

    def test_lqh_converges_and_matches_quality(self):
        """Paper: LQH converges slowly but reaches accurate quality."""
        b = KmeansBenchmark(small=True)
        prob = b.build_input()
        ref = b.run_reference(prob)
        rt = Scheduler(policy=LocalQueueHistory(), n_workers=4)
        out = b.run_tasks(rt, prob, 0.6)
        rep = rt.finish()
        from repro.kernels.kmeans import MAX_ITERATIONS

        n_chunks = len(b._chunks())
        iterations = rep.tasks_total / n_chunks
        assert iterations < MAX_ITERATIONS  # actually converged
        assert b.quality(ref, out).value < 5.0
