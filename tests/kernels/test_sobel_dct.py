"""Unit tests for the Sobel and DCT kernels."""

import numpy as np
import pytest

from repro.kernels.dct import (
    BLOCK,
    N_BANDS,
    band_coefficients,
    band_significance,
    blockize,
    dct_band_task,
    dct_matrix,
    reconstruct,
    unblockize,
)
from repro.kernels.sobel import (
    SobelBenchmark,
    sobel_reference,
    sobel_row_accurate,
    sobel_row_approx,
    sobel_row_significance,
)
from repro.quality.images import synthetic_image
from repro.quality.metrics import psnr
from repro.runtime.policies import gtb_max_buffer
from repro.runtime.scheduler import Scheduler


class TestSobelBodies:
    def test_accurate_detects_vertical_edge(self):
        img = np.zeros((8, 8), np.uint8)
        img[:, 4:] = 200
        res = np.zeros_like(img)
        sobel_row_accurate(res, img, 4)
        assert res[4, 3] > 100 and res[4, 4] > 100
        assert res[4, 1] == 0

    def test_approximate_close_to_accurate(self):
        img = synthetic_image(32, 32)
        acc = np.zeros_like(img)
        apx = np.zeros_like(img)
        for i in range(1, 31):
            sobel_row_accurate(acc, img, i)
            sobel_row_approx(apx, img, i)
        p = psnr(acc, apx)
        assert 10 < p < 45  # approximate but recognizable

    def test_clamp_to_255(self):
        img = np.zeros((4, 8), np.uint8)
        img[:, 4:] = 255
        res = np.zeros_like(img)
        sobel_row_accurate(res, img, 2)
        assert res.max() <= 255

    def test_significance_round_robin(self):
        sigs = [sobel_row_significance(i) for i in range(1, 19)]
        assert min(sigs) == pytest.approx(0.1)
        assert max(sigs) == pytest.approx(0.9)
        assert 0.0 not in sigs and 1.0 not in sigs  # specials avoided

    def test_reference_matches_rowwise(self):
        img = synthetic_image(16, 16)
        ref = sobel_reference(img)
        res = np.zeros_like(img)
        for i in range(1, 15):
            sobel_row_accurate(res, img, i)
        assert np.array_equal(ref, res)


class TestSobelBenchmark:
    def test_ratio_one_equals_reference(self):
        b = SobelBenchmark(small=True)
        img = b.build_input()
        rt = Scheduler(policy=gtb_max_buffer(), n_workers=4)
        out = b.run_tasks(rt, img, 1.0)
        rt.finish()
        assert np.array_equal(out, b.run_reference(img))

    def test_quality_degrades_with_ratio(self):
        b = SobelBenchmark(small=True)
        img = b.build_input()
        ref = b.run_reference(img)
        errs = []
        for ratio in (0.8, 0.3, 0.0):
            rt = Scheduler(policy=gtb_max_buffer(), n_workers=4)
            out = b.run_tasks(rt, img, ratio)
            rt.finish()
            errs.append(b.quality(ref, out).value)
        assert errs[0] <= errs[1] <= errs[2]

    def test_perforated_leaves_black_rows(self):
        b = SobelBenchmark(small=True)
        img = b.build_input()
        rt = Scheduler(n_workers=4)
        out = b.run_perforated(rt, img, 0.5)
        rt.finish()
        zero_rows = np.count_nonzero(out[1:-1].sum(axis=1) == 0)
        assert zero_rows >= (img.shape[0] - 2) // 2 - 1


class TestDctPieces:
    def test_dct_matrix_orthonormal(self):
        c = dct_matrix()
        assert np.allclose(c @ c.T, np.eye(BLOCK), atol=1e-12)

    def test_band_coefficients_partition(self):
        all_uv = [
            uv for k in range(N_BANDS) for uv in band_coefficients(k)
        ]
        assert len(all_uv) == BLOCK * BLOCK
        assert len(set(all_uv)) == BLOCK * BLOCK

    def test_band_out_of_range(self):
        with pytest.raises(ValueError):
            band_coefficients(N_BANDS)

    def test_band_significance_monotone_and_interior(self):
        sigs = [band_significance(k) for k in range(N_BANDS)]
        assert all(0.0 < s < 1.0 for s in sigs)
        assert all(a > b for a, b in zip(sigs, sigs[1:]))

    def test_blockize_roundtrip(self):
        img = synthetic_image(16, 24)
        blocks = blockize(img)
        assert blocks.shape == (2 * 3, 8, 8)
        back = unblockize(blocks, 16, 24)
        assert np.array_equal(back, img)

    def test_blockize_requires_multiple_of_8(self):
        with pytest.raises(ValueError):
            blockize(np.zeros((10, 16)))

    def test_full_pipeline_high_psnr(self):
        """All bands computed -> JPEG-quantized reconstruction only."""
        img = synthetic_image(32, 32)
        blocks = blockize(img)
        coeffs = np.zeros_like(blocks)
        for k in range(N_BANDS):
            dct_band_task(coeffs, blocks, 0, blocks.shape[0], k)
        out = reconstruct(coeffs, 32, 32)
        assert psnr(img, out) > 28  # quantization-limited

    def test_dropping_high_bands_graceful(self):
        img = synthetic_image(32, 32)
        blocks = blockize(img)
        full = np.zeros_like(blocks)
        partial = np.zeros_like(blocks)
        for k in range(N_BANDS):
            dct_band_task(full, blocks, 0, blocks.shape[0], k)
            if k < 6:
                dct_band_task(partial, blocks, 0, blocks.shape[0], k)
        ref = reconstruct(full, 32, 32)
        out = reconstruct(partial, 32, 32)
        assert psnr(ref, out) > 15

    def test_low_bands_matter_more(self):
        """Dropping low-frequency bands hurts more than high ones."""
        img = synthetic_image(32, 32)
        blocks = blockize(img)

        def rec(skip_low: bool):
            coeffs = np.zeros_like(blocks)
            for k in range(N_BANDS):
                drop = k < 4 if skip_low else k >= N_BANDS - 4
                if not drop:
                    dct_band_task(coeffs, blocks, 0, blocks.shape[0], k)
            return reconstruct(coeffs, 32, 32)

        full = np.zeros_like(blocks)
        for k in range(N_BANDS):
            dct_band_task(full, blocks, 0, blocks.shape[0], k)
        ref = reconstruct(full, 32, 32)
        assert psnr(ref, rec(skip_low=False)) > psnr(ref, rec(skip_low=True))


class TestDctBenchmark:
    def test_ratio_one_equals_reference(self):
        from repro.kernels.dct import DctBenchmark

        b = DctBenchmark(small=True)
        img = b.build_input()
        rt = Scheduler(policy=gtb_max_buffer(), n_workers=4)
        out = b.run_tasks(rt, img, 1.0)
        rt.finish()
        assert np.array_equal(out, b.run_reference(img))

    def test_significance_keeps_low_bands(self):
        """At medium ratio the significance runtime retains every
        low-frequency band, so quality beats blind perforation."""
        from repro.kernels.dct import DctBenchmark

        b = DctBenchmark(small=True)
        img = b.build_input()
        ref = b.run_reference(img)
        rt1 = Scheduler(policy=gtb_max_buffer(), n_workers=4)
        ours = b.run_tasks(rt1, img, 0.4)
        rt1.finish()
        rt2 = Scheduler(n_workers=4)
        perf = b.run_perforated(rt2, img, 0.4)
        rt2.finish()
        assert b.quality(ref, ours).value < b.quality(ref, perf).value
