"""The dependency-free metrics registry: cells, caps, exposition."""

import threading

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    OVERFLOW_LABEL,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = Counter()
        with pytest.raises(ValueError, match=">= 0"):
            c.inc(-1.0)
        assert c.value == 0.0

    def test_concurrent_increments_never_lost(self):
        """Per-thread cells merge to the exact total: the single-writer
        discipline means racing threads cannot clobber each other."""
        c = Counter()
        n_threads, n_incs = 8, 5_000
        barrier = threading.Barrier(n_threads)

        def hammer():
            barrier.wait()
            for _ in range(n_incs):
                c.inc()

        threads = [
            threading.Thread(target=hammer) for _ in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * n_incs


class TestGauge:
    def test_set_and_add(self):
        g = Gauge()
        g.set(4.0)
        g.add(-1.5)
        assert g.value == 2.5
        g.set(0.25)
        assert g.value == 0.25


class TestHistogram:
    def test_boundary_value_lands_in_its_bucket(self):
        """Prometheus ``le`` semantics: an observation exactly on a
        bound counts toward that bound's bucket."""
        h = Histogram(buckets=(0.001, 0.01, 0.1))
        h.observe(0.001)
        snap = h.snapshot()
        by_le = dict(snap["buckets"])
        assert by_le[0.001] == 1
        assert by_le[0.01] == 1  # cumulative
        assert by_le[float("inf")] == 1

    def test_just_above_boundary_rolls_to_next_bucket(self):
        h = Histogram(buckets=(0.001, 0.01, 0.1))
        h.observe(0.001 + 1e-9)
        by_le = dict(h.snapshot()["buckets"])
        assert by_le[0.001] == 0
        assert by_le[0.01] == 1

    def test_overflow_lands_in_inf_only(self):
        h = Histogram(buckets=(0.001, 0.01))
        h.observe(5.0)
        by_le = dict(h.snapshot()["buckets"])
        assert by_le[0.001] == 0
        assert by_le[0.01] == 0
        assert by_le[float("inf")] == 1

    def test_count_sum_and_cumulation(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(105.0)
        assert [n for _, n in snap["buckets"]] == [1, 2, 3, 4]

    def test_unsorted_or_empty_buckets_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="sorted"):
            Histogram(buckets=())

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestCardinalityCap:
    def test_overflow_collapse_and_drop_count(self):
        reg = MetricsRegistry()
        fam = reg.counter("jobs", labels=("tenant",), max_series=3)
        for t in ("a", "b", "c", "d", "e"):
            fam.labels(t).inc()
        series = dict(fam.series())
        # Three real series plus the single overflow series.
        assert len(series) == 4
        assert fam.dropped_series == 2
        assert series[(OVERFLOW_LABEL,)].value == 2.0
        # The capped series keep working, still no growth.
        fam.labels("f").inc()
        assert len(dict(fam.series())) == 4
        assert series[(OVERFLOW_LABEL,)].value == 3.0

    def test_existing_series_unaffected_by_cap(self):
        reg = MetricsRegistry()
        fam = reg.counter("jobs", labels=("tenant",), max_series=2)
        fam.labels("a").inc(5)
        fam.labels("b").inc(7)
        fam.labels("c").inc()  # over the cap
        assert fam.labels("a").value == 5.0
        assert fam.labels("b").value == 7.0

    def test_label_arity_checked(self):
        reg = MetricsRegistry()
        fam = reg.counter("jobs", labels=("tenant", "status"))
        with pytest.raises(ValueError, match="expected 2"):
            fam.labels("only-one")


class TestRegistry:
    def test_unlabeled_returns_child_labeled_returns_family(self):
        reg = MetricsRegistry()
        plain = reg.counter("plain")
        plain.inc()
        assert plain.value == 1.0
        fam = reg.counter("labeled", labels=("x",))
        assert hasattr(fam, "labels")

    def test_same_name_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_families_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("zz")
        reg.gauge("aa")
        assert [f.name for f in reg.families()] == ["aa", "zz"]


class TestExposition:
    def _small_registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("repro_jobs_total", "Jobs.", labels=("tenant",)).labels(
            "acme"
        ).inc(3)
        reg.gauge("repro_pending", "Pending.").set(2)
        h = reg.histogram(
            "repro_latency_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        h.observe(0.05)
        h.observe(0.5)
        h.observe(7.0)
        return reg

    def test_prometheus_golden(self):
        text = self._small_registry().to_prometheus()
        assert text == (
            "# HELP repro_jobs_total Jobs.\n"
            "# TYPE repro_jobs_total counter\n"
            'repro_jobs_total{tenant="acme"} 3\n'
            "# HELP repro_latency_seconds Latency.\n"
            "# TYPE repro_latency_seconds histogram\n"
            'repro_latency_seconds_bucket{le="0.1"} 1\n'
            'repro_latency_seconds_bucket{le="1"} 2\n'
            'repro_latency_seconds_bucket{le="+Inf"} 3\n'
            "repro_latency_seconds_sum 7.55\n"
            "repro_latency_seconds_count 3\n"
            "# HELP repro_pending Pending.\n"
            "# TYPE repro_pending gauge\n"
            "repro_pending 2\n"
        )

    def test_json_golden(self):
        d = self._small_registry().to_dict()
        assert d["repro_jobs_total"] == {
            "type": "counter",
            "help": "Jobs.",
            "dropped_series": 0,
            "series": [{"labels": {"tenant": "acme"}, "value": 3.0}],
        }
        hist = d["repro_latency_seconds"]["series"][0]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(7.55)
        assert hist["buckets"] == [[0.1, 1.0], [1.0, 2.0], ["+Inf", 3.0]]

    def test_to_json_is_stable_and_parseable(self):
        import json

        reg = self._small_registry()
        assert json.loads(reg.to_json()) == json.loads(reg.to_json())

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", labels=("v",)).labels('a"b\\c\nd').inc()
        text = reg.to_prometheus()
        assert 'c{v="a\\"b\\\\c\\nd"} 1' in text

    def test_concurrent_scrape_during_writes(self):
        """Scraping while writer threads increment never fails and
        never reads a total above the true final value."""
        reg = MetricsRegistry()
        fam = reg.counter("c", labels=("t",))
        stop = threading.Event()

        def writer(tag: str):
            while not stop.is_set():
                fam.labels(tag).inc()

        threads = [
            threading.Thread(target=writer, args=(str(i),))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        try:
            for _ in range(50):
                snap = reg.to_dict()
                for s in snap["c"]["series"]:
                    assert s["value"] >= 0
                reg.to_prometheus()
        finally:
            stop.set()
            for t in threads:
                t.join()
        final = sum(s[1].value for s in fam.series())
        assert final == sum(
            s["value"] for s in reg.to_dict()["c"]["series"]
        )
