"""The ``top`` frame renderer: a pure function over scrape payloads."""

import io

from repro.obs import render_top

STATS = {
    "engine": "threaded",
    "rounds": 7,
    "pending_jobs": 2,
    "engine_time_s": 0.1234,
    "tenants": {
        "acme": {
            "tenant": "acme",
            "tier": "standard",
            "budget_j": 0.5,
            "spent_j": 0.25,
            "over_budget": False,
            "ratio": 0.8,
            "executed": 10,
            "cached": 3,
            "cached_degraded": 1,
            "coalesced": 2,
            "rejected": 0,
        },
        "bee": {
            "tenant": "bee",
            "tier": "premium",
            "budget_j": None,
            "spent_j": 0.75,
            "over_budget": False,
            "ratio": 1.0,
            "executed": 5,
            "cached": 0,
            "cached_degraded": 0,
            "coalesced": 0,
            "rejected": 0,
        },
        "hobby": {
            "tenant": "hobby",
            "tier": "free",
            "budget_j": 0.001,
            "spent_j": 0.002,
            "over_budget": True,
            "ratio": 0.5,
            "executed": 1,
            "cached": 0,
            "cached_degraded": 0,
            "coalesced": 0,
            "rejected": 9,
        },
    },
    "cache": {
        "hits": 3,
        "degraded_hits": 1,
        "misses": 11,
        "hit_rate": 0.267,
        "puts": 11,
        "evictions": 0,
    },
    "streams": {
        "acme/cam0": {
            "tenant": "acme",
            "stream": "cam0",
            "next_frame": 4,
            "inflight": 1,
            "degraded": 2,
            "rejected": 0,
        }
    },
}

METRICS = {
    "repro_governor_ratio": {
        "series": [{"labels": {"scope": "acme"}, "value": 0.8}]
    },
    "repro_governor_dvfs_factor": {
        "series": [{"labels": {"scope": "acme"}, "value": 0.9}]
    },
    "repro_governor_ticks_total": {
        "series": [{"labels": {"scope": "acme"}, "value": 12}]
    },
    "repro_ledger_lease_remaining_joules": {
        "series": [
            {"labels": {"tenant": "acme", "shard": "0"}, "value": 0.01},
            {"labels": {"tenant": "acme", "shard": "1"}, "value": 0.02},
        ]
    },
    "repro_stream_inflight": {
        "series": [
            {"labels": {"tenant": "acme", "stream": "cam0"}, "value": 3}
        ]
    },
}


class TestRenderTop:
    def test_single_service_header_and_tenants(self):
        frame = render_top(STATS)
        assert "1 service" in frame
        assert "engine=threaded" in frame
        assert "round 7" in frame
        assert "2 pending" in frame
        for tenant in ("acme", "bee", "hobby"):
            assert tenant in frame

    def test_budget_bar_unmetered_and_over(self):
        frame = render_top(STATS)
        assert "unmetered" in frame  # bee has no budget
        assert "OVER" in frame  # hobby is over budget
        # acme's half-used budget renders a half-filled bar.
        assert "[########........]" in frame

    def test_cache_row(self):
        frame = render_top(STATS)
        assert "3 hits + 1 degraded / 11 misses" in frame
        assert "11 puts" in frame

    def test_governor_ledger_and_streams_need_metrics(self):
        bare = render_top(STATS)
        assert "governors:" not in bare
        assert "ledger leases" not in bare
        full = render_top(STATS, METRICS)
        assert "ratio=0.80" in full
        assert "dvfs=0.90" in full
        assert "ticks=12" in full
        assert "ledger leases" in full
        assert "s0=" in full and "s1=" in full
        # The inflight gauge overrides the stats fallback.
        assert "3 in flight" in full

    def test_stream_fallback_without_metrics(self):
        frame = render_top(STATS)
        assert "acme/cam0: frame 4, 1 in flight" in frame

    def test_cluster_shape(self):
        stats = dict(STATS)
        stats["cluster"] = {"shards": 3}
        stats["per_shard"] = [
            {
                "shard": 0,
                "pending_jobs": 1,
                "rounds": 3,
                "engine_time_s": 0.05,
                "data_plane": {
                    "bytes_referenced": 4096,
                    "bytes_copied_in": 128,
                    "bytes_copied_out": 64,
                    "bytes_pickled": 32,
                    "bytes_not_copied_frac": 0.95,
                },
            },
            {
                "shard": 1,
                "pending_jobs": 0,
                "rounds": 4,
                "engine_time_s": 0.06,
            },
        ]
        frame = render_top(stats)
        assert "3 shards" in frame
        assert "shard 0: 1 pending, 3 rounds" in frame
        assert "shard 1: 0 pending, 4 rounds" in frame
        assert "4096 B by reference" in frame
        assert "zero-copy 95%" in frame

    def test_joule_formatting_spans_magnitudes(self):
        stats = {
            "engine": "simulated",
            "tenants": {
                "micro": {"tier": "free", "budget_j": None, "spent_j": 2e-6},
                "milli": {"tier": "free", "budget_j": None, "spent_j": 0.002},
                "whole": {"tier": "free", "budget_j": None, "spent_j": 1.5},
            },
            "cache": {},
        }
        frame = render_top(stats)
        assert "2.0 uJ" in frame
        assert "2.00 mJ" in frame
        assert "1.50 J" in frame


class TestRunTop:
    def test_bounded_iterations_against_live_gateway(self):
        """run_top with iterations=N scrapes a real gateway N times."""
        import asyncio
        import threading

        from repro.config import RuntimeConfig
        from repro.obs import run_top
        from repro.serve import ServeServer, TaskService

        service = TaskService(
            RuntimeConfig(policy="gtb-max", n_workers=4),
            tenants=("standard:name='acme'",),
        )
        server = ServeServer(service, batch_window_s=0.002)
        loop = asyncio.new_event_loop()
        thread = threading.Thread(
            target=lambda: (asyncio.set_event_loop(loop), loop.run_forever()),
            daemon=True,
        )
        thread.start()
        host, port = asyncio.run_coroutine_threadsafe(
            server.start(), loop
        ).result(30)
        out = io.StringIO()
        try:
            rc = run_top(host, port, interval_s=0.0, iterations=2, out=out)
        finally:
            asyncio.run_coroutine_threadsafe(server.close(), loop).result(30)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(10)
            service.close()
        assert rc == 0
        frames = out.getvalue()
        assert frames.count("repro.serve 1 service") == 2
        assert "acme" in frames
