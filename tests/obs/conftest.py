import pytest

from repro.obs import set_obs_enabled


@pytest.fixture(autouse=True)
def _obs_on():
    """Force telemetry on for the obs suite regardless of REPRO_OBS."""
    prev = set_obs_enabled(True)
    yield
    set_obs_enabled(prev)
