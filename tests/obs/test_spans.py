"""Span primitives: identity, tree shape, recorder bounds, export."""

import json

from repro.obs import Span, SpanRecorder, new_span_id, new_trace_id, start_span


class TestIds:
    def test_ids_are_unique_and_prefixed(self):
        traces = {new_trace_id() for _ in range(100)}
        spans = {new_span_id() for _ in range(100)}
        assert len(traces) == 100
        assert len(spans) == 100
        assert all(t.startswith("t") for t in traces)
        assert all(s.startswith("s") for s in spans)
        assert not traces & spans


class TestSpan:
    def test_start_span_mints_trace_for_roots(self):
        root = start_span("gateway.request", tenant="acme")
        assert root.parent_id is None
        assert root.trace_id
        assert root.attrs == {"tenant": "acme"}

    def test_start_span_joins_existing_trace(self):
        s = start_span("serve.job", trace_id="t-1", parent_id="s-0")
        assert s.trace_id == "t-1"
        assert s.parent_id == "s-0"

    def test_child_inherits_trace_and_parents_correctly(self):
        root = start_span("serve.job")
        kid = root.child("runtime.group", label="g")
        assert kid.trace_id == root.trace_id
        assert kid.parent_id == root.span_id
        assert kid.span_id != root.span_id
        assert kid.attrs == {"label": "g"}

    def test_end_is_idempotent_and_merges_attrs(self):
        s = start_span("op")
        s.end(status="ok")
        first_end = s.t_end
        assert first_end > 0
        s.end(code=200)
        assert s.t_end == first_end
        assert s.attrs == {"status": "ok", "code": 200}
        assert s.duration_s >= 0.0

    def test_end_records_when_given_a_recorder(self):
        rec = SpanRecorder()
        s = start_span("op")
        assert s.end(rec) is s
        assert rec.spans() == [s]

    def test_to_dict_round_trips_through_json(self):
        s = start_span("op", tenant="a").end(status="executed")
        d = json.loads(json.dumps(s.to_dict()))
        assert d["name"] == "op"
        assert d["trace_id"] == s.trace_id
        assert d["span_id"] == s.span_id
        assert d["parent_id"] is None
        assert d["attrs"] == {"tenant": "a", "status": "executed"}
        assert d["duration_s"] >= 0


class TestRecorder:
    def test_spans_sorted_by_start_time(self):
        rec = SpanRecorder()
        a = Span("t", "s1", None, "late", t_start=2.0, t_end=3.0)
        b = Span("t", "s2", None, "early", t_start=1.0, t_end=1.5)
        rec.record(a)
        rec.record(b)
        assert [s.name for s in rec.spans()] == ["early", "late"]

    def test_capacity_bounds_and_counts_drops(self):
        rec = SpanRecorder(capacity=2)
        for i in range(5):
            rec.record(Span("t", f"s{i}", None, "op", t_start=float(i)))
        assert len(rec) == 2
        assert rec.dropped == 3

    def test_clear_resets_everything(self):
        rec = SpanRecorder(capacity=1)
        rec.record(Span("t", "s1", None, "op", t_start=0.0))
        rec.record(Span("t", "s2", None, "op", t_start=0.0))
        assert rec.dropped == 1
        rec.clear()
        assert len(rec) == 0
        assert rec.dropped == 0
        assert rec.spans() == []

    def test_by_trace_groups(self):
        rec = SpanRecorder()
        rec.record(Span("tA", "s1", None, "op", t_start=0.0))
        rec.record(Span("tA", "s2", "s1", "op", t_start=1.0))
        rec.record(Span("tB", "s3", None, "op", t_start=0.5))
        grouped = rec.by_trace()
        assert set(grouped) == {"tA", "tB"}
        assert [s.span_id for s in grouped["tA"]] == ["s1", "s2"]

    def test_write_jsonl(self, tmp_path):
        rec = SpanRecorder()
        rec.record(start_span("a").end())
        rec.record(start_span("b").end())
        path = tmp_path / "spans.jsonl"
        assert rec.write_jsonl(path) == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        names = {json.loads(line)["name"] for line in lines}
        assert names == {"a", "b"}

    def test_recording_from_many_threads_loses_nothing(self):
        import threading

        rec = SpanRecorder(capacity=100_000)
        n_threads, n_spans = 6, 500

        def worker(tag: int):
            for i in range(n_spans):
                rec.record(
                    Span("t", f"s{tag}-{i}", None, "op", t_start=float(i))
                )

        threads = [
            threading.Thread(target=worker, args=(k,))
            for k in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(rec) == n_threads * n_spans
        assert rec.dropped == 0
