"""Live scraping: the TCP ``metrics`` verb reconciles with ``stats``."""

import asyncio
import threading

import pytest

from repro.cluster import ClusterService
from repro.config import RuntimeConfig
from repro.obs import set_obs_enabled
from repro.runtime.errors import SchedulerError
from repro.serve import ServeClient, ServeServer, TaskService


@pytest.fixture()
def cluster_gateway():
    """A live TCP gateway over a 3-shard cluster."""
    service = ClusterService(
        RuntimeConfig(policy="gtb-max", n_workers=4),
        tenants=(
            "standard:name='acme'",
            "free:name='hobby',budget_j=0.004,max_pending=1024",
        ),
        cluster=3,
    )
    server = ServeServer(service, batch_window_s=0.002)
    loop = asyncio.new_event_loop()

    def pump() -> None:
        asyncio.set_event_loop(loop)
        loop.run_forever()

    thread = threading.Thread(target=pump, daemon=True)
    thread.start()
    host, port = asyncio.run_coroutine_threadsafe(
        server.start(), loop
    ).result(30)
    try:
        yield host, port, service
    finally:
        asyncio.run_coroutine_threadsafe(server.close(), loop).result(30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        service.close()


def _value(metrics: dict, family: str, **labels) -> float:
    for s in metrics.get(family, {}).get("series", []):
        if all(s["labels"].get(k) == v for k, v in labels.items()):
            return s.get("value", s.get("count", 0.0))
    return 0.0


class TestScrapeReconciles:
    def test_energy_jobs_cache_and_leases(self, cluster_gateway):
        host, port, _ = cluster_gateway
        with ServeClient(host, port) as client:
            for i in range(9):
                job = client.submit(
                    "acme", "sobel", {"size": 24, "seed": i}
                )
                assert job["code"] == 200
            for i in range(3):
                client.submit("hobby", "mc-pi", {"blocks": 4, "seed": i})
            stats = client.stats()
            metrics = client.metrics()

        # Per-tenant energy counters reconcile with the stats digest
        # (the acceptance bar: parity within 2%).
        for tenant in ("acme", "hobby"):
            spent = stats["tenants"][tenant]["spent_j"]
            counted = _value(
                metrics, "repro_tenant_energy_joules_total", tenant=tenant
            )
            assert counted == pytest.approx(spent, rel=0.02, abs=1e-12)

        # Job counters cover every submission.
        total_jobs = sum(
            s["value"]
            for s in metrics["repro_jobs_total"]["series"]
        )
        assert total_jobs == 12

        # Cache lookups were counted (9 sobel submits share a digest
        # per seed; at minimum the misses must show up).
        lookups = sum(
            s["value"]
            for s in metrics["repro_cache_lookups_total"]["series"]
        )
        assert lookups > 0

        # Ledger leases appear per tenant x shard on a 3-shard cluster.
        leases = metrics["repro_ledger_lease_remaining_joules"]["series"]
        assert {s["labels"]["tenant"] for s in leases} >= {"hobby"}

        # Scheduler counters flowed through the shards.
        assert (
            _value(metrics, "repro_sched_tasks_spawned_total") > 0
        )

    def test_prometheus_format_over_the_wire(self, cluster_gateway):
        host, port, _ = cluster_gateway
        with ServeClient(host, port) as client:
            client.submit("acme", "sobel", {"size": 24})
            text = client.metrics(format="prometheus")
        assert isinstance(text, str)
        assert "# TYPE repro_jobs_total counter" in text
        assert 'repro_jobs_total{tenant="acme"' in text

    def test_latency_histogram_counts_successes(self, cluster_gateway):
        host, port, _ = cluster_gateway
        with ServeClient(host, port) as client:
            for i in range(4):
                client.submit("acme", "sobel", {"size": 24, "seed": 50 + i})
            metrics = client.metrics()
        series = metrics["repro_job_latency_seconds"]["series"]
        total = sum(s["count"] for s in series)
        assert total == 4


class TestDisabledTelemetry:
    def test_service_without_telemetry_refuses_scrapes(self):
        prev = set_obs_enabled(False)
        try:
            service = TaskService(
                RuntimeConfig(policy="gtb-max", n_workers=4),
                tenants=("standard:name='acme'",),
            )
        finally:
            set_obs_enabled(prev)
        try:
            assert service.metrics is None
            assert service.span_recorder is None
            with pytest.raises(SchedulerError, match="REPRO_OBS"):
                service.metrics_snapshot()
            with pytest.raises(SchedulerError, match="REPRO_OBS"):
                service.metrics_text()
        finally:
            service.close()

    def test_cluster_without_telemetry_refuses_scrapes(self):
        prev = set_obs_enabled(False)
        try:
            service = ClusterService(
                RuntimeConfig(policy="gtb-max", n_workers=4),
                tenants=("standard:name='acme'",),
                cluster=2,
            )
        finally:
            set_obs_enabled(prev)
        try:
            with pytest.raises(SchedulerError, match="REPRO_OBS"):
                service.metrics_snapshot()
        finally:
            service.close()
