"""Property-based span-tree invariants over a sharded workload.

Whatever mix of batch, cached, coalesced, rejected, and anytime jobs a
3-shard cluster serves, the recorded spans must form well-formed trees:
unique span ids, every parent resolvable within its own trace, and
exactly one root per submitted job.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.cluster import ClusterService  # noqa: E402
from repro.config import RuntimeConfig  # noqa: E402
from repro.serve import LocalGateway  # noqa: E402

# A cluster per example is heavyweight: few, well-shuffled examples.
SETTINGS = settings(max_examples=8, deadline=None, derandomize=True)

#: One job: (tenant, kind, seed).  ``batch`` jobs run sobel/mc-pi
#: through the queued path (cache hits and coalescing arise when seeds
#: collide); ``anytime`` jobs run jacobi rounds through the iterative
#: path.  The tiny ``hobby`` budget makes rejections reachable.
jobs = st.lists(
    st.tuples(
        st.sampled_from(["acme", "hobby"]),
        st.sampled_from(["sobel", "mc-pi", "anytime"]),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=1,
    max_size=7,
)


def _run_workload(mix):
    service = ClusterService(
        RuntimeConfig(policy="gtb-max", n_workers=4),
        tenants=(
            "standard:name='acme'",
            "free:name='hobby',budget_j=0.003,max_pending=1024",
        ),
        cluster=3,
        compute_quality=False,
    )
    with LocalGateway(service) as gw:
        for tenant, kind, seed in mix:
            if kind == "anytime":
                gw.submit_anytime(
                    {
                        "tenant": tenant,
                        "kernel": "jacobi",
                        "args": {"n": 32, "chunk": 8, "seed": seed},
                        "rounds": 2,
                    }
                )
            else:
                gw.submit(
                    {
                        "tenant": tenant,
                        "kernel": kind,
                        "args": (
                            {"size": 16, "seed": seed}
                            if kind == "sobel"
                            else {"blocks": 2, "samples": 50, "seed": seed}
                        ),
                    }
                )
        gw.drain()
        return service.span_recorder.spans()


class TestSpanTreeInvariants:
    @SETTINGS
    @given(mix=jobs)
    def test_trees_are_well_formed(self, mix):
        spans = _run_workload(mix)

        # Every span id is unique across the whole run.
        ids = [s.span_id for s in spans]
        assert len(ids) == len(set(ids))

        # Every non-root parent exists, in the same trace.
        by_trace = {}
        for s in spans:
            by_trace.setdefault(s.trace_id, {})[s.span_id] = s
        for s in spans:
            if s.parent_id is not None:
                assert s.parent_id in by_trace[s.trace_id], (
                    f"span {s.span_id} ({s.name}) orphaned: parent "
                    f"{s.parent_id} missing from trace {s.trace_id}"
                )

        # Exactly one root per submitted job, one trace per root.
        roots = [s for s in spans if s.parent_id is None]
        assert len(roots) == len(mix)
        assert len({r.trace_id for r in roots}) == len(roots)
        assert all(r.name == "cluster.route" for r in roots)

        # Spans are properly closed: non-negative durations.
        assert all(s.t_end >= s.t_start for s in spans)

        # Each trace's root starts no later than its children end.
        for trace_id, members in by_trace.items():
            root = [s for s in members.values() if s.parent_id is None]
            assert len(root) == 1
