#!/usr/bin/env python3
"""The pragma front-end: Listing 1 of the paper, in Python.

``@pragma_compile`` recompiles a function whose body contains
``#pragma omp task`` / ``#pragma omp taskwait`` comments into runtime
calls — the same lowering the paper's SCOOP-based source-to-source
compiler performs for C.  The undecorated behaviour (``.original``)
treats the pragmas as plain comments and runs serially, exactly like
compiling the C file without the pragma-aware compiler.

Run:  python examples/pragma_compile_demo.py
"""

import numpy as np

from repro import Runtime
from repro.compiler import lower_source, pragma_compile
from repro.kernels.sobel import (
    sobel_reference,
    sobel_row_accurate,
    sobel_row_approx,  # noqa: F401  (resolved by the compiled pragma source)
)
from repro.quality.images import synthetic_image
from repro.quality.metrics import psnr


@pragma_compile
def sobel_listing1(img, res):
    """The paper's Listing 1, transliterated."""
    height = img.shape[0]
    for i in range(1, height - 1):
        #pragma omp task label(sobel) in(img) significant((i % 9 + 1) / 10.0) approxfun(sobel_row_approx)
        sobel_row_accurate(res, img, i)
    #pragma omp taskwait label(sobel) ratio(0.35)


SNIPPET = '''
for i in range(1, h - 1):
    #pragma omp task label(sobel) in(img) significant((i % 9 + 1) / 10.0) approxfun(appr)
    body(res, img, i)
#pragma omp taskwait label(sobel) ratio(0.35)
'''


def main() -> None:
    import ast

    print("--- what the compiler generates for a Listing-1 loop ---")
    print(ast.unparse(lower_source(SNIPPET)))
    print()

    img = synthetic_image(128, 128)
    res = np.zeros_like(img)
    with Runtime(policy="gtb-max", n_workers=16) as rt:
        sobel_listing1(img, res)
    rep = rt.report
    g = rep.groups["sobel"]
    print(
        f"compiled run : {g.spawned} tasks, "
        f"{g.accurate}/{g.spawned} accurate "
        f"(requested >= 35%), PSNR "
        f"{psnr(sobel_reference(img), res):.2f} dB"
    )

    res_serial = np.zeros_like(img)
    sobel_listing1.original(img, res_serial)
    exact = np.array_equal(res_serial, sobel_reference(img))
    print(f"serial run   : pragmas ignored, bit-exact accurate = {exact}")


if __name__ == "__main__":
    main()
