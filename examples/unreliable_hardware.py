#!/usr/bin/env python3
"""Significance-aware computing on unreliable hardware (paper §6).

The paper closes by proposing to run approximate workloads "on top of
ultra low-power but unreliable hardware".  This example executes the
Sobel filter on a simulated machine whose upper 8 cores silently drop
task effects with 8% probability, and shows how the task-significance
annotation doubles as a *reliability* annotation: protecting only the
most significant rows recovers most of the quality for a fraction of
the full-protection cost.

Run:  python examples/unreliable_hardware.py
"""

from repro import Scheduler
from repro.kernels.sobel import SobelBenchmark
from repro.quality.metrics import psnr


def main() -> None:
    bench = SobelBenchmark(small=True)
    bench.height = bench.width = 128
    img = bench.build_input()
    reference = bench.run_reference(img)

    print(
        f"{'protect >= sig':>15} {'PSNR (dB)':>10} {'faults':>7} "
        f"{'recovered':>9} {'time (ms)':>10}"
    )
    for threshold in (1.0, 0.7, 0.4, 0.0):
        # The unreliable machine is just an engine spec: the registry
        # rebuilds the same seeded ERSA-style split for every run.
        rt = Scheduler(
            policy="accurate",
            n_workers=16,
            engine=(
                "faulty:unreliable_fraction=0.5,fault_rate=0.08,"
                f"seed=3,protect_threshold={threshold}"
            ),
        )
        out = bench.run_tasks(rt, img, 1.0)
        report = rt.finish()
        log = rt.engine.fault_log
        p = psnr(reference, out)
        print(
            f"{threshold:15.2f} "
            f"{'inf' if p == float('inf') else f'{p:.1f}':>10} "
            f"{log.silent:7d} {log.recovered:9d} "
            f"{report.makespan_s * 1e3:10.4f}"
        )

    print(
        "\nthreshold 1.0 = no protection (all faults silent); 0.0 = "
        "protect everything (no silent faults, longest run).  The "
        "significance annotation decides which rows deserve the "
        "re-execution premium."
    )


if __name__ == "__main__":
    main()
