#!/usr/bin/env python3
"""Sobel edge-detection pipeline with a quality knob (paper Listing 1).

Runs the paper's running example at several accuracy ratios, reports
PSNR / time / energy for each point of the trade-off space, writes the
Figure-1-style quadrant mosaic to a PGM file, and prints the simulated
machine's Gantt chart for the most aggressive run.

Run:  python examples/sobel_pipeline.py [out.pgm]
"""

import sys

from repro import Runtime
from repro.harness.figures import fig1_sobel_approximation
from repro.kernels.sobel import SobelBenchmark
from repro.quality.metrics import psnr


def main() -> None:
    bench = SobelBenchmark()
    bench.height = bench.width = 256  # keep the example snappy
    img = bench.build_input()
    reference = bench.run_reference(img)

    print("ratio   PSNR(dB)   time(ms)   energy(J)  acc/approx")
    last_report = None
    for ratio in (1.0, 0.8, 0.5, 0.3, 0.0):
        rt = Runtime(policy="lqh", n_workers=16)
        out = bench.run_tasks(rt, img, ratio)
        rep = rt.finish()
        last_report = rep
        p = psnr(reference, out)
        print(
            f"{ratio:5.2f} {p:10.2f} {rep.makespan_s * 1e3:10.4f} "
            f"{rep.energy_j:11.5f}  {rep.accurate_tasks}/"
            f"{rep.approximate_tasks}"
        )

    assert last_report is not None and last_report.trace is not None
    print("\nGantt of the ratio=0.0 run (#=accurate, ~=approximate):")
    print(last_report.trace.gantt(width=64))

    out_path = sys.argv[1] if len(sys.argv) > 1 else "sobel_quadrants.pgm"
    fig = fig1_sobel_approximation(small=True, out_path=out_path)
    print()
    print(fig.render())


if __name__ == "__main__":
    main()
