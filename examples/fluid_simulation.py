#!/usr/bin/env python3
"""SPH fluid simulation with alternating accurate/approximate steps.

Reproduces the paper's Fluidanimate usage pattern: timesteps alternate
between fully accurate SPH and ballistic extrapolation by flipping the
taskwait ratio between 1.0 and 0.0 — "achieved in a trivial manner, by
alternating the parameter of the ratio clause" (section 4.2).  The
example sweeps the accurate-step period and prints how the fluid's
error and the energy bill respond, illustrating why only the mild
degree is usable: SPH integrates errors, so sparse accurate steps lose
the physics.

Run:  python examples/fluid_simulation.py
"""

import numpy as np

from repro import Runtime
from repro.kernels.fluidanimate import FluidanimateBenchmark


def main() -> None:
    bench = FluidanimateBenchmark(small=True)
    state0 = bench.build_input()
    reference = bench.run_reference(state0)

    print(
        f"{'accurate steps':>15} {'period':>7} {'pos err %':>10} "
        f"{'energy (J)':>11} {'vs accurate':>11}"
    )
    base_energy = None
    for fraction in (1.0, 0.5, 0.25, 0.125):
        rt = Runtime(policy="lqh", n_workers=16)
        out = bench.run_tasks(rt, state0, fraction)
        rep = rt.finish()
        if base_energy is None:
            base_energy = rep.energy_j
        err = bench.quality(reference, out).value
        print(
            f"{fraction:15.3f} {max(1, round(1 / fraction)):7d} "
            f"{err:10.4f} {rep.energy_j:11.5f} "
            f"{rep.energy_j / base_energy:10.1%}"
        )

    # Sanity: the fluid stayed in the box and didn't blow up.
    assert np.all(out.pos >= 0.0) and np.all(out.pos <= 1.0)
    print(
        "\nNote the steep error growth: Fluidanimate 'is so sensitive "
        "to errors that only the mild degree of approximation leads to "
        "acceptable results' (paper, section 4.2)."
    )


if __name__ == "__main__":
    main()
