"""Load shedding in the serving layer: budgets, caches, and 429s.

Three tenants share one simulated 16-core engine:

* ``batch``   — big Monte-Carlo jobs, a lifetime energy budget, happy
  to be degraded;
* ``web``     — small interactive Sobel jobs, unmetered premium tier;
* ``scraper`` — a free-tier client hammering the service far past its
  queue cap.

Watch the admission controller degrade ``batch`` as its budget drains,
absorb ``scraper``'s hammering with the approximate-result cache, and
shed the rest 429-style — while ``web`` keeps getting accurate answers.

Run:  PYTHONPATH=src python examples/serve_load_shedding.py
"""

from collections import Counter

from repro import RuntimeConfig
from repro.serve import JobRequest, LocalGateway

WAVES = 12


def main() -> None:
    gateway = LocalGateway(
        config=RuntimeConfig(policy="gtb-max", n_workers=16),
        tenants=(
            # ~60% of what the batch stream would cost accurately.
            "standard:name='batch',budget_j=0.02,max_pending=1024",
            "premium:name='web'",
            "free:name='scraper',max_pending=3",
        ),
        max_batch=8,
    )
    outcomes: Counter = Counter()
    with gateway:
        service = gateway.service
        # The batch tenant queues its whole campaign up front (that is
        # what lets its governor project a ratio over the full horizon).
        for i in range(WAVES):
            service.submit(
                JobRequest(
                    tenant="batch",
                    kernel="mc-pi",
                    args={"blocks": 16, "samples": 4000, "seed": i},
                )
            )
        for wave in range(WAVES):
            # Interactive traffic: two fresh web jobs per wave...
            for j in range(2):
                service.submit(
                    JobRequest(
                        tenant="web",
                        kernel="sobel",
                        args={"size": 64, "seed": 100 + 2 * wave + j},
                    )
                )
            # ...and a scraper hammering one identical request.
            for _ in range(6):
                report = service.submit(
                    JobRequest(
                        tenant="scraper",
                        kernel="sobel",
                        args={"size": 32},
                    )
                )
                if report.status != "queued":  # settled at admission
                    outcomes[("scraper", report.status)] += 1
            for report in service.flush():
                outcomes[(report.tenant, report.status)] += 1

        while service.pending_jobs:
            for report in service.flush():
                outcomes[(report.tenant, report.status)] += 1

        print("admission outcomes")
        for (tenant, status), count in sorted(outcomes.items()):
            print(f"  {tenant:8s} {status:20s} {count:4d}")
        print()
        stats = service.stats()
        for name, tenant in stats["tenants"].items():
            budget = tenant["budget_j"]
            budget_txt = (
                "unmetered" if budget is None
                else f"{tenant['spent_j']:.4f}/{budget:.4f} J"
            )
            print(
                f"  {name:8s} served at ratio {tenant['ratio']:.2f}, "
                f"energy {budget_txt}"
            )
        cache = stats["cache"]
        print(
            f"\ncache: {cache['hits']} exact + "
            f"{cache['degraded_hits']} degraded hits, "
            f"{cache['misses']} misses "
            f"(hit rate {cache['hit_rate']:.0%})"
        )


if __name__ == "__main__":
    main()
