#!/usr/bin/env python3
"""Energy-budgeted clustering: auto-tuning the ratio knob.

The paper's intro argues the ratio "can be an open parameter of a
kernel or an entire application, which can take different values in
each invocation".  This example exploits that: given an energy budget
(fraction of the fully accurate run), binary-search the largest
accurate-task ratio that fits, then report the quality actually
obtained — a controller a production system could run online.

Each probe is a declarative :class:`repro.ExperimentSpec`, so the
controller is a few lines over :func:`repro.run` and every probed
configuration is serializable for provenance.

Run:  python examples/kmeans_energy_budget.py [budget-fraction]
"""

import sys

import repro


def measure(
    base: repro.ExperimentSpec, ratio: float | None
) -> repro.ExperimentResult:
    """One probe of the trade-off space (ratio None = fully accurate)."""
    return repro.run(base.replace(param=ratio))[0]


def main() -> None:
    budget_fraction = float(sys.argv[1]) if len(sys.argv) > 1 else 0.75

    base = repro.ExperimentSpec(
        workload="kmeans",
        small=True,
        config=repro.RuntimeConfig(
            policy="gtb:buffer_size=32", n_workers=16
        ),
    )

    accurate = measure(base, None)
    budget_j = budget_fraction * accurate.energy_j
    print(
        f"accurate run: {accurate.energy_j:.5f} J -> budget "
        f"{budget_j:.5f} J ({budget_fraction:.0%})"
    )

    lo, hi = 0.0, 1.0
    best, best_ratio = None, 0.0
    for _ in range(8):  # 2^-8 ratio resolution
        mid = (lo + hi) / 2
        res = measure(base, mid)
        fits = res.energy_j <= budget_j
        print(
            f"  ratio={mid:5.3f} energy={res.energy_j:.5f} J "
            f"{'fits' if fits else 'over budget'}"
        )
        if fits:
            best, best_ratio = res, mid
            lo = mid
        else:
            hi = mid

    if best is None:
        print("even ratio=0 exceeds the budget; nothing to report")
        return
    print(
        f"\nchosen ratio {best_ratio:.3f}: inertia deviation "
        f"{best.quality_value:.4f}% from the fully accurate clustering"
    )


if __name__ == "__main__":
    main()
