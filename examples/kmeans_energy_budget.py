#!/usr/bin/env python3
"""Energy-budgeted clustering: auto-tuning the ratio knob.

The paper's intro argues the ratio "can be an open parameter of a
kernel or an entire application, which can take different values in
each invocation".  This example exploits that: given an energy budget
(fraction of the fully accurate run), binary-search the largest
accurate-task ratio that fits, then report the quality actually
obtained — a controller a production system could run online.

Run:  python examples/kmeans_energy_budget.py [budget-fraction]
"""

import sys

from repro import Runtime
from repro.kernels.kmeans import KmeansBenchmark
from repro.runtime.policies import GlobalTaskBuffering


def measure(bench: KmeansBenchmark, inputs, ratio: float):
    rt = Runtime(policy=GlobalTaskBuffering(32), n_workers=16)
    out = bench.run_tasks(rt, inputs, ratio)
    return rt.finish(), out


def main() -> None:
    budget_fraction = float(sys.argv[1]) if len(sys.argv) > 1 else 0.75

    bench = KmeansBenchmark(small=True)
    inputs = bench.build_input()
    reference = bench.run_reference(inputs)

    accurate_rep, _ = measure(bench, inputs, 1.0)
    budget_j = budget_fraction * accurate_rep.energy_j
    print(
        f"accurate run: {accurate_rep.energy_j:.5f} J -> budget "
        f"{budget_j:.5f} J ({budget_fraction:.0%})"
    )

    lo, hi = 0.0, 1.0
    best_ratio, best_out = 0.0, None
    for _ in range(8):  # 2^-8 ratio resolution
        mid = (lo + hi) / 2
        rep, out = measure(bench, inputs, mid)
        fits = rep.energy_j <= budget_j
        print(
            f"  ratio={mid:5.3f} energy={rep.energy_j:.5f} J "
            f"{'fits' if fits else 'over budget'}"
        )
        if fits:
            best_ratio, best_out = mid, out
            lo = mid
        else:
            hi = mid

    if best_out is None:
        print("even ratio=0 exceeds the budget; nothing to report")
        return
    q = bench.quality(reference, best_out)
    print(
        f"\nchosen ratio {best_ratio:.3f}: inertia deviation "
        f"{q.value:.4f}% from the fully accurate clustering"
    )


if __name__ == "__main__":
    main()
