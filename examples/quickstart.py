#!/usr/bin/env python3
"""Quickstart: significance-annotated tasks in ~40 lines.

A toy workload — score a batch of records with an expensive model — is
annotated with task significance.  The runtime then trades result
quality for energy, controlled by a single ratio knob, under each of
the paper's policies.

Run:  python examples/quickstart.py
"""

from repro import Runtime, TaskCost, sig_task, taskwait


# The accurate body: an "expensive" scoring function.
# The approxfun: a cheap surrogate good enough for low-priority records.
def cheap_score(record_id: float) -> float:
    return record_id * 0.9  # first-order estimate


@sig_task(
    label="scoring",
    approxfun=cheap_score,
    # Analytic work units: accurate body ~2M ops, surrogate ~80k.
    cost=TaskCost(accurate=2e6, approximate=8e4),
)
def score(record_id: float) -> float:
    # Imagine a heavy model here; the cost annotation carries its
    # weight for the simulated machine.
    acc = 0.0
    for k in range(1, 40):
        acc += record_id / k
    return acc


def run(policy: str, ratio: float):
    # Policies are addressed by registry spec strings; programmatic
    # instances (GlobalTaskBuffering(32), ...) work interchangeably.
    with Runtime(policy=policy, n_workers=16) as rt:
        rt.init_group("scoring", ratio=ratio)
        for i in range(240):
            # High-value records get high significance; the long tail is
            # fair game for approximation.
            score(float(i), significance=(i % 9 + 1) / 10.0)
        taskwait(label="scoring")
    return rt.report


def main() -> None:
    ratio = 0.30  # execute at least the 30% most significant accurately
    print(f"target accurate ratio: {ratio:.0%}\n")
    baseline = run("accurate", ratio)
    print(
        f"{'policy':<34} {'time':>10} {'energy':>9} "
        f"{'accurate':>8} {'vs baseline':>11}"
    )
    for policy in (
        "accurate",
        "gtb:buffer_size=32",
        "gtb-max",
        "lqh",
    ):
        rep = run(policy, ratio)
        saving = 1.0 - rep.energy_j / baseline.energy_j
        print(
            f"{rep.policy:<34} {rep.makespan_s * 1e3:8.3f}ms "
            f"{rep.energy_j:8.4f}J {rep.accurate_tasks:8d} "
            f"{saving:10.1%}"
        )
    print(
        "\nThe ratio knob is the whole quality/energy interface: no "
        "code changes between rows."
    )


if __name__ == "__main__":
    main()
