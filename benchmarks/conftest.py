"""Shared plumbing for the benchmark harness.

Every file regenerates one table or figure of the paper (see DESIGN.md
section 4).  Benchmarks run the *full-size* workloads by default — set
``REPRO_BENCH_SMALL=1`` to use the shrunken test workloads instead.

Measurements use ``benchmark.pedantic(rounds=1)``: each experiment cell
is itself a complete simulated execution whose *virtual* makespan and
energy are the quantities of interest; the host wall time reported by
pytest-benchmark is only a convenience.  The paper-facing numbers
(virtual time, Joules, quality) are attached to ``benchmark.extra_info``
so ``--benchmark-json`` exports carry them.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.experiment import CellResult, ExperimentCell, run_cell

SMALL = bool(int(os.environ.get("REPRO_BENCH_SMALL", "0")))
WORKERS = 16  # the paper's testbed width


def measure_cell(benchmark, cell: ExperimentCell) -> CellResult:
    """Run one experiment cell under pytest-benchmark bookkeeping."""
    result = benchmark.pedantic(
        run_cell, args=(cell,), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        cell=cell.describe(),
        virtual_makespan_s=result.makespan_s,
        energy_j=result.energy_j,
        quality_metric=result.quality.metric,
        quality_value=result.quality.value,
        accurate=result.report.accurate_tasks,
        approximate=result.report.approximate_tasks,
        dropped=result.report.dropped_tasks,
    )
    return result


@pytest.fixture(scope="session")
def accurate_reference():
    """Accurate-run results per benchmark, shared across bench files."""
    cache: dict[str, CellResult] = {}

    def get(name: str) -> CellResult:
        if name not in cache:
            cache[name] = run_cell(
                ExperimentCell(name, "accurate", None, WORKERS, SMALL)
            )
        return cache[name]

    return get
