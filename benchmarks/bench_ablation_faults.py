"""Ablation: significance-aware execution on unreliable hardware.

Paper section 6 names "approximate computing on top of ultra low-power
but unreliable hardware" as future work; :mod:`repro.faults` implements
the scenario (silent omission faults on relaxed-reliability cores,
ERSA-style protection for significant tasks).  This bench sweeps the
fault rate on the Sobel workload and quantifies the protection
trade-off: output quality recovered versus re-execution time paid.
"""

from __future__ import annotations

import pytest

from repro import Scheduler
from repro.kernels.sobel import SobelBenchmark
from repro.quality.metrics import psnr

from conftest import SMALL, WORKERS


def run_sobel_faulty(fault_rate: float, protect_threshold: float):
    bench = SobelBenchmark(small=SMALL)
    img = bench.build_input()
    reference = bench.run_reference(img)
    rt = Scheduler(
        policy="accurate",
        n_workers=WORKERS,
        engine=(
            f"faulty:unreliable_fraction=0.5,fault_rate={fault_rate},"
            f"seed=11,protect_threshold={protect_threshold}"
        ),
    )
    out = bench.run_tasks(rt, img, 1.0)
    report = rt.finish()
    return psnr(reference, out), report, rt.engine.fault_log


@pytest.mark.parametrize("fault_rate", [0.0, 0.02, 0.05, 0.10],
                         ids=lambda r: f"p={r}")
def test_ablation_fault_rate_unprotected(benchmark, fault_rate):
    """Silent faults degrade quality monotonically with the rate."""
    benchmark.group = "ablation-faults"
    quality, report, log = benchmark.pedantic(
        run_sobel_faulty,
        args=(fault_rate, 1.1 if False else 1.0),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        psnr_db=(None if quality == float("inf") else quality),
        silent_faults=log.silent,
        makespan_s=report.makespan_s,
    )
    if fault_rate == 0.0:
        assert quality == float("inf")
    else:
        assert log.silent > 0
        assert quality > 10.0  # rows lost, but the image survives


def test_ablation_protection_recovers_quality(benchmark):
    """Full protection removes all silent faults at a time premium."""
    benchmark.group = "ablation-faults"

    def run():
        unprot = run_sobel_faulty(0.10, protect_threshold=1.0)
        prot = run_sobel_faulty(0.10, protect_threshold=0.0)
        return unprot, prot

    (q_u, rep_u, log_u), (q_p, rep_p, log_p) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        unprotected_psnr=q_u,
        protected_psnr=("inf" if q_p == float("inf") else q_p),
        recovery_time_premium=rep_p.makespan_s / rep_u.makespan_s,
    )
    assert log_p.silent == 0 and q_p == float("inf")
    assert log_u.silent > 0 and q_u < float("inf")
    assert rep_p.makespan_s > rep_u.makespan_s  # protection is not free


def test_ablation_threshold_sweep(benchmark):
    """Raising the protection threshold trades quality for time."""
    benchmark.group = "ablation-faults"

    def sweep():
        return [
            run_sobel_faulty(0.10, thr)[0:2]
            for thr in (0.0, 0.5, 1.0)
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    qualities = [q for q, _ in rows]
    busy = [r.energy.busy_s for _, r in rows]
    # More protection -> at least as good quality, at least as much
    # re-execution work.  (Total busy time is the robust monotone
    # quantity; the makespan itself is subject to Graham-style
    # scheduling anomalies when individual task durations change.)
    finite = [q if q != float("inf") else 1e9 for q in qualities]
    assert finite[0] >= finite[1] >= finite[2]
    assert busy[0] >= busy[1] >= busy[2]
