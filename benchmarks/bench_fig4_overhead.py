"""Figure 4: runtime overhead of the significance-aware code paths.

Every benchmark runs with all tasks accurate (ratio 1.0 equivalents)
under each policy and is normalized to the significance-agnostic
runtime.  The paper reports "negligible overhead ... in the order of 7%
in the worst case (DCT under the GTB Max Buffer policy)".
"""

from __future__ import annotations


from repro.harness.figures import POLICY_MODES, fig4_overhead

from conftest import SMALL, WORKERS

#: Full-size tolerance: the paper's worst case is ~1.07; small-size
#: workloads are spawn-dominated, so the bound is loose there.
MAX_OVERHEAD = 1.60 if SMALL else 1.15


def test_fig4_policy_overhead(benchmark):
    benchmark.group = "fig4"
    data = benchmark.pedantic(
        fig4_overhead,
        kwargs=dict(small=SMALL, n_workers=WORKERS),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        normalized={
            f"{b}/{m.split(':')[1]}": round(v, 4)
            for (b, m), v in data.normalized.items()
        }
    )
    for b in data.benchmarks:
        for mode in POLICY_MODES:
            v = data.normalized[(b, mode)]
            assert v < MAX_OVERHEAD, (b, mode, v)
    # Windowed GTB and LQH stay within a few percent everywhere.
    if not SMALL:
        for b in data.benchmarks:
            assert data.normalized[(b, "policy:lqh")] < 1.05
            assert data.normalized[(b, "policy:gtb")] < 1.08
