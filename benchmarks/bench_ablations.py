"""Ablation benchmarks beyond the paper's figures.

These quantify the design choices DESIGN.md calls out:

* **GTB buffer-size sweep** — section 3.3: "A larger buffer size allows
  the runtime to take more informed decisions" at the cost of issue
  latency; the paper observes the flavours are "comparable with each
  other".
* **Worker scaling** — the simulated machine's parallel efficiency on
  the Sobel task graph.
* **DVFS what-if** — section 6 (future work): run approximate tasks on
  downclocked cores and re-integrate energy.
"""

from __future__ import annotations

import pytest

from repro.energy.dvfs import DvfsPlan, replay_with_dvfs
from repro.harness.experiment import ExperimentCell, run_cell
from repro.kernels.base import Degree, get_benchmark
from repro.runtime.scheduler import Scheduler

from conftest import SMALL, WORKERS


@pytest.mark.parametrize("buffer_size", [4, 16, 64, 256, None],
                         ids=lambda b: f"B={b}")
def test_ablation_gtb_buffer_size(benchmark, buffer_size):
    """All GTB window sizes land within ~15% of each other (full size),
    echoing the paper's 'comparable with each other' observation."""
    benchmark.group = "ablation-gtb-buffer"
    policy = (
        "gtb-max" if buffer_size is None
        else f"gtb:buffer_size={buffer_size}"
    )

    def run():
        bench = get_benchmark("Sobel", small=SMALL)
        img = bench.build_input()
        rt = Scheduler(policy=policy, n_workers=WORKERS)
        bench.run_tasks(rt, img, 0.3)
        return rt.finish()

    rep = benchmark.pedantic(run, rounds=1, iterations=1)
    achieved = rep.groups["sobel"].achieved_ratio
    benchmark.extra_info.update(
        makespan_s=rep.makespan_s,
        energy_j=rep.energy_j,
        achieved_ratio=achieved,
    )
    # GTB guarantees *at least* the requested ratio (ceil per window);
    # tiny windows overshoot: ceil(0.3 * 4) / 4 = 0.5.
    assert achieved >= 0.3 - 1e-9
    ceil_overshoot = (1.0 / buffer_size) if buffer_size else 0.01
    assert achieved <= 0.3 + ceil_overshoot + 0.01


@pytest.mark.parametrize("workers", [2, 4, 8, 16, 32],
                         ids=lambda w: f"W={w}")
def test_ablation_worker_scaling(benchmark, workers):
    """Sobel speedup scales with simulated cores until spawn-bound."""
    benchmark.group = "ablation-workers"

    def run():
        return run_cell(
            ExperimentCell(
                "Sobel", "policy:gtb", Degree.MEDIUM, workers, SMALL
            )
        )

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        virtual_makespan_s=res.makespan_s, energy_j=res.energy_j
    )
    assert res.makespan_s > 0


def test_ablation_worker_scaling_monotone(benchmark):
    """More workers never lengthen the virtual makespan."""
    benchmark.group = "ablation-workers"

    def sweep():
        return [
            run_cell(
                ExperimentCell(
                    "Sobel", "policy:gtb", Degree.MEDIUM, w, SMALL
                )
            ).makespan_s
            for w in (2, 4, 8, 16)
        ]

    spans = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert all(a >= b * 0.999 for a, b in zip(spans, spans[1:]))


@pytest.mark.parametrize(
    "factor", [1.0, 0.75, 0.5], ids=lambda f: f"f={f}"
)
def test_ablation_dvfs_approximate_downclock(benchmark, factor):
    """Paper section 6: run approximate tasks on slower cores.

    Slowing only the (cheap) approximate tasks cuts their dynamic power
    cubically while barely moving the makespan — the energy column must
    therefore drop monotonically in the downclock factor.
    """
    benchmark.group = "ablation-dvfs"

    def run():
        res = run_cell(
            ExperimentCell(
                "Sobel", "policy:gtb-max", Degree.MEDIUM, WORKERS, SMALL
            ),
        )
        machine = res.report.trace and res.report
        rt_machine = res.report
        assert res.report.trace is not None
        plan = DvfsPlan(accurate=1.0, approximate=factor)
        from repro.energy.machine_model import XEON_E5_2650

        machine_model = XEON_E5_2650.with_workers(WORKERS)
        return replay_with_dvfs(res.report.trace, machine_model, plan)

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        makespan_s=out.makespan_s,
        dynamic_j=out.energy.core_active_j,
    )
    assert out.makespan_s > 0


def test_ablation_dvfs_energy_monotone(benchmark):
    benchmark.group = "ablation-dvfs"

    def sweep():
        res = run_cell(
            ExperimentCell(
                "Sobel", "policy:gtb-max", Degree.MEDIUM, WORKERS, SMALL
            ),
        )
        from repro.energy.machine_model import XEON_E5_2650

        machine_model = XEON_E5_2650.with_workers(WORKERS)
        assert res.report.trace is not None
        return [
            replay_with_dvfs(
                res.report.trace,
                machine_model,
                DvfsPlan(accurate=1.0, approximate=f),
            ).energy.core_active_j
            for f in (1.0, 0.75, 0.5)
        ]

    dyn = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert dyn[0] > dyn[1] > dyn[2]
