"""Figures 1 and 3: the Sobel quadrant mosaics.

Figure 1 shows the output under no/Mild/Medium/Aggressive significance-
driven approximation; Figure 3 under 0/20/70/100 % blind loop
perforation.  The assertion encodes the paper's visual claim: at every
matching aggressiveness level, perforation is strictly worse than
significance-driven approximation ("the cost of doing so is
unacceptable output quality", section 4.2).
"""

from __future__ import annotations

from pathlib import Path

from repro.harness.figures import (
    fig1_sobel_approximation,
    fig3_sobel_perforation,
)

from conftest import SMALL, WORKERS

OUT_DIR = Path(__file__).parent / "out"


def test_fig1_sobel_approximation_quadrants(benchmark):
    benchmark.group = "fig1"
    OUT_DIR.mkdir(exist_ok=True)
    fig = benchmark.pedantic(
        fig1_sobel_approximation,
        kwargs=dict(
            small=SMALL,
            n_workers=WORKERS,
            out_path=OUT_DIR / "fig1_sobel_approx.pgm",
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        psnr_db={
            lbl: p for lbl, p in zip(fig.labels, fig.psnr_db)
        }
    )
    assert fig.psnr_db[0] == float("inf")  # accurate quadrant exact
    assert all(p > 8.0 for p in fig.psnr_db[1:])  # graceful


def test_fig3_sobel_perforation_quadrants(benchmark):
    benchmark.group = "fig3"
    OUT_DIR.mkdir(exist_ok=True)
    fig3 = benchmark.pedantic(
        fig3_sobel_perforation,
        kwargs=dict(
            small=SMALL,
            n_workers=WORKERS,
            out_path=OUT_DIR / "fig3_sobel_perforation.pgm",
        ),
        rounds=1,
        iterations=1,
    )
    fig1 = fig1_sobel_approximation(small=SMALL, n_workers=WORKERS)
    benchmark.extra_info.update(
        psnr_db={
            lbl: p for lbl, p in zip(fig3.labels, fig3.psnr_db)
        }
    )
    # Quadrant-for-quadrant: 20% perforation vs Mild (20% approx),
    # 70% vs Medium, 100% vs Aggressive — perforation always loses.
    for q in (1, 2, 3):
        assert fig3.psnr_db[q] < fig1.psnr_db[q]
