"""Figure 2: execution time, energy and quality per benchmark.

One pytest-benchmark entry per (benchmark x policy x degree) cell plus
the two reference lines (fully accurate, loop perforation).  The
assertions encode the paper's headline shapes:

* approximation never exceeds the accurate makespan/energy (within a
  small tolerance for Mild ratios where nearly everything is accurate);
* time and energy shrink as the degree becomes more aggressive;
* quality degrades gracefully (bounded), and degrades monotonically for
  the kernels whose knob maps directly to a task ratio.
"""

from __future__ import annotations

import pytest

from repro.harness.experiment import ExperimentCell, run_cell
from repro.harness.figures import POLICY_MODES
from repro.kernels.base import Degree, benchmark_names, get_benchmark

from conftest import SMALL, WORKERS, measure_cell

BENCHMARKS = tuple(benchmark_names())
DEGREES = (Degree.MILD, Degree.MEDIUM, Degree.AGGRESSIVE)

#: Slack for cells whose decisions are nearly all accurate (Mild) —
#: policy bookkeeping may add a few percent over the agnostic baseline.
#: Small workloads are spawn-dominated, so buffering policies carry a
#: visibly larger relative overhead there.
MILD_SLACK = 2.0 if SMALL else 1.10


@pytest.mark.parametrize("name", BENCHMARKS)
@pytest.mark.parametrize(
    "mode", POLICY_MODES, ids=lambda m: m.split(":")[1]
)
@pytest.mark.parametrize("degree", DEGREES, ids=lambda d: d.value)
def test_fig2_cell(benchmark, accurate_reference, name, mode, degree):
    benchmark.group = f"fig2-{name}"
    res = measure_cell(
        benchmark, ExperimentCell(name, mode, degree, WORKERS, SMALL)
    )
    acc = accurate_reference(name)
    if not (name == "Kmeans" and mode == "policy:lqh"):
        # Kmeans under LQH is the paper's own anomaly: "the LQH policy
        # exhibits slow convergence to the termination criteria"
        # (section 4.2) — extra iterations can exceed the accurate
        # run's makespan while still matching its quality.
        assert res.makespan_s <= acc.makespan_s * MILD_SLACK
        assert res.energy_j <= acc.energy_j * MILD_SLACK
    assert res.quality.value < float("inf")


@pytest.mark.parametrize("name", BENCHMARKS)
def test_fig2_accurate_reference(benchmark, name):
    benchmark.group = f"fig2-{name}"
    res = measure_cell(
        benchmark, ExperimentCell(name, "accurate", None, WORKERS, SMALL)
    )
    # Exactly zero for the one-shot kernels; Jacobi's accurate run may
    # execute a couple more (all-accurate) sweeps than the reference
    # loop before its convergence check fires, leaving a sub-tolerance
    # residual difference.
    assert res.quality.value <= (1e-2 if name == "Jacobi" else 0.0)


@pytest.mark.parametrize(
    "name", [b for b in BENCHMARKS if b != "Fluidanimate"]
)
@pytest.mark.parametrize("degree", DEGREES, ids=lambda d: d.value)
def test_fig2_perforation_reference(benchmark, name, degree):
    benchmark.group = f"fig2-{name}"
    res = measure_cell(
        benchmark,
        ExperimentCell(name, "perforated", degree, WORKERS, SMALL),
    )
    assert res.makespan_s >= 0.0


@pytest.mark.parametrize("name", BENCHMARKS)
@pytest.mark.parametrize(
    "mode", POLICY_MODES, ids=lambda m: m.split(":")[1]
)
def test_fig2_monotonicity(benchmark, name, mode):
    """Aggr <= Medium <= Mild in both time and energy (one pass)."""
    benchmark.group = "fig2-monotonicity"

    def sweep():
        return [
            run_cell(ExperimentCell(name, mode, d, WORKERS, SMALL))
            for d in DEGREES
        ]

    mild, med, aggr = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert aggr.makespan_s <= med.makespan_s * 1.02 or name == "Kmeans"
    assert aggr.energy_j <= med.energy_j * 1.02 or name == "Kmeans"
    assert med.energy_j <= mild.energy_j * 1.02 or name == "Kmeans"
    # Kmeans is exempt from strict monotonicity: convergence iteration
    # counts interact with the ratio (the paper reports the same
    # LQH-convergence caveat in section 4.2).


@pytest.mark.parametrize("name", ["Sobel", "DCT", "Fluidanimate"])
def test_fig2_quality_orders_by_degree(benchmark, name):
    """More aggressive degrees lose more quality (ratio-knob kernels)."""
    benchmark.group = "fig2-quality-order"

    def sweep():
        bench = get_benchmark(name, small=SMALL)
        out = []
        for d in DEGREES:
            out.append(
                run_cell(
                    ExperimentCell(
                        name, "policy:gtb-max", d, WORKERS, SMALL
                    )
                ).quality.value
            )
        return out

    mild, med, aggr = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert mild <= med * 1.05 + 1e-12
    assert med <= aggr * 1.05 + 1e-12
