"""Tables 1 and 2: configuration echo and policy accuracy.

Table 1 is static configuration (verified against the paper's values in
the unit tests; regenerated here for the record).  Table 2 runs the
Medium-degree grid and measures significance inversions and ratio
offsets per policy.
"""

from __future__ import annotations

from repro.harness.tables import table1, table2_policy_accuracy
from repro.harness.figures import POLICY_NAMES

from conftest import SMALL, WORKERS


def test_table1_configuration(benchmark):
    benchmark.group = "table1"
    out = benchmark.pedantic(table1, rounds=1, iterations=1)
    assert "Sobel" in out
    benchmark.extra_info["table"] = out


def test_table2_policy_accuracy(benchmark):
    benchmark.group = "table2"
    data = benchmark.pedantic(
        table2_policy_accuracy,
        kwargs=dict(small=SMALL, n_workers=WORKERS),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        inversions={
            f"{b}/{POLICY_NAMES[m]}": round(v, 3)
            for (b, m), v in data.inversions.items()
        },
        ratio_diff={
            f"{b}/{POLICY_NAMES[m]}": round(v, 4)
            for (b, m), v in data.ratio_diff.items()
        },
    )
    for b in data.benchmarks:
        # Max-buffer GTB takes the fully correct decision: zero
        # inversions, near-zero ratio offset (paper: "The two versions
        # of GTB respect perfectly task significance").
        assert data.inversions[(b, "policy:gtb-max")] == 0.0
        assert data.ratio_diff[(b, "policy:gtb-max")] < 0.03
        # Windowed GTB stays close.
        assert data.ratio_diff[(b, "policy:gtb")] < 0.08
    # LQH avoids inversions exactly where significance is uniform
    # (paper: Kmeans, Jacobi, Fluidanimate).
    for b in ("Kmeans", "Jacobi", "Fluidanimate"):
        assert data.inversions[(b, "policy:lqh")] == 0.0
