"""Legacy shim: lets `pip install -e . --no-use-pep517` work on hosts
without the `wheel` package (metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
