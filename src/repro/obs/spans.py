"""Request-scoped spans: one cross-layer tree per served job.

A job entering the system (over TCP, through :class:`~repro.serve
.server.LocalGateway`, or straight into a service) is assigned a
``trace_id``; every layer it crosses opens a child span under the
parent recorded on the request.  The resulting tree for one job looks
like::

    gateway.request            (ServeServer, wall-clock of the op)
    └── cluster.route          (ClusterService: ring lookup + shard hop)
        └── serve.job          (TaskService: admission → settle)
            └── runtime.group  (Scheduler task group, one per round)

Span identifiers come from a process-wide monotonic counter (GIL-atomic
``itertools.count``) prefixed with the PID, so they are unique within a
run and stable enough to diff across runs.  Finished spans land in a
:class:`SpanRecorder` whose per-thread buffers mirror the
``AccountingShard`` single-writer pattern: recording is an ``append``
on the calling thread's own list; readers merge on demand.

Export targets:

* :meth:`SpanRecorder.write_jsonl` — one JSON object per line, the
  span log proper.
* chrome-trace — ``TaskService.write_trace`` merges each group's
  ``trace_id``/``span_id`` into the existing ``group_meta`` so the
  usual chrome trace can be joined against the span log.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field

__all__ = ["Span", "SpanRecorder", "new_trace_id", "new_span_id"]

_ids = itertools.count(1)


def _next_id(prefix: str) -> str:
    # itertools.count.__next__ is atomic under the GIL — no lock needed
    # even when shard worker threads mint ids concurrently.
    return f"{prefix}{os.getpid():x}-{next(_ids):06x}"


def new_trace_id() -> str:
    """Fresh trace identifier (``t<pid>-<seq>``)."""
    return _next_id("t")


def new_span_id() -> str:
    """Fresh span identifier (``s<pid>-<seq>``)."""
    return _next_id("s")


@dataclass
class Span:
    """One timed operation inside a trace."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    t_start: float
    t_end: float = 0.0
    attrs: dict = field(default_factory=dict)

    def end(self, recorder: "SpanRecorder | None" = None, **attrs) -> "Span":
        """Stamp the end time (idempotent) and optionally record."""
        if self.t_end == 0.0:
            self.t_end = time.perf_counter()
        if attrs:
            self.attrs.update(attrs)
        if recorder is not None:
            recorder.record(self)
        return self

    @property
    def duration_s(self) -> float:
        return max(0.0, self.t_end - self.t_start)

    def child(self, name: str, **attrs) -> "Span":
        """Open a child span under this one, started now."""
        return Span(
            trace_id=self.trace_id,
            span_id=new_span_id(),
            parent_id=self.span_id,
            name=name,
            t_start=time.perf_counter(),
            attrs=dict(attrs),
        )

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
        }


def start_span(
    name: str,
    trace_id: str | None = None,
    parent_id: str | None = None,
    **attrs,
) -> Span:
    """Open a span; mints a fresh trace when ``trace_id`` is ``None``
    (such a span is a trace *root*)."""
    return Span(
        trace_id=trace_id or new_trace_id(),
        span_id=new_span_id(),
        parent_id=parent_id,
        name=name,
        t_start=time.perf_counter(),
        attrs=dict(attrs),
    )


class SpanRecorder:
    """Bounded sink for finished spans, per-thread buffers merged on read.

    Each writer thread appends to its own list (``list.append`` is
    atomic under the GIL and each list has exactly one writer — the
    ``AccountingShard`` discipline), so recording never takes a lock.
    The total is bounded: once ``capacity`` spans are held, further
    records are counted in :attr:`dropped` and discarded — telemetry
    must not grow without bound under sustained load.
    """

    def __init__(self, capacity: int = 20_000) -> None:
        self.capacity = capacity
        self.dropped = 0
        self._buffers: dict[int, list[Span]] = {}
        self._approx_len = 0

    def record(self, span: Span) -> None:
        if self._approx_len >= self.capacity:
            self.dropped += 1
            return
        tid = threading.get_ident()
        buf = self._buffers.get(tid)
        if buf is None:
            buf = self._buffers.setdefault(tid, [])
        buf.append(span)
        # Racy increment is fine: it only steers the soft cap, and the
        # merge path counts exactly.
        self._approx_len += 1

    def spans(self) -> list[Span]:
        """Merged snapshot, ordered by start time."""
        merged: list[Span] = []
        for buf in list(self._buffers.values()):
            merged.extend(list(buf))
        merged.sort(key=lambda s: (s.t_start, s.span_id))
        return merged

    def __len__(self) -> int:
        return sum(len(buf) for buf in list(self._buffers.values()))

    def clear(self) -> None:
        self._buffers = {}
        self._approx_len = 0
        self.dropped = 0

    def by_trace(self) -> dict[str, list[Span]]:
        out: dict[str, list[Span]] = {}
        for span in self.spans():
            out.setdefault(span.trace_id, []).append(span)
        return out

    def write_jsonl(self, path) -> int:
        """Write one JSON object per span; returns the span count."""
        spans = self.spans()
        with open(path, "w") as fh:
            for span in spans:
                fh.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        return len(spans)
