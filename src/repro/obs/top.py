"""``python -m repro.harness top``: a refreshing live cluster view.

The renderer is a pure function from one ``stats`` digest plus one
metrics snapshot (both as returned by the TCP gateway's ``stats`` and
``metrics`` verbs) to a text frame — testable without a socket.  The
harness wraps it in a scrape → render → sleep loop against a live
gateway.

One frame shows the state the paper's runtime is steering on: per-tenant
Joules against budget, governor ratio/DVFS actuation, cache hit bands,
ledger lease occupancy, stream lane depth, and the shared-memory data
plane's byte accounting.
"""

from __future__ import annotations

__all__ = ["render_top", "run_top"]


def _series(metrics: dict | None, name: str) -> list[tuple[dict, float]]:
    """``(labels, value)`` pairs of one family in a JSON snapshot."""
    if not metrics or name not in metrics:
        return []
    return [
        (s.get("labels", {}), s.get("value", s.get("count", 0.0)))
        for s in metrics[name].get("series", [])
    ]


def _fmt_j(v: float | None) -> str:
    if v is None:
        return "-"
    if v == 0:
        return "0 J"
    if abs(v) < 1e-3:
        return f"{v * 1e6:.1f} uJ"
    if abs(v) < 1.0:
        return f"{v * 1e3:.2f} mJ"
    return f"{v:.2f} J"


def _bar(frac: float, width: int = 16) -> str:
    frac = min(1.0, max(0.0, frac))
    filled = int(round(frac * width))
    return "#" * filled + "." * (width - filled)


def _tenant_rows(stats: dict) -> list[str]:
    rows = [
        f"  {'TENANT':<10} {'TIER':<9} {'SPENT':>10} {'BUDGET':>10} "
        f"{'USE':<18} {'RATIO':>5}  {'EXEC':>5} {'CACHE':>5} "
        f"{'COAL':>5} {'REJ':>5}"
    ]
    for name, t in sorted(stats.get("tenants", {}).items()):
        budget = t.get("budget_j")
        spent = t.get("spent_j", 0.0)
        if budget:
            use = f"[{_bar(spent / budget)}]"
        else:
            use = "[   unmetered    ]"
        cached = t.get("cached", 0) + t.get("cached_degraded", 0)
        flag = " OVER" if t.get("over_budget") else ""
        rows.append(
            f"  {name:<10} {t.get('tier', '-'):<9} "
            f"{_fmt_j(spent):>10} {_fmt_j(budget):>10} "
            f"{use:<18} {t.get('ratio', 1.0):>5.2f}  "
            f"{t.get('executed', 0):>5} {cached:>5} "
            f"{t.get('coalesced', 0):>5} {t.get('rejected', 0):>5}"
            f"{flag}"
        )
    return rows


def _governor_rows(metrics: dict | None) -> list[str]:
    ratios = dict(
        (tuple(sorted(lbl.items())), v)
        for lbl, v in _series(metrics, "repro_governor_ratio")
    )
    factors = dict(
        (tuple(sorted(lbl.items())), v)
        for lbl, v in _series(metrics, "repro_governor_dvfs_factor")
    )
    ticks = dict(
        (tuple(sorted(lbl.items())), v)
        for lbl, v in _series(metrics, "repro_governor_ticks_total")
    )
    if not ratios:
        return []
    rows = ["governors:"]
    for key in sorted(ratios):
        scope = dict(key).get("scope", "?")
        rows.append(
            f"  {scope:<10} ratio={ratios[key]:.2f} "
            f"dvfs={factors.get(key, 1.0):.2f} "
            f"ticks={int(ticks.get(key, 0))}"
        )
    return rows


def _cache_row(stats: dict) -> str:
    c = stats.get("cache", {})
    return (
        f"cache: {int(c.get('hits', 0))} hits + "
        f"{int(c.get('degraded_hits', 0))} degraded / "
        f"{int(c.get('misses', 0))} misses "
        f"(rate {c.get('hit_rate', 0.0):.0%}), "
        f"{int(c.get('puts', 0))} puts, "
        f"{int(c.get('evictions', 0))} evictions"
    )


def _ledger_rows(metrics: dict | None) -> list[str]:
    leases = _series(metrics, "repro_ledger_lease_remaining_joules")
    if not leases:
        return []
    rows = ["ledger leases (unspent):"]
    by_tenant: dict[str, list[str]] = {}
    for lbl, v in leases:
        by_tenant.setdefault(lbl.get("tenant", "?"), []).append(
            f"s{lbl.get('shard', '?')}={_fmt_j(v)}"
        )
    for tenant in sorted(by_tenant):
        rows.append(f"  {tenant:<10} " + "  ".join(by_tenant[tenant]))
    return rows


def _stream_rows(stats: dict, metrics: dict | None) -> list[str]:
    streams = stats.get("streams") or {}
    inflight = {
        (lbl.get("tenant"), lbl.get("stream")): v
        for lbl, v in _series(metrics, "repro_stream_inflight")
    }
    if not streams and not inflight:
        return []
    rows = ["streams:"]
    for key, s in sorted(streams.items()):
        tenant = s.get("tenant", "?")
        lane = s.get("stream", key)
        depth = inflight.get((tenant, lane), s.get("inflight", 0))
        rows.append(
            f"  {tenant}/{lane}: frame {s.get('next_frame', 0)}, "
            f"{int(depth)} in flight, "
            f"{s.get('degraded', 0)} degraded, "
            f"{s.get('rejected', 0)} rejected"
        )
    return rows


def _data_plane_rows(stats: dict) -> list[str]:
    planes: list[tuple[str, dict]] = []
    if stats.get("data_plane"):
        planes.append(("", stats["data_plane"]))
    for shard in stats.get("per_shard", []):
        if shard.get("data_plane"):
            planes.append((f"shard {shard['shard']}: ", shard["data_plane"]))
    if not planes:
        return []
    rows = ["data plane (shm):"]
    for prefix, dp in planes:
        rows.append(
            f"  {prefix}{dp.get('bytes_referenced', 0)} B by reference, "
            f"{dp.get('bytes_copied_in', 0)}+"
            f"{dp.get('bytes_copied_out', 0)} B copied, "
            f"{dp.get('bytes_pickled', 0)} B pickled "
            f"(zero-copy {dp.get('bytes_not_copied_frac', 0.0):.0%})"
        )
    return rows


def render_top(stats: dict, metrics: dict | None = None) -> str:
    """One ``top`` frame from a ``stats`` digest and an optional
    ``metrics`` JSON snapshot (both as the TCP gateway returns them)."""
    cluster = stats.get("cluster")
    if cluster:
        shape = f"{cluster.get('shards', '?')} shards"
    else:
        shape = "1 service"
    head = (
        f"repro.serve {shape} · engine={stats.get('engine', '?')} · "
        f"round {stats.get('rounds', 0)} · "
        f"{stats.get('pending_jobs', 0)} pending · "
        f"engine time {stats.get('engine_time_s', 0.0):.3g}s"
    )
    lines = [head, "=" * len(head)]
    lines.extend(_tenant_rows(stats))
    gov = _governor_rows(metrics)
    if gov:
        lines.append("")
        lines.extend(gov)
    lines.append("")
    lines.append(_cache_row(stats))
    for block in (
        _ledger_rows(metrics),
        _stream_rows(stats, metrics),
        _data_plane_rows(stats),
    ):
        if block:
            lines.append("")
            lines.extend(block)
    per_shard = stats.get("per_shard")
    if per_shard:
        lines.append("")
        lines.append("shards:")
        for s in per_shard:
            lines.append(
                f"  shard {s['shard']}: {s.get('pending_jobs', 0)} "
                f"pending, {s.get('rounds', 0)} rounds, "
                f"engine time {s.get('engine_time_s', 0.0):.3g}s"
            )
    return "\n".join(lines)


def run_top(
    host: str,
    port: int,
    *,
    interval_s: float = 2.0,
    iterations: int | None = None,
    out=None,
) -> int:
    """Scrape → render → sleep against a live gateway.

    ``iterations=None`` loops until interrupted (the interactive
    shape); a bounded count is the smoke/CI shape.  Returns 0.
    """
    import sys
    import time

    from ..serve.client import ServeClient

    stream = out if out is not None else sys.stdout
    n = 0
    with ServeClient(host, port) as client:
        while iterations is None or n < iterations:
            stats = client.stats()
            try:
                metrics = client.metrics()
            except Exception:
                metrics = None  # telemetry off server-side
            frame = render_top(stats, metrics)
            if out is None and stream.isatty():  # pragma: no cover
                stream.write("\x1b[2J\x1b[H")
            stream.write(frame + "\n")
            stream.flush()
            n += 1
            if iterations is None or n < iterations:
                time.sleep(interval_s)
    return 0
