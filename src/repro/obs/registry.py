"""Dependency-free metrics registry: counters, gauges, histograms.

The serve/cluster/runtime layers make significance and energy decisions
continuously; this module makes that state observable *while the system
runs* instead of only in post-hoc traces.  Three design constraints:

1. **No dependencies.**  Exposition is Prometheus text format and
   stable JSON, both produced with the standard library only.

2. **Lock-cheap hot path.**  Counters and histograms keep one cell per
   writer thread, keyed by ``threading.get_ident()``, mirroring the
   single-writer discipline of
   :class:`repro.runtime.accounting.AccountingShard`: each thread
   mutates only its own cell (a plain ``list`` so the increment is a
   single ``cell[0] += v`` under the GIL) and readers *merge* cells on
   demand.  No locks are taken on the increment path; ``dict
   .setdefault`` publishes new cells atomically.

3. **Bounded label sets.**  A metric family caps the number of distinct
   label combinations it will track (:data:`DEFAULT_MAX_SERIES`).  Once
   the cap is hit, further label values collapse onto a single
   ``~overflow~`` series and the family counts the drops — telemetry
   must never become the memory leak it is watching for.

Instrumented call sites sit behind the module-level enable switch (see
:func:`obs_enabled` / :func:`set_obs_enabled` in :mod:`repro.obs`):
components capture metric handles at construction when observability is
on and keep ``None`` otherwise, so a disabled system pays one attribute
test per site.  The ``obs_overhead`` bench probe gates the enabled-mode
cost against the telemetry-off baseline.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_SERIES",
    "OVERFLOW_LABEL",
]

#: Cap on distinct label combinations per family before new label sets
#: collapse onto the overflow series.
DEFAULT_MAX_SERIES = 64

#: Label value every post-cap series is filed under.
OVERFLOW_LABEL = "~overflow~"

#: Default histogram bucket upper bounds (seconds-flavoured, log-ish).
DEFAULT_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Counter:
    """Monotonic counter with per-thread cells merged on read."""

    __slots__ = ("_cells",)

    def __init__(self) -> None:
        # thread ident -> single-element list holding that thread's sum.
        self._cells: dict[int, list[float]] = {}

    def inc(self, v: float = 1.0) -> None:
        """Add ``v`` (must be >= 0).  Safe to call from any thread."""
        if v < 0:
            raise ValueError(f"counter increment must be >= 0, got {v}")
        tid = threading.get_ident()
        cell = self._cells.get(tid)
        if cell is None:
            # setdefault publishes atomically if another call on this
            # thread raced us via reentrancy (it cannot: single thread),
            # and keeps an existing cell if the ident was recycled.
            cell = self._cells.setdefault(tid, [0.0])
        cell[0] += v

    @property
    def value(self) -> float:
        """Merged total across every writer thread's cell."""
        return sum(cell[0] for cell in list(self._cells.values()))


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, v: float) -> None:
        self._value = float(v)

    def add(self, v: float) -> None:
        """Relative adjust; only safe from a single writer thread."""
        self._value += v

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Cumulative-bucket histogram with per-thread cells.

    Each thread's cell is ``[count, sum, b0, b1, ...]`` where ``bi``
    counts observations with ``value <= buckets[i]`` (non-cumulative per
    bucket; cumulation happens at exposition time, Prometheus-style,
    with the implicit ``+Inf`` bucket equal to ``count``).
    """

    __slots__ = ("buckets", "_cells")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.buckets = tuple(float(b) for b in buckets)
        self._cells: dict[int, list[float]] = {}

    def observe(self, v: float) -> None:
        tid = threading.get_ident()
        cell = self._cells.get(tid)
        if cell is None:
            cell = self._cells.setdefault(
                tid, [0.0, 0.0] + [0.0] * (len(self.buckets) + 1)
            )
        cell[0] += 1
        cell[1] += v
        # bisect_left gives the first bucket whose bound is >= v, i.e.
        # Prometheus "le" semantics; values above the last bound land in
        # the implicit +Inf slot at the end of the cell.
        cell[2 + bisect_left(self.buckets, v)] += 1

    def snapshot(self) -> dict:
        """Merged ``{count, sum, buckets: [(le, cumulative_count)...]}``."""
        width = len(self.buckets) + 3
        merged = [0.0] * width
        for cell in list(self._cells.values()):
            for i, v in enumerate(cell):
                merged[i] += v
        cum = 0.0
        out = []
        for i, le in enumerate(self.buckets):
            cum += merged[2 + i]
            out.append((le, cum))
        out.append((float("inf"), merged[0]))
        return {"count": merged[0], "sum": merged[1], "buckets": out}

    @property
    def count(self) -> float:
        return sum(cell[0] for cell in list(self._cells.values()))

    @property
    def sum(self) -> float:
        return sum(cell[1] for cell in list(self._cells.values()))


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


@dataclass
class MetricFamily:
    """One named metric plus every label combination seen so far."""

    name: str
    kind: str
    help: str = ""
    label_names: tuple[str, ...] = ()
    max_series: int = DEFAULT_MAX_SERIES
    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    dropped_series: int = 0
    _series: dict[tuple[str, ...], Counter | Gauge | Histogram] = field(
        default_factory=dict
    )
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def _make(self) -> Counter | Gauge | Histogram:
        if self.kind == "histogram":
            return Histogram(self.buckets)
        return _KINDS[self.kind]()

    def labels(self, *values: str):
        """The child metric for one label-value combination.

        Beyond :attr:`max_series` distinct combinations, every new one
        maps to the shared overflow child so cardinality stays bounded.
        """
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected {len(self.label_names)} label "
                f"values {self.label_names}, got {values!r}"
            )
        key = tuple(str(v) for v in values)
        child = self._series.get(key)
        if child is not None:
            return child
        with self._lock:
            child = self._series.get(key)
            if child is not None:
                return child
            if len(self._series) >= self.max_series:
                self.dropped_series += 1
                key = (OVERFLOW_LABEL,) * len(self.label_names)
                child = self._series.get(key)
                if child is None:
                    child = self._series[key] = self._make()
                return child
            child = self._series[key] = self._make()
            return child

    def series(self) -> list[tuple[tuple[str, ...], object]]:
        """Stable-ordered ``(label_values, child)`` pairs."""
        return sorted(self._series.items(), key=lambda kv: kv[0])


class MetricsRegistry:
    """A namespace of metric families with stable exposition.

    Instantiable so a service can own a private registry (scrapes then
    reconcile exactly with that service's run) while the module-level
    default registry serves ad-hoc callers.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    # -- family constructors ------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: tuple[str, ...],
        max_series: int,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        fam = self._families.get(name)
        if fam is not None:
            if fam.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {fam.kind}"
                )
            return fam
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = self._families[name] = MetricFamily(
                    name=name,
                    kind=kind,
                    help=help,
                    label_names=tuple(labels),
                    max_series=max_series,
                    buckets=tuple(buckets),
                )
            return fam

    def counter(
        self,
        name: str,
        help: str = "",
        labels: tuple[str, ...] = (),
        max_series: int = DEFAULT_MAX_SERIES,
    ):
        fam = self._family(name, "counter", help, tuple(labels), max_series)
        return fam if fam.label_names else fam.labels()

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: tuple[str, ...] = (),
        max_series: int = DEFAULT_MAX_SERIES,
    ):
        fam = self._family(name, "gauge", help, tuple(labels), max_series)
        return fam if fam.label_names else fam.labels()

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        max_series: int = DEFAULT_MAX_SERIES,
    ):
        fam = self._family(
            name, "histogram", help, tuple(labels), max_series, tuple(buckets)
        )
        return fam if fam.label_names else fam.labels()

    def families(self) -> list[MetricFamily]:
        return [self._families[k] for k in sorted(self._families)]

    # -- exposition ---------------------------------------------------
    def to_dict(self) -> dict:
        """Stable JSON-ready snapshot of every family and series."""
        out: dict = {}
        for fam in self.families():
            series = []
            for values, child in fam.series():
                labels = dict(zip(fam.label_names, values))
                if fam.kind == "histogram":
                    snap = child.snapshot()
                    series.append(
                        {
                            "labels": labels,
                            "count": snap["count"],
                            "sum": snap["sum"],
                            "buckets": [
                                ["+Inf" if le == float("inf") else le, n]
                                for le, n in snap["buckets"]
                            ],
                        }
                    )
                else:
                    series.append({"labels": labels, "value": child.value})
            out[fam.name] = {
                "type": fam.kind,
                "help": fam.help,
                "dropped_series": fam.dropped_series,
                "series": series,
            }
        return out

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format, stable ordering."""
        lines: list[str] = []
        for fam in self.families():
            if fam.help:
                lines.append(f"# HELP {fam.name} {fam.help}")
            lines.append(f"# TYPE {fam.name} {fam.kind}")
            for values, child in fam.series():
                base = _label_str(fam.label_names, values)
                if fam.kind == "histogram":
                    snap = child.snapshot()
                    for le, n in snap["buckets"]:
                        le_s = "+Inf" if le == float("inf") else _fmt(le)
                        extra = _label_str(
                            fam.label_names + ("le",), values + (le_s,)
                        )
                        lines.append(f"{fam.name}_bucket{extra} {_fmt(n)}")
                    lines.append(f"{fam.name}_sum{base} {_fmt(snap['sum'])}")
                    lines.append(
                        f"{fam.name}_count{base} {_fmt(snap['count'])}"
                    )
                else:
                    lines.append(f"{fam.name}{base} {_fmt(child.value)}")
        return "\n".join(lines) + "\n"


def _fmt(v: float) -> str:
    """Render floats Prometheus-style: integers without the '.0'."""
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def _label_str(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{n}="{_escape(v)}"' for n, v in zip(names, values)
    )
    return "{" + pairs + "}"


def _escape(v: str) -> str:
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
