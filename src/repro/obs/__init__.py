"""``repro.obs`` — the live telemetry plane.

Three pieces, all dependency-free:

* :mod:`repro.obs.registry` — ``Counter``/``Gauge``/``Histogram`` with
  bounded label sets and lock-cheap per-thread shards, exposed as
  Prometheus text or stable JSON.
* :mod:`repro.obs.spans` — request-scoped spans carried on
  ``JobRequest`` across gateway → cluster → shard → scheduler, exported
  to a JSON-lines span log and merged into chrome-trace ``group_meta``.
* :mod:`repro.obs.top` — the ``python -m repro.harness top`` renderer
  over the TCP gateway's ``stats``/``metrics`` verbs.

The whole plane sits behind one switch.  :func:`obs_enabled` is
consulted at *construction* time: components capture metric handles and
span recorders when it is on and hold ``None`` otherwise, so a disabled
system pays a single attribute test per instrumented site.  Default is
**on** (the ``obs_overhead`` bench probe gates the cost at <5% of serve
throughput); set the environment variable ``REPRO_OBS=0`` or call
:func:`set_obs_enabled` before building services to switch it off.
"""

from __future__ import annotations

import os

from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    DEFAULT_BUCKETS,
    DEFAULT_MAX_SERIES,
    OVERFLOW_LABEL,
)
from .spans import Span, SpanRecorder, new_span_id, new_trace_id, start_span
from .top import render_top, run_top

__all__ = [
    "render_top",
    "run_top",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_SERIES",
    "OVERFLOW_LABEL",
    "Span",
    "SpanRecorder",
    "new_span_id",
    "new_trace_id",
    "start_span",
    "obs_enabled",
    "set_obs_enabled",
    "global_registry",
    "global_recorder",
    "reset_global_obs",
]

_enabled = os.environ.get("REPRO_OBS", "1") not in ("0", "false", "off")
_registry = MetricsRegistry()
_recorder = SpanRecorder()


def obs_enabled() -> bool:
    """Whether newly-built components should instrument themselves."""
    return _enabled


def set_obs_enabled(on: bool) -> bool:
    """Flip the telemetry switch; returns the *previous* value.

    Affects components built after the call — already-built services
    keep the handles they captured.
    """
    global _enabled
    prev = _enabled
    _enabled = bool(on)
    return prev


def global_registry() -> MetricsRegistry:
    """The process-wide default registry (ad-hoc callers; services may
    own a private one so scrapes reconcile per-run)."""
    return _registry


def global_recorder() -> SpanRecorder:
    """The process-wide default span recorder."""
    return _recorder


def reset_global_obs() -> None:
    """Fresh default registry + recorder (test isolation)."""
    global _registry, _recorder
    _registry = MetricsRegistry()
    _recorder = SpanRecorder()
