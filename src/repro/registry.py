"""Pluggable component registries: the spine of the public API.

Every swappable piece of the runtime — significance policies, execution
engines, cost models, machine models — registers itself in a named
family and becomes resolvable from a plain string *spec*::

    @register("policy", "gtb")
    class GlobalTaskBuffering(Policy): ...

    resolve("policy", "gtb")                    # default construction
    resolve("policy", "gtb:buffer_size=16")     # inline kwargs
    resolve("policy", GlobalTaskBuffering(16))  # instances pass through

Spec grammar: ``name`` or ``name:key=value,key=value``.  Values are
parsed as Python literals (``16``, ``0.5``, ``'s'``, ``true``/``false``,
``none``); anything that does not parse stays a string.  Unknown names
raise :class:`~repro.runtime.errors.RegistryError` listing the known
names; unknown kwargs propagate as the factory's ``TypeError`` —
components never silently discard configuration.

Because specs are strings, every component choice is serializable:
:class:`~repro.config.RuntimeConfig` and
:class:`~repro.experiment.ExperimentSpec` round-trip through JSON and
cross process boundaries for parallel sweeps.
"""

from __future__ import annotations

import ast
from typing import Any, Callable

from .runtime.errors import RegistryError

__all__ = [
    "Registry",
    "register",
    "resolve",
    "parse_spec",
    "format_spec",
    "available",
    "registry_for",
]


def _parse_value(text: str) -> Any:
    low = text.lower()
    if low in ("true", "false"):
        return low == "true"
    if low in ("none", "null"):
        return None
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _split_top_level(text: str) -> list[str]:
    """Split on commas that sit outside quotes and brackets, so literal
    values like ``tag='a,b'`` or ``dims=(2,8)`` survive parsing."""
    parts: list[str] = []
    depth = 0
    quote: str | None = None
    start = 0
    for i, ch in enumerate(text):
        if quote is not None:
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    parts.append(text[start:])
    return parts


def parse_spec(spec: str) -> tuple[str, dict[str, Any]]:
    """Split ``"name:key=value,..."`` into ``(name, kwargs)``.

    >>> parse_spec("gtb:buffer_size=16,drop=true")
    ('gtb', {'buffer_size': 16, 'drop': True})
    """
    if not isinstance(spec, str):
        raise RegistryError(f"spec must be a string, got {type(spec).__name__}")
    name, sep, rest = spec.partition(":")
    name = name.strip()
    if not name:
        raise RegistryError(f"empty component name in spec {spec!r}")
    kwargs: dict[str, Any] = {}
    if sep:
        if not rest.strip():
            raise RegistryError(
                f"malformed spec {spec!r}: nothing after ':'"
            )
        for part in _split_top_level(rest):
            key, eq, value = part.partition("=")
            key = key.strip()
            if not eq or not key.isidentifier():
                raise RegistryError(
                    f"malformed spec {spec!r}: expected key=value, "
                    f"got {part.strip()!r}"
                )
            kwargs[key] = _parse_value(value.strip())
    return name, kwargs


def format_spec(name: str, kwargs: dict[str, Any] | None = None) -> str:
    """Inverse of :func:`parse_spec` (for round-tripping configs)."""
    if not kwargs:
        return name
    return name + ":" + ",".join(f"{k}={v!r}" for k, v in kwargs.items())


class Registry:
    """One named family of components (``policy``, ``engine``, ...)."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: dict[str, Callable[..., Any]] = {}
        self._canonical: dict[str, str] = {}  # normalized alias -> name

    @staticmethod
    def _norm(name: str) -> str:
        return name.strip().lower().replace("_", "-")

    # -- registration ---------------------------------------------------
    def register(
        self, name: str, *aliases: str
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator registering a class or factory under ``name``.

        ``aliases`` resolve to the same factory; re-registering the same
        object is a no-op (module reloads), a different one is an error.
        """

        def deco(factory: Callable[..., Any]) -> Callable[..., Any]:
            for alias in (name, *aliases):
                key = self._norm(alias)
                prior = self._canonical.get(key)
                if prior is not None and self._factories[prior] is not factory:
                    raise RegistryError(
                        f"duplicate {self.kind} name {alias!r} "
                        f"(already registered to "
                        f"{self._factories[prior]!r})"
                    )
                self._canonical[key] = self._norm(name)
            self._factories[self._norm(name)] = factory
            return factory

        return deco

    # -- lookup ---------------------------------------------------------
    def names(self) -> list[str]:
        """Canonical names in registration order."""
        return list(self._factories)

    def factory(self, name: str) -> Callable[..., Any]:
        key = self._canonical.get(self._norm(name))
        if key is None:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; "
                f"known: {', '.join(self.names()) or '(none registered)'}"
            )
        return self._factories[key]

    def create(self, spec: str, /, **overrides: Any) -> Any:
        """Build a component from a spec string plus keyword overrides."""
        name, kwargs = parse_spec(spec)
        kwargs.update(overrides)
        return self.factory(name)(**kwargs)

    def __contains__(self, name: str) -> bool:
        return self._norm(name) in self._canonical

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Registry {self.kind}: {', '.join(self.names())}>"


_registries: dict[str, Registry] = {}


def registry_for(kind: str) -> Registry:
    """The (auto-created) registry of one component family."""
    try:
        return _registries[kind]
    except KeyError:
        reg = _registries[kind] = Registry(kind)
        return reg


def register(
    kind: str, name: str, *aliases: str
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """``@register("policy", "gtb", "gtb32")`` — module-level decorator."""
    return registry_for(kind).register(name, *aliases)


def resolve(kind: str, spec: Any, /, **overrides: Any) -> Any:
    """Turn a spec (or an already-built instance) into a component.

    Non-string ``spec`` values are assumed to be programmatic instances
    and returned untouched — passing ``overrides`` alongside an instance
    is an error, since they could not be applied.
    """
    if not isinstance(spec, str):
        if overrides:
            raise RegistryError(
                f"cannot apply kwargs {sorted(overrides)} to an "
                f"already-built {kind} instance "
                f"({type(spec).__name__})"
            )
        return spec
    return registry_for(kind).create(spec, **overrides)


def available(kind: str | None = None) -> dict[str, list[str]] | list[str]:
    """Registered names — of one kind, or all kinds when ``None``."""
    if kind is not None:
        return registry_for(kind).names()
    return {k: reg.names() for k, reg in _registries.items()}
