"""Run reports: everything an experiment needs from one execution.

A :class:`RunReport` is produced by
:meth:`repro.runtime.scheduler.Scheduler.finish` and carries the three
quantities the paper's Figure 2 plots — execution time, energy, and the
decision mix that determines quality — plus the policy-accuracy metrics
of Table 2 and the queue/dependence counters used in tests and
ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..energy.meter import EnergyReport
from ..sim.trace import ExecutionTrace
from .dependencies import DepStats
from .groups import GroupRecord
from .queues import QueueStats
from .task import ExecutionKind

__all__ = ["GroupSummary", "RunReport"]


@dataclass(frozen=True)
class GroupSummary:
    """Decision statistics for one task group (Table 2 inputs)."""

    name: str
    requested_ratio: float
    spawned: int
    accurate: int
    approximate: int
    dropped: int
    achieved_ratio: float
    ratio_offset: float
    inversion_pct: float

    @classmethod
    def from_record(cls, rec: GroupRecord) -> "GroupSummary":
        return cls(
            name=rec.name,
            requested_ratio=rec.ratio,
            spawned=rec.spawned,
            accurate=rec.accurate_count,
            approximate=rec.approx_count,
            dropped=rec.dropped_count,
            achieved_ratio=rec.achieved_ratio,
            ratio_offset=rec.ratio_offset(),
            inversion_pct=rec.inversion_pct(),
        )


@dataclass
class RunReport:
    """Aggregated outcome of a complete runtime execution."""

    policy: str
    n_workers: int
    makespan_s: float
    energy: EnergyReport
    tasks_total: int
    tasks_by_kind: dict[ExecutionKind, int]
    groups: dict[str, GroupSummary]
    queue_stats: QueueStats
    dep_stats: DepStats
    #: Host wall-clock seconds spent inside task bodies (diagnostic).
    host_seconds: float = 0.0
    #: Full trace; kept for Gantt rendering and DVFS replay.
    trace: ExecutionTrace | None = field(default=None, repr=False)

    # -- Figure 2 convenience ------------------------------------------
    @property
    def energy_j(self) -> float:
        return self.energy.total_j

    @property
    def accurate_tasks(self) -> int:
        return self.tasks_by_kind.get(ExecutionKind.ACCURATE, 0)

    @property
    def approximate_tasks(self) -> int:
        return self.tasks_by_kind.get(ExecutionKind.APPROXIMATE, 0)

    @property
    def dropped_tasks(self) -> int:
        return self.tasks_by_kind.get(ExecutionKind.DROPPED, 0)

    # -- Table 2 convenience ---------------------------------------------
    def mean_ratio_offset(self) -> float:
        groups = [g for g in self.groups.values() if g.spawned]
        if not groups:
            return 0.0
        return sum(g.ratio_offset for g in groups) / len(groups)

    def total_inversion_pct(self) -> float:
        total = sum(
            g.accurate + g.approximate + g.dropped
            for g in self.groups.values()
        )
        if total == 0:
            return 0.0
        weighted = sum(
            g.inversion_pct
            * (g.accurate + g.approximate + g.dropped)
            / 100.0
            for g in self.groups.values()
        )
        return 100.0 * weighted / total

    def summary(self) -> str:
        """Multi-line human-readable digest."""
        kinds = ", ".join(
            f"{k.value}={v}" for k, v in self.tasks_by_kind.items() if v
        )
        lines = [
            f"policy={self.policy} workers={self.n_workers}",
            f"makespan={self.makespan_s:.6f}s "
            f"energy={self.energy_j:.3f}J "
            f"avg_power={self.energy.average_power_w:.1f}W",
            f"tasks: total={self.tasks_total} ({kinds})",
        ]
        for g in self.groups.values():
            lines.append(
                f"  group {g.name}: requested={g.requested_ratio:.2f} "
                f"achieved={g.achieved_ratio:.3f} "
                f"offset={g.ratio_offset:.3f} "
                f"inversions={g.inversion_pct:.2f}%"
            )
        return "\n".join(lines)
