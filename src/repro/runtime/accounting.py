"""The shared accounting core: one bookkeeping substrate for every
execution backend (DESIGN.md section 6).

Every engine — simulated, threaded, process-pool, fault-injecting —
must answer the same questions after a run: which worker ran which task
over which interval, how long the master spent on runtime bookkeeping,
how much host wall-clock went into task bodies, and what all of that
costs in energy under the machine power model.  Before this module the
trace/energy/stats plumbing was re-implemented per engine; now each
backend owns exactly one :class:`AccountingCore` and writes every
observation through it, so adding a backend cannot fork the reporting
schema.

The core is deliberately passive: it validates and records, it never
schedules.  Timestamps are whatever timeline the owning backend uses
(virtual seconds on the simulated machine, wall seconds since engine
start on the threaded and process backends) — the energy integration
and the :class:`~repro.runtime.stats.RunReport` schema are identical
either way, which is what makes backend-swapping a one-string change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..energy.dvfs import DvfsEpoch, energy_with_epochs
from ..energy.meter import EnergyReport, IntervalSampler
from ..sim.trace import ExecutionTrace, Segment
from .errors import EnergyModelError
from .stats import GroupSummary, RunReport
from .task import ExecutionKind, Task

if TYPE_CHECKING:  # pragma: no cover
    from ..energy.machine_model import MachineModel
    from .dependencies import DepStats
    from .groups import GroupRegistry
    from .queues import QueueStats

__all__ = [
    "AccountingCore",
    "AccountingShard",
    "IntervalFeedback",
    "build_run_report",
]


class AccountingShard:
    """Thread-local accounting deltas for one worker (DESIGN.md §12).

    Worker threads on the threaded engine record finished tasks here
    *without holding the engine lock*: the shard buffers
    ``(Segment, host_s)`` tuples via ``list.append`` (atomic under the
    GIL, single writer — this worker's thread), and the master drains
    them into the shared :class:`ExecutionTrace` at barrier points
    (:meth:`AccountingCore.merge_shards`).  ``ExecutionTrace.record``
    imposes no cross-segment time ordering, so deferring the merge is
    observably equivalent to recording inline — every aggregate view
    (energy, utilization, feedback snapshots) reads the trace only from
    the master's serialized context after a merge.
    """

    __slots__ = ("worker", "_buf")

    def __init__(self, worker: int) -> None:
        self.worker = worker
        self._buf: list[tuple[Segment, float | None]] = []

    def record(self, segment: Segment, host_s: float | None) -> None:
        """Buffer one finished-task observation (worker thread side)."""
        self._buf.append((segment, host_s))

    def __len__(self) -> int:
        return len(self._buf)

    def drain(self) -> list[tuple[Segment, float | None]]:
        """Take the buffered deltas (master side).

        Snapshot-then-delete keeps the drain safe against a concurrent
        ``append`` from a worker that has not parked yet: entries
        appended after the length snapshot stay in the buffer for the
        next merge instead of being lost.
        """
        buf = self._buf
        n = len(buf)
        if n == 0:
            return []
        taken = buf[:n]
        del buf[:n]
        return taken


@dataclass(frozen=True)
class IntervalFeedback:
    """One periodic feedback snapshot the accounting core emits.

    The raw observation stream of the online control loop
    (:class:`~repro.tuning.governor.EnergyBudgetGovernor`): what one
    interval cost in energy and what work retired during it, on the
    backend's own timeline.  ``busy_by_kind`` / ``tasks_by_kind`` are
    *interval deltas*; ``cumulative_j`` is exact for all recorded work
    (cumulative differencing, see
    :class:`~repro.energy.meter.IntervalSampler`).
    """

    index: int
    t0: float
    t1: float
    energy_j: float
    cumulative_j: float
    busy_s: float
    busy_by_kind: dict[ExecutionKind, float]
    tasks_by_kind: dict[ExecutionKind, int]


class AccountingCore:
    """Trace, master-time and host-time bookkeeping for one run.

    Owned by exactly one execution backend; all recording methods are
    called from whatever context the backend serializes them in (the
    event loop for the simulated machine, under the engine lock for the
    threaded engine, the master thread for the process pool).
    """

    __slots__ = (
        "trace",
        "dvfs_epochs",
        "_sampler",
        "_snap_index",
        "_snap_seg_cursor",
        "_shards",
    )

    def __init__(self, n_workers: int) -> None:
        self.trace = ExecutionTrace(n_workers)
        # Per-worker delta shards (lazily created by backends that
        # record off the engine lock; merged at barriers).
        self._shards: dict[int, AccountingShard] = {}
        #: Online DVFS switches ``(t, factor)`` in record order; empty
        #: for runs that never touch the frequency knob.  Energy
        #: attribution (:meth:`energy_report`, the feedback sampler and
        #: :func:`build_run_report`) bills each epoch at its own power
        #: point.
        self.dvfs_epochs: list[DvfsEpoch] = []
        # Feedback-snapshot cursor state (created lazily on the first
        # interval_feedback call; most runs never snapshot).
        self._sampler: IntervalSampler | None = None
        self._snap_index = 0
        self._snap_seg_cursor = 0

    # -- recording -----------------------------------------------------
    def record_task(
        self,
        task: Task,
        worker: int,
        start: float,
        end: float,
        kind: ExecutionKind,
        host_s: float | None = None,
    ) -> None:
        """Record one task execution as a busy interval on ``worker``.

        ``host_s`` is the host wall-clock spent inside the task body
        (``None`` when the backend did not measure it); it feeds the
        diagnostic ``host_seconds`` total, never the virtual timeline.
        """
        self.trace.record(
            Segment(worker, start, end, task.tid, kind, task.group)
        )
        if host_s is not None:
            self.trace.host_seconds += host_s

    def add_host_seconds(self, dt: float) -> None:
        """Account host wall-clock spent in task bodies (diagnostic)."""
        self.trace.host_seconds += dt

    def add_master_busy(self, dt: float) -> None:
        """Account ``dt`` seconds of master-side bookkeeping work."""
        self.trace.master_busy += dt

    def record_dvfs(self, t: float, factor: float) -> None:
        """Record an online frequency switch effective from ``t``.

        Epochs must be recorded in time order (the owning backend's
        serialized context guarantees this); redundant switches to the
        factor already in force are coalesced away.
        """
        if factor <= 0:
            raise EnergyModelError(
                f"frequency factor must be > 0: {factor}"
            )
        epochs = self.dvfs_epochs
        if epochs and t < epochs[-1].t:
            raise EnergyModelError(
                f"DVFS epoch at {t} precedes the last epoch "
                f"({epochs[-1].t})"
            )
        if factor == self.current_dvfs_factor:
            return
        epochs.append(DvfsEpoch(t, factor))

    # -- sharded recording (lock-free worker side) ------------------------
    def shard(self, worker: int) -> AccountingShard:
        """The delta shard for ``worker`` (created on first request).

        Handed to a worker thread once at startup; after that the
        worker records into it without synchronization and the master
        calls :meth:`merge_shards` at barriers.
        """
        try:
            return self._shards[worker]
        except KeyError:
            shard = self._shards.setdefault(
                worker, AccountingShard(worker)
            )
            return shard

    def merge_shards(self) -> int:
        """Drain every worker shard into the shared trace (master side).

        Returns the number of segments merged.  Must be called from the
        backend's serialized context — the same discipline as the
        direct recording methods — before any aggregate view (energy,
        feedback snapshot, run report) is read.
        """
        merged = 0
        for shard in self._shards.values():
            for segment, host_s in shard.drain():
                self.trace.record(segment)
                if host_s is not None:
                    self.trace.host_seconds += host_s
                merged += 1
        return merged

    @property
    def current_dvfs_factor(self) -> float:
        """The frequency factor currently in force (1.0 = nominal)."""
        return self.dvfs_epochs[-1].factor if self.dvfs_epochs else 1.0

    # -- aggregate views -------------------------------------------------
    @property
    def n_workers(self) -> int:
        return self.trace.n_workers

    @property
    def master_busy(self) -> float:
        return self.trace.master_busy

    @property
    def host_seconds(self) -> float:
        return self.trace.host_seconds

    @property
    def makespan(self) -> float:
        """Completion time of the last recorded busy interval."""
        return self.trace.makespan

    def busy_by_worker(self) -> list[float]:
        return self.trace.busy_by_worker()

    def utilization(self) -> float:
        return self.trace.utilization()

    # -- energy attribution ----------------------------------------------
    def energy_report(
        self, machine: "MachineModel", window_s: float | None = None
    ) -> EnergyReport:
        """Busy-interval → energy attribution under the power model.

        This is the single place where a backend's busy intervals meet
        the machine power model; see
        :meth:`~repro.energy.meter.EnergyReport.from_trace` for the
        integration itself.  Runs that switched frequency online are
        integrated piecewise so every DVFS epoch is billed at its own
        power point.
        """
        if self.dvfs_epochs:
            return energy_with_epochs(
                self.trace, machine, self.dvfs_epochs, window_s
            )
        return EnergyReport.from_trace(self.trace, machine, window_s)

    # -- periodic feedback -------------------------------------------------
    def interval_feedback(
        self, machine: "MachineModel", t: float
    ) -> IntervalFeedback:
        """Emit one feedback snapshot covering ``(previous sample, t]``.

        The governor's observation channel: interval energy via the
        cumulative-differencing :class:`IntervalSampler` (DVFS-epoch
        aware), plus the busy seconds and task counts of the trace
        segments recorded since the previous snapshot.  Snapshot times
        must be monotone; the owning backend serializes calls exactly
        like the recording methods.  All snapshots of one run must pass
        the same machine-model object — the sampler's incremental
        cursor cannot be rebased onto a different power model mid-run,
        so a swap raises instead of silently corrupting the feedback
        stream (re-counting the whole trace as one interval).
        """
        if self._sampler is None:
            self._sampler = IntervalSampler(
                machine, self.trace, epochs=self.dvfs_epochs
            )
        elif self._sampler.machine is not machine:
            raise EnergyModelError(
                "interval_feedback called with a different machine "
                "model mid-run; pass the same (nominal) model object "
                "for every snapshot of a run"
            )
        interval = self._sampler.sample(t)

        busy_by_kind: dict[ExecutionKind, float] = {}
        tasks_by_kind: dict[ExecutionKind, int] = {}
        segments = self.trace.segments
        for seg in segments[self._snap_seg_cursor:]:
            busy_by_kind[seg.kind] = (
                busy_by_kind.get(seg.kind, 0.0) + seg.duration
            )
            tasks_by_kind[seg.kind] = tasks_by_kind.get(seg.kind, 0) + 1
        self._snap_seg_cursor = len(segments)

        feedback = IntervalFeedback(
            index=self._snap_index,
            t0=t - interval.window_s,
            t1=t,
            energy_j=interval.total_j,
            cumulative_j=self._sampler.cumulative.total_j,
            busy_s=interval.busy_s,
            busy_by_kind=busy_by_kind,
            tasks_by_kind=tasks_by_kind,
        )
        self._snap_index += 1
        return feedback


def build_run_report(
    *,
    policy_name: str,
    n_workers: int,
    trace: ExecutionTrace,
    makespan: float,
    machine: "MachineModel",
    groups: "GroupRegistry",
    queue_stats: "QueueStats",
    dep_stats: "DepStats",
    tasks_total: int,
    dvfs_epochs: list[DvfsEpoch] | None = None,
) -> RunReport:
    """Assemble the canonical :class:`RunReport` from accounting state.

    Every backend's run ends here (via ``Scheduler.finish``), which is
    what guarantees the acceptance property that simulated, threaded and
    process-pool executions produce *schema-identical* reports: the
    report is built from the shared trace/group/queue substrates, never
    from backend-private state.  ``dvfs_epochs`` (from the accounting
    core) switches the energy integration to the piecewise per-frequency
    power model for runs the governor downclocked mid-flight.
    """
    if dvfs_epochs:
        energy = energy_with_epochs(
            trace, machine, dvfs_epochs, window_s=makespan
        )
    else:
        energy = EnergyReport.from_trace(trace, machine, window_s=makespan)
    by_kind = trace.tasks_by_kind()
    # Dropped tasks produce no trace segment on engines that skip their
    # (empty) bodies; count them from the groups' decision logs.
    recorded_drops = by_kind[ExecutionKind.DROPPED]
    logged_drops = sum(g.dropped_count for g in groups)
    by_kind[ExecutionKind.DROPPED] = max(recorded_drops, logged_drops)
    return RunReport(
        policy=policy_name,
        n_workers=n_workers,
        makespan_s=makespan,
        energy=energy,
        tasks_total=tasks_total,
        tasks_by_kind=by_kind,
        groups={g.name: GroupSummary.from_record(g) for g in groups},
        queue_stats=queue_stats,
        dep_stats=dep_stats,
        host_seconds=trace.host_seconds,
        trace=trace,
    )
