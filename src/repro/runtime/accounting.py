"""The shared accounting core: one bookkeeping substrate for every
execution backend (DESIGN.md section 6).

Every engine — simulated, threaded, process-pool, fault-injecting —
must answer the same questions after a run: which worker ran which task
over which interval, how long the master spent on runtime bookkeeping,
how much host wall-clock went into task bodies, and what all of that
costs in energy under the machine power model.  Before this module the
trace/energy/stats plumbing was re-implemented per engine; now each
backend owns exactly one :class:`AccountingCore` and writes every
observation through it, so adding a backend cannot fork the reporting
schema.

The core is deliberately passive: it validates and records, it never
schedules.  Timestamps are whatever timeline the owning backend uses
(virtual seconds on the simulated machine, wall seconds since engine
start on the threaded and process backends) — the energy integration
and the :class:`~repro.runtime.stats.RunReport` schema are identical
either way, which is what makes backend-swapping a one-string change.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..energy.meter import EnergyReport
from ..sim.trace import ExecutionTrace, Segment
from .stats import GroupSummary, RunReport
from .task import ExecutionKind, Task

if TYPE_CHECKING:  # pragma: no cover
    from ..energy.machine_model import MachineModel
    from .dependencies import DepStats
    from .groups import GroupRegistry
    from .queues import QueueStats

__all__ = ["AccountingCore", "build_run_report"]


class AccountingCore:
    """Trace, master-time and host-time bookkeeping for one run.

    Owned by exactly one execution backend; all recording methods are
    called from whatever context the backend serializes them in (the
    event loop for the simulated machine, under the engine lock for the
    threaded engine, the master thread for the process pool).
    """

    __slots__ = ("trace",)

    def __init__(self, n_workers: int) -> None:
        self.trace = ExecutionTrace(n_workers)

    # -- recording -----------------------------------------------------
    def record_task(
        self,
        task: Task,
        worker: int,
        start: float,
        end: float,
        kind: ExecutionKind,
        host_s: float | None = None,
    ) -> None:
        """Record one task execution as a busy interval on ``worker``.

        ``host_s`` is the host wall-clock spent inside the task body
        (``None`` when the backend did not measure it); it feeds the
        diagnostic ``host_seconds`` total, never the virtual timeline.
        """
        self.trace.record(
            Segment(worker, start, end, task.tid, kind, task.group)
        )
        if host_s is not None:
            self.trace.host_seconds += host_s

    def add_host_seconds(self, dt: float) -> None:
        """Account host wall-clock spent in task bodies (diagnostic)."""
        self.trace.host_seconds += dt

    def add_master_busy(self, dt: float) -> None:
        """Account ``dt`` seconds of master-side bookkeeping work."""
        self.trace.master_busy += dt

    # -- aggregate views -------------------------------------------------
    @property
    def n_workers(self) -> int:
        return self.trace.n_workers

    @property
    def master_busy(self) -> float:
        return self.trace.master_busy

    @property
    def host_seconds(self) -> float:
        return self.trace.host_seconds

    @property
    def makespan(self) -> float:
        """Completion time of the last recorded busy interval."""
        return self.trace.makespan

    def busy_by_worker(self) -> list[float]:
        return self.trace.busy_by_worker()

    def utilization(self) -> float:
        return self.trace.utilization()

    # -- energy attribution ----------------------------------------------
    def energy_report(
        self, machine: "MachineModel", window_s: float | None = None
    ) -> EnergyReport:
        """Busy-interval → energy attribution under the power model.

        This is the single place where a backend's busy intervals meet
        the machine power model; see
        :meth:`~repro.energy.meter.EnergyReport.from_trace` for the
        integration itself.
        """
        return EnergyReport.from_trace(self.trace, machine, window_s)


def build_run_report(
    *,
    policy_name: str,
    n_workers: int,
    trace: ExecutionTrace,
    makespan: float,
    machine: "MachineModel",
    groups: "GroupRegistry",
    queue_stats: "QueueStats",
    dep_stats: "DepStats",
    tasks_total: int,
) -> RunReport:
    """Assemble the canonical :class:`RunReport` from accounting state.

    Every backend's run ends here (via ``Scheduler.finish``), which is
    what guarantees the acceptance property that simulated, threaded and
    process-pool executions produce *schema-identical* reports: the
    report is built from the shared trace/group/queue substrates, never
    from backend-private state.
    """
    energy = EnergyReport.from_trace(trace, machine, window_s=makespan)
    by_kind = trace.tasks_by_kind()
    # Dropped tasks produce no trace segment on engines that skip their
    # (empty) bodies; count them from the groups' decision logs.
    recorded_drops = by_kind[ExecutionKind.DROPPED]
    logged_drops = sum(g.dropped_count for g in groups)
    by_kind[ExecutionKind.DROPPED] = max(recorded_drops, logged_drops)
    return RunReport(
        policy=policy_name,
        n_workers=n_workers,
        makespan_s=makespan,
        energy=energy,
        tasks_total=tasks_total,
        tasks_by_kind=by_kind,
        groups={g.name: GroupSummary.from_record(g) for g in groups},
        queue_stats=queue_stats,
        dep_stats=dep_stats,
        host_seconds=trace.host_seconds,
        trace=trace,
    )
