"""Task groups: the ``label()`` / ``ratio()`` machinery.

Groups are the unit of quality control in the programming model: the
``label()`` clause assigns each task to a group, and the ``ratio()``
clause of ``#pragma omp taskwait`` instructs the runtime to execute at
least that fraction of the group's tasks accurately, preferring the most
significant ones (paper section 2).

The paper's compiler lowers the first use of a group to
``tpc_init_group()``, which creates the runtime bookkeeping and conveys
the per-group ratio; :class:`GroupRegistry` plays that role here.

:class:`GroupRecord` also accumulates the decision log that feeds the
policy-accuracy evaluation (paper Table 2): achieved ratio versus
requested ratio and the count of *significance inversions* — tasks that
ran approximately even though a strictly less significant task of the
same group ran accurately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import GroupError, RatioError
from .task import ExecutionKind, Task

__all__ = ["GroupRecord", "GroupRegistry", "GLOBAL_GROUP"]

#: Implicit group holding tasks spawned without a ``label()`` clause.
GLOBAL_GROUP = "__global__"


def _check_ratio(ratio: float) -> float:
    if not 0.0 <= ratio <= 1.0:
        raise RatioError(ratio)
    return float(ratio)


@dataclass(slots=True)
class _DecisionRecord:
    """Immutable trace entry for one executed task."""

    tid: int
    significance: float
    kind: ExecutionKind


@dataclass
class GroupRecord:
    """Runtime bookkeeping for one task group (``tpc_init_group``)."""

    name: str
    ratio: float = 1.0
    #: Tasks spawned into the group so far.
    spawned: int = 0
    #: Tasks that completed (any execution kind).
    completed: int = 0
    #: Decision log, appended as tasks finish.
    decisions: list[_DecisionRecord] = field(default_factory=list)
    #: Barrier epoch — bumped by each taskwait on this group; lets the
    #: statistics distinguish phases (e.g. Fluidanimate's alternating
    #: accurate/approximate timesteps).
    epoch: int = 0
    #: (decision-log mark, requested ratio in force) per closed epoch.
    _epoch_marks: list[tuple[int, float]] = field(default_factory=list)

    def set_ratio(self, ratio: float) -> None:
        self.ratio = _check_ratio(ratio)

    # -- live counters --------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Tasks spawned but not yet completed."""
        return self.spawned - self.completed

    def record(self, task: Task) -> None:
        """Log a finished task's decision."""
        assert task.decision is not None
        self.completed += 1
        self.decisions.append(
            _DecisionRecord(task.tid, task.significance, task.decision)
        )

    def new_epoch(self) -> None:
        """Close the current barrier epoch (called by taskwait).

        Snapshots the ratio that was in force, so phase-structured
        programs (Jacobi's approximate warm-up, Fluidanimate's
        alternating timesteps) are judged per phase against the ratio
        each phase actually requested.
        """
        self._epoch_marks.append((len(self.decisions), self.ratio))
        self.epoch += 1

    # -- Table 2 statistics ----------------------------------------------
    def _epoch_slices(self) -> list[tuple[list[_DecisionRecord], float]]:
        """(decision slice, requested ratio) per barrier epoch."""
        slices: list[tuple[list[_DecisionRecord], float]] = []
        start = 0
        marks = list(self._epoch_marks)
        if not marks or marks[-1][0] != len(self.decisions):
            marks.append((len(self.decisions), self.ratio))
        for mark, ratio in marks:
            if mark > start:
                slices.append((self.decisions[start:mark], ratio))
            start = mark
        return slices

    @property
    def accurate_count(self) -> int:
        return sum(
            1 for d in self.decisions if d.kind is ExecutionKind.ACCURATE
        )

    @property
    def approx_count(self) -> int:
        return sum(
            1 for d in self.decisions if d.kind is ExecutionKind.APPROXIMATE
        )

    @property
    def dropped_count(self) -> int:
        return sum(
            1 for d in self.decisions if d.kind is ExecutionKind.DROPPED
        )

    @property
    def achieved_ratio(self) -> float:
        """Fraction of completed tasks that ran accurately."""
        if not self.decisions:
            return 1.0
        return self.accurate_count / len(self.decisions)

    def ratio_offset(self, requested: float | None = None) -> float:
        """``|requested - achieved|`` per epoch, averaged (Table 2).

        The paper computes the offset per group; within a group we average
        over barrier epochs so that phase-structured programs (Kmeans
        iterations, Fluidanimate timesteps) are judged against the ratio
        that was actually in force during each phase.  ``requested``
        overrides every epoch's snapshot when given.
        """
        if requested is not None:
            _check_ratio(requested)
        slices = self._epoch_slices()
        if not slices:
            return 0.0
        offsets = []
        for sl, epoch_ratio in slices:
            req = epoch_ratio if requested is None else requested
            acc = sum(1 for d in sl if d.kind is ExecutionKind.ACCURATE)
            offsets.append(abs(req - acc / len(sl)))
        return sum(offsets) / len(offsets)

    def inversion_count(self) -> int:
        """Tasks executed approximately although a strictly less
        significant task of the same epoch executed accurately.

        This is the paper's "% Inversed Significance Tasks" numerator: an
        ideal policy approximates only the *least* significant tasks, so
        any approximated task whose significance exceeds the significance
        of some accurately-executed task witnesses an inversion.
        """
        total = 0
        for sl, _ratio in self._epoch_slices():
            acc_sigs = sorted(
                d.significance
                for d in sl
                if d.kind is ExecutionKind.ACCURATE
            )
            if not acc_sigs:
                continue
            min_acc = acc_sigs[0]
            total += sum(
                1
                for d in sl
                if d.kind is not ExecutionKind.ACCURATE
                and d.significance > min_acc
            )
        return total

    def inversion_pct(self) -> float:
        """Inversions as a percentage of completed tasks (Table 2)."""
        if not self.decisions:
            return 0.0
        return 100.0 * self.inversion_count() / len(self.decisions)


class GroupRegistry:
    """All task groups of one runtime instance.

    Mirrors the paper's per-group support structures: created lazily on
    first use (``tpc_init_group``), addressable by label, with a distinct
    implicit group for unlabelled tasks.
    """

    def __init__(self) -> None:
        self._groups: dict[str, GroupRecord] = {}

    def get(self, name: str | None, create: bool = True) -> GroupRecord:
        """Look up (and lazily create) the group for ``name``."""
        label = GLOBAL_GROUP if name is None else name
        rec = self._groups.get(label)
        if rec is None:
            if not create:
                raise GroupError(f"unknown task group {label!r}")
            rec = GroupRecord(label)
            self._groups[label] = rec
        return rec

    def init_group(self, name: str, ratio: float = 1.0) -> GroupRecord:
        """Explicit ``tpc_init_group`` — create/configure a group ratio."""
        rec = self.get(name)
        rec.set_ratio(ratio)
        return rec

    def set_ratio_all(self, ratio: float) -> None:
        """Apply one ratio globally: every existing group plus the
        implicit group (paper section 2: the ratio may be set "either
        globally or in a specific group").  The single home of the
        broadcast semantics, shared by ``taskwait(ratio=...)`` and the
        governor's :meth:`~repro.runtime.policies.base.Policy
        .set_ratio`.
        """
        self.get(None).set_ratio(ratio)
        for rec in self:
            rec.set_ratio(ratio)

    def __contains__(self, name: str) -> bool:
        return name in self._groups

    def __iter__(self):
        return iter(self._groups.values())

    def __len__(self) -> int:
        return len(self._groups)

    def names(self) -> list[str]:
        return list(self._groups)

    def outstanding(self, name: str | None = None) -> int:
        """Outstanding tasks in one group, or across all groups."""
        if name is not None:
            return self.get(name, create=False).outstanding
        return sum(g.outstanding for g in self._groups.values())

    # -- aggregate Table 2 metrics ---------------------------------------
    def mean_ratio_offset(self) -> float:
        """Average ratio offset over groups (the paper's ``ratio_diff``)."""
        groups = [g for g in self._groups.values() if g.decisions]
        if not groups:
            return 0.0
        return sum(g.ratio_offset() for g in groups) / len(groups)

    def total_inversion_pct(self) -> float:
        """Significance-inverted tasks as % of all completed tasks."""
        total = sum(len(g.decisions) for g in self._groups.values())
        if total == 0:
            return 0.0
        inv = sum(g.inversion_count() for g in self._groups.values())
        return 100.0 * inv / total
