"""Exception hierarchy for the significance-aware runtime.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch the whole family with a single ``except`` clause, mirroring
how the paper's C runtime reports errors through a single ``tpc_error``
channel.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "RegistryError",
    "ConfigError",
    "SignificanceError",
    "RatioError",
    "GroupError",
    "DependenceError",
    "SchedulerError",
    "PolicyError",
    "CostModelError",
    "EnergyModelError",
    "CompilerError",
    "DirectiveSyntaxError",
    "LoweringError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro runtime."""


class RegistryError(ReproError, ValueError):
    """A component spec could not be parsed or resolved by the registry."""


class SchedulerError(ReproError):
    """The scheduler was driven through an illegal state transition."""


class ConfigError(SchedulerError, ValueError):
    """A :class:`~repro.config.RuntimeConfig` carries invalid values."""


class SignificanceError(ReproError, ValueError):
    """A task significance value lies outside the closed range [0.0, 1.0]."""

    def __init__(self, value: float) -> None:
        super().__init__(
            f"task significance must lie in [0.0, 1.0], got {value!r}"
        )
        self.value = value


class RatioError(ReproError, ValueError):
    """A taskwait/group ratio value lies outside the closed range [0.0, 1.0]."""

    def __init__(self, value: float) -> None:
        super().__init__(f"ratio must lie in [0.0, 1.0], got {value!r}")
        self.value = value


class GroupError(ReproError):
    """A task group was used inconsistently (e.g. waiting on an unknown label)."""


class DependenceError(ReproError):
    """Invalid dataflow clause (e.g. unhashable handle, self-dependence cycle)."""


class PolicyError(ReproError):
    """A policy was configured with invalid parameters."""


class CostModelError(ReproError):
    """A task cost specification is invalid (e.g. negative work)."""


class EnergyModelError(ReproError):
    """The machine/energy model was configured with invalid parameters."""


class CompilerError(ReproError):
    """Base class for pragma front-end errors."""


class LoweringError(CompilerError):
    """The pragma front-end rejected a directive.

    Umbrella error for the lowering pipeline: it covers both malformed
    directives (:class:`DirectiveSyntaxError`) and well-formed ones
    that cannot be attached to a statement, so callers can gate the
    whole front-end with one ``except LoweringError``.  Messages carry
    the offending source line.
    """


class DirectiveSyntaxError(LoweringError, SyntaxError):
    """A ``#pragma`` directive could not be parsed."""

    def __init__(self, message: str, line: int | None = None) -> None:
        loc = f" (line {line})" if line is not None else ""
        super().__init__(f"{message}{loc}")
        self.line = line
