"""The significance-aware scheduler: the runtime's front door.

:class:`Scheduler` ties together every substrate in the library — task
groups (``label``/``ratio``), dependence tracking (``in``/``out``),
the significance policy (GTB / LQH / ...), the execution engine
(simulated machine, real threads, or a process pool) and the energy
model — and exposes
the three operations the paper's compiler lowers pragmas to:

* ``spawn``     ≙ ``#pragma omp task ...``  (``tpc_call``)
* ``taskwait``  ≙ ``#pragma omp taskwait [label|on] [ratio]``
  (``tpc_wait_all`` / ``tpc_wait_group``)
* ``init_group``≙ ``tpc_init_group`` (per-group accurate-task ratio)

A scheduler instance executes one program run and then yields a
:class:`~repro.runtime.stats.RunReport` via :meth:`finish`.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable

from ..config import RuntimeConfig
from ..energy.cost import CostModel
from ..energy.machine_model import MachineModel
from .accounting import build_run_report
from .dependencies import DependenceTracker
from .engine import ExecutionBackend
from .errors import SchedulerError
from .groups import GroupRegistry
from .policies.base import Policy
from .stats import RunReport
from .task import Task, TaskCost, TaskState, ref, task_slab

__all__ = ["Scheduler"]

#: Sentinel distinguishing "no group cached" from the valid label None.
_NO_GROUP = object()


class Scheduler:
    """One run of the significance-aware runtime.

    Parameters
    ----------
    config:
        A :class:`~repro.config.RuntimeConfig` describing the whole
        instantiation.  The remaining keywords are per-field overrides
        (and work standalone, building an implicit config), so
        ``Scheduler(policy="gtb:buffer_size=16", engine="threaded")``
        and ``Scheduler(RuntimeConfig(...))`` are equivalent fronts.
    policy:
        Accurate/approximate decision policy — a registry spec string
        (``"gtb"``, ``"gtb:buffer_size=16"``, ``"lqh"``, ``"oracle"``)
        or a :class:`Policy` instance; defaults to the significance-
        agnostic baseline (everything accurate).
    n_workers:
        Worker cores; the paper's evaluation uses 16.
    machine:
        Machine performance/power model spec or instance; defaults to
        the Xeon E5-2650 model resized to ``n_workers`` cores.
    cost_model:
        Task-duration strategy spec or instance (default ``"hybrid"``:
        analytic when tasks carry costs, measured wall time otherwise).
    engine:
        ``"simulated"`` (default), ``"threaded"``, ``"process"``,
        ``"sequential"``, or an :class:`~repro.runtime.engine
        .ExecutionBackend` instance.
    governor:
        Optional online energy controller
        (``"governor:budget_j=1.2,interval=0.001"`` or an
        :class:`~repro.tuning.governor.EnergyBudgetGovernor`
        instance); it observes periodic energy/quality feedback and
        adjusts the effective ratio / DVFS state while the run
        executes.
    retain_tasks:
        Keyword-only.  When False the scheduler does not keep spawned
        descriptors on :attr:`tasks`, and :meth:`release_tasks` may
        recycle them through the process-wide
        :class:`~repro.runtime.task.TaskSlab` once their results are
        harvested — the long-lived service path.  Default True.
    """

    def __init__(
        self,
        config: RuntimeConfig | Policy | None = None,
        n_workers: int | None = None,
        machine: MachineModel | str | None = None,
        cost_model: CostModel | str | None = None,
        engine: str | ExecutionBackend | None = None,
        policy: Policy | str | None = None,
        governor: Any = None,
        *,
        retain_tasks: bool = True,
        metrics: Any = None,
    ) -> None:
        if config is not None and not isinstance(config, RuntimeConfig):
            # Compat shim: the first parameter used to be the policy
            # (``Scheduler(GlobalTaskBuffering(16), 8)``).
            if policy is not None:
                raise SchedulerError(
                    "got two policies: a positional one (legacy) and "
                    "policy=; pass a RuntimeConfig or policy=, not both"
                )
            warnings.warn(
                "passing the policy as the first positional argument is "
                "deprecated; use Scheduler(policy=...) or a RuntimeConfig",
                DeprecationWarning,
                stacklevel=2,
            )
            policy, config = config, None

        cfg = config if config is not None else RuntimeConfig()
        overrides = {
            name: value
            for name, value in (
                ("policy", policy),
                ("n_workers", n_workers),
                ("machine", machine),
                ("cost_model", cost_model),
                ("engine", engine),
                ("governor", governor),
            )
            if value is not None
        }
        if overrides:
            cfg = cfg.replace(**overrides)
        self.config = cfg

        self.policy = cfg.build_policy()
        self.machine_model = cfg.build_machine()
        self.cost_model = cfg.build_cost_model()
        self.groups = GroupRegistry()
        self.deps = DependenceTracker()
        self._tasks: list[Task] = []
        #: When False the scheduler keeps no reference to spawned tasks
        #: (``self.tasks`` stays empty) and callers may recycle their
        #: descriptors via :meth:`release_tasks` after harvesting
        #: results — the long-lived serve path, where retaining every
        #: descriptor for the process lifetime would be an unbounded
        #: leak.  Must stay True when anything samples ``tasks`` after
        #: the fact (the governor's cost priors do).
        self._retain_tasks = retain_tasks
        self._finished = False
        self.report: RunReport | None = None
        #: O(1) material for the global barrier predicate (evaluated
        #: once per simulation event).  Two counters rather than one so
        #: each has a single writer — ``_spawned_total`` is only ever
        #: touched by the master thread (spawn), ``_completed_total``
        #: only by the execution side (_on_task_finished, which the
        #: threaded engine serializes under its lock) — keeping the
        #: ThreadedEngine free of read-modify-write races.
        self._spawned_total = 0
        self._completed_total = 0
        #: Tasks released toward the workers (master-side writer only);
        #: the stall handler compares before/after a flush instead of
        #: scanning task states.
        self._issued_total = 0
        # Spawn-path decision tables: the policy's constant per-spawn
        # overhead (None -> per-task method call) and a one-entry group
        # lookup cache (task streams overwhelmingly repeat labels).
        # The cache is master-thread-only state: spawn() is its sole
        # user; worker-side callbacks go through the registry directly.
        self._spawn_overhead_const = self.policy.spawn_overhead_const
        self._group_label: Any = _NO_GROUP
        self._group_rec = None

        #: Telemetry handles: populated when a caller wires a
        #: :class:`~repro.obs.MetricsRegistry` down (the serve layer
        #: passes its own so scheduler counters land beside job
        #: metrics) and observability is enabled; ``None`` otherwise.
        #: The per-task paths (spawn/issue/finish) stay telemetry-free
        #: either way: the counters are fed *deltas* of the inline
        #: totals above at each barrier (:meth:`_obs_sync`), so the
        #: whole plane costs one sync per taskwait, not one increment
        #: per task.
        self._m_spawned = None
        self._m_completed = None
        self._m_issued = None
        self._m_barriers = None
        self._obs_spawned_seen = 0
        self._obs_completed_seen = 0
        self._obs_issued_seen = 0
        if metrics is not None:
            from ..obs import obs_enabled

            if obs_enabled():
                self._m_spawned = metrics.counter(
                    "repro_sched_tasks_spawned_total",
                    "Tasks spawned into the scheduler.",
                )
                self._m_completed = metrics.counter(
                    "repro_sched_tasks_completed_total",
                    "Tasks retired by the engine.",
                )
                self._m_issued = metrics.counter(
                    "repro_sched_tasks_issued_total",
                    "Tasks released toward worker queues.",
                )
                self._m_barriers = metrics.counter(
                    "repro_sched_barriers_total",
                    "taskwait barriers executed.",
                )

        self.policy.attach(self)
        self.engine: ExecutionBackend = cfg.build_engine(
            self.machine_model,
            self.cost_model,
            self.policy,
            self._on_task_finished,
            self._on_stall,
        )
        #: Optional online energy controller; binding installs its
        #: periodic tick on the engine timeline.
        self.governor = cfg.build_governor()
        if self.governor is not None:
            self.governor.bind(self)
            if metrics is not None and self._m_spawned is not None:
                self.governor.obs_bind(metrics, scope="_run")
        #: Optional compile tier (``RuntimeConfig.compile``): a
        #: :class:`~repro.compiler.specialize.KernelSpecializer` when
        #: the config says ``"specialize"``, else ``None``.  Kernel
        #: drivers branch on it to fold the significance decision and
        #: spawn compiled chunk bodies via :meth:`spawn_specialized`.
        self.specializer = cfg.build_compile()

    # ------------------------------------------------------------------
    # Program-facing operations (the pragma lowerings)
    # ------------------------------------------------------------------
    def init_group(self, label: str, ratio: float = 1.0):
        """``tpc_init_group``: create a group and set its accurate ratio."""
        return self.groups.init_group(label, ratio)

    def _group_for(self, label: str | None):
        """Group lookup through the one-entry spawn cache.

        Master-thread only (see ``__init__``): calling this from an
        engine callback would race the cache under the threaded engine.
        """
        if label == self._group_label:
            return self._group_rec
        rec = self.groups.get(label)
        self._group_label = label
        self._group_rec = rec
        return rec

    def spawn(
        self,
        fn: Callable[..., Any],
        *args: Any,
        significance: float = 1.0,
        approxfun: Callable[..., Any] | None = None,
        label: str | None = None,
        in_: tuple | list = (),
        out: tuple | list = (),
        cost: TaskCost | None = None,
        **kwargs: Any,
    ) -> Task:
        """Create one task (``#pragma omp task``) and hand it to the
        policy/engine.  Returns the task descriptor.

        ``in_``/``out`` accept raw objects or :class:`DataRef`; raw
        objects are converted with :func:`repro.runtime.task.ref`.
        """
        if self._finished:
            raise SchedulerError("scheduler already finished")
        task = task_slab().acquire(
            fn,
            args,
            kwargs,
            significance,
            approxfun,
            label,
            tuple(ref(o) for o in in_) if in_ else (),
            tuple(ref(o) for o in out) if out else (),
            cost,
        )
        group = self._group_for(label)
        task.group_seq = group.spawned
        group.spawned += 1
        self._spawned_total += 1

        engine = self.engine
        task.t_created = engine.master_time
        overhead = self._spawn_overhead_const
        engine.master_charge(
            self.policy.spawn_overhead(task) if overhead is None else overhead
        )
        self.deps.register(task)
        if self._retain_tasks:
            self._tasks.append(task)

        if not self.policy.on_spawn(task):
            self.issue(task)
        return task

    def spawn_many(
        self,
        fn: Callable[..., Any],
        args_list: Any,
        *,
        significance: float | Callable[..., float] = 1.0,
        approxfun: Callable[..., Any] | None = None,
        label: str | None = None,
        in_: Any = (),
        out: Any = (),
        cost: TaskCost | Callable[..., TaskCost] | None = None,
        kwargs: dict | None = None,
    ) -> list[Task]:
        """Batched :meth:`spawn`: one call for a whole iteration space.

        ``args_list`` yields one positional-argument tuple per task
        (bare non-tuple elements are wrapped).  ``significance``,
        ``in_``, ``out`` and ``cost`` are either constants applied to
        every task or callables evaluated per element over its
        arguments (positional plus the shared ``kwargs``) — the same
        clause convention as :func:`repro.api.sig_task`.

        The batch path amortizes the per-task spawn costs the bench
        probes identified as dominant on the master timeline: one group
        lookup, one policy classification pass
        (:meth:`~repro.runtime.policies.base.Policy.on_spawn_many`),
        one master-overhead charge, one dependence-tracker pass, and
        one engine admission
        (:meth:`~repro.runtime.engine.Engine.enqueue_many` — a single
        simulation event instead of one per task).  All tasks in the
        batch share one creation timestamp, as befits a single runtime
        call.
        """
        if self._finished:
            raise SchedulerError("scheduler already finished")
        sig_fn = significance if callable(significance) else None
        cost_fn = (
            cost
            if callable(cost) and not isinstance(cost, TaskCost)
            else None
        )
        in_fn = in_ if callable(in_) else None
        out_fn = out if callable(out) else None
        # Constant clauses resolve to one shared tuple up front.
        const_ins = () if in_fn else tuple(ref(o) for o in (in_ or ()))
        const_outs = () if out_fn else tuple(ref(o) for o in (out or ()))
        kw = kwargs if kwargs is not None else {}

        tasks: list[Task] = []
        has_deps = bool(const_ins or const_outs)
        slab = task_slab()
        for args in args_list:
            if not isinstance(args, tuple):
                args = (args,)
            task = slab.acquire(
                fn,
                args,
                kw,
                sig_fn(*args, **kw) if sig_fn else significance,
                approxfun,
                label,
                (
                    tuple(ref(o) for o in in_fn(*args, **kw))
                    if in_fn
                    else const_ins
                ),
                (
                    tuple(ref(o) for o in out_fn(*args, **kw))
                    if out_fn
                    else const_outs
                ),
                cost_fn(*args, **kw) if cost_fn else cost,
            )
            if task.ins or task.outs:
                has_deps = True
            tasks.append(task)
        n = len(tasks)
        if n == 0:
            return tasks

        group = self._group_for(label)
        seq = group.spawned
        for i, task in enumerate(tasks):
            task.group_seq = seq + i
        group.spawned += n
        self._spawned_total += n

        engine = self.engine
        t_created = engine.master_time
        for task in tasks:
            task.t_created = t_created
        overhead = self._spawn_overhead_const
        engine.master_charge(
            overhead * n
            if overhead is not None
            else sum(self.policy.spawn_overhead(t) for t in tasks)
        )
        if has_deps:
            self.deps.register_many(tasks)
        else:
            self.deps.count_roots(n)
        if self._retain_tasks:
            self._tasks.extend(tasks)

        to_issue = self.policy.on_spawn_many(tasks)
        if to_issue:
            self.issue_many(to_issue)
        return tasks

    def spawn_specialized(self, plan: Any, *, label: str | None = None):
        """Spawn a compile-tier :class:`SpecializedPlan`'s chunk tasks.

        Each chunk is one forced-accurate task (``significance=1.0``,
        so every buffering policy issues it as-is — the significance
        decision was already folded into the plan) running a compiled
        branch-free body over its members; the chunk's
        :class:`~repro.runtime.task.TaskCost` carries the summed
        member work, so energy/time accounting matches the
        interpreted spawn path.  Returns the chunk tasks in plan
        order — exactly what ``plan.gather`` expects.
        """
        tasks: list[Task] = []
        for batch in plan.batches:
            costs = batch.costs
            tasks.extend(
                self.spawn_many(
                    batch.body,
                    batch.args_list,
                    significance=1.0,
                    label=label,
                    cost=lambda members, cid, _costs=costs: _costs[cid],
                )
            )
        return tasks

    def taskwait(
        self,
        label: str | None = None,
        on: Any | None = None,
        ratio: float | None = None,
    ) -> float:
        """``#pragma omp taskwait [label(...)] [on(...)] [ratio(...)]``.

        Returns the (virtual) time at which the barrier completed.
        """
        if self._finished:
            raise SchedulerError("scheduler already finished")
        if ratio is not None:
            if label is not None:
                self.groups.get(label).set_ratio(ratio)
            else:
                self.groups.set_ratio_all(ratio)

        if on is not None:
            # Wait on a data object: flush everything (conservative —
            # any buffered task might affect the object), then wait for
            # the tasks currently known to touch it.
            self.policy.on_barrier(None)
            waiters = list(self.deps.waiters_on(ref(on)))

            def predicate() -> bool:
                return all(
                    t.state is TaskState.FINISHED for t in waiters
                )

            desc = f"taskwait on({ref(on)!r})"
        elif label is not None:
            self.policy.on_barrier(label)
            group = self.groups.get(label)

            def predicate() -> bool:
                return group.outstanding == 0

            desc = f"taskwait label({label})"
        else:
            self.policy.on_barrier(None)

            def predicate() -> bool:
                # O(1) equivalent of ``groups.outstanding() == 0``:
                # every spawn/finish maintains the two counters.
                return self._completed_total == self._spawned_total

            desc = "taskwait (global)"

        self.engine.master_charge(self.policy.barrier_overhead(label))
        t = self.engine.run_until(predicate, desc)
        if self._m_barriers is not None:
            self._m_barriers.inc()
            self._obs_sync()

        # Barrier epochs delimit phases for the Table 2 statistics.
        if label is not None:
            self.groups.get(label).new_epoch()
        elif on is None:
            for g in self.groups:
                g.new_epoch()
        return t

    def _obs_sync(self) -> None:
        """Feed the task counters the deltas of the inline totals.

        Runs on the master thread after a barrier's ``run_until``
        returned, so ``_completed_total`` (worker-side writer) is
        quiescent.  Batching here keeps spawn/issue/finish — the
        per-task hot paths — free of any telemetry cost.
        """
        d = self._spawned_total - self._obs_spawned_seen
        if d:
            self._m_spawned.inc(d)
            self._obs_spawned_seen = self._spawned_total
        d = self._completed_total - self._obs_completed_seen
        if d:
            self._m_completed.inc(d)
            self._obs_completed_seen = self._completed_total
        d = self._issued_total - self._obs_issued_seen
        if d:
            self._m_issued.inc(d)
            self._obs_issued_seen = self._issued_total

    # ------------------------------------------------------------------
    # Controller-facing introspection (the governor's observation API)
    # ------------------------------------------------------------------
    @property
    def outstanding_tasks(self) -> int:
        """Tasks spawned but not yet finished — a controller's
        "remaining work" universe (tasks not yet spawned are invisible
        until they arrive)."""
        return self._spawned_total - self._completed_total

    @property
    def tasks(self) -> list[Task]:
        """Every task spawned so far, in spawn order (read-only: treat
        the list and the tasks as observation material).  Empty when
        the scheduler was built with ``retain_tasks=False``."""
        return self._tasks

    @property
    def retains_tasks(self) -> bool:
        """Whether spawned descriptors are kept on :attr:`tasks`."""
        return self._retain_tasks

    def release_tasks(self, tasks: list[Task]) -> int:
        """Recycle finished task descriptors through the process slab.

        Only legal on a ``retain_tasks=False`` scheduler (otherwise the
        descriptors are still reachable through :attr:`tasks` and
        recycling would corrupt observation material).  Callers must
        have harvested ``task.result`` first; returns the number of
        slots actually recycled.
        """
        if self._retain_tasks:
            raise SchedulerError(
                "release_tasks requires retain_tasks=False; this "
                "scheduler still holds every descriptor on .tasks"
            )
        return task_slab().release_many(tasks)

    # ------------------------------------------------------------------
    # Policy-facing operations
    # ------------------------------------------------------------------
    def issue(self, task: Task, at_creation_time: bool = False) -> None:
        """Release a task from the master/policy toward the workers.

        Dependence-free tasks enter the queue fabric immediately; others
        park in ``PENDING`` until their predecessors retire.
        """
        if task.unmet_deps == 0:
            # Mark released immediately; the engine's enqueue event will
            # place it on a concrete worker queue at its virtual time.
            task.state = TaskState.QUEUED
            self._issued_total += 1
            at = task.t_created if at_creation_time else None
            self.engine.enqueue(task, at=at)
        else:
            task.state = TaskState.PENDING

    def issue_many(self, tasks: list[Task]) -> None:
        """Batched :meth:`issue`: one engine admission for all ready
        tasks (used by ``spawn_many`` and the GTB flush path)."""
        ready: list[Task] = []
        for task in tasks:
            if task.unmet_deps == 0:
                task.state = TaskState.QUEUED
                ready.append(task)
            else:
                task.state = TaskState.PENDING
        if ready:
            self._issued_total += len(ready)
            self.engine.enqueue_many(ready)

    def charge_master(self, work_units: float) -> None:
        """Account master-side policy work (e.g. the GTB sort)."""
        self.engine.master_charge(work_units)

    # ------------------------------------------------------------------
    # Engine callbacks
    # ------------------------------------------------------------------
    def _on_task_finished(self, task: Task, now: float) -> None:
        # No _group_for here: this callback runs on worker threads under
        # the threaded engine, and the spawn cache is master-only state.
        self.groups.get(task.group).record(task)
        self._completed_total += 1
        if task.successors:
            for succ in self.deps.retire(task):
                if succ.state is TaskState.PENDING:
                    self.engine.enqueue(succ, at=now)
                # BUFFERED successors stay with the policy until flushed.

    def _on_stall(self) -> bool:
        """Last-resort unblocking: flush every policy buffer.

        Returns True when the flush produced runnable work.  This guards
        against programs that wait on group A while group B's buffered
        tasks hold A's dependences.
        """
        before = self._issued_total
        self.policy.on_barrier(None)
        return self._issued_total > before

    # ------------------------------------------------------------------
    # Run completion
    # ------------------------------------------------------------------
    def finish(self) -> RunReport:
        """Global barrier + engine shutdown; build the run report."""
        if self._finished:
            raise SchedulerError("scheduler already finished")
        self.taskwait()  # global barrier (flushes all buffers)
        trace, makespan = self.engine.finish()
        self._finished = True

        # One report schema for every backend: assembly lives in the
        # shared accounting module, not in any engine.
        self.report = build_run_report(
            policy_name=self.policy.describe(),
            n_workers=self.engine.n_workers,
            trace=trace,
            makespan=makespan,
            machine=self.machine_model,
            groups=self.groups,
            queue_stats=self.engine.queue_stats,
            dep_stats=self.deps.stats,
            tasks_total=self._spawned_total,
            dvfs_epochs=self.engine.accounting.dvfs_epochs,
        )
        return self.report

    # ------------------------------------------------------------------
    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Like Runtime.__exit__, keep the run's outcome on self.report
        # rather than dropping the return value of finish().
        if exc_type is None and not self._finished:
            self.finish()
