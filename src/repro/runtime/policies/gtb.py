"""Global Task Buffering (GTB) — paper section 3.3, Listing 4.

"The master thread buffers a number of tasks as it creates them,
postponing the issue of the tasks in the worker queues.  When the buffer
is full, or when a call to tpc_wait_all() or tpc_wait_group() is made,
the tasks in the buffer are analyzed and sorted by significance.  Given a
per-group ratio of accurate tasks R_g, and a number of B tasks in the
buffer, then the R_g * B tasks with the highest significance level are
executed accurately."

Buffers are replicated per task group, exactly as in Listing 4 ("The
variables described ... are replicated over all task groups").

Two flavours appear in the evaluation:

* ``GTB(buffer_size=B)`` — the user-defined window; tasks start executing
  before the group is fully spawned, so decisions may be locally
  suboptimal but issue latency stays low.
* ``GTB(buffer_size=None)`` (the paper's *Max Buffer* / *Max Window*
  variant, :func:`gtb_max_buffer`) — buffer until the barrier, which
  yields the fully correct accurate/approximate split at the price of
  delaying all issues behind task creation (visible as overhead for
  fine-grained tasks, cf. Figure 4, DCT).
"""

from __future__ import annotations

import math
from collections import defaultdict

from ...registry import register
from ..errors import PolicyError
from ..task import ExecutionKind, Task, TaskState
from .base import Policy, PolicyOverheads, resolve_drop

__all__ = ["GlobalTaskBuffering", "gtb_max_buffer"]


@register("policy", "gtb")
class GlobalTaskBuffering(Policy):
    """Buffer-and-sort policy choosing task accuracy globally (per group).

    Parameters
    ----------
    buffer_size:
        Number of tasks buffered per group before a flush is forced.
        ``None`` buffers without bound until the next barrier (the
        paper's *Max Buffer* configuration).
    """

    spawn_overhead_const = (
        PolicyOverheads.SPAWN_BASE + PolicyOverheads.BUFFER_APPEND
    )
    decide_overhead_const = PolicyOverheads.STAMP_READ

    def __init__(self, buffer_size: int | None = 32) -> None:
        super().__init__()
        if buffer_size is not None and buffer_size < 1:
            raise PolicyError(
                f"GTB buffer size must be >= 1 or None, got {buffer_size}"
            )
        self.buffer_size = buffer_size
        self.name = "GTB-MaxBuffer" if buffer_size is None else "GTB"
        self._buffers: dict[str | None, list[Task]] = defaultdict(list)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._buffers.clear()

    def on_spawn(self, task: Task) -> bool:
        """Buffer the task; flush its group's buffer when full."""
        buf = self._buffers[task.group]
        buf.append(task)
        task.state = TaskState.BUFFERED
        if self.buffer_size is not None and len(buf) >= self.buffer_size:
            self._flush(task.group)
        return True

    def on_barrier(self, group: str | None) -> None:
        """Flush the named group's buffer (or all buffers on a global wait)."""
        if group is not None:
            self._flush(group)
        else:
            for g in list(self._buffers):
                self._flush(g)

    # ------------------------------------------------------------------
    def _flush(self, group: str | None) -> None:
        """Sort buffered tasks, stamp decisions, and issue them.

        Implements Listing 4's ``flush_buffer``: the ``ceil(R_g * B)``
        most significant tasks are stamped accurate, the rest
        approximate.  Tasks whose significance is the forced value 1.0
        count toward (and may exceed) the accurate quota; forced-0.0
        tasks never consume quota.
        """
        buf = self._buffers.get(group)
        if not buf:
            return
        self._buffers[group] = []

        ratio = self.scheduler.groups.get(group).ratio
        # Stable sort: ties keep spawn order, matching the deterministic
        # behaviour the paper relies on for Kmeans ("GTB policies behave
        # deterministically, therefore always selecting tasks
        # corresponding to specific objects for accurate executions").
        ordered = sorted(
            buf, key=lambda t: t.significance, reverse=True
        )
        quota = math.ceil(ratio * len(ordered) - 1e-12)
        accurate = 0
        for task in ordered:
            forced = self.forced_kind(task)
            if forced is not None:
                task.decision = forced
                if forced is ExecutionKind.ACCURATE:
                    accurate += 1
                continue
            if accurate < quota:
                task.decision = ExecutionKind.ACCURATE
                accurate += 1
            else:
                task.decision = resolve_drop(
                    task, ExecutionKind.APPROXIMATE
                )

        # Charge the master for the analyze+sort pass, then issue in the
        # original spawn order (the queue fabric round-robins them); the
        # batched issue admits the whole flush in one engine event.
        self.scheduler.charge_master(self._sort_work(len(buf)))
        self.scheduler.issue_many(buf)

    @staticmethod
    def _sort_work(n: int) -> float:
        if n <= 1:
            return PolicyOverheads.SORT_PER_ELEMENT
        return PolicyOverheads.SORT_PER_ELEMENT * n * math.log2(n)

    # ------------------------------------------------------------------
    def decide(self, task: Task, worker: int) -> ExecutionKind:
        """Decisions are pre-stamped at flush time; just read the stamp."""
        if task.decision is None:
            raise PolicyError(
                f"GTB task {task.tid} reached a worker without a stamp"
            )
        return task.decision

    # -- overhead model ----------------------------------------------------
    def spawn_overhead(self, task: Task) -> float:
        return PolicyOverheads.SPAWN_BASE + PolicyOverheads.BUFFER_APPEND

    def decide_overhead(self, task: Task) -> float:
        return PolicyOverheads.STAMP_READ

    def describe(self) -> str:
        b = "max" if self.buffer_size is None else str(self.buffer_size)
        return f"{self.name}(B={b})"


@register("policy", "gtb-max", "gtbmax", "max-buffer", "gtb-mb")
def gtb_max_buffer() -> GlobalTaskBuffering:
    """The paper's *Max Buffer* GTB: flush only at synchronization barriers."""
    return GlobalTaskBuffering(buffer_size=None)
