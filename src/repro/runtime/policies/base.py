"""Policy interface: deciding accurate vs. approximate execution.

The runtime's job is "to selectively execute a subset of the tasks
approximately while respecting the constraints given by the programmer"
(paper section 3.2).  A :class:`Policy` observes tasks at two points:

* **spawn time** (master thread) — :meth:`Policy.on_spawn` may absorb the
  task into a buffer (GTB) instead of letting the scheduler issue it;
  :meth:`Policy.on_barrier` flushes such buffers.
* **execution time** (worker) — :meth:`Policy.decide` chooses
  :class:`~repro.runtime.task.ExecutionKind` for tasks that were not
  pre-stamped at spawn time (LQH).

Policies also expose an *overhead model*: abstract work units charged to
the master per spawned/flushed task and to the worker per decision.  The
simulated engine turns these into virtual time, which is what the paper's
Figure 4 measures (policy overhead relative to a significance-agnostic
runtime).

Special significance values (paper section 2): ``1.0`` forces accurate
execution and ``0.0`` forces approximate execution, unconditionally.
Every policy honours them through :meth:`Policy.resolve_special` /
:func:`resolve_drop`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from ..errors import PolicyError
from ..task import ExecutionKind, Task

if TYPE_CHECKING:  # pragma: no cover
    from ..scheduler import Scheduler

__all__ = ["Policy", "PolicyOverheads", "resolve_drop"]


def resolve_drop(task: Task, kind: ExecutionKind) -> ExecutionKind:
    """Turn APPROXIMATE into DROPPED for tasks without an ``approxfun``.

    Paper section 2: "If a task is selected by the runtime system to be
    executed approximately, and the programmer has not supplied an
    approxfun version, it is simply dropped by the runtime."
    """
    if kind is ExecutionKind.APPROXIMATE and task.droppable:
        return ExecutionKind.DROPPED
    return kind


class PolicyOverheads:
    """Abstract work units modelling a policy's bookkeeping costs.

    Calibrated so that, on the default machine model, the significance-
    aware runtime adds the low-single-digit-percent overheads reported in
    the paper's Figure 4 (worst case ~7% for DCT under GTB Max Buffer).
    """

    #: Master-side work to create + enqueue one task descriptor
    #: (~50 ns at 2 GOPS — BDDT-class task creation).
    SPAWN_BASE = 100.0
    #: Extra master-side work to append a task to a GTB buffer.
    BUFFER_APPEND = 20.0
    #: Master-side work per element for the GTB sort (times B log2 B).
    SORT_PER_ELEMENT = 5.0
    #: Worker-side work to update the LQH histogram and take a decision.
    HISTOGRAM_UPDATE = 60.0
    #: Worker-side work to read a pre-stamped decision.
    STAMP_READ = 8.0


class Policy(abc.ABC):
    """Base class for significance-aware execution policies."""

    #: Short identifier used in reports/figures (e.g. ``"GTB"``).
    name: str = "policy"

    #: Precomputed decision table for the overhead model: when a policy's
    #: per-task overhead is a constant (true for every built-in policy),
    #: it declares the constant here and the scheduler/engine charge it
    #: directly instead of calling :meth:`spawn_overhead` /
    #: :meth:`decide_overhead` once per task on the hot path.  ``None``
    #: (the conservative default for subclasses) means "call the method".
    spawn_overhead_const: float | None = None
    decide_overhead_const: float | None = None

    def __init_subclass__(cls, **kwargs) -> None:
        """Keep the overhead constants honest across subclassing.

        A subclass that overrides :meth:`spawn_overhead` /
        :meth:`decide_overhead` without re-declaring the matching
        ``*_const`` would otherwise inherit a constant from its parent
        (e.g. ``GlobalTaskBuffering``) and the engines would silently
        skip the override.  Overriding the method resets the inherited
        constant to ``None`` unless the subclass sets it explicitly.
        """
        super().__init_subclass__(**kwargs)
        own = cls.__dict__
        if "spawn_overhead" in own and "spawn_overhead_const" not in own:
            cls.spawn_overhead_const = None
        if "decide_overhead" in own and "decide_overhead_const" not in own:
            cls.decide_overhead_const = None

    def __init__(self) -> None:
        self._scheduler: "Scheduler | None" = None

    # -- lifecycle -----------------------------------------------------
    def attach(self, scheduler: "Scheduler") -> None:
        """Bind the policy to a scheduler (gives access to groups/issue)."""
        self._scheduler = scheduler

    @property
    def scheduler(self) -> "Scheduler":
        if self._scheduler is None:
            raise PolicyError(f"{self.name} policy is not attached")
        return self._scheduler

    def reset(self) -> None:
        """Clear per-run state (buffers, histograms)."""

    def make_worker_state(self, n_workers: int) -> None:
        """Allocate per-worker state; called when the engine starts."""

    # -- master-side hooks ----------------------------------------------
    def on_spawn(self, task: Task) -> bool:
        """Observe a freshly spawned task.

        Return ``True`` when the policy absorbed the task (it will issue
        it later itself, e.g. after buffering); ``False`` when the
        scheduler should issue it immediately.
        """
        return False

    def on_spawn_many(self, tasks: list[Task]) -> list[Task]:
        """Classify a whole spawn batch in one call.

        Returns the tasks the scheduler should issue now; absorbed
        tasks (buffered by the policy) are omitted and will be issued
        by the policy itself later.  The default delegates to
        :meth:`on_spawn` per task, so buffering policies inherit
        correct batch semantics for free; override only when the
        policy can classify a batch cheaper than task-by-task.
        """
        on_spawn = self.on_spawn
        return [t for t in tasks if not on_spawn(t)]

    def on_barrier(self, group: str | None) -> None:
        """A taskwait was reached; flush any buffered tasks.

        ``group is None`` means a global barrier (flush everything).
        """

    # -- online control surface --------------------------------------------
    def set_ratio(self, ratio: float, group: str | None = None) -> None:
        """Adjust the target accurate-task ratio while the run executes.

        The actuation half of the paper's open control loop: a
        controller (the :class:`~repro.tuning.governor
        .EnergyBudgetGovernor`) observes energy/quality feedback and
        turns this knob online instead of requiring an offline ratio
        sweep.  ``group=None`` applies the ratio globally — every
        existing group plus the implicit group, the same semantics as
        ``taskwait(ratio=...)``.

        Takes effect at the policy's next decision point: per task for
        LQH (decisions happen at execution time), per flush for GTB
        (already-stamped tasks keep their decisions), never for the
        significance-agnostic baseline (it has no approximate path) —
        pair the governor with LQH or small-buffer GTB for tight
        control.
        """
        groups = self.scheduler.groups
        if group is not None:
            groups.get(group).set_ratio(ratio)
        else:
            groups.set_ratio_all(ratio)

    def set_dvfs(self, factor: float, at: float | None = None) -> None:
        """Adjust the engine's simulated DVFS state (clamping is the
        caller's job — pass factors from a
        :class:`~repro.energy.dvfs.FrequencyTable`)."""
        self.scheduler.engine.set_frequency_factor(factor, at)

    # -- worker-side hook -------------------------------------------------
    @abc.abstractmethod
    def decide(self, task: Task, worker: int) -> ExecutionKind:
        """Choose the execution kind for ``task`` on ``worker``.

        Called exactly once per task, right before execution.  Must
        already account for the forced values (significance 0.0 / 1.0)
        and for drop semantics (use :func:`resolve_drop`).
        """

    @staticmethod
    def forced_kind(task: Task) -> ExecutionKind | None:
        """Forced decision for the special significance values, if any."""
        if task.significance >= 1.0:
            return ExecutionKind.ACCURATE
        if task.significance <= 0.0:
            return resolve_drop(task, ExecutionKind.APPROXIMATE)
        return None

    # -- overhead model (virtual work units) -------------------------------
    def spawn_overhead(self, task: Task) -> float:
        """Master work charged when this task is spawned."""
        return PolicyOverheads.SPAWN_BASE

    def barrier_overhead(self, group: str | None) -> float:
        """Master work charged when a barrier is processed."""
        return 0.0

    def decide_overhead(self, task: Task) -> float:
        """Worker work charged when the decision for ``task`` is taken."""
        return PolicyOverheads.STAMP_READ

    # -- cosmetics ---------------------------------------------------------
    def describe(self) -> str:
        """One-line human-readable parameterization."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.describe()}>"
