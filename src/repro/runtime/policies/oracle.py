"""Clairvoyant oracle policy (idealized upper bound; not in the paper).

The paper motivates both GTB and LQH as *estimators* of the ideal
decision: "In the ideal case, the runtime system knows this information
[task count and significance distribution] in advance.  Then, it is
straightforward to execute approximately those tasks with the lowest
significance in each task group" (section 3.2).

:class:`OraclePolicy` realizes that ideal for analysis purposes: like
Max-Buffer GTB it sees the whole group before deciding, but it charges
*no* buffering or sorting overhead and does not delay task issue — as if
the distribution had been known ahead of time.  It is the natural yard-
stick for the accuracy metrics of Table 2 (the oracle has zero ratio
offset and zero inversions by construction) and for ablation benchmarks.
"""

from __future__ import annotations

import math
from collections import defaultdict

from ...registry import register
from ..errors import PolicyError
from ..task import ExecutionKind, Task, TaskState
from .base import Policy, PolicyOverheads, resolve_drop

__all__ = ["OraclePolicy"]


@register("policy", "oracle")
class OraclePolicy(Policy):
    """Exact top-``R_g`` selection with zero runtime overhead."""

    name = "oracle"

    spawn_overhead_const = PolicyOverheads.SPAWN_BASE
    decide_overhead_const = 0.0

    def __init__(self) -> None:
        super().__init__()
        self._pending: dict[str | None, list[Task]] = defaultdict(list)

    def reset(self) -> None:
        self._pending.clear()

    def on_spawn(self, task: Task) -> bool:
        self._pending[task.group].append(task)
        task.state = TaskState.BUFFERED
        return True

    def on_barrier(self, group: str | None) -> None:
        groups = [group] if group is not None else list(self._pending)
        for g in groups:
            self._stamp_and_issue(g)

    def _stamp_and_issue(self, group: str | None) -> None:
        tasks = self._pending.get(group)
        if not tasks:
            return
        self._pending[group] = []
        ratio = self.scheduler.groups.get(group).ratio
        ordered = sorted(tasks, key=lambda t: t.significance, reverse=True)
        quota = math.ceil(ratio * len(ordered) - 1e-12)
        accurate = 0
        for task in ordered:
            forced = self.forced_kind(task)
            if forced is not None:
                task.decision = forced
                if forced is ExecutionKind.ACCURATE:
                    accurate += 1
                continue
            if accurate < quota:
                task.decision = ExecutionKind.ACCURATE
                accurate += 1
            else:
                task.decision = resolve_drop(task, ExecutionKind.APPROXIMATE)
        # Clairvoyance: issue the whole group at the times they were
        # created — rewind the master clock cost-free (idealization).
        for task in tasks:
            self.scheduler.issue(task, at_creation_time=True)

    def decide(self, task: Task, worker: int) -> ExecutionKind:
        if task.decision is None:
            raise PolicyError(
                f"oracle task {task.tid} reached a worker without a stamp"
            )
        return task.decision

    def spawn_overhead(self, task: Task) -> float:
        return PolicyOverheads.SPAWN_BASE

    def decide_overhead(self, task: Task) -> float:
        return 0.0

    def describe(self) -> str:
        return "oracle (clairvoyant top-ratio selection)"
