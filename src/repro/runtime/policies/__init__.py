"""Significance-aware execution policies (paper section 3).

========================  =====================================================
Policy                    Paper reference
========================  =====================================================
:class:`GlobalTaskBuffering`   section 3.3 / Listing 4 ("GTB"); the
                               ``buffer_size=None`` flavour is "Max Buffer GTB"
:class:`LocalQueueHistory`     section 3.4 ("LQH")
:class:`SignificanceAgnostic`  section 4.2's significance-agnostic baseline
:class:`OraclePolicy`          the "ideal case" of section 3.2 (analysis aid)
========================  =====================================================
"""

import warnings

from ...registry import resolve
from .agnostic import SignificanceAgnostic
from .base import Policy, PolicyOverheads, resolve_drop
from .gtb import GlobalTaskBuffering, gtb_max_buffer
from .lqh import GroupHistory, LocalQueueHistory
from .oracle import OraclePolicy

__all__ = [
    "Policy",
    "PolicyOverheads",
    "resolve_drop",
    "GlobalTaskBuffering",
    "gtb_max_buffer",
    "LocalQueueHistory",
    "GroupHistory",
    "SignificanceAgnostic",
    "OraclePolicy",
    "make_policy",
]


def make_policy(spec: str, **kwargs) -> Policy:
    """Deprecated: use :func:`repro.registry.resolve` (``"policy"``) or
    pass the spec string straight to ``Runtime``/``Scheduler``.

    Accepts: ``gtb`` (optionally ``buffer_size=``), ``gtb-max``, ``lqh``,
    ``accurate``/``agnostic``, ``oracle``.  Unlike the old string
    switch, unknown kwargs now raise instead of being silently dropped.
    """
    warnings.warn(
        "make_policy() is deprecated; use repro.registry.resolve"
        "('policy', spec) or pass the spec string to Runtime(policy=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return resolve("policy", spec, **kwargs)
