"""Significance-aware execution policies (paper section 3).

========================  =====================================================
Policy                    Paper reference
========================  =====================================================
:class:`GlobalTaskBuffering`   section 3.3 / Listing 4 ("GTB"); the
                               ``buffer_size=None`` flavour is "Max Buffer GTB"
:class:`LocalQueueHistory`     section 3.4 ("LQH")
:class:`SignificanceAgnostic`  section 4.2's significance-agnostic baseline
:class:`OraclePolicy`          the "ideal case" of section 3.2 (analysis aid)
========================  =====================================================
"""

from .agnostic import SignificanceAgnostic
from .base import Policy, PolicyOverheads, resolve_drop
from .gtb import GlobalTaskBuffering, gtb_max_buffer
from .lqh import GroupHistory, LocalQueueHistory
from .oracle import OraclePolicy

__all__ = [
    "Policy",
    "PolicyOverheads",
    "resolve_drop",
    "GlobalTaskBuffering",
    "gtb_max_buffer",
    "LocalQueueHistory",
    "GroupHistory",
    "SignificanceAgnostic",
    "OraclePolicy",
    "make_policy",
]


def make_policy(spec: str, **kwargs) -> Policy:
    """Build a policy from a short name used in the CLI/benchmarks.

    Accepts: ``gtb`` (optionally ``buffer_size=``), ``gtb-max``, ``lqh``,
    ``accurate``/``agnostic``, ``oracle``.
    """
    key = spec.strip().lower()
    if key == "gtb":
        return GlobalTaskBuffering(**kwargs)
    if key in ("gtb-max", "gtb_max", "gtbmax", "max-buffer", "gtb-mb"):
        return GlobalTaskBuffering(buffer_size=None)
    if key == "lqh":
        return LocalQueueHistory()
    if key in ("accurate", "agnostic", "none"):
        return SignificanceAgnostic()
    if key == "oracle":
        return OraclePolicy()
    raise ValueError(f"unknown policy spec {spec!r}")
