"""Significance-agnostic baseline runtime policy.

The paper evaluates overhead against "a significance-agnostic version of
the runtime system, which does not include the execution paths for
classifying and executing tasks according to significance" (section 4.2,
Figure 4), and the fully-accurate reference of Figure 2 runs on the same
configuration.

:class:`SignificanceAgnostic` reproduces that: every task is executed in
its accurate version, nothing is buffered, no histograms are kept, and
the per-decision overhead is zero — only the bare task-creation cost
remains on the master.
"""

from __future__ import annotations

from ...registry import register
from ..task import ExecutionKind, Task
from .base import Policy, PolicyOverheads

__all__ = ["SignificanceAgnostic"]


@register("policy", "accurate", "agnostic", "none")
class SignificanceAgnostic(Policy):
    """Run everything accurately, with no significance code paths."""

    name = "accurate"

    spawn_overhead_const = PolicyOverheads.SPAWN_BASE
    decide_overhead_const = 0.0

    def decide(self, task: Task, worker: int) -> ExecutionKind:
        return ExecutionKind.ACCURATE

    def spawn_overhead(self, task: Task) -> float:
        return PolicyOverheads.SPAWN_BASE

    def decide_overhead(self, task: Task) -> float:
        return 0.0

    def describe(self) -> str:
        return "significance-agnostic (all accurate)"
