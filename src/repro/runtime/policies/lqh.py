"""Local Queue History (LQH) — paper section 3.4.

"The local queue history policy avoids the step of task buffering.
Tasks are issued to worker queues immediately as they are created.  The
worker decides whether to approximate a task right before it starts its
execution, based on the distribution of significance levels of the tasks
executed so far, and the target ratio of accurate tasks."

Each worker keeps, per task group, a histogram over the runtime's 101
discrete significance levels.  With ``t_g(s)`` the number of tasks
observed with significance ``<= s`` and ``R_g`` the target accurate
ratio, the paper's rule executes a level-``s`` task accurately iff

    t_g(s) > (1 - R_g) * t_g(1.0)

i.e. iff the task is *not* inside the bottom ``(1-R_g)`` quantile of the
significance distribution seen so far.

Within a single significance level the paper's inequality is all-or-
nothing: a group whose tasks all share one level would either always or
never satisfy it, while the evaluation clearly shows LQH approximating a
fraction of such groups (Kmeans, Jacobi, Fluidanimate all use uniform
significance; Table 2 still reports nonzero LQH ratio offsets).  We
therefore resolve the straddling level with a deterministic within-level
credit counter: tasks of the level that crosses the quantile boundary
alternate between accurate and approximate so that the achieved ratio
converges to ``R_g``.  Outside the straddling level the rule is exactly
the paper's inequality.  Like the paper's implementation, the scheme
undershoots slightly on cold histograms (cf. footnote 2: "4.6% and 5.1%
more than requested tasks are approximated" for MC).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...registry import register
from ..task import (
    SIGNIFICANCE_LEVELS,
    ExecutionKind,
    Task,
)
from .base import Policy, PolicyOverheads, resolve_drop

__all__ = ["LocalQueueHistory", "GroupHistory"]


@dataclass
class GroupHistory:
    """Per-worker, per-group execution history (the ``t_g`` statistics).

    ``counts``/``approx_counts`` are the readable histograms; a Fenwick
    tree shadows ``counts`` so the quantile query of every decision
    (:meth:`cumulative_below`) costs O(log L) instead of O(L) over the
    101 levels.  Mutate the histogram through :meth:`observe` only —
    writing ``counts`` directly would desynchronize the tree.
    """

    #: counts[s] = number of tasks executed so far at discrete level s.
    counts: list[int] = field(
        default_factory=lambda: [0] * SIGNIFICANCE_LEVELS
    )
    #: Tasks approximated so far at each level (within-level credit).
    approx_counts: list[int] = field(
        default_factory=lambda: [0] * SIGNIFICANCE_LEVELS
    )
    total: int = 0
    #: Fenwick (binary indexed) tree over ``counts``, 1-based.
    _tree: list[int] = field(
        default_factory=lambda: [0] * (SIGNIFICANCE_LEVELS + 1),
        repr=False,
    )

    def cumulative_below(self, level: int) -> int:
        """``t_g(level - 1)``: tasks observed strictly below ``level``."""
        i = level if level < SIGNIFICANCE_LEVELS else SIGNIFICANCE_LEVELS
        if i <= 0:
            return 0
        tree = self._tree
        out = 0
        while i > 0:
            out += tree[i]
            i -= i & -i
        return out

    def observe(self, level: int, kind: ExecutionKind) -> None:
        """Update statistics after a decision ("updated for every
        executed task")."""
        self.counts[level] += 1
        self.total += 1
        if kind is not ExecutionKind.ACCURATE:
            self.approx_counts[level] += 1
        i = level + 1
        tree = self._tree
        while i <= SIGNIFICANCE_LEVELS:
            tree[i] += 1
            i += i & -i


@register("policy", "lqh")
class LocalQueueHistory(Policy):
    """History-driven worker-local accurate/approximate decisions."""

    name = "LQH"

    spawn_overhead_const = PolicyOverheads.SPAWN_BASE
    decide_overhead_const = PolicyOverheads.HISTOGRAM_UPDATE

    def __init__(self) -> None:
        super().__init__()
        # _histories[worker][group] -> GroupHistory
        self._histories: list[dict[str | None, GroupHistory]] = []

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._histories = []

    def make_worker_state(self, n_workers: int) -> None:
        self._histories = [dict() for _ in range(n_workers)]

    def history(self, worker: int, group: str | None) -> GroupHistory:
        """The (lazily created) history a worker keeps for a group."""
        if not self._histories:
            # Engine did not pre-size (e.g. sequential debugging engine):
            # grow on demand.
            self._histories = [dict() for _ in range(worker + 1)]
        while worker >= len(self._histories):
            self._histories.append(dict())
        hist = self._histories[worker].get(group)
        if hist is None:
            hist = GroupHistory()
            self._histories[worker][group] = hist
        return hist

    # ------------------------------------------------------------------
    def decide(self, task: Task, worker: int) -> ExecutionKind:
        hist = self.history(worker, task.group)
        forced = self.forced_kind(task)
        if forced is not None:
            hist.observe(task.level, forced)
            return forced

        ratio = self.scheduler.groups.get(task.group).ratio
        kind = self._classify(hist, task.level, ratio)
        kind = resolve_drop(task, kind)
        hist.observe(task.level, kind)
        return kind

    @staticmethod
    def _classify(
        hist: GroupHistory, level: int, ratio: float
    ) -> ExecutionKind:
        """The paper's quantile rule + within-level credit tie-breaking.

        ``quota`` is the number of observations (including the current
        task) the approximate region may hold.  A task whose whole level
        lies below the quota line is approximated; one whose level lies
        above runs accurately; the straddling level admits only as many
        approximations as fit under the line.
        """
        n_inclusive = hist.total + 1  # count the task being decided
        quota = (1.0 - ratio) * n_inclusive
        below = hist.cumulative_below(level)
        if below >= quota:
            # Even the tasks strictly below this level exhaust the
            # approximate budget: t_g(s) > (1-R_g) t_g(1.0) holds.
            return ExecutionKind.ACCURATE
        level_total = hist.counts[level] + 1
        if below + level_total <= quota:
            # The entire level fits in the approximate region.
            return ExecutionKind.APPROXIMATE
        # Straddling level: approximate only while the level's credit
        # (approximations already spent at this level) stays under the
        # remaining budget.
        budget_in_level = quota - below
        if hist.approx_counts[level] < budget_in_level:
            return ExecutionKind.APPROXIMATE
        return ExecutionKind.ACCURATE

    # -- overhead model ----------------------------------------------------
    def spawn_overhead(self, task: Task) -> float:
        # No buffering: spawn is the bare descriptor + enqueue cost.
        return PolicyOverheads.SPAWN_BASE

    def decide_overhead(self, task: Task) -> float:
        # "The overhead ... is the bookkeeping of the statistics that
        # form the execution history of a group ... every time a task is
        # executed" (section 3.4).
        return PolicyOverheads.HISTOGRAM_UPDATE

    def describe(self) -> str:
        return "LQH"
