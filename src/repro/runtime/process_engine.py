"""Process-pool execution backend: real parallelism for task bodies.

The paper's runtime executes task bodies on 16 hardware threads; the
:class:`~repro.runtime.engine.ThreadedEngine` approximates that but is
GIL-bound for pure-Python bodies.  :class:`ProcessPoolEngine` (spec
``"process"``) executes bodies in a ``concurrent.futures`` process pool
instead, so NumPy-heavy and pure-Python kernels both scale across cores
(DESIGN.md section 5).

Scheduling stays on the master: policy decisions, the per-worker queue
fabric with round-robin issue and stealing, and dependence release all
run in the parent process — only the *body execution* is shipped out.
That keeps the backend a drop-in sibling of the simulated and threaded
engines, sharing the same accounting core and report schema.

Marshalling contract (the price of process isolation):

* task payloads — the body callable, its arguments, and keyword
  arguments — must pickle (module-level functions, plain data, NumPy
  arrays); a lambda body raises a clear ``SchedulerError``;
* return values are marshalled back and stored on ``Task.result``
  before the dependence-release path runs, so successors observe them
  exactly as on the in-process engines;
* in-place mutations of ``out()`` arguments are written back by a
  change-diff protocol: the child snapshots each out-argument before
  running the body and returns only the elements that changed, which
  the master applies to the original buffer.  Concurrent tasks writing
  *disjoint* regions of a shared NumPy array therefore merge correctly
  (the Sobel row pattern); non-array out-arguments (lists, dicts,
  bytearrays) are replaced wholesale, so concurrent writers of the same
  object should be ordered with ``out()`` dependences.

Timestamps are wall-clock seconds relative to engine construction (as
on the threaded engine) and include submission/IPC overhead, so the
energy report is an *estimate* over measured busy intervals.

Cost model of the write-back: each task ships its full argument set
and the child snapshots/diffs every out-argument array, because a
``region`` tag is an opaque dependence *identity* (int/str/tuple), not
a slice descriptor — a task may legally write anywhere in a buffer it
declares ``out()`` on, so shipping only a region-named slice could
silently drop writes.  Per-task overhead therefore scales with the
*whole* out-buffer size, not the region touched; keep shared buffers
modest (or pass per-task sub-arrays) when using this backend for
fine-grained region-parallel kernels.

Diff coverage: the change-diff enumerates elements in *logical*
C-order on both sides, so F-order and strided views write back
correctly.  Arrays the diff cannot handle (0-d, object dtypes, dtypes
whose ``!=`` comparison fails) are replaced wholesale instead; writing
back into a read-only buffer raises a clear ``SchedulerError``.

The zero-copy alternative: ``"process:shm=true"`` routes ndarray
payloads through the shared-memory data plane
(:mod:`repro.runtime.memory`) — pool-backed arrays ship as
:class:`~repro.runtime.memory.ArrayRef` descriptors and workers write
results in place, skipping the pickle/snapshot/diff cycle entirely;
foreign arrays above ``shm_min_bytes`` are promoted (copied into a
pooled segment once per barrier phase).  See ``docs/data_plane.md``
for the ownership rules.
"""

from __future__ import annotations

import os
import pickle
import sys
import time as _time
import warnings
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor
from concurrent.futures import wait as _wait
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Any, Callable

try:  # numpy powers the diff write-back; everything else works without
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a hard dep today
    _np = None

from ..registry import register
from .accounting import AccountingCore
from .engine import Engine, WallClockTicks
from .errors import SchedulerError
from .memory import (
    ArrayExporter,
    ArrayRef,
    attach_array,
    shared_array_pool,
)
from .pool import discard_shared_pool, shared_process_pool
from .queues import WorkerQueues
from .task import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from ..energy.cost import CostModel
    from ..energy.machine_model import MachineModel
    from ..sim.trace import ExecutionTrace
    from .policies.base import Policy

__all__ = ["ProcessPoolEngine"]

#: Slot address inside a payload: ("a", index) for a positional
#: argument, ("k", name) for a keyword argument.
_Slot = tuple[str, Any]


def _identity_chain(obj: Any) -> int:
    """Identity key of an object's base buffer (mirrors ``task.ref``)."""
    base = getattr(obj, "base", None)
    while base is not None:
        obj = base
        base = getattr(obj, "base", None)
    return id(obj)


def _writeback_slots(task: Task) -> list[_Slot]:
    """Argument slots aliasing an ``out()`` clause that we can restore.

    Scanned on the master, where arguments are still the original
    objects; the child only ever sees slot addresses.
    """
    out_keys = {d.key for d in task.outs}
    if not out_keys:
        return []
    slots: list[_Slot] = []
    for i, arg in enumerate(task.args):
        if _identity_chain(arg) in out_keys and _supports_writeback(arg):
            slots.append(("a", i))
    for name, value in task.kwargs.items():
        if _identity_chain(value) in out_keys and _supports_writeback(value):
            slots.append(("k", name))
    return slots


def _supports_writeback(obj: Any) -> bool:
    if _np is not None and isinstance(obj, _np.ndarray):
        return True
    return isinstance(obj, (list, dict, bytearray))


def _slot_value(args: tuple, kwargs: dict, slot: _Slot) -> Any:
    where, key = slot
    return args[key] if where == "a" else kwargs[key]


def _body_ref(body: Callable) -> tuple | None:
    """A by-name reference for bodies hidden behind decorators.

    ``@sig_task`` rebinds the module attribute to the wrapping
    ``TaskFunction``, so the inner function no longer pickles by
    reference ("it's not the same object as module.name").  When the
    module attribute is such a wrapper around ``body`` (its accurate
    ``fn`` or its ``approxfun`` clause), ship ``(role, module, name)``
    instead and let the child re-resolve it.  Returns ``None`` for
    ordinary module-level functions, which pickle fine as-is.
    """
    mod = getattr(body, "__module__", None)
    name = getattr(body, "__qualname__", None)
    if not mod or not name or "." in name:
        return None
    owner = sys.modules.get(mod)
    attr = getattr(owner, name, None) if owner is not None else None
    if attr is None or attr is body:
        return None
    if getattr(attr, "fn", None) is body:
        return ("fn", mod, name)
    clauses = getattr(attr, "clauses", None)
    if isinstance(clauses, dict) and clauses.get("approxfun") is body:
        return ("approxfun", mod, name)
    return None


def _resolve_body(body: Any) -> Callable:
    """Child-side inverse of :func:`_body_ref`."""
    if not (
        isinstance(body, tuple)
        and len(body) == 3
        and body[0] in ("fn", "approxfun")
    ):
        return body
    import importlib

    role, mod, name = body
    attr = getattr(importlib.import_module(mod), name)
    return attr.fn if role == "fn" else attr.clauses["approxfun"]


def _diffable(obj: Any) -> bool:
    """Whether the change-diff protocol can cover an ndarray.

    0-d arrays cannot be fancy-indexed and object dtypes have no
    reliable elementwise ``!=``; both fall back to wholesale
    replacement (``"ndfull"``).
    """
    return obj.ndim > 0 and not obj.dtype.hasobject


def _child_execute(payload: tuple) -> tuple[Any, float, list]:
    """Run one task body in a pool worker.

    Returns ``(result, host_seconds, updates)`` where ``updates`` holds
    one write-back record per out-slot (see :func:`_apply_update`).
    Arguments arriving as :class:`~repro.runtime.memory.ArrayRef` are
    resolved to shared-memory views first; their writes need no
    update record at all.
    """
    body, args, kwargs, slots = payload
    body = _resolve_body(body)
    if any(isinstance(a, ArrayRef) for a in args):
        args = tuple(
            attach_array(a) if isinstance(a, ArrayRef) else a
            for a in args
        )
    if any(isinstance(v, ArrayRef) for v in kwargs.values()):
        kwargs = {
            k: attach_array(v) if isinstance(v, ArrayRef) else v
            for k, v in kwargs.items()
        }
    snapshots = {}
    for slot in slots:
        obj = _slot_value(args, kwargs, slot)
        if (
            _np is not None
            and isinstance(obj, _np.ndarray)
            and _diffable(obj)
        ):
            snapshots[slot] = obj.copy()
    t0 = _time.perf_counter()
    result = body(*args, **kwargs)
    host_s = _time.perf_counter() - t0

    updates: list[tuple[_Slot, tuple]] = []
    for slot in slots:
        obj = _slot_value(args, kwargs, slot)
        snap = snapshots.get(slot)
        if snap is not None:
            # Diff write-back: ship only the changed elements so that
            # parallel tasks mutating disjoint regions of one shared
            # array merge instead of clobbering each other.  Both sides
            # enumerate elements in logical C-order, so F-order and
            # strided views round-trip correctly.
            try:
                changed = (obj != snap).ravel()
                idx = _np.flatnonzero(changed)
            except Exception:
                # A dtype whose comparison fails (exotic structured
                # types): replace wholesale rather than dropping writes.
                updates.append((slot, ("ndfull", _np.asarray(obj))))
                continue
            if idx.size:
                updates.append(
                    (slot, ("nd", idx, obj.reshape(-1)[idx]))
                )
        elif _np is not None and isinstance(obj, _np.ndarray):
            # 0-d / object-dtype arrays: no diff, ship the whole thing.
            updates.append((slot, ("ndfull", obj)))
        else:
            updates.append((slot, ("obj", obj)))
    return result, host_s, updates


def _apply_update(task: Task, slot: _Slot, update: tuple) -> None:
    """Apply one child-side write-back record to the original object."""
    where, key = slot
    original = task.args[key] if where == "a" else task.kwargs[key]
    mode, *payload = update
    if mode == "nd":
        idx, values = payload
        try:
            original[_np.unravel_index(idx, original.shape)] = values
        except ValueError as exc:
            raise SchedulerError(
                f"cannot write back out() array for task {task.tid}: "
                f"{exc}. out() arrays mutated in a process-engine task "
                "must be writable in the parent."
            ) from exc
    elif mode == "ndfull":
        try:
            original[...] = payload[0]
        except ValueError as exc:
            raise SchedulerError(
                f"cannot write back out() array for task {task.tid}: "
                f"{exc}. out() arrays mutated in a process-engine task "
                "must be writable in the parent."
            ) from exc
    elif isinstance(original, dict):
        original.clear()
        original.update(payload[0])
    else:  # list / bytearray: wholesale replacement
        original[:] = payload[0]


#: Non-zero while the registry factory below is on the stack; direct
#: ``ProcessPoolEngine(...)`` construction outside it is deprecated.
_from_registry = 0


@register("engine", "process", "procpool", "processes")
def _spec_process_engine(
    n_workers: int,
    machine_model: "MachineModel",
    cost_model: "CostModel",
    policy: "Policy",
    on_task_finished: Callable[[Task, float], None],
    stall_handler: Callable[[], bool] | None = None,
    **kwargs: Any,
) -> "ProcessPoolEngine":
    """Registry factory behind the ``"process"`` engine spec strings
    (``"process"``, ``"process:shm=true"``, ...) — the supported way to
    build this engine; see :class:`ProcessPoolEngine` for the options.
    """
    global _from_registry
    _from_registry += 1
    try:
        return ProcessPoolEngine(
            n_workers,
            machine_model,
            cost_model,
            policy,
            on_task_finished,
            stall_handler,
            **kwargs,
        )
    finally:
        _from_registry -= 1


class ProcessPoolEngine(WallClockTicks, Engine):
    """Execute task bodies in a ``ProcessPoolExecutor``.

    Parameters (after the standard engine wiring): ``max_procs`` caps
    the OS processes backing the ``n_workers`` logical worker slots
    (default ``min(n_workers, cpu_count)``); ``start_method`` selects
    the multiprocessing context (``None`` = platform default);
    ``reuse_pool`` (default on) executes on the shared warm executor
    from :mod:`repro.runtime.pool` instead of building a private pool —
    which is what lets an :class:`~repro.experiment.ExperimentSpec`
    sweep (or a long-lived :class:`~repro.serve.server.TaskService`)
    run many process-engine cells without paying pool startup per cell;
    ``pool_tag`` selects a *distinct* shared pool per tag, so
    co-resident engines (the serve cluster's shards) each keep their
    own warm processes instead of contending for one executor;
    ``shm`` switches ndarray payloads to the zero-copy shared-memory
    data plane (:mod:`repro.runtime.memory`), with ``shm_min_bytes``
    keeping arrays below the threshold on the pickle path.

    Construct through an engine spec string (``"process:shm=true"`` via
    :class:`~repro.config.RuntimeConfig` or ``Scheduler(engine=...)``);
    direct construction is deprecated.
    """

    #: Blocking-wait quantum while a barrier predicate is unsatisfied.
    _POLL_S = 0.05

    def __init__(
        self,
        n_workers: int,
        machine_model: "MachineModel",
        cost_model: "CostModel",
        policy: "Policy",
        on_task_finished: Callable[[Task, float], None],
        stall_handler: Callable[[], bool] | None = None,
        *,
        max_procs: int | None = None,
        start_method: str | None = None,
        reuse_pool: bool = True,
        pool_tag: str | None = None,
        shm: bool = False,
        shm_min_bytes: int = 4096,
    ) -> None:
        if not _from_registry:
            warnings.warn(
                "constructing ProcessPoolEngine(...) directly is "
                "deprecated; use an engine spec string instead, e.g. "
                'RuntimeConfig(engine="process:shm=true") or '
                'Scheduler(engine="process")',
                DeprecationWarning,
                stacklevel=2,
            )
        if n_workers > machine_model.n_cores:
            raise SchedulerError(
                f"{n_workers} workers exceed the machine's "
                f"{machine_model.n_cores} cores"
            )
        self.machine_model = machine_model
        self.cost_model = cost_model
        self.policy = policy
        self.on_task_finished = on_task_finished
        self.stall_handler = stall_handler
        self.max_procs = max_procs or min(
            n_workers, os.cpu_count() or n_workers
        )
        self.start_method = start_method
        self.reuse_pool = reuse_pool
        self.pool_tag = pool_tag
        #: Zero-copy payload encoder (None = classic pickle/diff plane).
        self._exporter: ArrayExporter | None = None
        if shm:
            if _np is None:  # pragma: no cover - numpy is a hard dep
                raise SchedulerError(
                    "process engine shm=true requires numpy"
                )
            self._exporter = ArrayExporter(
                shared_array_pool(pool_tag), min_bytes=shm_min_bytes
            )

        self.queues = WorkerQueues(n_workers)
        self._accounting = AccountingCore(n_workers)
        self._t0 = _time.perf_counter()
        self._pool: ProcessPoolExecutor | None = None
        #: future -> (task, worker slot, start time, decided kind)
        self._pending: dict[Future, tuple[Task, int, float, Any]] = {}
        self._free = list(range(n_workers - 1, -1, -1))  # pop() -> slot 0
        policy.make_worker_state(n_workers)

    # -- master side -----------------------------------------------------
    def _now(self) -> float:
        return _time.perf_counter() - self._t0

    def enqueue(self, task: Task, at: float | None = None) -> None:
        task.t_issued = self._now()
        self.queues.push(task)
        self._dispatch()

    def enqueue_many(
        self, tasks: list[Task], at: float | None = None
    ) -> None:
        now = self._now()
        push = self.queues.push
        for task in tasks:
            task.t_issued = now
            push(task)
        self._dispatch()

    def master_charge(self, work_units: float) -> None:
        # As on the threaded engine: bookkeeping costs real time here;
        # record the model-equivalent for reporting symmetry.
        self._accounting.add_master_busy(
            self.machine_model.duration_of(work_units)
        )

    @property
    def master_time(self) -> float:
        return self._now()

    # -- dispatch / harvest ----------------------------------------------
    def _pool_or_start(self) -> ProcessPoolExecutor:
        if self._pool is None:
            if self.reuse_pool:
                self._pool = shared_process_pool(
                    self.max_procs, self.start_method, self.pool_tag
                )
            else:
                ctx = None
                if self.start_method is not None:
                    import multiprocessing

                    ctx = multiprocessing.get_context(self.start_method)
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_procs, mp_context=ctx
                )
        return self._pool

    def _dispatch(self) -> None:
        """Fill free worker slots from the queue fabric."""
        free = self._free
        while free and len(self.queues):
            worker = free.pop()
            task = self.queues.acquire(worker)
            if task is None:  # pragma: no cover - fabric said non-empty
                free.append(worker)
                break
            self._submit(task, worker)

    def _submit(self, task: Task, worker: int) -> None:
        kind = self.policy.decide(task, worker)
        task.state = TaskState.RUNNING
        task.worker = worker
        start = self._now()
        task.t_started = start
        body = task.body_for(kind)
        if body is None:
            # Dropped (or bodiless approximate) task: nothing to ship.
            task.execute(kind)
            self._complete(task, worker, kind, start, start, host_s=0.0)
            return
        args, kwargs = task.args, task.kwargs
        slots = _writeback_slots(task)
        if self._exporter is not None:
            # Zero-copy plane: exportable ndarrays become ArrayRefs;
            # exported out-slots leave the diff protocol (their writes
            # land in shared memory directly).
            args, kwargs, slots = self._exporter.encode(
                args, kwargs, slots
            )
        payload = (_body_ref(body) or body, args, kwargs, slots)
        future = self._pool_or_start().submit(_child_execute, payload)
        self._pending[future] = (task, worker, start, kind)

    def _harvest(self, timeout: float | None) -> bool:
        """Process finished futures; True when at least one completed."""
        if not self._pending:
            return False
        done, _ = _wait(
            tuple(self._pending),
            timeout=timeout,
            return_when=FIRST_COMPLETED,
        )
        for future in done:
            task, worker, start, kind = self._pending.pop(future)
            try:
                result, host_s, updates = future.result()
            except BrokenProcessPool as exc:
                if self.reuse_pool:
                    # Evict the broken shared pool so the next engine
                    # (or retry) gets a fresh one instead of the corpse.
                    discard_shared_pool(
                        self.max_procs, self.start_method, self.pool_tag
                    )
                    self._pool = None
                if self._exporter is not None:
                    # Promotion contents are not trustworthy after a
                    # worker crash: recycle their segments unsynced.
                    self._exporter.abort_phase()
                raise SchedulerError(
                    f"process pool died while running task {task.tid} "
                    f"({exc}); the worker process likely crashed"
                ) from exc
            except Exception as exc:
                # Submission-side pickling failures surface through the
                # future; distinguish them from genuine body exceptions
                # (which propagate unchanged, as on the other engines).
                is_marshal = isinstance(exc, pickle.PicklingError) or (
                    isinstance(exc, (TypeError, AttributeError))
                    and "pickle" in str(exc).lower()
                )
                if not is_marshal:
                    raise
                raise SchedulerError(
                    f"process engine could not marshal task "
                    f"{getattr(task.fn, '__name__', task.fn)!r}: {exc}. "
                    "Task bodies and arguments must be picklable "
                    "(module-level functions, plain data, NumPy arrays)."
                ) from exc
            task.decision = kind
            task.result = result
            for slot, update in updates:
                _apply_update(task, slot, update)
            self._complete(
                task, worker, kind, start, self._now(), host_s=host_s
            )
        return bool(done)

    def _complete(
        self,
        task: Task,
        worker: int,
        kind: Any,
        start: float,
        end: float,
        host_s: float,
    ) -> None:
        task.state = TaskState.FINISHED
        task.t_finished = end
        self._accounting.record_task(
            task, worker, start, end, kind, host_s=host_s
        )
        self._free.append(worker)
        # Dependence release may enqueue successors, which re-enters
        # _dispatch; the explicit call below then finds no free slot or
        # no work and is a no-op.
        self.on_task_finished(task, end)
        self._dispatch()

    # -- barriers ---------------------------------------------------------
    def run_until(
        self, predicate: Callable[[], bool], description: str
    ) -> float:
        stalled_once = False
        while not predicate():
            self._maybe_tick(self._now())
            self._dispatch()
            if self._pending:
                self._harvest(
                    timeout=self._tick_clamped_wait(
                        self._POLL_S, self._now()
                    )
                )
                continue
            if len(self.queues) == 0:
                if not stalled_once and self.stall_handler is not None:
                    stalled_once = True
                    if self.stall_handler():
                        continue
                raise SchedulerError(
                    f"process engine stalled at {description}"
                )
        if (
            self._exporter is not None
            and not self._pending
            and len(self.queues) == 0
        ):
            # Quiescent barrier: no task can still reference a
            # promotion's segment, so sync writable promotions back
            # into their original buffers and recycle the segments.
            self._exporter.end_phase()
        return self._now()

    def finish(self) -> tuple["ExecutionTrace", float]:
        self.run_until(
            lambda: not self._pending and len(self.queues) == 0,
            "engine shutdown",
        )
        if self._pool is not None:
            # Shared pools stay warm for the next run (sweep cells, the
            # serving layer); private pools are torn down with the run.
            if not self.reuse_pool:
                self._pool.shutdown(wait=True)
            self._pool = None
        return self.trace, max(self.trace.makespan, self._now())

    # -- reporting ---------------------------------------------------------
    @property
    def accounting(self) -> AccountingCore:
        return self._accounting

    @property
    def n_workers(self) -> int:
        return self.queues.n_workers

    @property
    def queue_stats(self):
        return self.queues.stats

    @property
    def data_plane_stats(self):
        """Byte accounting of the shm data plane (None when off)."""
        return (
            self._exporter.stats if self._exporter is not None else None
        )
