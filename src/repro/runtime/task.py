"""Task descriptors for the significance-aware runtime.

A :class:`Task` is the unit of scheduling, significance annotation and
approximation, mirroring the paper's ``#pragma omp task`` construct
(Listing 2):

``#pragma omp task significant(e) approxfun(g) label(L) in(...) out(...)``

maps onto a :class:`Task` with

* ``fn``           -- the accurate task body,
* ``approx_fn``    -- the optional approximate body (``approxfun``),
* ``significance`` -- a float in ``[0.0, 1.0]``,
* ``group``        -- the task-group label,
* ``ins/outs``     -- dataflow clauses used for dependence tracking,
* ``cost``         -- an abstract work estimate consumed by the simulated
  machine / energy substrate (the paper measures wall time on real silicon;
  see DESIGN.md section 2 for the substitution).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from .errors import CostModelError, DependenceError, SignificanceError

__all__ = [
    "ExecutionKind",
    "TaskState",
    "TaskCost",
    "DataRef",
    "ref",
    "refs",
    "Task",
    "TaskSlab",
    "task_slab",
    "SIGNIFICANCE_LEVELS",
    "quantize_significance",
]

#: Number of discrete significance levels used by history-based policies.
#: The paper implements "101 discrete (integer) levels ... ranging from 0.0
#: to 1.0 (inclusive) in steps of 0.01" (section 3.4).
SIGNIFICANCE_LEVELS: int = 101


def quantize_significance(significance: float) -> int:
    """Map a significance in ``[0, 1]`` to a discrete level in ``[0, 100]``.

    Matches the paper's runtime, which tracks per-group statistics over 101
    integer levels rather than raw floats.
    """
    if not 0.0 <= significance <= 1.0:
        raise SignificanceError(significance)
    return int(round(significance * (SIGNIFICANCE_LEVELS - 1)))


class ExecutionKind(enum.Enum):
    """How a task was (or will be) executed."""

    ACCURATE = "accurate"
    APPROXIMATE = "approximate"
    #: The task had no ``approxfun`` and the policy chose approximation, so
    #: the runtime dropped it entirely (paper section 2: "it is simply
    #: dropped by the runtime").
    DROPPED = "dropped"


class TaskState(enum.Enum):
    """Lifecycle of a task inside the runtime.

    ``CREATED -> (BUFFERED ->) PENDING -> QUEUED -> RUNNING -> FINISHED``

    ``BUFFERED`` only occurs under the GTB policy, which holds tasks in the
    master's buffer before issue.  ``PENDING`` means waiting for
    dependences; dependence-free tasks go straight to ``QUEUED``.
    """

    CREATED = "created"
    BUFFERED = "buffered"
    PENDING = "pending"
    QUEUED = "queued"
    RUNNING = "running"
    FINISHED = "finished"


@dataclass(frozen=True)
class TaskCost:
    """Abstract work estimate for one task, in machine work units.

    One work unit is one "simple scalar operation"; the machine model
    converts work units to virtual seconds through its per-core throughput
    (:attr:`repro.energy.machine_model.MachineModel.ops_per_second`).

    ``accurate`` is the work of the accurate body; ``approximate`` the work
    of the ``approxfun`` body.  A dropped task costs
    :attr:`TaskCost.DROP_WORK` (0.0).
    """

    accurate: float
    approximate: float = 0.0

    DROP_WORK = 0.0

    def __post_init__(self) -> None:
        if self.accurate < 0 or self.approximate < 0:
            raise CostModelError(
                f"task work must be non-negative, got {self!r}"
            )

    def for_kind(self, kind: ExecutionKind) -> float:
        """Work units consumed when executing with the given kind."""
        if kind is ExecutionKind.ACCURATE:
            return self.accurate
        if kind is ExecutionKind.APPROXIMATE:
            return self.approximate
        return self.DROP_WORK

    def scaled(self, factor: float) -> "TaskCost":
        """Return a copy with both variants scaled by ``factor``."""
        return TaskCost(self.accurate * factor, self.approximate * factor)


@dataclass(frozen=True)
class DataRef:
    """A handle naming a piece of data for ``in()``/``out()`` clauses.

    Dependence tracking needs stable, hashable identities for the data that
    tasks read and write.  Arbitrary Python objects (NumPy arrays in
    particular) are not hashable by value, so a :class:`DataRef` wraps the
    *identity* of the underlying buffer plus an optional human-readable
    name and region tag.  Two refs alias iff their keys are equal.
    """

    key: int
    name: str = ""
    region: Any = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = self.name or f"0x{self.key:x}"
        if self.region is not None:
            return f"DataRef({tag}[{self.region!r}])"
        return f"DataRef({tag})"


def _identity_key(obj: Any) -> int:
    """Stable identity for dependence tracking.

    NumPy views share storage with their base array; treating a view and
    its base as independent objects would miss real dependences, so the
    key of a view is the key of its base buffer.
    """
    base = getattr(obj, "base", None)
    while base is not None:
        obj = base
        base = getattr(obj, "base", None)
    return id(obj)


def ref(obj: Any, name: str = "", region: Any = None) -> DataRef:
    """Create a :class:`DataRef` for ``obj``.

    ``region`` may name a sub-object (e.g. a row index) so that writers of
    disjoint regions do not serialize:  ``ref(img, region=i)`` and
    ``ref(img, region=j)`` are independent when ``i != j``.
    """
    if isinstance(obj, DataRef):
        if region is not None and obj.region != region:
            return DataRef(obj.key, obj.name, region)
        return obj
    if region is not None and not isinstance(region, (int, str, tuple)):
        raise DependenceError(
            f"region must be int/str/tuple, got {type(region).__name__}"
        )
    return DataRef(_identity_key(obj), name=name, region=region)


def refs(*objs: Any) -> tuple[DataRef, ...]:
    """Vector form of :func:`ref` used by the clause helpers."""
    return tuple(ref(o) for o in objs)


_task_counter = itertools.count()


@dataclass(eq=False, slots=True)  # identity equality: tasks are unique
class Task:
    """One schedulable task instance.

    Instances are created by :meth:`repro.runtime.scheduler.Scheduler.spawn`
    (or the :func:`repro.api.sig_task` decorator) and flow through the
    buffering policy, the per-worker queues and finally a worker, which
    executes either ``fn`` or ``approx_fn`` depending on the policy
    decision.

    The class is slotted: a run materializes one descriptor per task, so
    per-instance ``__dict__`` overhead was a measurable share of spawn
    cost on fine-grained task streams (see ``repro.bench``).
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    significance: float = 1.0
    approx_fn: Callable[..., Any] | None = None
    group: str | None = None
    ins: tuple[DataRef, ...] = ()
    outs: tuple[DataRef, ...] = ()
    cost: TaskCost | None = None

    # --- runtime-managed fields -------------------------------------
    tid: int = field(default_factory=lambda: next(_task_counter))
    #: Index into the spawn order of its group (set by the scheduler).
    group_seq: int = -1
    state: TaskState = TaskState.CREATED
    decision: ExecutionKind | None = None
    result: Any = None
    #: Worker id that executed the task (-1 before execution).
    worker: int = -1
    #: Virtual timestamps filled in by the simulated engine (seconds).
    t_created: float = 0.0
    t_issued: float = 0.0
    t_started: float = 0.0
    t_finished: float = 0.0
    #: Number of unresolved predecessor tasks (dependence tracking).
    unmet_deps: int = 0
    #: Tasks that must be notified when this one finishes.
    successors: list["Task"] = field(default_factory=list)
    #: Memoized discrete significance level (computed on first use).
    _level: int = field(default=-1, init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.significance <= 1.0:
            raise SignificanceError(self.significance)
        if not callable(self.fn):
            raise TypeError(f"task body must be callable, got {self.fn!r}")
        if self.approx_fn is not None and not callable(self.approx_fn):
            raise TypeError(
                f"approxfun must be callable, got {self.approx_fn!r}"
            )

    # --- convenience -------------------------------------------------
    @property
    def level(self) -> int:
        """Discrete significance level in ``[0, 100]`` (paper section 3.4).

        Computed once and memoized: history policies read it on every
        decision, and significance is validated immutable-in-practice
        (set at spawn, never rewritten by the runtime).
        """
        level = self._level
        if level < 0:
            level = quantize_significance(self.significance)
            self._level = level
        return level

    @property
    def droppable(self) -> bool:
        """True when approximation means dropping (no ``approxfun``)."""
        return self.approx_fn is None

    def body_for(self, kind: ExecutionKind) -> Callable[..., Any] | None:
        """The callable to run for a given decision (None when dropped)."""
        if kind is ExecutionKind.ACCURATE:
            return self.fn
        if kind is ExecutionKind.APPROXIMATE:
            return self.approx_fn
        return None

    def execute(self, kind: ExecutionKind) -> Any:
        """Run the real Python body for this decision and store the result.

        Dropped tasks do not run anything; their ``result`` stays ``None``
        (the paper: outputs keep whatever default the program initialized).
        """
        self.decision = kind
        body = self.body_for(kind)
        if body is None:
            self.result = None
        else:
            self.result = body(*self.args, **self.kwargs)
        return self.result

    def work_for(self, kind: ExecutionKind) -> float:
        """Abstract work units consumed for a decision (0 if no cost set)."""
        if self.cost is None:
            return 0.0
        return self.cost.for_kind(kind)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        g = f" group={self.group!r}" if self.group else ""
        return (
            f"Task(#{self.tid} {getattr(self.fn, '__name__', '?')}"
            f" sig={self.significance:.2f}{g} state={self.state.value})"
        )


class TaskSlab:
    """A bounded free-list of recycled :class:`Task` descriptors.

    Fine-grained streams (``spawn_many`` over 10^5+ elements) spend a
    measurable share of their spawn cost allocating slotted Task
    objects and running dataclass ``__init__``.  The slab recycles
    FINISHED descriptors instead: :meth:`acquire` pops a free slot and
    rewrites its fields in place (a fresh ``tid`` keeps identity-based
    bookkeeping honest), falling back to normal construction when the
    free list is empty.

    Recycling is only sound for tasks nothing retains after their
    barrier: the scheduler releases slab tasks when built with
    ``retain_tasks=False`` (the serve path, which harvests
    ``task.result`` at settlement and keeps no governor priors), never
    when callers may still hold ``scheduler.tasks``.  Group decision
    records snapshot values — not Task references — so recycling does
    not disturb quality accounting.

    Thread-safety: the free list is a plain ``list`` used LIFO;
    ``append`` and ``pop`` are atomic under the GIL, and acquire/release
    both happen on the master side (spawn and settlement), so no lock
    is needed.
    """

    __slots__ = ("capacity", "reused", "allocated", "_free")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.reused = 0
        self.allocated = 0
        self._free: list[Task] = []

    def __len__(self) -> int:
        return len(self._free)

    def acquire(
        self,
        fn: Callable[..., Any],
        args: tuple = (),
        kwargs: dict | None = None,
        significance: float = 1.0,
        approx_fn: Callable[..., Any] | None = None,
        group: str | None = None,
        ins: tuple[DataRef, ...] = (),
        outs: tuple[DataRef, ...] = (),
        cost: TaskCost | None = None,
    ) -> Task:
        """A task descriptor with the given fields — recycled if possible.

        Performs the same validation as ``Task.__post_init__`` on the
        recycled path, so a slab task is indistinguishable from a fresh
        one (bar its recycled storage).
        """
        try:
            task = self._free.pop()
        except IndexError:
            self.allocated += 1
            return Task(
                fn,
                args,
                kwargs if kwargs is not None else {},
                significance,
                approx_fn,
                group,
                ins,
                outs,
                cost,
            )
        if not 0.0 <= significance <= 1.0:
            self._free.append(task)
            raise SignificanceError(significance)
        if not callable(fn):
            self._free.append(task)
            raise TypeError(f"task body must be callable, got {fn!r}")
        if approx_fn is not None and not callable(approx_fn):
            self._free.append(task)
            raise TypeError(
                f"approxfun must be callable, got {approx_fn!r}"
            )
        self.reused += 1
        task.fn = fn
        task.args = args
        task.kwargs = kwargs if kwargs is not None else {}
        task.significance = significance
        task.approx_fn = approx_fn
        task.group = group
        task.ins = ins
        task.outs = outs
        task.cost = cost
        task.tid = next(_task_counter)
        task.group_seq = -1
        task.state = TaskState.CREATED
        task.decision = None
        task.result = None
        task.worker = -1
        task.t_created = 0.0
        task.t_issued = 0.0
        task.t_started = 0.0
        task.t_finished = 0.0
        task.unmet_deps = 0
        task._level = -1
        return task

    def release(self, task: Task) -> bool:
        """Return a FINISHED task's storage to the slab.

        Returns False (and drops the descriptor) when the task is not
        finished or the slab is full; clears every payload reference so
        a parked slot pins no user data.
        """
        if task.state is not TaskState.FINISHED:
            return False
        if len(self._free) >= self.capacity:
            return False
        task.fn = _released_body
        task.args = ()
        task.kwargs = {}
        task.approx_fn = None
        task.group = None
        task.ins = ()
        task.outs = ()
        task.cost = None
        task.result = None
        task.successors.clear()
        self._free.append(task)
        return True

    def release_many(self, tasks: list[Task]) -> int:
        """Release a batch; returns how many slots were recycled."""
        release = self.release
        return sum(1 for t in tasks if release(t))


def _released_body() -> None:  # pragma: no cover - placeholder body
    raise RuntimeError("task descriptor was released back to the slab")


_default_slab = TaskSlab()


def task_slab() -> TaskSlab:
    """The process-wide default :class:`TaskSlab`."""
    return _default_slab
