"""Core runtime: tasks, groups, dependences, queues, scheduler,
policies, execution backends and the shared accounting core."""

from .accounting import AccountingCore, build_run_report
from .dependencies import DependenceTracker, DepStats
from .engine import (
    Engine,
    ExecutionBackend,
    SimulatedEngine,
    ThreadedEngine,
    make_engine,
)
from .process_engine import ProcessPoolEngine
from .errors import (
    CompilerError,
    CostModelError,
    DependenceError,
    DirectiveSyntaxError,
    EnergyModelError,
    GroupError,
    LoweringError,
    PolicyError,
    RatioError,
    ReproError,
    SchedulerError,
    SignificanceError,
)
from .groups import GLOBAL_GROUP, GroupRecord, GroupRegistry
from .queues import QueueStats, WorkerQueues
from .scheduler import Scheduler
from .stats import GroupSummary, RunReport
from .task import (
    SIGNIFICANCE_LEVELS,
    DataRef,
    ExecutionKind,
    Task,
    TaskCost,
    TaskState,
    quantize_significance,
    ref,
    refs,
)

__all__ = [
    "Scheduler",
    "Task",
    "TaskCost",
    "TaskState",
    "ExecutionKind",
    "DataRef",
    "ref",
    "refs",
    "SIGNIFICANCE_LEVELS",
    "quantize_significance",
    "GroupRecord",
    "GroupRegistry",
    "GLOBAL_GROUP",
    "WorkerQueues",
    "QueueStats",
    "DependenceTracker",
    "DepStats",
    "Engine",
    "ExecutionBackend",
    "SimulatedEngine",
    "ThreadedEngine",
    "ProcessPoolEngine",
    "AccountingCore",
    "build_run_report",
    "make_engine",
    "RunReport",
    "GroupSummary",
    "ReproError",
    "SignificanceError",
    "RatioError",
    "GroupError",
    "DependenceError",
    "SchedulerError",
    "PolicyError",
    "CostModelError",
    "EnergyModelError",
    "CompilerError",
    "DirectiveSyntaxError",
    "LoweringError",
]
