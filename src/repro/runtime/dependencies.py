"""OpenMP-4.0-style dependence tracking from ``in()``/``out()`` clauses.

The paper's runtime "implements an efficient mechanism for identifying and
enforcing dependencies between tasks that arise from annotations of the
side effects of tasks with in(...) and out(...) clauses" (section 3),
building on BDDT [Tzenakis et al.].  This module reproduces the standard
last-writer/reader-set protocol those runtimes use:

* ``in(d)``  after ``out(d)``  -> true dependence (RAW): reader waits for
  the last writer of ``d``.
* ``out(d)`` after ``in(d)``   -> anti dependence (WAR): writer waits for
  every reader since the last write.
* ``out(d)`` after ``out(d)``  -> output dependence (WAW): writer waits
  for the previous writer.

Data identity is a :class:`repro.runtime.task.DataRef` key, so NumPy views
of the same buffer alias correctly and ``region`` tags allow row-level
parallelism over a shared array.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .task import DataRef, Task

__all__ = ["DependenceTracker", "DepStats"]


@dataclass
class DepStats:
    """Counters describing the discovered dependence graph."""

    tasks: int = 0
    edges: int = 0
    raw_edges: int = 0
    war_edges: int = 0
    waw_edges: int = 0
    roots: int = 0  # tasks that were ready at creation


@dataclass
class _ObjectState:
    """Bookkeeping for one data object (one DataRef key)."""

    last_writer: Task | None = None
    readers: list[Task] = field(default_factory=list)


class DependenceTracker:
    """Incremental dependence discovery over a stream of spawned tasks.

    The tracker is driven by the scheduler: :meth:`register` is called once
    per task in program order and wires ``Task.unmet_deps`` /
    ``Task.successors``; :meth:`retire` is called when a task finishes and
    returns the successors that became ready.

    A *finished* predecessor never contributes an edge — tasks spawned
    after their producer completed start ready, exactly as in a real
    dataflow runtime.
    """

    def __init__(self) -> None:
        self._objects: dict[tuple, _ObjectState] = {}
        self.stats = DepStats()

    # ------------------------------------------------------------------
    def _state_for(self, d: DataRef) -> _ObjectState:
        key = (d.key, d.region)
        state = self._objects.get(key)
        if state is None:
            state = _ObjectState()
            self._objects[key] = state
        return state

    @staticmethod
    def _add_edge(pred: Task, succ: Task) -> bool:
        """Add pred -> succ unless pred already finished or edge exists."""
        from .task import TaskState

        if pred is succ or pred.state is TaskState.FINISHED:
            return False
        if succ in pred.successors:
            return False
        pred.successors.append(succ)
        succ.unmet_deps += 1
        return True

    # ------------------------------------------------------------------
    def register(self, task: Task) -> bool:
        """Record a task's clauses; return True when it is ready to issue."""
        stats = self.stats
        stats.tasks += 1
        if not task.ins and not task.outs:
            # Clause-free task: ready by construction.  The common case
            # for data-parallel kernels, so skip the protocol entirely.
            stats.roots += 1
            return True

        for d in task.ins:
            state = self._state_for(d)
            if state.last_writer is not None and self._add_edge(
                state.last_writer, task
            ):
                self.stats.edges += 1
                self.stats.raw_edges += 1
            state.readers.append(task)

        for d in task.outs:
            state = self._state_for(d)
            for reader in state.readers:
                if self._add_edge(reader, task):
                    self.stats.edges += 1
                    self.stats.war_edges += 1
            if state.last_writer is not None and self._add_edge(
                state.last_writer, task
            ):
                self.stats.edges += 1
                self.stats.waw_edges += 1
            state.last_writer = task
            state.readers = []

        ready = task.unmet_deps == 0
        if ready:
            self.stats.roots += 1
        return ready

    def register_many(self, tasks: list[Task]) -> None:
        """Batch form of :meth:`register` (the ``spawn_many`` path).

        Program order within the batch is the list order, so intra-batch
        dependences (``out`` then ``in`` on the same ref) resolve the
        same way as a spawn loop would.
        """
        register = self.register
        for task in tasks:
            register(task)

    def count_roots(self, n: int) -> None:
        """Account ``n`` clause-free tasks without touching the protocol.

        ``spawn_many`` calls this when it has already established that
        no task in the batch carries clauses — the per-task fast path
        of :meth:`register` collapsed into two counter bumps.
        """
        self.stats.tasks += n
        self.stats.roots += n

    def retire(self, task: Task) -> list[Task]:
        """Mark ``task`` finished; return successors that just became ready."""
        released: list[Task] = []
        for succ in task.successors:
            succ.unmet_deps -= 1
            if succ.unmet_deps == 0:
                released.append(succ)
        task.successors = []
        return released

    # ------------------------------------------------------------------
    def waiters_on(self, obj_ref: DataRef) -> list[Task]:
        """Tasks affecting a given data object (for ``taskwait on(...)``).

        Returns the last writer plus the readers since the last write —
        the set whose completion guarantees the object's value is final,
        which is what ``#pragma omp taskwait on(x)`` waits for.
        """
        state = self._objects.get((obj_ref.key, obj_ref.region))
        if state is None:
            return []
        out: list[Task] = []
        if state.last_writer is not None:
            out.append(state.last_writer)
        out.extend(r for r in state.readers if r not in out)
        return out

    def reset(self) -> None:
        """Forget all object states (used between independent phases)."""
        self._objects.clear()
