"""Execution engines: how tasks actually run.

One scheduler, interchangeable execution backends (DESIGN.md section 5):

* :class:`SimulatedEngine` — the default.  Wraps
  :class:`repro.sim.machine.SimulatedMachine`: N virtual cores under a
  deterministic discrete-event clock.  Task bodies really execute (so
  results and quality metrics are genuine); durations come from the cost
  model; energy from the machine power model.  This engine reproduces
  the paper's 16-core testbed on any host.
* :class:`ThreadedEngine` — real ``threading`` workers sharing the same
  queue fabric and policies.  Useful when task bodies release the GIL
  (NumPy); timing is host wall-clock and therefore noisy.  The energy
  report applies the machine power model to *measured* busy intervals —
  an estimate, clearly labelled as such.
* :class:`~repro.runtime.process_engine.ProcessPoolEngine`
  (spec ``"process"``) — task bodies execute in a
  ``concurrent.futures`` process pool, giving NumPy-heavy kernels real
  parallelism; results and mutated ``out()`` arrays are marshalled back
  into the master's dependence-release path.
* ``sequential`` — a :class:`SimulatedEngine` with one worker; the
  reference semantics for debugging.
* ``faulty`` (:mod:`repro.faults`) — a fault-injecting simulated
  machine for the unreliable-hardware scenario.

Engines expose a deliberately narrow interface — the
:class:`ExecutionBackend` protocol: ``enqueue``/``enqueue_many`` ready
tasks, ``master_charge`` bookkeeping work, ``run_until`` a barrier
predicate holds, ``finish`` the run.  All bookkeeping flows through one
shared :class:`~repro.runtime.accounting.AccountingCore` per run
(DESIGN.md section 6), which is what keeps report schemas identical
across backends.
"""

from __future__ import annotations

import abc
import threading
import time as _time
import warnings
from typing import (
    TYPE_CHECKING,
    Callable,
    Protocol,
    runtime_checkable,
)

from ..registry import register
from ..sim.machine import SimulatedMachine
from ..sim.trace import ExecutionTrace, Segment
from .accounting import AccountingCore, AccountingShard
from .errors import SchedulerError
from .queues import ShardedWorkerQueues
from .task import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from ..energy.cost import CostModel
    from ..energy.machine_model import MachineModel
    from ..runtime.policies.base import Policy
    from .queues import QueueStats

__all__ = [
    "ExecutionBackend",
    "Engine",
    "WallClockTicks",
    "SimulatedEngine",
    "ThreadedEngine",
    "sequential_engine",
    "make_engine",
]


@runtime_checkable
class ExecutionBackend(Protocol):
    """The structural contract between the scheduler and any backend.

    :class:`Engine` is the convenience ABC implementing the shared
    parts; third-party backends may instead satisfy this protocol
    directly (it is ``runtime_checkable`` for duck-typed wiring).
    """

    def enqueue(self, task: Task, at: float | None = None) -> None:
        """Accept one dependence-free task for execution."""
        ...

    def enqueue_many(
        self, tasks: list[Task], at: float | None = None
    ) -> None:
        """Accept a batch of dependence-free tasks in one call."""
        ...

    def master_charge(self, work_units: float) -> None:
        """Account master-side bookkeeping work."""
        ...

    @property
    def master_time(self) -> float:
        """The master thread's current (virtual or wall) time."""
        ...

    def set_tick(
        self, interval: float, callback: Callable[[float], None]
    ) -> None:
        """Install a periodic ``callback(now)`` on the engine timeline."""
        ...

    def set_frequency_factor(
        self, factor: float, at: float | None = None
    ) -> None:
        """Switch the (simulated) DVFS state from time ``at`` onward."""
        ...

    def run_until(
        self, predicate: Callable[[], bool], description: str
    ) -> float:
        """Block until the barrier predicate holds; return the time."""
        ...

    def finish(self) -> tuple[ExecutionTrace, float]:
        """Complete all work; return (trace, makespan)."""
        ...

    @property
    def accounting(self) -> AccountingCore:
        """The run's shared trace/energy/stats bookkeeping core."""
        ...

    @property
    def n_workers(self) -> int: ...

    @property
    def queue_stats(self) -> "QueueStats": ...


class Engine(abc.ABC):
    """Base class for execution backends (see :class:`ExecutionBackend`).

    Subclasses record every observation through :attr:`accounting`; the
    default :meth:`enqueue_many` loops :meth:`enqueue`, and backends
    with a cheaper batch admission path override it.
    """

    #: Whether :meth:`set_frequency_factor` stretches task durations on
    #: this backend (virtual-time engines) or only changes the billed
    #: power point (wall-clock engines, which cannot retime reality).
    #: The governor uses this to de-scale busy-time observations.
    dvfs_scales_time: bool = False

    @abc.abstractmethod
    def enqueue(self, task: Task, at: float | None = None) -> None:
        """Accept a dependence-free task for execution."""

    def enqueue_many(
        self, tasks: list[Task], at: float | None = None
    ) -> None:
        """Accept a batch of ready tasks (default: one-by-one)."""
        for task in tasks:
            self.enqueue(task, at)

    @abc.abstractmethod
    def master_charge(self, work_units: float) -> None:
        """Account master-side bookkeeping work."""

    @property
    @abc.abstractmethod
    def master_time(self) -> float:
        """The master thread's current (virtual or wall) time."""

    # -- online control surface (the governor's actuators) ---------------
    def set_tick(
        self, interval: float, callback: Callable[[float], None]
    ) -> None:
        """Install a periodic ``callback(now)`` on the engine timeline.

        Backends without a periodic-callback facility must say so
        loudly — a governor silently never ticking would look like a
        controller bug, not a backend limitation.
        """
        raise SchedulerError(
            f"{type(self).__name__} does not support periodic ticks"
        )

    def set_frequency_factor(
        self, factor: float, at: float | None = None
    ) -> None:
        """Switch the DVFS state from time ``at`` (default: now) onward.

        The base implementation records the epoch in the accounting
        core only — correct for the wall-clock backends (threaded /
        process), where the model cannot retime real execution but the
        energy attribution should bill the downclocked power point.
        The simulated engines additionally stretch future durations.
        """
        if factor <= 0:
            raise SchedulerError(
                f"frequency factor must be > 0: {factor}"
            )
        t = self.master_time if at is None else at
        self.accounting.record_dvfs(t, factor)

    @abc.abstractmethod
    def run_until(
        self, predicate: Callable[[], bool], description: str
    ) -> float:
        """Block until the barrier predicate holds; return the time."""

    @abc.abstractmethod
    def finish(self) -> tuple[ExecutionTrace, float]:
        """Complete all work; return (trace, makespan)."""

    @property
    @abc.abstractmethod
    def accounting(self) -> AccountingCore:
        """The run's shared bookkeeping core."""

    @property
    def trace(self) -> ExecutionTrace:
        return self.accounting.trace

    @property
    @abc.abstractmethod
    def n_workers(self) -> int: ...

    @property
    @abc.abstractmethod
    def queue_stats(self): ...


class WallClockTicks:
    """Shared periodic-tick state for the wall-clock engines.

    Threaded and process backends both fire governor ticks from their
    barrier wait loops; this mixin owns the deadline bookkeeping so the
    two cannot drift apart.  Missed deadlines are *skipped*, not
    replayed: after an idle stretch (e.g. a long spawn phase between
    barriers) the next check fires exactly one catch-up tick and
    fast-forwards the deadline — a burst of zero-width ticks would
    bloat the governor history and stall barrier entry for nothing.
    """

    _tick_interval = 0.0
    _tick_cb: Callable[[float], None] | None = None
    _tick_next = float("inf")

    def set_tick(
        self, interval: float, callback: Callable[[float], None]
    ) -> None:
        """Periodic callback in wall seconds, fired from the barrier
        wait loop (the master's blocking point on these backends)."""
        if interval <= 0:
            raise SchedulerError(
                f"tick interval must be > 0, got {interval}"
            )
        self._tick_interval = interval
        self._tick_cb = callback
        self._tick_next = self.master_time + interval

    def _maybe_tick(self, now: float) -> None:
        """Fire one due tick; callers hold whatever lock serializes
        their accounting (re-entrant callbacks are safe there)."""
        cb = self._tick_cb
        if cb is None or now < self._tick_next:
            return
        self._tick_next = now + self._tick_interval
        cb(now)

    def _tick_clamped_wait(self, timeout: float, now: float) -> float:
        """Shrink a blocking wait so a tick deadline is not slept
        through (the governor needs sub-poll-quantum resolution)."""
        if self._tick_cb is None:
            return timeout
        return min(timeout, max(self._tick_next - now, 0.0))


@register("engine", "simulated", "sim")
class SimulatedEngine(Engine):
    """Virtual-time engine over :class:`SimulatedMachine`."""

    dvfs_scales_time = True

    def __init__(
        self,
        n_workers: int,
        machine_model: "MachineModel",
        cost_model: "CostModel",
        policy: "Policy",
        on_task_finished: Callable[[Task, float], None],
        stall_handler: Callable[[], bool] | None = None,
    ) -> None:
        self.machine = SimulatedMachine(
            n_workers,
            machine_model,
            cost_model,
            policy,
            on_task_finished,
            stall_handler,
            accounting=AccountingCore(n_workers),
        )

    def enqueue(self, task: Task, at: float | None = None) -> None:
        self.machine.enqueue(task, at)

    def enqueue_many(
        self, tasks: list[Task], at: float | None = None
    ) -> None:
        self.machine.enqueue_many(tasks, at)

    def master_charge(self, work_units: float) -> None:
        self.machine.master_charge(work_units)

    @property
    def master_time(self) -> float:
        return self.machine.master_time

    def set_tick(
        self, interval: float, callback: Callable[[float], None]
    ) -> None:
        self.machine.set_tick(interval, callback)

    def set_frequency_factor(
        self, factor: float, at: float | None = None
    ) -> None:
        # The machine owns both knobs the switch turns: the active
        # model (future durations) and the accounting epoch (energy).
        self.machine.set_frequency_factor(factor, at)

    def run_until(
        self, predicate: Callable[[], bool], description: str
    ) -> float:
        return self.machine.run_until(predicate, description)

    def finish(self) -> tuple[ExecutionTrace, float]:
        self.machine.drain()
        return self.machine.trace, self.machine.makespan

    @property
    def n_workers(self) -> int:
        return self.machine.queues.n_workers

    @property
    def queue_stats(self):
        return self.machine.queues.stats

    @property
    def accounting(self) -> AccountingCore:
        # Delegated (not stored) so machine-swapping subclasses like
        # FaultAwareEngine stay consistent with their machine's core.
        return self.machine.accounting

    @property
    def trace(self) -> ExecutionTrace:
        return self.machine.trace


@register("engine", "threaded", "threads")
class ThreadedEngine(WallClockTicks, Engine):
    """Real-thread engine sharing the queue fabric and policies.

    The scheduling hot path is lock-free (DESIGN.md section 12): worker
    threads pop from :class:`ShardedWorkerQueues` and buffer finished-
    task observations in per-worker :class:`AccountingShard` deltas
    without touching the engine lock; the lock is taken only for the
    completion handshake (dependence release, in-flight accounting) and
    when a worker runs dry and must park on the condition variable.
    The master merges the shards into the shared trace at barrier
    points, so every aggregate view still reads one serialized
    :class:`AccountingCore`.  Timestamps are wall-clock seconds
    relative to engine construction, so the resulting trace can be fed
    to the same energy model (as an *estimate*; see module docstring).
    """

    _IDLE_WAIT_S = 0.05

    def __init__(
        self,
        n_workers: int,
        machine_model: "MachineModel",
        cost_model: "CostModel",
        policy: "Policy",
        on_task_finished: Callable[[Task, float], None],
        stall_handler: Callable[[], bool] | None = None,
    ) -> None:
        if n_workers > machine_model.n_cores:
            raise SchedulerError(
                f"{n_workers} workers exceed the machine's "
                f"{machine_model.n_cores} cores"
            )
        self.machine_model = machine_model
        self.cost_model = cost_model
        self.policy = policy
        self.on_task_finished = on_task_finished
        self.stall_handler = stall_handler

        self.queues = ShardedWorkerQueues(n_workers)
        self._accounting = AccountingCore(n_workers)
        self._t0 = _time.perf_counter()
        # RLock: on_task_finished (held) may release successors, which
        # re-enters enqueue() on the same lock.
        self._lock = threading.RLock()
        self._work_cv = threading.Condition(self._lock)
        self._done_cv = threading.Condition(self._lock)
        self._stop = False
        self._inflight = 0
        policy.make_worker_state(n_workers)
        self._threads = [
            threading.Thread(
                target=self._worker_loop, args=(w,), daemon=True
            )
            for w in range(n_workers)
        ]
        for t in self._threads:
            t.start()

    # -- master side -----------------------------------------------------
    def _now(self) -> float:
        return _time.perf_counter() - self._t0

    def enqueue(self, task: Task, at: float | None = None) -> None:
        with self._work_cv:
            task.t_issued = self._now()
            self.queues.push(task)
            self._inflight += 1
            self._work_cv.notify_all()

    def enqueue_many(
        self, tasks: list[Task], at: float | None = None
    ) -> None:
        # Batched admission: one lock acquisition and one wake-up for
        # the whole batch (the spawn_many fast path).
        with self._work_cv:
            now = self._now()
            push = self.queues.push
            for task in tasks:
                task.t_issued = now
                push(task)
            self._inflight += len(tasks)
            self._work_cv.notify_all()

    def master_charge(self, work_units: float) -> None:
        # Real bookkeeping already costs real time on this engine; we
        # only record the model-equivalent for reporting symmetry.
        self._accounting.add_master_busy(
            self.machine_model.duration_of(work_units)
        )

    @property
    def master_time(self) -> float:
        return self._now()

    # -- worker side ----------------------------------------------------
    def _worker_loop(self, worker: int) -> None:
        shard = self._accounting.shard(worker)
        acquire = self.queues.acquire
        while True:
            # Fast path: pop/steal straight off the sharded deques —
            # no lock while work is plentiful.
            task = acquire(worker)
            if task is None:
                # Slow path: park on the condition variable.  Re-check
                # under the lock first — a push between the lock-free
                # miss and the wait would otherwise be slept through.
                with self._work_cv:
                    task = acquire(worker)
                    while task is None:
                        if self._stop:
                            return
                        self._work_cv.wait(self._IDLE_WAIT_S)
                        task = acquire(worker)
            self._run_one(worker, task, shard)

    def _run_one(
        self, worker: int, task: Task, shard: AccountingShard
    ) -> None:
        kind = self.policy.decide(task, worker)
        task.state = TaskState.RUNNING
        task.worker = worker
        start = self._now()
        task.t_started = start
        task.execute(kind)
        end = self._now()
        # Trace bookkeeping goes to the worker's own shard, lock-free;
        # it is buffered *before* the in-flight decrement below, so a
        # barrier that observes quiescence always finds the segment at
        # its merge point.
        shard.record(
            Segment(worker, start, end, task.tid, kind, task.group),
            end - start,
        )
        with self._lock:
            task.state = TaskState.FINISHED
            task.t_finished = end
            self.on_task_finished(task, end)
            self._inflight -= 1
            self._done_cv.notify_all()

    # -- barriers ---------------------------------------------------------
    def run_until(
        self, predicate: Callable[[], bool], description: str
    ) -> float:
        stalled_once = False
        with self._done_cv:
            while not predicate():
                # Fold the workers' buffered deltas into the shared
                # trace before any tick callback (the governor samples
                # the trace) and before stall diagnosis.
                self._accounting.merge_shards()
                self._maybe_tick(self._now())
                if self._inflight == 0 and len(self.queues) == 0:
                    if not stalled_once and self.stall_handler is not None:
                        stalled_once = True
                        # Stall handler may spawn/flush, which re-enters
                        # enqueue -> needs the lock we hold; release it.
                        self._done_cv.release()
                        try:
                            produced = self.stall_handler()
                        finally:
                            self._done_cv.acquire()
                        if produced:
                            continue
                    raise SchedulerError(
                        f"threaded engine stalled at {description}"
                    )
                self._done_cv.wait(
                    self._tick_clamped_wait(self._IDLE_WAIT_S, self._now())
                )
            self._accounting.merge_shards()
        return self._now()

    def finish(self) -> tuple[ExecutionTrace, float]:
        self.run_until(
            lambda: self._inflight == 0 and len(self.queues) == 0,
            "engine shutdown",
        )
        with self._work_cv:
            self._stop = True
            self._work_cv.notify_all()
        for t in self._threads:
            t.join(timeout=5.0)
        # Workers are parked/joined: one final merge catches segments
        # buffered after the last barrier's merge point.
        self._accounting.merge_shards()
        return self.trace, max(self.trace.makespan, self._now())

    @property
    def accounting(self) -> AccountingCore:
        return self._accounting

    @property
    def n_workers(self) -> int:
        return self.queues.n_workers

    @property
    def queue_stats(self):
        return self.queues.stats


@register("engine", "sequential", "serial")
def sequential_engine(
    n_workers: int,
    machine_model: "MachineModel",
    cost_model: "CostModel",
    policy: "Policy",
    on_task_finished: Callable[[Task, float], None],
    stall_handler: Callable[[], bool] | None = None,
) -> SimulatedEngine:
    """Reference semantics: a one-worker :class:`SimulatedEngine`."""
    return SimulatedEngine(
        1, machine_model, cost_model, policy, on_task_finished, stall_handler
    )


def make_engine(
    kind: str,
    n_workers: int,
    machine_model: "MachineModel",
    cost_model: "CostModel",
    policy: "Policy",
    on_task_finished: Callable[[Task, float], None],
    stall_handler: Callable[[], bool] | None = None,
) -> Engine:
    """Deprecated: engines now live in the ``"engine"`` registry; use
    :class:`~repro.config.RuntimeConfig` / ``Scheduler(engine=...)``.

    Kinds: ``simulated`` (default), ``threaded``, ``process``,
    ``sequential`` (one simulated worker)."""
    warnings.warn(
        "make_engine() is deprecated; pass the engine spec to "
        "Scheduler/RuntimeConfig or use repro.registry instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..registry import registry_for
    from .errors import RegistryError

    try:
        factory = registry_for("engine").factory(kind)
    except RegistryError as exc:
        raise SchedulerError(f"unknown engine kind {kind!r}") from exc
    return factory(
        n_workers,
        machine_model,
        cost_model,
        policy,
        on_task_finished,
        stall_handler,
    )
