"""Per-worker task queues with round-robin distribution and work stealing.

The paper (section 3): "Our runtime system is organized as a master/slave
work-sharing scheduler. ... For every task call encountered, the task is
enqueued in a per-worker task queue.  Tasks are distributed across workers
in round-robin fashion.  Workers select the oldest tasks from their queues
for execution.  When a worker's queue runs empty, the worker may steal
tasks from other worker's queues."

:class:`WorkerQueues` implements exactly that discipline:

* ``push(task)`` places a ready task on the next queue in round-robin
  order (or on an explicitly chosen queue);
* ``pop_local(w)`` removes the *oldest* task of worker ``w`` (FIFO);
* ``steal(w)`` scans the other workers starting after ``w`` and removes
  the oldest task from the first non-empty victim queue.

The implementation is engine-agnostic: the simulated engine drives it
under virtual time, the threaded engine under a lock.  It sits on every
task's dispatch path, so the class is slotted, the round-robin pointer
avoids a modulo per push, and the fabric keeps a live element count
(``len`` is O(1), polled per scheduling step by the threaded engine).

Invariants (exercised by ``tests/runtime/test_queues.py``):

* ``len(fabric)`` equals the sum of all per-worker depths at all times;
* every task leaves by exactly one of ``pop_local``/``steal``/``drain``;
* ``stats.pushed == stats.popped_local + stats.steals + len(fabric) +
  len(drained)`` over any operation sequence.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from .errors import SchedulerError
from .task import Task, TaskState

__all__ = ["WorkerQueues", "ShardedWorkerQueues", "QueueStats"]


@dataclass
class QueueStats:
    """Counters for queue traffic, reported per experiment run."""

    pushed: int = 0
    popped_local: int = 0
    steals: int = 0
    failed_steals: int = 0
    #: Per-worker number of tasks executed (occupancy balance).
    executed_per_worker: list[int] = field(default_factory=list)


class WorkerQueues:
    """The work-sharing queue fabric shared by all execution engines."""

    __slots__ = ("n_workers", "stats", "_queues", "_rr_next", "_size")

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise SchedulerError(
                f"need at least one worker, got {n_workers}"
            )
        self.n_workers = n_workers
        self._queues: list[deque[Task]] = [deque() for _ in range(n_workers)]
        self._rr_next = 0
        self._size = 0
        self.stats = QueueStats(
            executed_per_worker=[0 for _ in range(n_workers)]
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def depth(self, worker: int) -> int:
        return len(self._queues[worker])

    def is_empty(self) -> bool:
        return self._size == 0

    # ------------------------------------------------------------------
    def select_worker(self) -> int:
        """Round-robin choice for the next issued task (master side)."""
        w = self._rr_next
        nxt = w + 1
        self._rr_next = nxt if nxt < self.n_workers else 0
        return w

    def push(self, task: Task, worker: int | None = None) -> int:
        """Issue a ready task to a worker queue; returns the worker id."""
        if worker is None:
            w = self._rr_next
            nxt = w + 1
            self._rr_next = nxt if nxt < self.n_workers else 0
        else:
            w = worker
            if not 0 <= w < self.n_workers:
                raise SchedulerError(f"worker {w} out of range")
        task.state = TaskState.QUEUED
        self._queues[w].append(task)
        self._size += 1
        self.stats.pushed += 1
        return w

    def pop_local(self, worker: int) -> Task | None:
        """Oldest task from the worker's own queue (FIFO), or None."""
        q = self._queues[worker]
        if not q:
            return None
        self._size -= 1
        self.stats.popped_local += 1
        return q.popleft()

    def steal(self, thief: int) -> Task | None:
        """Steal the oldest task from the first non-empty victim queue.

        Victims are scanned round-robin starting after the thief, so steal
        pressure spreads instead of hammering worker 0.
        """
        if self._size:
            queues = self._queues
            n = self.n_workers
            for off in range(1, n):
                victim = thief + off
                if victim >= n:
                    victim -= n
                q = queues[victim]
                if q:
                    self._size -= 1
                    self.stats.steals += 1
                    return q.popleft()
        self.stats.failed_steals += 1
        return None

    def acquire(self, worker: int) -> Task | None:
        """Local pop falling back to stealing — one worker scheduling step."""
        task = self.pop_local(worker)
        if task is None:
            task = self.steal(worker)
        if task is not None:
            self.stats.executed_per_worker[worker] += 1
        return task

    # ------------------------------------------------------------------
    def drain(self) -> list[Task]:
        """Remove and return every queued task (used on shutdown/reset)."""
        out: list[Task] = []
        for q in self._queues:
            out.extend(q)
            q.clear()
        self._size = 0
        return out


class ShardedWorkerQueues:
    """Lock-free variant of :class:`WorkerQueues` for real-thread pops.

    Same round-robin/FIFO/steal discipline, restructured so worker
    threads consume *without holding the engine lock* (the threaded
    engine's scheduling hot path, DESIGN.md section 12):

    * the per-worker deques are the synchronization points —
      ``deque.append`` and ``deque.popleft`` are atomic under the GIL,
      so a push and a concurrent pop never corrupt a shard, and
      ``popleft`` raising ``IndexError`` is the race-free emptiness
      test (checking ``if q:`` first would TOCTOU against a thief);
    * every mutable counter has a single writer: ``pushed`` belongs to
      the master (pushes stay serialized under the engine's admission
      lock, which the condition-variable wakeup needs anyway), and the
      pop/steal/executed counters are per-worker slots written only by
      that worker's thread;
    * there is no materialized size — ``len`` sums the shard lengths
      (each read atomic), giving the monotone-when-quiescent estimate
      the barrier predicates need; per-operation O(1) size bookkeeping
      would reintroduce a shared read-modify-write.

    ``stats`` assembles a fresh :class:`QueueStats` snapshot from the
    sharded counters, so reporting code sees the same schema as
    :class:`WorkerQueues`.  The snapshot is exact once workers are
    quiescent (barriers, ``finish``), approximate mid-run.
    """

    __slots__ = (
        "n_workers",
        "_queues",
        "_rr_next",
        "_pushed",
        "_popped_local",
        "_steals",
        "_failed_steals",
        "_executed",
    )

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise SchedulerError(
                f"need at least one worker, got {n_workers}"
            )
        self.n_workers = n_workers
        self._queues: list[deque[Task]] = [
            deque() for _ in range(n_workers)
        ]
        self._rr_next = 0
        self._pushed = 0
        self._popped_local = [0] * n_workers
        self._steals = [0] * n_workers
        self._failed_steals = [0] * n_workers
        self._executed = [0] * n_workers

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(q) for q in self._queues)

    def depth(self, worker: int) -> int:
        return len(self._queues[worker])

    def is_empty(self) -> bool:
        return all(not q for q in self._queues)

    # -- master side (serialized by the engine's admission lock) --------
    def select_worker(self) -> int:
        """Round-robin choice for the next issued task (master side)."""
        w = self._rr_next
        nxt = w + 1
        self._rr_next = nxt if nxt < self.n_workers else 0
        return w

    def push(self, task: Task, worker: int | None = None) -> int:
        """Issue a ready task to a worker shard; returns the worker id."""
        if worker is None:
            w = self._rr_next
            nxt = w + 1
            self._rr_next = nxt if nxt < self.n_workers else 0
        else:
            w = worker
            if not 0 <= w < self.n_workers:
                raise SchedulerError(f"worker {w} out of range")
        task.state = TaskState.QUEUED
        self._queues[w].append(task)
        self._pushed += 1
        return w

    # -- worker side (lock-free) ----------------------------------------
    def pop_local(self, worker: int) -> Task | None:
        """Oldest task from the worker's own shard (FIFO), or None."""
        try:
            task = self._queues[worker].popleft()
        except IndexError:
            return None
        self._popped_local[worker] += 1
        return task

    def steal(self, thief: int) -> Task | None:
        """Steal the oldest task from the first non-empty victim shard,
        scanning round-robin after the thief (as in
        :meth:`WorkerQueues.steal`)."""
        queues = self._queues
        n = self.n_workers
        for off in range(1, n):
            victim = thief + off
            if victim >= n:
                victim -= n
            try:
                task = queues[victim].popleft()
            except IndexError:
                continue
            self._steals[thief] += 1
            return task
        self._failed_steals[thief] += 1
        return None

    def acquire(self, worker: int) -> Task | None:
        """Local pop falling back to stealing — one scheduling step."""
        task = self.pop_local(worker)
        if task is None:
            task = self.steal(worker)
        if task is not None:
            self._executed[worker] += 1
        return task

    # ------------------------------------------------------------------
    @property
    def stats(self) -> QueueStats:
        """A :class:`QueueStats` snapshot of the sharded counters."""
        return QueueStats(
            pushed=self._pushed,
            popped_local=sum(self._popped_local),
            steals=sum(self._steals),
            failed_steals=sum(self._failed_steals),
            executed_per_worker=list(self._executed),
        )

    def drain(self) -> list[Task]:
        """Remove and return every queued task (master side, workers
        stopped)."""
        out: list[Task] = []
        for q in self._queues:
            while True:
                try:
                    out.append(q.popleft())
                except IndexError:
                    break
        return out
