"""Shared process pools: one warm executor instead of pool-per-cell.

Spinning up a ``ProcessPoolExecutor`` costs fork/spawn plus management-
thread setup — milliseconds to hundreds of milliseconds per pool.  Both
heavy users of process pools in this library used to pay that price per
*unit of work*: every :class:`~repro.runtime.process_engine
.ProcessPoolEngine` built (and tore down) a private pool per run, so an
:class:`~repro.experiment.ExperimentSpec` sweep over process-engine
cells created one pool per cell; and every ``repro.run(parallel=N)``
call created a fresh fan-out pool.

This module keeps one long-lived executor per distinct
``(max_workers, start_method)`` configuration and hands it out to every
caller.  Pools are created lazily, never shut down between uses (the
interpreter's ``concurrent.futures`` atexit hook joins them at exit),
and evicted when broken so the next request gets a fresh one.  The
``sweep_pool`` bench probe gates the resulting speedup.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor

__all__ = [
    "PoolKey",
    "shared_process_pool",
    "discard_shared_pool",
    "shutdown_shared_pools",
]

#: Identity of one shared pool: ``(max_workers, start_method, tag)``.
#: The ``tag`` partitions otherwise-identical configurations into
#: distinct warm pools — the serve cluster tags one pool per shard so
#: shard parallelism is process parallelism, not N shards contending
#: for one executor's workers.
PoolKey = tuple[int, str | None, str | None]

_pools: dict[PoolKey, ProcessPoolExecutor] = {}
_lock = threading.Lock()


def _make_pool(key: PoolKey) -> ProcessPoolExecutor:
    max_workers, start_method, _tag = key
    ctx = None
    if start_method is not None:
        import multiprocessing

        ctx = multiprocessing.get_context(start_method)
    return ProcessPoolExecutor(max_workers=max_workers, mp_context=ctx)


def shared_process_pool(
    max_workers: int,
    start_method: str | None = None,
    tag: str | None = None,
) -> ProcessPoolExecutor:
    """The shared executor for ``(max_workers, start_method, tag)``.

    Created lazily on first request and reused by every subsequent
    caller with the same configuration.  Callers must *not* shut the
    returned executor down — use :func:`discard_shared_pool` (broken
    pool) or :func:`shutdown_shared_pools` (tests/teardown) instead.
    """
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    key: PoolKey = (max_workers, start_method, tag)
    with _lock:
        pool = _pools.get(key)
        if pool is None:
            pool = _pools[key] = _make_pool(key)
        return pool


def discard_shared_pool(
    max_workers: int,
    start_method: str | None = None,
    tag: str | None = None,
) -> None:
    """Drop (and shut down) one shared pool, e.g. after it broke.

    The next :func:`shared_process_pool` call for the same key builds a
    fresh executor.  A key that was never created is a no-op.
    """
    with _lock:
        pool = _pools.pop((max_workers, start_method, tag), None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_shared_pools() -> None:
    """Shut down and forget every shared pool (tests / explicit cleanup)."""
    with _lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown(wait=True)
