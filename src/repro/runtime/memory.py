"""Zero-copy shared-memory data plane for the process backend.

The process engine's marshalling contract pickles every ndarray payload
into the child and change-diffs mutated ``out()`` buffers back — two
full copies (plus a snapshot and a compare) per task for data the
parent and child could simply *share*.  This module provides the
sharing substrate (DESIGN.md section 12):

* :class:`SharedArrayPool` — a pool of reusable
  ``multiprocessing.shared_memory`` segments, bucketed by size so a
  steady-state workload stops allocating.  ``pool.ndarray(shape)``
  allocates an array that *lives* in a pooled segment, which is what
  makes true zero-copy possible: tasks over such arrays ship only an
  :class:`ArrayRef` descriptor, and workers read and write the one
  mapping everybody shares.
* :class:`ArrayRef` — a small picklable descriptor (segment name,
  dtype, shape, strides, byte offset) naming an ndarray view inside a
  segment.  :func:`attach_array` resolves it in a worker process
  through a per-process attach cache.
* :class:`ArrayExporter` — the engine-side encoder.  For each ndarray
  payload it either (a) exports by reference (pool-backed arrays —
  zero bytes moved), (b) *promotes* a foreign array by copying it into
  a pooled segment once per barrier phase and exporting views of the
  copy, or (c) falls back to pickling (small arrays, object dtypes,
  negative strides).  Byte counters for each path feed the
  ``payload_bandwidth`` bench probe's bytes-not-copied gate.

Ownership rules (the API contract; also DESIGN.md section 12):

* Pool-allocated arrays are owned by their pool: they stay valid until
  ``release_array`` or ``pool.close()``; the pool keeps a reference,
  so dropping yours does not free the segment.
* Promoted foreign arrays are snapshots for one barrier phase.  The
  parent must not mutate a promoted buffer while tasks are in flight;
  writable promotions are synced back into the original buffer when
  the engine reaches a quiescent barrier (no queued or running tasks),
  then the promotion is discarded.  For mid-phase read-back or
  many-phase reuse, allocate through the pool instead.
* Workers never own segments: children attach with tracking disabled
  (the parent is the registered owner) and keep the mapping cached for
  the life of the pool process.  Segment names are never reused, so
  the cache cannot alias stale data.

Leak discipline: every segment is created by a pool and unlinked by
``pool.close()``; :func:`shutdown_array_pools` (also registered
``atexit``) closes every global pool, so a clean interpreter exit
leaves nothing in ``/dev/shm`` (``repro_*`` names; see
``tests/runtime/test_memory.py``).
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any

try:  # numpy is what the data plane moves; pure-Python payloads pickle
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a hard dep today
    _np = None

from .errors import SchedulerError

__all__ = [
    "ArrayRef",
    "DataPlaneStats",
    "SharedArrayPool",
    "ArrayExporter",
    "attach_array",
    "shared_array_pool",
    "discard_array_pool",
    "shutdown_array_pools",
    "active_segment_names",
]

#: Prefix of every segment this module creates — the leak tests scan
#: ``/dev/shm`` for it, and it keeps our names out of other tenants'.
SEGMENT_PREFIX = "repro_"

_seg_counter = itertools.count()


@dataclass(frozen=True, slots=True)
class ArrayRef:
    """A picklable reference to an ndarray view inside a shared segment.

    ``offset`` addresses the view's *first logical element* relative to
    the segment start; together with ``strides`` this reproduces the
    exact parent-side view (C-order, F-order, or strided) over the one
    shared mapping.  ``writable=False`` views resolve read-only in the
    worker, so a body that treats an ``in()`` array as scratch fails
    loudly instead of corrupting shared data.
    """

    segment: str
    dtype: Any
    shape: tuple
    strides: tuple
    offset: int
    writable: bool = False

    @property
    def nbytes(self) -> int:
        """Payload bytes this reference stands in for."""
        n = 1
        for dim in self.shape:
            n *= dim
        return n * _np.dtype(self.dtype).itemsize


@dataclass
class DataPlaneStats:
    """Byte accounting for one exporter (the bytes-not-copied metric)."""

    #: Bytes shipped as references over pool-backed or already-promoted
    #: shared segments — the zero-copy path.
    bytes_referenced: int = 0
    #: Bytes copied *into* shared segments promoting foreign arrays.
    bytes_copied_in: int = 0
    #: Bytes copied back *out* of writable promotions at barriers.
    bytes_copied_out: int = 0
    #: ndarray bytes that fell back to pickling (small / unsupported).
    bytes_pickled: int = 0
    arrays_referenced: int = 0
    arrays_promoted: int = 0
    arrays_pickled: int = 0

    @property
    def bytes_total(self) -> int:
        return (
            self.bytes_referenced
            + self.bytes_copied_in
            + self.bytes_copied_out
            + self.bytes_pickled
        )

    @property
    def bytes_not_copied_frac(self) -> float:
        """Fraction of payload bytes that moved by reference (0 when no
        ndarray traffic was seen)."""
        total = self.bytes_total
        return self.bytes_referenced / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "bytes_referenced": self.bytes_referenced,
            "bytes_copied_in": self.bytes_copied_in,
            "bytes_copied_out": self.bytes_copied_out,
            "bytes_pickled": self.bytes_pickled,
            "arrays_referenced": self.arrays_referenced,
            "arrays_promoted": self.arrays_promoted,
            "arrays_pickled": self.arrays_pickled,
            "bytes_not_copied_frac": self.bytes_not_copied_frac,
        }


@dataclass
class _Segment:
    """One shared-memory segment owned by a pool."""

    shm: shared_memory.SharedMemory
    #: Bucketed capacity (power of two >= the requested size).
    size: int

    @property
    def name(self) -> str:
        return self.shm.name


@dataclass
class _ExportInfo:
    """Registry entry mapping a pool-allocated base buffer to its segment.

    Holds a strong reference to the base object: the registry key is
    ``id(base)``, which is only stable while the object lives, and pool
    ownership means the array must outlive user references anyway.
    """

    base: Any
    segment: _Segment
    base_addr: int
    pool: "SharedArrayPool"


#: id(ultimate base buffer) -> export info, for every live
#: pool-allocated array in this process (all pools share one registry
#: so an exporter recognizes arrays from any tag).
_EXPORTABLE: dict[int, _ExportInfo] = {}


def _ultimate_base(arr: Any) -> Any:
    """The object at the end of the ``.base`` chain (mirrors
    ``task._identity_key``, but returns the object, not its id)."""
    base = getattr(arr, "base", None)
    while base is not None:
        arr = base
        base = getattr(arr, "base", None)
    return arr


def _bucket(nbytes: int) -> int:
    """Round a size up to the pool's reuse granularity (power of two,
    min one page) so near-miss sizes share segments."""
    n = max(int(nbytes), 4096)
    return 1 << (n - 1).bit_length()


def _new_shm(size: int) -> shared_memory.SharedMemory:
    while True:
        name = f"{SEGMENT_PREFIX}{os.getpid()}_{next(_seg_counter):x}"
        try:
            return shared_memory.SharedMemory(
                name=name, create=True, size=size
            )
        except FileExistsError:  # pragma: no cover - stale leftover
            continue


class SharedArrayPool:
    """Reusable shared-memory segments for ndarray payloads.

    Thread-safe (the serve cluster's shards allocate concurrently).
    ``tag`` only labels the pool for diagnostics; partitioning happens
    in :func:`shared_array_pool`'s keying, exactly like the process
    pools in :mod:`repro.runtime.pool`.
    """

    def __init__(self, tag: str | None = None) -> None:
        if _np is None:  # pragma: no cover - numpy is a hard dep today
            raise SchedulerError(
                "the shared-memory data plane requires numpy"
            )
        self.tag = tag
        self._lock = threading.Lock()
        self._free: dict[int, list[_Segment]] = {}
        self._leased: dict[str, _Segment] = {}
        self._closed = False
        self.segments_created = 0
        self.segments_reused = 0

    # -- segment lifecycle ------------------------------------------------
    def acquire(self, nbytes: int) -> _Segment:
        """Lease a segment of at least ``nbytes`` (bucketed reuse)."""
        size = _bucket(nbytes)
        with self._lock:
            if self._closed:
                raise SchedulerError(
                    f"shared array pool {self.tag!r} is closed"
                )
            stack = self._free.get(size)
            if stack:
                seg = stack.pop()
                self.segments_reused += 1
            else:
                seg = _Segment(_new_shm(size), size)
                self.segments_created += 1
            self._leased[seg.name] = seg
            return seg

    def release(self, seg: _Segment) -> None:
        """Return a leased segment to the free list."""
        with self._lock:
            if self._leased.pop(seg.name, None) is None:
                return
            if self._closed:
                self._unlink(seg)
                return
            self._free.setdefault(seg.size, []).append(seg)

    @property
    def leased_count(self) -> int:
        return len(self._leased)

    @property
    def free_count(self) -> int:
        return sum(len(s) for s in self._free.values())

    def segment_names(self) -> list[str]:
        """Names of every live segment (leased + free), for leak tests."""
        with self._lock:
            return sorted(self._leased) + sorted(
                seg.name
                for stack in self._free.values()
                for seg in stack
            )

    # -- pool-backed arrays ------------------------------------------------
    def ndarray(self, shape, dtype=float) -> Any:
        """Allocate an ndarray living in a pooled segment.

        The returned array is pool-owned (see the module ownership
        rules): it exports by reference at zero copy cost, and its
        segment returns to the pool via :meth:`release_array` or
        :meth:`close`.
        """
        dtype = _np.dtype(dtype)
        if dtype.hasobject:
            raise SchedulerError(
                "object-dtype arrays cannot live in shared memory"
            )
        shape = tuple(shape) if hasattr(shape, "__iter__") else (shape,)
        nbytes = dtype.itemsize
        for dim in shape:
            nbytes *= dim
        seg = self.acquire(max(nbytes, 1))
        arr = _np.ndarray(shape, dtype=dtype, buffer=seg.shm.buf)
        arr[...] = 0  # fresh allocations read as zeros, like np.zeros
        base = _ultimate_base(arr)
        _EXPORTABLE[id(base)] = _ExportInfo(
            base=base,
            segment=seg,
            base_addr=arr.__array_interface__["data"][0],
            pool=self,
        )
        return arr

    def release_array(self, arr: Any) -> None:
        """Return a pool-allocated array's segment to the free list.

        The array (and every view of it) is invalid afterwards.
        """
        info = _EXPORTABLE.pop(id(_ultimate_base(arr)), None)
        if info is None:
            raise SchedulerError(
                "release_array: not a live pool-allocated array"
            )
        self.release(info.segment)

    # -- teardown ----------------------------------------------------------
    @staticmethod
    def _unlink(seg: _Segment) -> None:
        try:
            seg.shm.close()
            seg.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def close(self) -> None:
        """Unlink every segment (leased ones too: pool-owned arrays die
        with the pool).  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            segs = list(self._leased.values())
            self._leased.clear()
            for stack in self._free.values():
                segs.extend(stack)
            self._free.clear()
        for key in [
            k for k, info in _EXPORTABLE.items() if info.pool is self
        ]:
            del _EXPORTABLE[key]
        for seg in segs:
            self._unlink(seg)


# -- global tagged pools (mirrors runtime.pool's shared executors) -------
_pools: dict[str | None, SharedArrayPool] = {}
_pools_lock = threading.Lock()


def shared_array_pool(tag: str | None = None) -> SharedArrayPool:
    """The shared :class:`SharedArrayPool` for ``tag`` (lazily built).

    Tags partition pools the same way :func:`~repro.runtime.pool
    .shared_process_pool` partitions executors — the serve cluster's
    shards each get their own warm segments.
    """
    with _pools_lock:
        pool = _pools.get(tag)
        if pool is None or pool._closed:
            pool = _pools[tag] = SharedArrayPool(tag)
        return pool


def discard_array_pool(tag: str | None = None) -> None:
    """Close and forget one global pool (no-op for unknown tags)."""
    with _pools_lock:
        pool = _pools.pop(tag, None)
    if pool is not None:
        pool.close()


def shutdown_array_pools() -> None:
    """Close every global pool (tests / teardown; also runs atexit)."""
    with _pools_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.close()


def active_segment_names() -> list[str]:
    """Every live segment name across the global pools (leak checks)."""
    with _pools_lock:
        pools = list(_pools.values())
    names: list[str] = []
    for pool in pools:
        names.extend(pool.segment_names())
    return names


atexit.register(shutdown_array_pools)


# -- child side ----------------------------------------------------------
#: Per-process attach cache: segment name -> open SharedMemory.  Names
#: are never reused, so entries cannot alias; mappings stay open for
#: the (pool worker) process lifetime.
_attached: dict[str, shared_memory.SharedMemory] = {}


_attach_lock = threading.Lock()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    shm = _attached.get(name)
    if shm is not None:
        return shm
    with _attach_lock:
        try:
            # Python >= 3.13: opt out of resource tracking — the
            # parent owns the segment and its tracker entry.
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:
            # Older interpreters always register on attach, which is
            # wrong in both tracker topologies: a worker forked after
            # the parent's tracker started would re-add the name to
            # the *shared* tracker set (a later parent unlink leaves
            # the duplicate behind), and a worker forked before it
            # would lazily spawn a *private* tracker that warns and
            # double-unlinks at worker exit.  Attach with registration
            # suppressed instead — unregistering afterwards is no
            # better, as it erases the parent's entry when the tracker
            # is shared.
            from multiprocessing import resource_tracker

            orig_register = resource_tracker.register
            resource_tracker.register = lambda *a, **kw: None
            try:
                shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = orig_register
        _attached[name] = shm
    return shm


def attach_array(ref: ArrayRef) -> Any:
    """Resolve an :class:`ArrayRef` to an ndarray view (worker side)."""
    shm = _attach_segment(ref.segment)
    arr = _np.ndarray(
        ref.shape,
        dtype=ref.dtype,
        buffer=shm.buf,
        offset=ref.offset,
        strides=ref.strides,
    )
    if not ref.writable:
        arr.flags.writeable = False
    return arr


# -- engine-side encoder --------------------------------------------------
@dataclass
class _Promotion:
    """A foreign array copied into a pooled segment for one phase."""

    owner: Any
    segment: _Segment
    shared: Any
    owner_addr: int
    dirty: bool = False


#: Slot address inside a payload (same shape as process_engine._Slot).
_Slot = tuple[str, Any]


class ArrayExporter:
    """Encode task payloads as :class:`ArrayRef` descriptors.

    One exporter per :class:`~repro.runtime.process_engine
    .ProcessPoolEngine` with ``shm=true``; not thread-safe (the engine
    master is single-threaded).  ``min_bytes`` keeps tiny arrays on the
    pickle path, where a descriptor would cost more than the copy.
    """

    def __init__(
        self, pool: SharedArrayPool, min_bytes: int = 4096
    ) -> None:
        if min_bytes < 0:
            raise SchedulerError(
                f"min_bytes must be >= 0, got {min_bytes}"
            )
        self.pool = pool
        self.min_bytes = min_bytes
        self.stats = DataPlaneStats()
        self._promotions: dict[int, _Promotion] = {}

    # -- per-task encoding -------------------------------------------------
    def encode(
        self, args: tuple, kwargs: dict, slots: list[_Slot]
    ) -> tuple[tuple, dict, list[_Slot]]:
        """Replace exportable ndarrays with refs; return the payload
        triple ``(args, kwargs, remaining_diff_slots)``.

        Slots whose array exported drop out of the change-diff
        protocol — their writes land in shared memory directly.
        """
        out_slots = set(slots)
        new_args = list(args)
        new_kwargs = dict(kwargs)
        exported: set[_Slot] = set()
        for i, value in enumerate(args):
            slot = ("a", i)
            ref = self._export(value, writable=slot in out_slots)
            if ref is not None:
                new_args[i] = ref
                exported.add(slot)
        for name, value in kwargs.items():
            slot = ("k", name)
            ref = self._export(value, writable=slot in out_slots)
            if ref is not None:
                new_kwargs[name] = ref
                exported.add(slot)
        remaining = [s for s in slots if s not in exported]
        return tuple(new_args), new_kwargs, remaining

    def _export(self, value: Any, writable: bool) -> ArrayRef | None:
        if _np is None or not isinstance(value, _np.ndarray):
            return None
        stats = self.stats
        if (
            value.dtype.hasobject
            or value.ndim == 0
            or any(s < 0 for s in value.strides)
        ):
            stats.bytes_pickled += value.nbytes
            stats.arrays_pickled += 1
            return None

        base = _ultimate_base(value)
        info = _EXPORTABLE.get(id(base))
        if info is not None and info.base is base:
            # Pool-backed: the parent's buffer *is* the shared segment.
            ref = self._ref_into(
                value,
                info.segment,
                info.base_addr,
                writable,
            )
            if ref is not None:
                stats.bytes_referenced += value.nbytes
                stats.arrays_referenced += 1
            return ref

        if value.nbytes < self.min_bytes:
            stats.bytes_pickled += value.nbytes
            stats.arrays_pickled += 1
            return None
        return self._export_promoted(value, writable)

    def _export_promoted(
        self, value: Any, writable: bool
    ) -> ArrayRef | None:
        """Copy a foreign array's owning buffer into a pooled segment
        (once per phase) and reference views of the copy."""
        # The nearest ndarray that owns its data; its whole buffer is
        # promoted so every view of it resolves against one copy.
        owner = value
        while isinstance(owner.base, _np.ndarray):
            owner = owner.base
        if owner.base is not None or not (
            owner.flags["C_CONTIGUOUS"] or owner.flags["F_CONTIGUOUS"]
        ):
            # Foreign buffer protocol object or non-contiguous owner:
            # the offset arithmetic below would not be sound.
            self.stats.bytes_pickled += value.nbytes
            self.stats.arrays_pickled += 1
            return None
        if writable and not owner.flags.writeable:
            self.stats.bytes_pickled += value.nbytes
            self.stats.arrays_pickled += 1
            return None

        prom = self._promotions.get(id(owner))
        if prom is None:
            seg = self.pool.acquire(owner.nbytes)
            order = "C" if owner.flags["C_CONTIGUOUS"] else "F"
            shared = _np.ndarray(
                owner.shape,
                dtype=owner.dtype,
                buffer=seg.shm.buf,
                order=order,
            )
            _np.copyto(shared, owner)
            prom = self._promotions[id(owner)] = _Promotion(
                owner=owner,
                segment=seg,
                shared=shared,
                owner_addr=owner.__array_interface__["data"][0],
            )
            self.stats.bytes_copied_in += owner.nbytes
            self.stats.arrays_promoted += 1
        ref = self._ref_into(
            value,
            prom.segment,
            prom.owner_addr,
            writable,
        )
        if ref is None:
            return None
        if writable:
            prom.dirty = True
        self.stats.bytes_referenced += value.nbytes
        self.stats.arrays_referenced += 1
        return ref

    @staticmethod
    def _ref_into(
        value: Any, seg: _Segment, base_addr: int, writable: bool
    ) -> ArrayRef | None:
        offset = value.__array_interface__["data"][0] - base_addr
        if offset < 0:  # pragma: no cover - defensive
            return None
        return ArrayRef(
            segment=seg.name,
            dtype=value.dtype,
            shape=value.shape,
            strides=value.strides,
            offset=offset,
            writable=writable,
        )

    # -- phase boundaries ---------------------------------------------------
    def end_phase(self) -> None:
        """Quiescent barrier: sync writable promotions back into their
        original buffers, then recycle all promotion segments.

        Only call with no tasks in flight — a still-running child may
        write a promotion's segment.
        """
        promotions, self._promotions = self._promotions, {}
        for prom in promotions.values():
            if prom.dirty:
                _np.copyto(prom.owner, prom.shared)
                self.stats.bytes_copied_out += prom.owner.nbytes
            self.pool.release(prom.segment)

    def abort_phase(self) -> None:
        """Drop all promotions *without* syncing (broken pool: the
        shared copies are not trustworthy)."""
        promotions, self._promotions = self._promotions, {}
        for prom in promotions.values():
            self.pool.release(prom.segment)

    @property
    def pending_promotions(self) -> int:
        return len(self._promotions)
