"""The microbenchmark workloads behind ``python -m repro.harness bench``.

Three probes, matching the three costs the paper's evaluation cares
about (section 4.2 / Figure 4):

* **scheduler_throughput** — tasks dispatched end-to-end per second
  through the full runtime (spawn → policy → queues → simulated
  execution → dependence retirement), per policy.  This is the hot path
  the ISSUE's 1.5× target is measured on.
* **spawn_overhead** — master-side cost of ``Scheduler.spawn`` alone
  (task descriptor + dependence registration + enqueue event), the
  analogue of the paper's task-creation overhead.
* **spawn_many** — the batched spawn fast path versus the spawn loop:
  master-side cost per task through ``Scheduler.spawn_many`` and the
  headline ``speedup_vs_loop`` ratio (gated; the ISSUE's ≥1.5× target).
* **backend_matrix** — end-to-end dispatch latency of one fixed task
  stream on each execution backend (simulated / threaded / process);
  informational, since thread/process timings are host wall-clock.
* **end_to_end** — wall latency of one complete small experiment cell
  through :class:`repro.ExperimentSpec` (build inputs, run Sobel under
  GTB, quality + energy reporting).
* **governor_convergence** — control quality (not speed) of the online
  :class:`~repro.tuning.governor.EnergyBudgetGovernor`: budget-tracking
  error and steps-to-converge on a deterministic simulated Sobel run
  with the budget at 70% of full-precision energy.  Fully virtual-time
  and analytic-cost, so the gated metrics are bit-stable across hosts.
* **serve_throughput** — jobs/s and p95 wall latency of the
  :mod:`repro.serve` task service: a mixed two-tenant job stream
  through the in-process gateway on the simulated backend (admission,
  batching, per-job accounting — the serving layer's hot path).
* **compile_specialization** — the compile tier's acceptance gates
  (ISSUE 8): serving and the end-to-end Sobel cell with
  ``compile="specialize"`` versus interpreted (capped gated speedups),
  plus the shallow profiler's <5% overhead bar on a specialized chunk
  loop.
* **serve_cluster** — the sharded serving layer's acceptance gates:
  the :func:`repro.cluster.figure.fig_cluster` smoke workload on 1/4/8
  shards (virtual-time speedups, gated at ≥3x and ≥5x), the cluster
  ledger's 2% lifetime-spend parity versus the single-shard figure,
  and the fig-serve two-tenant isolation band replayed across shards.
  Fully virtual-time, so every gated metric is host-independent.
* **payload_bandwidth** — the zero-copy data plane's acceptance gates:
  a Sobel-shaped stream (row blocks of one large float64 image) on the
  process backend with ``shm=true`` versus the pickle plane.  Gates
  the deterministic bytes-not-copied fraction (≥0.9 acceptance; pool-
  backed rows reference, never copy) and the capped ≥1.5× tasks/s
  speedup of shm over pickling the same payloads.
* **serve_scenarios** — the serving job shapes' acceptance gates
  (ISSUE 9): streaming frames/s through the per-stream lane (gated per
  calibration Mop), one deterministic anytime jacobi run's quality
  curve monotone within :data:`~repro.serve.scenarios.QUALITY_EPS`
  (gated bool), and the two registered fault scenarios from
  :mod:`repro.serve.scenarios` all degraded-not-wrong (gated bool).
* **obs_overhead** — the live telemetry plane's cost bar (ISSUE 10):
  the ``serve_throughput`` stream with metrics + spans enabled versus
  ``set_obs_enabled(False)``, interleaved ON/OFF runs, gated on the
  throughput ratio capped at :data:`OBS_OVERHEAD_FLOOR` (≥0.95×
  acceptance — telemetry may cost at most 5% of serve throughput).
* **sweep_pool** — process-engine cells on the shared warm executor
  (:mod:`repro.runtime.pool`) versus a private pool per cell; the
  gated ``reuse_speedup`` ratio is what makes sweeping over
  ``engine="process"`` configurations affordable.

Every probe reports an absolute metric (host wall time — informational)
and a twin normalized against the calibration loop (work per abstract
calibration op — ``gated`` and compared across hosts by CI).
"""

from __future__ import annotations

from typing import Callable

from ..config import RuntimeConfig
from ..experiment import ExperimentSpec, run_one
from ..runtime.scheduler import Scheduler
from ..runtime.task import TaskCost
from .report import Metric
from .timers import BenchSample, TimerFn, default_timer, sample

__all__ = [
    "WORKLOADS",
    "calibrate",
    "bench_scheduler_throughput",
    "bench_spawn_overhead",
    "bench_spawn_many",
    "bench_backend_matrix",
    "bench_end_to_end",
    "bench_governor_convergence",
    "bench_serve_throughput",
    "bench_compile_specialization",
    "bench_serve_cluster",
    "bench_payload_bandwidth",
    "bench_sweep_pool",
]

#: Simulated worker cores used by the runtime microbenchmarks (the
#: paper's testbed width).
N_WORKERS = 16

#: Iterations of the calibration kernel (integer ops; fixed so the
#: normalized metrics of two runs are directly comparable).
CALIBRATION_OPS = 200_000

#: Policies the throughput probe exercises, keyed by metric label.
THROUGHPUT_POLICIES: dict[str, str] = {
    "accurate": "accurate",
    "gtb": "gtb:buffer_size=32",
    "lqh": "lqh",
}


def _noop() -> None:
    return None


def _noop_arg(i: int) -> None:
    # Module-level single-argument body: picklable, so the backend
    # matrix can ship it through the process pool.
    return None


def _calibration_kernel(n: int) -> int:
    """Fixed pure-Python integer loop: the cross-host yardstick."""
    x = 0
    for i in range(n):
        x += i & 7
    return x


def calibrate(timer: TimerFn = default_timer, repeats: int = 3) -> float:
    """Calibration-loop throughput (ops/s) on this host, best of N."""
    s = sample(
        lambda: _calibration_kernel(CALIBRATION_OPS),
        repeats=repeats,
        timer=timer,
    )
    return CALIBRATION_OPS / max(s.best_s, 1e-12)


def _dispatch_n_tasks(policy: str, n_tasks: int, ratio: float) -> Scheduler:
    """Spawn + fully execute ``n_tasks`` trivial tasks under ``policy``."""
    sched = Scheduler(policy=policy, n_workers=N_WORKERS)
    sched.init_group("bench", ratio)
    cost = TaskCost(2000.0, 400.0)
    spawn = sched.spawn
    for i in range(n_tasks):
        spawn(
            _noop,
            significance=(i % 101) / 100.0,
            approxfun=_noop,
            label="bench",
            cost=cost,
        )
    sched.finish()
    return sched


def bench_scheduler_throughput(
    small: bool,
    repeats: int,
    timer: TimerFn,
    calib_ops_per_s: float,
) -> dict[str, Metric]:
    n_tasks = 600 if small else 4000
    metrics: dict[str, Metric] = {}
    for label, spec in THROUGHPUT_POLICIES.items():
        s = sample(
            lambda spec=spec: _dispatch_n_tasks(spec, n_tasks, ratio=0.7),
            repeats=repeats,
            timer=timer,
        )
        tasks_per_s = n_tasks / max(s.best_s, 1e-12)
        metrics[f"scheduler_throughput.{label}.tasks_per_s"] = Metric(
            tasks_per_s, "tasks/s", higher_is_better=True
        )
        # Tasks dispatched per million calibration ops: host-portable.
        metrics[f"scheduler_throughput.{label}.tasks_per_mop"] = Metric(
            tasks_per_s / max(calib_ops_per_s, 1e-12) * 1e6,
            "tasks/Mop",
            higher_is_better=True,
            gated=True,
        )
    return metrics


def bench_spawn_overhead(
    small: bool,
    repeats: int,
    timer: TimerFn,
    calib_ops_per_s: float,
) -> dict[str, Metric]:
    n_tasks = 400 if small else 3000
    cost = TaskCost(2000.0)
    box: dict[str, Scheduler] = {}

    def setup() -> None:
        box["sched"] = Scheduler(policy="accurate", n_workers=N_WORKERS)

    def spawn_loop() -> None:
        spawn = box["sched"].spawn
        for i in range(n_tasks):
            spawn(_noop, significance=(i % 101) / 100.0, cost=cost)

    s: BenchSample = sample(
        spawn_loop, repeats=repeats, timer=timer, setup=setup
    )
    us_per_task = s.best_s / n_tasks * 1e6
    return {
        "spawn_overhead.us_per_task": Metric(
            us_per_task, "us/task", higher_is_better=False
        ),
        # Calibration kops of master work per spawned task.
        "spawn_overhead.kop_per_task": Metric(
            (s.best_s / n_tasks) * calib_ops_per_s / 1e3,
            "kop/task",
            higher_is_better=False,
            gated=True,
        ),
    }


def bench_spawn_many(
    small: bool,
    repeats: int,
    timer: TimerFn,
    calib_ops_per_s: float,
) -> dict[str, Metric]:
    """Batched spawn versus the equivalent spawn loop (same stream)."""
    # The small size stays large enough that the timed region (~ms)
    # dwarfs timer granularity: the headline metric is a ratio of two
    # such regions and noise on either side skews it.
    n_tasks = 800 if small else 3000
    cost = TaskCost(2000.0)
    box: dict[str, Scheduler] = {}

    def setup() -> None:
        box["sched"] = Scheduler(policy="accurate", n_workers=N_WORKERS)

    def spawn_loop() -> None:
        spawn = box["sched"].spawn
        for i in range(n_tasks):
            spawn(_noop_arg, i, significance=(i % 101) / 100.0, cost=cost)

    def spawn_batch() -> None:
        box["sched"].spawn_many(
            _noop_arg,
            [(i,) for i in range(n_tasks)],
            significance=lambda i: (i % 101) / 100.0,
            cost=cost,
        )

    loop = sample(spawn_loop, repeats=repeats, timer=timer, setup=setup)
    batch = sample(spawn_batch, repeats=repeats, timer=timer, setup=setup)
    us_per_task = batch.best_s / n_tasks * 1e6
    return {
        "spawn_many.us_per_task": Metric(
            us_per_task, "us/task", higher_is_better=False
        ),
        "spawn_many.kop_per_task": Metric(
            (batch.best_s / n_tasks) * calib_ops_per_s / 1e3,
            "kop/task",
            higher_is_better=False,
            gated=True,
        ),
        # Loop-vs-batch on the same host and stream: a pure ratio, so
        # host-portable and gated (the ISSUE's ≥1.5× acceptance bar).
        "spawn_many.speedup_vs_loop": Metric(
            loop.best_s / max(batch.best_s, 1e-12),
            "x",
            higher_is_better=True,
            gated=True,
        ),
    }


#: Execution backends exercised by the backend-matrix probe.  The
#: simulated timing is virtual-clock bound (gate-worthy); thread and
#: process timings include real synchronization/IPC and stay
#: informational.
MATRIX_ENGINES: dict[str, str] = {
    "simulated": "simulated",
    "threaded": "threaded",
    "process": "process",
    # The zero-copy data plane on the same payload-free stream:
    # isolates the exporter's fixed overhead (informational; the
    # payload_bandwidth probe gates the payload-bound win).
    "process_shm": "process:shm=true",
}

#: Worker width for the backend matrix: small enough that a process
#: pool spins up quickly in CI smoke runs.
MATRIX_WORKERS = 4


def _dispatch_on_engine(engine: str, n_tasks: int) -> None:
    sched = Scheduler(
        policy="accurate", n_workers=MATRIX_WORKERS, engine=engine
    )
    cost = TaskCost(2000.0)
    sched.spawn_many(
        _noop_arg,
        [(i,) for i in range(n_tasks)],
        cost=cost,
    )
    sched.finish()


def bench_backend_matrix(
    small: bool,
    repeats: int,
    timer: TimerFn,
    calib_ops_per_s: float,
) -> dict[str, Metric]:
    n_tasks = 100 if small else 400
    metrics: dict[str, Metric] = {}
    for label, spec in MATRIX_ENGINES.items():
        s = sample(
            lambda spec=spec: _dispatch_on_engine(spec, n_tasks),
            repeats=repeats,
            timer=timer,
        )
        metrics[f"backend_matrix.{label}.tasks_per_s"] = Metric(
            n_tasks / max(s.best_s, 1e-12),
            "tasks/s",
            higher_is_better=True,
        )
    return metrics


def bench_end_to_end(
    small: bool,
    repeats: int,
    timer: TimerFn,
    calib_ops_per_s: float,
) -> dict[str, Metric]:
    # The cell is always the shrunken Sobel workload: end-to-end latency
    # is about runtime plumbing, not kernel arithmetic.
    config = RuntimeConfig(policy="gtb:buffer_size=32", n_workers=N_WORKERS)
    spec = ExperimentSpec(
        workload="sobel",
        param=0.7,
        config=config,
        small=True,
    )
    s = sample(lambda: run_one(spec), repeats=repeats, timer=timer)
    return {
        "end_to_end.sobel_gtb_s": Metric(
            s.best_s, "s", higher_is_better=False
        ),
        "end_to_end.sobel_gtb_mop": Metric(
            s.best_s * calib_ops_per_s / 1e6,
            "Mop",
            higher_is_better=False,
            gated=True,
        ),
    }


#: Budget fraction of full-precision energy the convergence probe sets.
GOVERNOR_BUDGET_FRAC = 0.7

#: Ticks per run the convergence probe aims for (interval = span / N).
GOVERNOR_TICKS = 40

#: steps_to_converge sentinel for a run that never converged: finite
#: (strict-JSON safe) but orders of magnitude above any real tick
#: count, so the gated lower-is-better comparison always regresses.
UNCONVERGED_STEPS = 999.0


def bench_governor_convergence(
    small: bool,
    repeats: int,
    timer: TimerFn,
    calib_ops_per_s: float,
) -> dict[str, Metric]:
    """Budget-tracking quality of the online governor (gated).

    Unlike the other probes this measures *control* quality, not host
    speed: one deterministic simulated Sobel run per report, budget at
    70% of the measured full-precision energy, LQH supplying the
    per-task decision point the controller steers.  Virtual time plus
    analytic costs make both gated metrics reproducible to the bit on
    any host, so a tolerance-band comparison catches genuine controller
    regressions rather than machine noise.
    """
    from ..kernels.base import get_benchmark

    bench = get_benchmark("sobel", small=True)
    bench.height = bench.width = 128 if small else 256
    inputs = bench.build_input(2015)

    accurate = Scheduler(policy="accurate", n_workers=N_WORKERS)
    bench.run_tasks(accurate, inputs, 1.0)
    full = accurate.finish()

    budget_j = GOVERNOR_BUDGET_FRAC * full.energy_j
    interval = full.makespan_s / GOVERNOR_TICKS
    governed = Scheduler(
        policy="lqh",
        n_workers=N_WORKERS,
        governor=f"governor:budget_j={budget_j},interval={interval}",
    )
    bench.run_tasks(governed, inputs, 1.0)
    report = governed.finish()
    governor = governed.governor

    error_pct = 100.0 * abs(report.energy_j - budget_j) / budget_j
    steps = governor.steps_to_converge
    return {
        # The acceptance bar itself is the gate (1.0 = final energy
        # within 10% of budget): the raw error is a small number whose
        # ratio to a small baseline would turn controller noise floors
        # into spurious "regressions", so it stays informational.
        "governor_convergence.budget_within_10pct": Metric(
            1.0 if error_pct <= 10.0 else 0.0,
            "bool",
            higher_is_better=True,
            gated=True,
        ),
        "governor_convergence.budget_error_pct": Metric(
            error_pct, "%", higher_is_better=False
        ),
        "governor_convergence.steps_to_converge": Metric(
            # An unconverged run reports a finite sentinel far above any
            # real tick count, so it gates as "worse than any baseline"
            # while the report stays strict-JSON (inf would serialize
            # as the non-standard `Infinity` token).
            float(steps) if steps is not None else UNCONVERGED_STEPS,
            "ticks",
            higher_is_better=False,
            gated=True,
        ),
        "governor_convergence.final_ratio": Metric(
            governor.ratio, "ratio", higher_is_better=True
        ),
        "governor_convergence.ticks": Metric(
            float(governor.ticks), "ticks", higher_is_better=False
        ),
    }


#: Mixed-tenant job stream size for the serve-throughput probe.
SERVE_JOBS_SMALL = 24
SERVE_JOBS_FULL = 96


def _serve_stream(n_jobs: int, compile_spec: str = "off") -> list[float]:
    """Run one mixed-tenant stream through a LocalGateway; per-job
    wall latencies are returned for the p95 metric."""
    from ..serve import JobRequest, LocalGateway

    gateway = LocalGateway(
        config=RuntimeConfig(
            policy="gtb-max", n_workers=N_WORKERS, compile=compile_spec
        ),
        tenants=(
            "standard:name='acme',max_pending=4096",
            "premium:name='bee',max_pending=4096",
        ),
        compute_quality=False,
    )
    requests = []
    for i in range(n_jobs):
        tenant = "acme" if i % 2 == 0 else "bee"
        if i % 3 == 0:
            kernel, args = "mc-pi", {"blocks": 8, "samples": 256, "seed": i}
        else:
            # Distinct seeds: throughput must measure serving, not the
            # result cache.
            kernel, args = "sobel", {"size": 32, "seed": i}
        requests.append(
            JobRequest(tenant=tenant, kernel=kernel, args=args, ratio=0.8)
        )
    reports = gateway.submit_many(requests)
    gateway.close()
    return [r.wall_latency_s for r in reports]


def bench_serve_throughput(
    small: bool,
    repeats: int,
    timer: TimerFn,
    calib_ops_per_s: float,
) -> dict[str, Metric]:
    """Serving-layer hot path: admission -> batch -> settle, per job."""
    n_jobs = SERVE_JOBS_SMALL if small else SERVE_JOBS_FULL
    box: dict[str, list[float]] = {}

    def stream() -> None:
        box["lat"] = _serve_stream(n_jobs)

    from ..serve.figure import percentile

    s = sample(stream, repeats=repeats, timer=timer)
    jobs_per_s = n_jobs / max(s.best_s, 1e-12)
    p95 = percentile(box.get("lat", [0.0]), 0.95)
    return {
        "serve_throughput.jobs_per_s": Metric(
            jobs_per_s, "jobs/s", higher_is_better=True
        ),
        "serve_throughput.p95_latency_ms": Metric(
            p95 * 1e3, "ms", higher_is_better=False
        ),
        # Jobs served per million calibration ops: host-portable, gated.
        "serve_throughput.jobs_per_mop": Metric(
            jobs_per_s / max(calib_ops_per_s, 1e-12) * 1e6,
            "jobs/Mop",
            higher_is_better=True,
            gated=True,
        ),
    }


#: Telemetry cost bar: serve throughput with metrics+spans enabled must
#: stay at or above this fraction of the telemetry-off throughput.
OBS_OVERHEAD_FLOOR = 0.95


def bench_obs_overhead(
    small: bool,
    repeats: int,
    timer: TimerFn,
    calib_ops_per_s: float,
) -> dict[str, Metric]:
    """Cost of the live telemetry plane on the serve hot path.

    Runs the ``serve_throughput`` stream with telemetry ON (the
    default: a private registry plus span recorder per service, every
    instrumented site live) and OFF (``set_obs_enabled(False)``, so
    services hold ``None`` handles) and gates on the throughput ratio.
    The gate value is capped at :data:`OBS_OVERHEAD_FLOOR`: a healthy
    tree saturates the cap, while a telemetry regression that eats
    more than 5% of serve throughput drops below it and fails the
    baseline comparison.

    A single short stream's wall time wobbles ~10% run to run (thread
    scheduling), which would drown the <5% effect being measured, so
    the probe interleaves ON/OFF runs over a doubled stream length
    after one untimed warmup, and — since host noise is strictly
    additive (see :mod:`repro.bench.timers`) — compares the *best*
    time of each mode.  The median interleaved-pair ratio rides along
    as a dispersion diagnostic.
    """
    import statistics

    from ..obs import set_obs_enabled

    n_jobs = 4 * SERVE_JOBS_FULL
    pairs = max(repeats, 8)

    def stream_on() -> None:
        _serve_stream(n_jobs)

    def stream_off() -> None:
        prev = set_obs_enabled(False)
        try:
            _serve_stream(n_jobs)
        finally:
            set_obs_enabled(prev)

    stream_on()  # warmup: imports, allocator, thread-pool page faults
    ratios: list[float] = []
    on_best = off_best = float("inf")
    for _ in range(pairs):
        t_on = sample(stream_on, repeats=1, timer=timer).best_s
        t_off = sample(stream_off, repeats=1, timer=timer).best_s
        on_best = min(on_best, t_on)
        off_best = min(off_best, t_off)
        # Throughput ratio ON/OFF == time ratio OFF/ON.
        ratios.append(t_off / max(t_on, 1e-12))
    ratio = off_best / max(on_best, 1e-12)
    # Two noise-robust estimators of the same quantity: best-vs-best
    # (additive-noise floor) and the median interleaved-pair ratio
    # (drift-immune).  The gate takes the more favorable one — either
    # alone still wobbles a couple of percent around a true ~0.97,
    # while a genuine >5% telemetry regression drags both under the
    # cap together.
    gate = max(ratio, statistics.median(ratios))
    return {
        "obs_overhead.gate": Metric(
            min(gate, OBS_OVERHEAD_FLOOR),
            "x",
            higher_is_better=True,
            gated=True,
        ),
        "obs_overhead.throughput_ratio": Metric(
            ratio, "x", higher_is_better=True
        ),
        "obs_overhead.median_pair_ratio": Metric(
            statistics.median(ratios), "x", higher_is_better=True
        ),
        "obs_overhead.on_jobs_per_s": Metric(
            n_jobs / max(on_best, 1e-12),
            "jobs/s",
            higher_is_better=True,
        ),
        "obs_overhead.off_jobs_per_s": Metric(
            n_jobs / max(off_best, 1e-12),
            "jobs/s",
            higher_is_better=True,
        ),
    }


#: Speedup acceptance bars of the sharded serving layer (the ISSUE's
#: ≥3x jobs/s at 4 shards, ≥5x at 8, on the smoke workload).
CLUSTER_SPEEDUP_4X = 3.0
CLUSTER_SPEEDUP_8X = 5.0


def bench_serve_cluster(
    small: bool,
    repeats: int,
    timer: TimerFn,
    calib_ops_per_s: float,
) -> dict[str, Metric]:
    """Sharded-serving acceptance gates (virtual time; repeats ignored).

    Like ``governor_convergence`` this measures claims, not host speed:
    one deterministic :func:`~repro.cluster.figure.fig_cluster` run
    supplies the scaling, ledger-parity and isolation verdicts.  The
    speedup gates are capped at their acceptance bars — the raw ratios
    wobble with workload balance across shards, but any healthy tree
    saturates the cap (gate value exactly at the bar, ratio 1.0 against
    the baseline), while a scaling regression drops below it and fails
    the tolerance band.
    """
    from ..cluster.figure import PARITY_TOLERANCE, fig_cluster

    data = fig_cluster(small=small, n_workers=N_WORKERS)
    s4, s8 = data.speedup(4), data.speedup(8)
    return {
        "serve_cluster.speedup_4shard": Metric(
            s4, "x", higher_is_better=True
        ),
        "serve_cluster.speedup_4shard_min3x": Metric(
            min(s4, CLUSTER_SPEEDUP_4X), "x",
            higher_is_better=True, gated=True,
        ),
        "serve_cluster.speedup_8shard": Metric(
            s8, "x", higher_is_better=True
        ),
        "serve_cluster.speedup_8shard_min5x": Metric(
            min(s8, CLUSTER_SPEEDUP_8X), "x",
            higher_is_better=True, gated=True,
        ),
        "serve_cluster.ledger_parity_pct": Metric(
            100.0 * data.parity_error, "%", higher_is_better=False
        ),
        # Acceptance bar itself (spend within PARITY_TOLERANCE of the
        # single-shard ledger figure): the raw deviation is ~1e-12 and
        # a ratio of two such floats would gate on noise.
        f"serve_cluster.parity_within_{int(PARITY_TOLERANCE * 100)}pct":
            Metric(
                1.0 if data.parity_ok else 0.0, "bool",
                higher_is_better=True, gated=True,
            ),
        "serve_cluster.isolated": Metric(
            1.0 if data.isolated else 0.0, "bool",
            higher_is_better=True, gated=True,
        ),
        "serve_cluster.b_p95_delta_pct": Metric(
            100.0 * data.b_p95_delta, "%", higher_is_better=False
        ),
        "serve_cluster.jobs_per_s_8shard": Metric(
            data.scale_runs[8]["jobs_per_s"], "jobs/s",
            higher_is_better=True,
        ),
    }


#: Row blocks the payload-bandwidth probe splits its image into (the
#: Sobel task shape: disjoint row bands of one shared frame).
PAYLOAD_BLOCKS = 16

#: Acceptance bars of the zero-copy data plane (ISSUE 7): ≥90% of
#: payload bytes mapped rather than copied, ≥1.5× tasks/s over pickle.
PAYLOAD_NOT_COPIED_MIN = 0.9
PAYLOAD_SPEEDUP_CAP = 1.5


def _payload_block_touch(block) -> float:
    # Touch one row of a big block: the probe times payload transport,
    # not kernel arithmetic.
    return float(block[0].sum())


def _payload_stream(engine: str, image, n_blocks: int) -> Scheduler:
    """Dispatch one Sobel-shaped stream: each task reads one row band."""
    sched = Scheduler(
        policy="accurate", n_workers=MATRIX_WORKERS, engine=engine
    )
    rows = image.shape[0] // n_blocks
    sched.spawn_many(
        _payload_block_touch,
        [(image[i * rows : (i + 1) * rows],) for i in range(n_blocks)],
        cost=TaskCost(2000.0),
    )
    sched.finish()
    return sched


def bench_payload_bandwidth(
    small: bool,
    repeats: int,
    timer: TimerFn,
    calib_ops_per_s: float,
) -> dict[str, Metric]:
    """Zero-copy data plane vs pickling the same payloads (gated).

    The stream is payload-bound by construction (256 KiB-1 MiB per
    task, trivial arithmetic), so the pickle plane pays serialization
    plus pipe transfer per task while the shm plane ships a fixed-size
    :class:`~repro.runtime.memory.ArrayRef`.  The bytes-not-copied
    fraction comes from the exporter's own byte ledger on a dedicated
    untimed run — pool-backed row bands are referenced, never copied,
    so the gate is deterministic on any host.  The speedup gate is
    capped at its 1.5× acceptance bar, like ``sweep_pool``: healthy
    hosts saturate the cap and a transport regression falls below it.
    """
    import numpy as np

    from ..runtime.memory import shared_array_pool

    shape = (512, 1024) if small else (1024, 2048)  # 4 / 16 MiB
    pool = shared_array_pool()
    shm_img = pool.ndarray(shape)
    shm_img[...] = 1.0
    pickle_img = np.ones(shape)
    try:
        # Warm both engines' process pools out of the timed region.
        _payload_stream("process:shm=true", shm_img, PAYLOAD_BLOCKS)
        _payload_stream("process", pickle_img, PAYLOAD_BLOCKS)
        shm = sample(
            lambda: _payload_stream(
                "process:shm=true", shm_img, PAYLOAD_BLOCKS
            ),
            repeats=repeats,
            timer=timer,
        )
        pickled = sample(
            lambda: _payload_stream(
                "process", pickle_img, PAYLOAD_BLOCKS
            ),
            repeats=repeats,
            timer=timer,
        )
        stats = _payload_stream(
            "process:shm=true", shm_img, PAYLOAD_BLOCKS
        ).engine.data_plane_stats
    finally:
        pool.release_array(shm_img)
    speedup = pickled.best_s / max(shm.best_s, 1e-12)
    return {
        # Deterministic byte ledger: gated directly (≥0.9 acceptance).
        "payload_bandwidth.bytes_not_copied_frac": Metric(
            stats.bytes_not_copied_frac, "frac",
            higher_is_better=True, gated=True,
        ),
        "payload_bandwidth.bytes_referenced_mb": Metric(
            stats.bytes_referenced / 2**20, "MiB",
            higher_is_better=True,
        ),
        "payload_bandwidth.shm_tasks_per_s": Metric(
            PAYLOAD_BLOCKS / max(shm.best_s, 1e-12), "tasks/s",
            higher_is_better=True,
        ),
        "payload_bandwidth.pickle_tasks_per_s": Metric(
            PAYLOAD_BLOCKS / max(pickled.best_s, 1e-12), "tasks/s",
            higher_is_better=True,
        ),
        "payload_bandwidth.shm_speedup": Metric(
            speedup, "x", higher_is_better=True
        ),
        "payload_bandwidth.shm_speedup_min1_5x": Metric(
            min(speedup, PAYLOAD_SPEEDUP_CAP), "x",
            higher_is_better=True, gated=True,
        ),
    }


#: Speedup acceptance caps of the compile tier (ISSUE 8): specialized
#: serving and the specialized end-to-end Sobel cell must beat their
#: interpreted twins.  The raw ratios depend on host Python dispatch
#: cost, so the gates are capped at conservative bars any healthy host
#: saturates.
COMPILE_SERVE_SPEEDUP_CAP = 1.15
COMPILE_E2E_SPEEDUP_CAP = 1.2

#: The shallow profiler's acceptance bar: <5% wall overhead on a
#: payload-bound specialized chunk loop.
PROFILE_OVERHEAD_MAX_PCT = 5.0


def _e2e_sobel_cell(compile_spec: str) -> None:
    """One small Sobel experiment cell, interpreted or specialized."""
    config = RuntimeConfig(
        policy="gtb-max", n_workers=N_WORKERS, compile=compile_spec
    )
    run_one(
        ExperimentSpec(
            workload="sobel", param=0.7, config=config, small=True
        )
    )


def bench_compile_specialization(
    small: bool,
    repeats: int,
    timer: TimerFn,
    calib_ops_per_s: float,
) -> dict[str, Metric]:
    """The compile tier's acceptance gates (ISSUE 8).

    Three claims, measured against their interpreted twins on the same
    stream:

    * the serving layer gets faster with ``compile="specialize"`` on —
      admission folds each job's significance decisions once and runs
      a handful of branch-free chunk tasks instead of one task per
      element;
    * the end-to-end Sobel cell (``ExperimentSpec`` → quality/energy
      report) gets faster the same way;
    * the recompyle-style shallow profiler costs <5% wall overhead on
      a specialized chunk loop (interleaved best-of lap timing, so
      background noise hits both variants alike).

    The speedup gates are capped at their acceptance bars (the raw
    ratios are host-dependent); the profiler gate is the acceptance
    boolean itself.
    """
    import time as _time

    from ..compiler.specialize import compile_chunk_body
    from ..kernels.sobel import sobel_row_value
    from ..quality.images import synthetic_image

    n_jobs = SERVE_JOBS_SMALL if small else SERVE_JOBS_FULL
    off = sample(
        lambda: _serve_stream(n_jobs, "off"), repeats=repeats, timer=timer
    )
    on = sample(
        lambda: _serve_stream(n_jobs, "specialize"),
        repeats=repeats,
        timer=timer,
    )
    serve_speedup = off.best_s / max(on.best_s, 1e-12)

    e2e_off = sample(
        lambda: _e2e_sobel_cell("off"), repeats=repeats, timer=timer
    )
    e2e_on = sample(
        lambda: _e2e_sobel_cell("specialize"),
        repeats=repeats,
        timer=timer,
    )
    e2e_speedup = e2e_off.best_s / max(e2e_on.best_s, 1e-12)

    # Profiler overhead: one heavy specialized chunk, plain vs profiled,
    # interleaved so noise cancels in the ratio.
    # Full-width rows even in smoke runs: the gate measures the probe's
    # relative cost, and a narrow row inflates it with call overhead.
    img = synthetic_image(130, 1024, 1)
    members = tuple((img[i - 1 : i + 2], i) for i in range(1, 129))
    plain, _ = compile_chunk_body(sobel_row_value, "bench")
    profiled, _ = compile_chunk_body(sobel_row_value, "bench", profile=True)
    plain(members, 0)
    profiled(members, 0)
    t_plain = t_prof = float("inf")
    for _ in range(max(repeats * 5, 10)):
        t0 = _time.perf_counter()
        plain(members, 0)
        t1 = _time.perf_counter()
        profiled(members, 0)
        t2 = _time.perf_counter()
        t_plain = min(t_plain, t1 - t0)
        t_prof = min(t_prof, t2 - t1)
    overhead_pct = 100.0 * (t_prof - t_plain) / max(t_plain, 1e-12)

    return {
        "compile_specialization.serve_jobs_per_s": Metric(
            n_jobs / max(on.best_s, 1e-12), "jobs/s",
            higher_is_better=True,
        ),
        "compile_specialization.serve_speedup": Metric(
            serve_speedup, "x", higher_is_better=True
        ),
        "compile_specialization.serve_speedup_min1_15x": Metric(
            min(serve_speedup, COMPILE_SERVE_SPEEDUP_CAP), "x",
            higher_is_better=True, gated=True,
        ),
        "compile_specialization.e2e_sobel_speedup": Metric(
            e2e_speedup, "x", higher_is_better=True
        ),
        "compile_specialization.e2e_sobel_speedup_min1_2x": Metric(
            min(e2e_speedup, COMPILE_E2E_SPEEDUP_CAP), "x",
            higher_is_better=True, gated=True,
        ),
        "compile_specialization.profile_overhead_pct": Metric(
            overhead_pct, "%", higher_is_better=False
        ),
        "compile_specialization.profile_overhead_lt_5pct": Metric(
            1.0 if overhead_pct < PROFILE_OVERHEAD_MAX_PCT else 0.0,
            "bool",
            higher_is_better=True,
            gated=True,
        ),
    }


def _sweep_process_cells(reuse: bool, n_cells: int, n_tasks: int) -> None:
    """A mini sweep: ``n_cells`` schedulers on the process backend."""
    engine = (
        "process:max_procs=2,reuse_pool=true"
        if reuse
        else "process:max_procs=2,reuse_pool=false"
    )
    cost = TaskCost(2000.0)
    for _ in range(n_cells):
        sched = Scheduler(policy="accurate", n_workers=2, engine=engine)
        sched.spawn_many(_noop_arg, [(i,) for i in range(n_tasks)], cost=cost)
        sched.finish()


def bench_sweep_pool(
    small: bool,
    repeats: int,
    timer: TimerFn,
    calib_ops_per_s: float,
) -> dict[str, Metric]:
    """Shared warm pool vs pool-per-cell across sweep cells (gated)."""
    n_cells = 3 if small else 4
    n_tasks = 8 if small else 32
    # Warm the shared executor once so the reuse variant measures
    # steady-state sweeps, not first-ever pool creation.
    _sweep_process_cells(True, 1, 2)
    warm = sample(
        lambda: _sweep_process_cells(True, n_cells, n_tasks),
        repeats=repeats,
        timer=timer,
    )
    cold = sample(
        lambda: _sweep_process_cells(False, n_cells, n_tasks),
        repeats=repeats,
        timer=timer,
    )
    speedup = cold.best_s / max(warm.best_s, 1e-12)
    return {
        "sweep_pool.cell_ms": Metric(
            warm.best_s / n_cells * 1e3, "ms", higher_is_better=False
        ),
        "sweep_pool.cold_cell_ms": Metric(
            cold.best_s / n_cells * 1e3, "ms", higher_is_better=False
        ),
        "sweep_pool.reuse_speedup": Metric(
            speedup, "x", higher_is_better=True
        ),
        # The raw ratio is pool-startup cost over task roundtrip cost —
        # very host-dependent (fork speed, scheduler) — so the gate is
        # the capped acceptance bar: reuse must improve sweep wall time
        # by at least 2x.  Any healthy host saturates the cap (value
        # exactly 2.0, ratio 1.0 vs baseline); a reuse regression drops
        # toward 1.0 and fails the tolerance band.
        "sweep_pool.reuse_speedup_min2x": Metric(
            min(speedup, 2.0),
            "x",
            higher_is_better=True,
            gated=True,
        ),
    }


def _scenario_stream(n_frames: int) -> None:
    """One ordered stream of distinct frames through the task service
    — the streaming fast path (lane bookkeeping + admission + batch),
    flushed often enough to stay inside the stream window."""
    from ..serve import JobRequest, TaskService

    with TaskService(
        RuntimeConfig(policy="gtb-max", n_workers=N_WORKERS),
        tenants=("standard:name='acme',max_pending=4096",),
        compute_quality=False,
    ) as svc:
        for i in range(n_frames):
            svc.submit(
                JobRequest(
                    tenant="acme",
                    kernel="sobel",
                    # Distinct seeds: throughput must measure serving,
                    # not the result cache.
                    args={"size": 24, "seed": i},
                    ratio=0.9,
                    stream="cam0",
                )
            )
            if (i + 1) % 8 == 0:
                svc.flush()
        svc.flush()


def bench_serve_scenarios(
    small: bool,
    repeats: int,
    timer: TimerFn,
    calib_ops_per_s: float,
) -> dict[str, Metric]:
    """Job-shape acceptance gates (ISSUE 9): streaming frame
    throughput, anytime monotonic refinement, faults degraded-not-
    wrong.

    The two bools are claims, not host speed — one deterministic
    anytime jacobi run and the two registered fault scenarios from
    :mod:`repro.serve.scenarios` (virtual-time simulated engine, fixed
    fault seed), so they are bit-stable across hosts.
    """
    from ..serve import JobRequest, TaskService
    from ..serve.scenarios import QUALITY_EPS, run_scenarios

    n_frames = SERVE_JOBS_SMALL if small else SERVE_JOBS_FULL
    s = sample(
        lambda: _scenario_stream(n_frames),
        repeats=repeats,
        timer=timer,
    )
    frames_per_s = n_frames / max(s.best_s, 1e-12)

    qualities: list[float] = []

    def record_round(rr) -> bool:
        qualities.append(rr.quality)
        return True

    with TaskService(
        RuntimeConfig(policy="gtb-max", n_workers=N_WORKERS),
        tenants=("premium:name='lab'",),
    ) as svc:
        svc.submit_anytime(
            JobRequest(
                tenant="lab",
                kernel="jacobi",
                args={"n": 64, "chunk": 8, "seed": 3},
                ratio=1.0,
                rounds=6,
            ),
            on_round=record_round,
        )
    monotone = len(qualities) >= 2 and all(
        qualities[i + 1] <= qualities[i] + QUALITY_EPS
        for i in range(len(qualities) - 1)
    )

    fault_reports = run_scenarios(
        ["faults-under-serve", "faults-under-cluster"],
        small=True,
        n_workers=8,
    )
    degraded_not_wrong = all(r.passed for r in fault_reports)

    return {
        "serve_scenarios.streaming_frames_per_s": Metric(
            frames_per_s, "frames/s", higher_is_better=True
        ),
        # Frames served per million calibration ops: host-portable,
        # gated (the streaming lane must not regress vs batch serving).
        "serve_scenarios.streaming_frames_per_mop": Metric(
            frames_per_s / max(calib_ops_per_s, 1e-12) * 1e6,
            "frames/Mop",
            higher_is_better=True,
            gated=True,
        ),
        "serve_scenarios.anytime_monotone": Metric(
            1.0 if monotone else 0.0,
            "bool",
            higher_is_better=True,
            gated=True,
        ),
        "serve_scenarios.anytime_final_quality": Metric(
            qualities[-1] if qualities else 1.0,
            "dist",
            higher_is_better=False,
        ),
        "serve_scenarios.fault_degraded_not_wrong": Metric(
            1.0 if degraded_not_wrong else 0.0,
            "bool",
            higher_is_better=True,
            gated=True,
        ),
    }


#: Signature every bench workload satisfies:
#: ``fn(small, repeats, timer, calib_ops_per_s) -> {name: Metric}``.
WorkloadFn = Callable[[bool, int, TimerFn, float], dict[str, Metric]]

#: Registry of bench workloads, in report order.
WORKLOADS: dict[str, WorkloadFn] = {
    "scheduler_throughput": bench_scheduler_throughput,
    "spawn_overhead": bench_spawn_overhead,
    "spawn_many": bench_spawn_many,
    "backend_matrix": bench_backend_matrix,
    "end_to_end": bench_end_to_end,
    "governor_convergence": bench_governor_convergence,
    "serve_throughput": bench_serve_throughput,
    "obs_overhead": bench_obs_overhead,
    "compile_specialization": bench_compile_specialization,
    "serve_cluster": bench_serve_cluster,
    "payload_bandwidth": bench_payload_bandwidth,
    "sweep_pool": bench_sweep_pool,
    "serve_scenarios": bench_serve_scenarios,
}
