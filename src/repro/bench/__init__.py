"""``repro.bench`` — the performance-tracking subsystem.

Measures scheduler throughput, spawn overhead and end-to-end cell
latency; emits the machine-readable ``BENCH_runtime.json`` trajectory
artifact; and gates CI on regressions against a committed baseline.
Front doors: :func:`run_bench` (Python) and
``python -m repro.harness bench`` (CLI).
"""

from .report import (
    DEFAULT_TOLERANCE,
    SCHEMA,
    BaselineComparison,
    BenchReport,
    Metric,
    MetricComparison,
    compare_to_baseline,
    format_metrics_table,
    load_report,
    merge_metrics,
)
from .runner import BenchConfig, run_bench
from .timers import BenchSample, TimerFn, default_timer, sample
from .workloads import WORKLOADS, calibrate

__all__ = [
    "SCHEMA",
    "DEFAULT_TOLERANCE",
    "Metric",
    "MetricComparison",
    "BaselineComparison",
    "BenchReport",
    "BenchConfig",
    "BenchSample",
    "TimerFn",
    "WORKLOADS",
    "calibrate",
    "compare_to_baseline",
    "default_timer",
    "format_metrics_table",
    "load_report",
    "merge_metrics",
    "run_bench",
    "sample",
]
