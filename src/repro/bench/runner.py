"""The bench runner: measure, normalize, compare, emit stable JSON.

``run_bench()`` is what the harness CLI's ``bench`` subcommand calls; it
is equally usable from Python::

    from repro.bench import BenchConfig, run_bench
    report = run_bench(BenchConfig(small=True))
    print(report.to_json())

The runner is deliberately deterministic in structure: workloads run in
registry order, metrics are merged with duplicate detection, and the
emitted JSON has sorted keys — so two runs of the same tree differ only
in measured values, keeping ``BENCH_runtime.json`` diffs reviewable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..runtime.errors import ConfigError
from .report import (
    DEFAULT_TOLERANCE,
    BenchReport,
    compare_to_baseline,
    load_report,
    merge_metrics,
)
from .timers import TimerFn, default_timer
from .workloads import N_WORKERS, WORKLOADS, calibrate

__all__ = ["BenchConfig", "run_bench"]


@dataclass(frozen=True)
class BenchConfig:
    """What to measure and what to compare against."""

    #: Shrunken workloads (CI smoke mode; ``REPRO_BENCH_SMALL=1``).
    small: bool = False
    #: Timing repeats per probe (best-of aggregation; 5 rides out
    #: transient host-load spikes that best-of-3 was seen to admit).
    repeats: int = 5
    #: Subset of workload names to run (default: all, registry order).
    workloads: tuple[str, ...] = ()
    #: Baselines to compare against: label -> report path.
    baselines: dict[str, Path] = field(default_factory=dict)
    #: Fractional tolerance band for regression verdicts.
    tolerance: float = DEFAULT_TOLERANCE
    #: Injectable clock (tests pass deterministic fakes).
    timer: TimerFn = default_timer

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ConfigError(
                f"bench repeats must be >= 1, got {self.repeats}"
            )
        unknown = set(self.workloads) - set(WORKLOADS)
        if unknown:
            raise ConfigError(
                f"unknown bench workloads {sorted(unknown)}; "
                f"available: {sorted(WORKLOADS)}"
            )


def run_bench(config: BenchConfig | None = None) -> BenchReport:
    """Run the configured microbenchmarks; return the full report.

    Comparison failures do not raise — CI inspects
    ``report.comparisons[...].ok`` (via the CLI's exit code) so the
    report file is always written, even for regressing runs.
    """
    config = config or BenchConfig()
    selected = config.workloads or tuple(WORKLOADS)

    calib_ops_per_s = calibrate(timer=config.timer, repeats=config.repeats)
    parts = []
    for name in selected:
        fn = WORKLOADS[name]
        parts.append(
            fn(config.small, config.repeats, config.timer, calib_ops_per_s)
        )
    report = BenchReport(
        small=config.small,
        repeats=config.repeats,
        n_workers=N_WORKERS,
        calibration_ops_per_s=calib_ops_per_s,
        metrics=merge_metrics(parts),
    )
    for label, path in sorted(config.baselines.items()):
        report.comparisons[label] = compare_to_baseline(
            report.metrics,
            load_report(path),
            tolerance=config.tolerance,
            label=label,
        )
    return report
