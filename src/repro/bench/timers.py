"""Timing primitives for the performance-tracking subsystem.

Every measurement in :mod:`repro.bench` flows through an injectable
*timer* — any zero-argument callable returning seconds as a float.  The
default is :func:`time.perf_counter`; tests inject scripted fake timers
so the whole pipeline (sampling, statistics, baseline comparison, JSON
export) is exercised deterministically, without ever sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["TimerFn", "BenchSample", "sample", "default_timer"]

#: A clock: zero-argument callable returning monotonically increasing
#: seconds.  ``time.perf_counter`` in production; a fake in tests.
TimerFn = Callable[[], float]

#: The production clock.
default_timer: TimerFn = time.perf_counter


@dataclass(frozen=True)
class BenchSample:
    """Aggregated timings of one benchmarked callable.

    ``best_s`` is the headline number: the minimum over repeats is the
    closest observable to the true cost of the code under test (noise on
    a shared host is strictly additive).  ``mean_s`` is kept for
    dispersion diagnostics.
    """

    best_s: float
    mean_s: float
    repeats: int

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")
        if self.best_s < 0 or self.mean_s < 0:
            raise ValueError(f"negative timing in {self!r}")


def sample(
    fn: Callable[[], object],
    repeats: int = 3,
    timer: TimerFn = default_timer,
    setup: Callable[[], object] | None = None,
) -> BenchSample:
    """Time ``fn()`` ``repeats`` times; return best/mean wall seconds.

    ``setup`` runs before each repeat, outside the timed region (used to
    build fresh scheduler state so repeats do not accumulate tasks).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    times: list[float] = []
    for _ in range(repeats):
        if setup is not None:
            setup()
        t0 = timer()
        fn()
        t1 = timer()
        dt = t1 - t0
        if dt < 0:
            raise ValueError(
                f"timer went backwards: {t1} < {t0} (broken timer injection?)"
            )
        times.append(dt)
    return BenchSample(
        best_s=min(times),
        mean_s=sum(times) / len(times),
        repeats=repeats,
    )
