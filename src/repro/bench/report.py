"""Bench report schema, stable JSON export and baseline comparison.

The contract with CI (see ``.github/workflows/ci.yml``): the runner
emits one ``BENCH_runtime.json`` per invocation, with deterministic key
order, a fixed schema tag and a ``gated`` flag on every metric that is
meaningful to compare across hosts.  Comparison against a committed
baseline happens on the gated metrics only — those are normalized
against the in-run Python calibration loop, so a slow CI container and
a fast laptop judge the runtime by the same yardstick.
"""

from __future__ import annotations

import json
import platform
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from ..runtime.errors import ConfigError

__all__ = [
    "SCHEMA",
    "Metric",
    "BenchReport",
    "MetricComparison",
    "BaselineComparison",
    "compare_to_baseline",
    "load_report",
]

#: Schema tag written into (and required from) every report file.
SCHEMA = "repro-bench/v1"

#: Default regression tolerance: a gated metric may be up to this
#: fraction worse than the baseline before CI fails (satellite spec:
#: "fails on >25% regression vs the committed baseline").
DEFAULT_TOLERANCE = 0.25


@dataclass(frozen=True)
class Metric:
    """One measured quantity.

    ``gated=True`` marks host-portable metrics (normalized against the
    calibration loop) that baseline comparison may fail CI on; absolute
    wall-clock metrics stay informational.
    """

    value: float
    unit: str
    higher_is_better: bool
    gated: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "value": _round_sig(self.value),
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
            "gated": self.gated,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Metric":
        return cls(
            value=float(data["value"]),
            unit=str(data.get("unit", "")),
            higher_is_better=bool(data.get("higher_is_better", False)),
            gated=bool(data.get("gated", False)),
        )


@dataclass(frozen=True)
class MetricComparison:
    """One metric measured now versus its baseline value.

    ``speedup`` is direction-normalized: > 1.0 always means "better than
    baseline", whichever way the metric points.
    """

    name: str
    current: float
    baseline: float
    speedup: float
    gated: bool
    regressed: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "current": _round_sig(self.current),
            "baseline": _round_sig(self.baseline),
            "speedup": _round_sig(self.speedup),
            "gated": self.gated,
            "regressed": self.regressed,
        }


@dataclass(frozen=True)
class BaselineComparison:
    """Outcome of comparing a report against one baseline file."""

    label: str
    tolerance: float
    metrics: tuple[MetricComparison, ...]

    @property
    def regressions(self) -> tuple[MetricComparison, ...]:
        return tuple(m for m in self.metrics if m.regressed)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict[str, Any]:
        return {
            "tolerance": self.tolerance,
            "ok": self.ok,
            "regressions": sorted(m.name for m in self.regressions),
            "metrics": {m.name: m.to_dict() for m in self.metrics},
        }

    def summary(self) -> str:
        lines = [f"[{self.label}] tolerance ±{self.tolerance:.0%}"]
        for m in self.metrics:
            if m.regressed:
                flag = "REGRESSED"
            else:
                flag = "gated" if m.gated else "info"
            lines.append(
                f"  {m.name}: {m.current:.6g} vs {m.baseline:.6g} "
                f"(x{m.speedup:.2f}, {flag})"
            )
        return "\n".join(lines)


@dataclass
class BenchReport:
    """Everything one ``repro.bench`` invocation measured."""

    small: bool
    repeats: int
    n_workers: int
    calibration_ops_per_s: float
    metrics: dict[str, Metric] = field(default_factory=dict)
    comparisons: dict[str, BaselineComparison] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "config": {
                "small": self.small,
                "repeats": self.repeats,
                "n_workers": self.n_workers,
            },
            "host": {
                "python": platform.python_version(),
                "implementation": platform.python_implementation(),
                "platform": sys.platform,
            },
            "calibration": {
                "ops_per_s": _round_sig(self.calibration_ops_per_s),
            },
            "metrics": {
                name: m.to_dict() for name, m in sorted(self.metrics.items())
            },
            "comparisons": {
                label: c.to_dict()
                for label, c in sorted(self.comparisons.items())
            },
        }

    def to_json(self) -> str:
        """Stable serialization: sorted keys, fixed indent, newline-EOF."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path


def _round_sig(value: float, digits: int = 6) -> float:
    """Round to significant digits so report diffs stay readable."""
    if value == 0 or value != value or value in (float("inf"), float("-inf")):
        return value
    return float(f"{value:.{digits}g}")


def load_report(path: str | Path) -> dict[str, Metric]:
    """Load the ``metrics`` mapping of a previously written report."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot read bench report {path}: {exc}") from exc
    if data.get("schema") != SCHEMA:
        raise ConfigError(
            f"bench report {path} has schema {data.get('schema')!r}; "
            f"expected {SCHEMA!r}"
        )
    metrics = data.get("metrics")
    if not isinstance(metrics, dict):
        raise ConfigError(f"bench report {path} has no metrics mapping")
    return {name: Metric.from_dict(m) for name, m in metrics.items()}


def compare_to_baseline(
    current: dict[str, Metric],
    baseline: dict[str, Metric],
    tolerance: float = DEFAULT_TOLERANCE,
    label: str = "baseline",
    gated_only_regressions: bool = True,
) -> BaselineComparison:
    """Compare current metrics against a baseline with a tolerance band.

    Every metric present in both sets is compared; a metric *regresses*
    when it is worse than the baseline by more than ``tolerance``
    (fractional) *and* it is gated in the baseline (unless
    ``gated_only_regressions`` is off, in which case every shared metric
    can regress).  Metrics missing on either side are ignored — adding a
    microbenchmark must not fail CI retroactively.
    """
    if tolerance < 0:
        raise ConfigError(f"tolerance must be >= 0, got {tolerance}")
    rows: list[MetricComparison] = []
    for name in sorted(set(current) & set(baseline)):
        cur, base = current[name], baseline[name]
        if base.value <= 0 or cur.value < 0:
            # Degenerate measurements cannot be ratio-compared.
            continue
        if base.higher_is_better:
            speedup = cur.value / base.value
        else:
            speedup = base.value / max(cur.value, 1e-300)
        gated = base.gated
        too_slow = speedup < (1.0 - tolerance)
        regressed = too_slow and (gated or not gated_only_regressions)
        rows.append(
            MetricComparison(
                name=name,
                current=cur.value,
                baseline=base.value,
                speedup=speedup,
                gated=gated,
                regressed=regressed,
            )
        )
    return BaselineComparison(
        label=label, tolerance=tolerance, metrics=tuple(rows)
    )


def format_metrics_table(metrics: dict[str, Metric]) -> str:
    """Aligned text rendering of a metrics mapping (CLI output)."""
    if not metrics:
        return "(no metrics)"
    width = max(len(name) for name in metrics)
    lines = []
    for name in sorted(metrics):
        m = metrics[name]
        arrow = "↑" if m.higher_is_better else "↓"
        gate = "  [gated]" if m.gated else ""
        lines.append(
            f"{name.ljust(width)}  {m.value:>12.6g} {m.unit} {arrow}{gate}"
        )
    return "\n".join(lines)


def merge_metrics(parts: Iterable[dict[str, Metric]]) -> dict[str, Metric]:
    """Union of per-workload metric dicts; duplicate names are a bug."""
    out: dict[str, Metric] = {}
    for part in parts:
        dup = set(out) & set(part)
        if dup:
            raise ConfigError(f"duplicate bench metric names: {sorted(dup)}")
        out.update(part)
    return out
