"""``repro.serve`` — the significance-aware runtime as a service.

The paper's runtime trades quality for energy one batch run at a time;
this module composes the pieces grown around it (registries, pluggable
engines, batched spawn, the budget governor) into a long-lived,
multi-tenant *task service*:

* :class:`TaskService` — the in-process core.  One shared
  :class:`~repro.runtime.scheduler.Scheduler` (any execution backend)
  multiplexes every tenant's jobs: each admitted job becomes one task
  group (label ``tenant/job-id``), whole admission rounds are spawned
  through the batched ``spawn_many`` fast path, and one barrier per
  round retires them.  Per-job energy, decision mix, quality and
  latency are carved out of the shared trace by group.
* **Admission control** (:mod:`repro.serve.tenants`) — per-tenant queue
  caps and lifetime energy budgets.  A tenant over budget or over its
  queue cap is answered from the approximate-result cache
  (:mod:`repro.serve.cache`) when an acceptable lower-ratio entry
  exists, and rejected 429-style otherwise.  Budgeted tenants are
  steered by a per-tenant
  :class:`~repro.tuning.governor.EnergyBudgetGovernor` that lowers the
  ratio their jobs are *served* at as the budget drains.
* :class:`LocalGateway` — synchronous in-process front end (tests,
  benches, figures).
* :class:`ServeServer` — an asyncio JSON-lines-over-TCP gateway
  (``python -m repro.harness serve``); see :mod:`repro.serve.client`
  for the matching clients.

Energy attribution: a job is billed its tasks' busy seconds times the
machine model's active-core power — the *marginal* cost of admitting
the job onto the shared machine.  Package-static power is a cost of
running the service at all and is reported on the service totals, not
to tenants.
"""

from __future__ import annotations

import itertools
import json
import time as _time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..config import RuntimeConfig
from ..obs import MetricsRegistry, SpanRecorder, obs_enabled, start_span
from ..runtime.errors import ConfigError, RegistryError, SchedulerError
from ..runtime.scheduler import Scheduler
from . import ServiceProtocol
from .cache import ApproxResultCache, _ratio_key
from .kernels import ServableKernel, get_servable
from .tenants import TenantSpec, TenantState

__all__ = [
    "JobRequest",
    "JobReport",
    "RoundResult",
    "StreamState",
    "TaskService",
    "LocalGateway",
    "ServeServer",
    "DEFAULT_SERVE_CONFIG",
    "STREAM_WINDOW",
    "STREAM_MIN_RATIO",
]

#: Per-stream admission window: frames admitted but not yet executed.
#: A producer that outruns the service by more than a window's worth
#: of frames is pushed back (429) instead of ballooning the queue —
#: backpressure preserves frame order (the frame is *not* consumed, so
#: the producer retries the same index).
STREAM_WINDOW = 32

#: Floor of the served ratio for an over-budget stream frame.  Streams
#: degrade instead of dropping frames, but a D-mode kernel at ratio 0
#: would drop every task and return an empty answer — the stream
#: contract guarantees at least this much accurate work per frame.
STREAM_MIN_RATIO = 0.1

#: Default runtime for a service: GTB Max-Buffer stamps each round's
#: decisions at the round barrier by sorting every job group on
#: significance, so a job served at ratio r gets *exactly*
#: ``ceil(r * B)`` accurate tasks — per-job groups are far too small
#: for LQH's per-worker histograms to warm up.
DEFAULT_SERVE_CONFIG = RuntimeConfig(policy="gtb-max", n_workers=16)

_job_ids = itertools.count(1)


@dataclass
class JobRequest:
    """One job submission: a kernel, its args, and a quality request.

    Three job shapes share this envelope:

    * **batch** (the default) — one kernel invocation, one answer.
    * **streaming** — ``stream`` names an ordered frame sequence; the
      optional ``frame`` index must match the stream's next expected
      frame (omitted = "the next one").  Frames are admitted through a
      per-stream window and degrade in ratio under budget pressure
      instead of being dropped.
    * **anytime** — ``rounds > 1`` (or a ``deadline_s``) asks an
      anytime-capable kernel to iterate, reporting improving quality
      after every round; the client takes the current answer when its
      deadline hits (see :meth:`TaskService.submit_anytime`).
    """

    tenant: str
    kernel: str
    args: dict | None = None
    #: Requested accurate-task ratio (the Table 1 knob, per job).
    ratio: float = 1.0
    job_id: str = field(default_factory=lambda: f"j{next(_job_ids)}")
    #: Streaming: the frame sequence this job belongs to.
    stream: str | None = None
    #: Streaming: explicit frame index (must be the stream's next).
    frame: int | None = None
    #: Anytime: refinement rounds to run (1 = plain batch job).
    rounds: int = 1
    #: Anytime: stop after this much engine time, keeping the current
    #: answer — the "take what you have" deadline.
    deadline_s: float | None = None
    #: Observability: the distributed trace this job belongs to and the
    #: caller's span to parent under.  ``None`` (the default) lets the
    #: first instrumented layer mint a fresh trace; gateways and the
    #: cluster router fill both in as the request crosses layers (see
    #: :mod:`repro.obs.spans`).
    trace_id: str | None = None
    parent_span: str | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.ratio <= 1.0:
            raise ConfigError(
                f"job ratio must be in [0, 1], got {self.ratio}"
            )
        if self.args is not None and not isinstance(self.args, dict):
            raise ConfigError(
                f"job args must be a dict or None, got {self.args!r}"
            )
        if self.stream is not None and (
            not isinstance(self.stream, str) or not self.stream
        ):
            raise ConfigError(
                f"job stream must be a non-empty string, "
                f"got {self.stream!r}"
            )
        if self.frame is not None:
            if self.stream is None:
                raise ConfigError("job frame requires a stream")
            if (
                not isinstance(self.frame, int)
                or isinstance(self.frame, bool)
                or self.frame < 0
            ):
                raise ConfigError(
                    f"job frame must be an int >= 0, got {self.frame!r}"
                )
        if (
            not isinstance(self.rounds, int)
            or isinstance(self.rounds, bool)
            or self.rounds < 1
        ):
            raise ConfigError(
                f"job rounds must be an int >= 1, got {self.rounds!r}"
            )
        if self.deadline_s is not None and not self.deadline_s > 0:
            raise ConfigError(
                f"job deadline_s must be > 0, got {self.deadline_s!r}"
            )
        for attr in ("trace_id", "parent_span"):
            value = getattr(self, attr)
            if value is not None and (
                not isinstance(value, str) or not value
            ):
                raise ConfigError(
                    f"job {attr} must be a non-empty string or None, "
                    f"got {value!r}"
                )
        if self.stream is not None and self.anytime:
            raise ConfigError(
                "a job is streaming or anytime, not both "
                f"(stream={self.stream!r}, rounds={self.rounds}, "
                f"deadline_s={self.deadline_s!r})"
            )

    @property
    def anytime(self) -> bool:
        """Whether this request asks for the anytime/iterative shape."""
        return self.rounds > 1 or self.deadline_s is not None

    @classmethod
    def from_dict(cls, data: dict) -> "JobRequest":
        known = {
            "tenant", "kernel", "args", "ratio", "job_id",
            "stream", "frame", "rounds", "deadline_s",
            "trace_id", "parent_span",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown JobRequest keys {sorted(unknown)}"
            )
        missing = {"tenant", "kernel"} - set(data)
        if missing:
            raise ConfigError(
                f"JobRequest needs {sorted(missing)}"
            )
        return cls(**data)


@dataclass
class JobReport:
    """Per-job outcome: the service's answer envelope.

    ``status`` is one of ``executed``, ``cached``, ``cached-degraded``,
    ``coalesced`` (identical in-round work, served from its leader's
    execution), ``queued`` (transient), or a ``rejected-*`` reason;
    ``code``
    mirrors it HTTP-style (200 served, 429 shed, 404 unknown).
    ``latency_s`` is measured on the engine's own timeline (virtual
    seconds on simulated backends — deterministic), ``wall_latency_s``
    on the host clock.
    """

    job_id: str
    tenant: str
    kernel: str
    status: str = "queued"
    code: int = 0
    ratio_requested: float = 1.0
    ratio_served: float | None = None
    quality: float | None = None
    energy_j: float = 0.0
    latency_s: float = 0.0
    wall_latency_s: float = 0.0
    tasks_total: int = 0
    accurate: int = 0
    approximate: int = 0
    dropped: int = 0
    detail: str = ""
    output: Any = field(default=None, repr=False)
    #: Streaming: stream name / frame index this report answers.
    stream: str | None = None
    frame: int | None = None
    #: Anytime: rounds actually run and the per-round quality curve.
    rounds_run: int = 0
    round_quality: list = field(default_factory=list)
    #: Observability: the trace/span this job was served under (``None``
    #: when telemetry is off) — clients join these against the span log.
    trace_id: str | None = None
    span_id: str | None = None

    @property
    def ok(self) -> bool:
        return self.code == 200

    @property
    def served_from_cache(self) -> bool:
        return self.status in ("cached", "cached-degraded")

    def to_dict(self) -> dict:
        """Wire form: everything but the output payload (scalar outputs
        ride along as ``result``)."""
        out = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "kernel": self.kernel,
            "status": self.status,
            "code": self.code,
            "ratio_requested": self.ratio_requested,
            "ratio_served": self.ratio_served,
            "quality": self.quality,
            "energy_j": self.energy_j,
            "latency_s": self.latency_s,
            "wall_latency_s": self.wall_latency_s,
            "tasks_total": self.tasks_total,
            "accurate": self.accurate,
            "approximate": self.approximate,
            "dropped": self.dropped,
            "detail": self.detail,
        }
        if self.stream is not None:
            out["stream"] = self.stream
            out["frame"] = self.frame
        if self.rounds_run:
            out["rounds_run"] = self.rounds_run
            out["round_quality"] = list(self.round_quality)
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
            out["span_id"] = self.span_id
        if isinstance(self.output, (int, float, str, bool)):
            out["result"] = self.output
        return out


@dataclass
class StreamState:
    """Live admission state of one ``(tenant, stream)`` frame sequence.

    Streams get their own admission lane: frame occupancy counts
    against a per-stream window (:data:`STREAM_WINDOW`), not the
    tenant's batch queue cap, and a budget-throttled tenant's frames
    are *degraded* in served ratio — down to the tenant's floor, never
    below :data:`STREAM_MIN_RATIO` — instead of being rejected.
    """

    tenant: str
    stream: str
    max_inflight: int = STREAM_WINDOW
    #: Next expected frame index (frames must arrive in order).
    next_frame: int = 0
    #: Frames admitted but not yet executed (the window universe).
    inflight: int = 0
    #: Lifetime counters for stats and the scenario figures.
    frames: int = 0
    degraded: int = 0
    rejected: int = 0

    def summary(self) -> dict:
        return {
            "tenant": self.tenant,
            "stream": self.stream,
            "next_frame": self.next_frame,
            "inflight": self.inflight,
            "frames": self.frames,
            "degraded": self.degraded,
            "rejected": self.rejected,
        }


@dataclass
class RoundResult:
    """One anytime round's snapshot, handed to the round callback.

    The callback may return ``False`` to take the current answer and
    stop iterating — the "early take" that makes the job *anytime*.
    """

    round: int
    output: Any = field(repr=False)
    quality: float | None
    energy_j: float
    elapsed_s: float
    ratio: float


@dataclass
class _Admitted:
    """Queue entry: an admitted job waiting for its execution round."""

    request: JobRequest
    kernel: ServableKernel
    digest: str
    report: JobReport
    t_submit_engine: float
    t_submit_wall: float
    plan: Any
    label: str = ""
    tasks: list = field(default_factory=list)
    #: Compile-tier :class:`~repro.compiler.specialize.SpecializedPlan`
    #: when the job was specialized at spawn time (``None`` otherwise).
    splan: Any = None
    #: Streaming: the owning stream's admission state (else ``None``).
    stream_state: StreamState | None = None
    #: Observability: the job's ``runtime.group`` span while its task
    #: group executes (``None`` when telemetry is off).
    span: Any = None

    @property
    def n_tasks_est(self) -> int:
        return self.plan.n_tasks


class TaskService:
    """The in-process multi-tenant serving core (see module docstring).

    Parameters
    ----------
    config:
        :class:`~repro.config.RuntimeConfig` for the shared scheduler;
        its ``tenants`` field (tenant spec strings) populates the
        tenant table.  Default: GTB Max-Buffer on 16 simulated workers
        (see :data:`DEFAULT_SERVE_CONFIG`).
    tenants:
        Extra tenant specs/instances, merged over ``config.tenants``.
        With neither, a single unmetered ``"standard"`` tenant is
        provisioned.
    cache_capacity:
        LRU capacity of the approximate-result cache.
    cache:
        An already-built cache to use instead of a private
        :class:`~repro.serve.cache.ApproxResultCache` — anything with
        the same ``get`` / ``get_degraded`` / ``put`` / ``stats``
        surface.  The cluster layer injects a per-shard
        :class:`~repro.cluster.cache.CacheView` here so every shard
        reads through one logical sharded cache.
    max_batch:
        Jobs executed per round, drained round-robin across tenants.
    compute_quality:
        Score every executed job against the kernel's accurate
        reference (cached per argument digest).  Turn off when serving
        throughput matters more than reporting.

    Notes
    -----
    The result cache and reference cache are LRU-bounded, and task
    descriptors are recycled through the process
    :class:`~repro.runtime.task.TaskSlab` once a round settles (unless
    the config carries a service-level governor, whose cost priors
    sample ``scheduler.tasks`` and therefore force retention).  The
    shared scheduler still accumulates one task group and its trace
    segments per *executed* job for the run's lifetime (that is what
    makes the final :class:`~repro.runtime.stats.RunReport` and the
    tagged Chrome trace possible).  A service therefore scales to
    campaigns of many thousands of jobs, not to an unbounded daemon
    lifetime — recycle the service (``close()`` + rebuild) between
    campaigns; the cheap admission paths (cache hits, rejections)
    allocate nothing per job.
    """

    def __init__(
        self,
        config: RuntimeConfig | None = None,
        tenants: tuple | list = (),
        *,
        cache_capacity: int = 128,
        cache=None,
        max_batch: int = 8,
        compute_quality: bool = True,
        metrics: MetricsRegistry | None = None,
        spans: SpanRecorder | None = None,
        shard: str | None = None,
    ) -> None:
        if max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {max_batch}")
        self.config = config if config is not None else DEFAULT_SERVE_CONFIG
        # Telemetry plane: when observability is on (the default — see
        # repro.obs), the service owns a private registry and span
        # recorder unless the caller injects shared ones (the cluster
        # shares one pair across every shard).  A private registry is
        # what makes a scrape reconcile exactly with THIS service's run.
        if obs_enabled():
            self._metrics = metrics if metrics is not None else (
                MetricsRegistry()
            )
            self._spans = spans if spans is not None else SpanRecorder()
        else:
            self._metrics = metrics
            self._spans = spans
        self._shard_label = shard if shard is not None else "0"
        specs = list(self.config.build_tenants())
        for extra in tenants:
            specs.append(
                extra
                if isinstance(extra, TenantSpec)
                else _resolve_tenant(extra)
            )
        if not specs:
            from .tenants import make_standard_tenant

            specs = [make_standard_tenant()]
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names in {names}")
        self._tenants: dict[str, TenantState] = {
            s.name: TenantState(s) for s in specs
        }
        self.cache = (
            cache
            if cache is not None
            else ApproxResultCache(cache_capacity, metrics=self._metrics)
        )
        self.max_batch = max_batch
        self.compute_quality = compute_quality

        # Descriptor recycling is only sound when nothing samples the
        # scheduler's task list after settlement; a service-level
        # governor does (cost priors), so it forces retention.
        self._sched = Scheduler(
            config=self.config,
            retain_tasks=self.config.governor is not None,
            metrics=self._metrics,
        )
        self._machine = self._sched.machine_model
        self._watts = self._machine.busy_extra_w() + self._machine.core_idle_w
        #: The compile tier (``RuntimeConfig.compile``): admission
        #: knows the per-tenant served ratio, so jobs are specialized
        #: here — the decision folded, variants inlined, bodies cached
        #: per ``(kernel, spec)`` across jobs and rounds.
        self._specializer = self._sched.specializer
        self._queues: dict[str, list[_Admitted]] = {}
        #: ``(tenant, stream)`` -> admission state of that frame lane.
        self._streams: dict[tuple[str, str], StreamState] = {}
        self._rr: list[str] = []  # tenant scan order for round-taking
        self._rr_pos = 0  # persistent round-robin cursor into _rr
        self._kernels: dict[str, ServableKernel] = {}
        # Reference outputs are bounded like the result cache: a
        # long-lived service must not grow one full-size accurate
        # output per distinct argument digest forever.
        self._references: "OrderedDict[tuple[str, str], Any]" = (
            OrderedDict()
        )
        self._references_cap = max(cache_capacity, 8)
        #: Job ids currently queued (duplicate submissions would
        #: collide on the scheduler group label and corrupt per-job
        #: accounting, so they are rejected at admission).
        self._active_ids: set[str] = set()
        #: group label -> {"tenant": ..., "job": ..., "kernel": ...}
        #: (chrome-trace annotation material).
        self.job_meta: dict[str, dict] = {}
        self._seg_cursor = 0
        self._rounds = 0
        self._closed = False
        self.run_report = None

        #: Live spans of queued jobs, keyed by job id; moved onto the
        #: recorder when the job's report turns terminal.
        self._job_spans: dict[str, Any] = {}
        self._bind_metrics()

    def _bind_metrics(self) -> None:
        """Capture metric handles once (no-op-when-disabled guard: the
        hot paths test a single attribute against ``None``)."""
        m = self._metrics
        self._m_jobs = self._m_energy = self._m_latency = None
        self._m_rounds = self._m_anytime = None
        self._m_stream_frames = None
        self._m_stream_degraded = self._m_stream_rejected = None
        if m is None:
            return
        self._m_jobs = m.counter(
            "repro_jobs_total",
            "Terminal job reports by tenant and status.",
            labels=("tenant", "status"),
        )
        self._m_energy = m.counter(
            "repro_tenant_energy_joules_total",
            "Joules billed to each tenant (busy seconds x watts).",
            labels=("tenant",),
        )
        self._m_latency = m.histogram(
            "repro_job_latency_seconds",
            "Wall latency of served (code 200) jobs.",
            labels=("tenant",),
        )
        self._m_rounds = m.counter(
            "repro_serve_rounds_total",
            "Admission rounds executed on the shared engine.",
        )
        self._m_anytime = m.counter(
            "repro_anytime_rounds_total",
            "Anytime refinement rounds executed.",
            labels=("tenant",),
        )
        self._m_stream_frames = m.counter(
            "repro_stream_frames_total",
            "Stream frames admitted (per lane).",
            labels=("tenant", "stream"),
        )
        self._m_stream_degraded = m.counter(
            "repro_stream_degraded_total",
            "Stream frames served degraded under budget pressure.",
            labels=("tenant", "stream"),
        )
        self._m_stream_rejected = m.counter(
            "repro_stream_rejected_total",
            "Stream frames refused (out of order / backpressure).",
            labels=("tenant", "stream"),
        )
        # Budgeted tenants' governors report their control state under
        # this tenant's scope (the run-level governor, when configured,
        # is bound by the Scheduler under scope "_run").
        for name, state in self._tenants.items():
            if state.governor is not None:
                state.governor.obs_bind(m, scope=name)

    def _obs_count(self, report: JobReport) -> None:
        """Count one terminal report."""
        if self._m_jobs is not None:
            self._m_jobs.labels(report.tenant, report.status).inc()
            if report.code == 200:
                self._m_latency.labels(report.tenant).observe(
                    report.wall_latency_s
                )

    def _obs_finish(self, report: JobReport) -> None:
        """Count one terminal report and close its serve-layer span."""
        span = self._job_spans.pop(report.job_id, None)
        if span is not None:
            report.trace_id = span.trace_id
            report.span_id = span.span_id
            span.end(
                self._spans, status=report.status, code=report.code
            )
        self._obs_count(report)

    # -- introspection ---------------------------------------------------
    @property
    def scheduler(self) -> Scheduler:
        """The shared scheduler (observation only)."""
        return self._sched

    @property
    def tenants(self) -> dict[str, TenantState]:
        return self._tenants

    @property
    def pending_jobs(self) -> int:
        return sum(len(q) for q in self._queues.values())

    @property
    def rounds(self) -> int:
        return self._rounds

    @property
    def metrics(self) -> MetricsRegistry | None:
        """This service's metrics registry (``None``: telemetry off)."""
        return self._metrics

    @property
    def span_recorder(self) -> SpanRecorder | None:
        """This service's span sink (``None``: telemetry off)."""
        return self._spans

    @property
    def data_plane_stats(self) -> dict | None:
        """The engine's zero-copy data-plane byte accounting (bytes
        shipped by reference vs copied, promotions), or ``None`` on
        engines without a data plane."""
        stats = getattr(self._sched.engine, "data_plane_stats", None)
        return stats.to_dict() if stats is not None else None

    def stats(self) -> dict:
        """Service-wide digest (the gateway's ``stats`` op)."""
        return {
            "tenants": {
                name: state.summary()
                for name, state in self._tenants.items()
            },
            "streams": {
                f"{tenant}/{stream}": ss.summary()
                for (tenant, stream), ss in self._streams.items()
            },
            "cache": self.cache.stats.to_dict(),
            "pending_jobs": self.pending_jobs,
            "rounds": self._rounds,
            "engine_time_s": self._sched.engine.master_time,
            "engine": str(self.config.engine),
            "policy": self._sched.policy.describe(),
            "data_plane": self.data_plane_stats,
        }

    def collect(self) -> None:
        """Refresh collect-on-scrape gauges from live service state."""
        m = self._metrics
        if m is None:
            return
        shard = self._shard_label
        m.gauge(
            "repro_pending_jobs",
            "Jobs admitted but not yet executed.",
            labels=("shard",),
        ).labels(shard).set(self.pending_jobs)
        m.gauge(
            "repro_engine_time_seconds",
            "The shared engine's own timeline.",
            labels=("shard",),
        ).labels(shard).set(self._sched.engine.master_time)
        ratio_g = m.gauge(
            "repro_tenant_ratio",
            "Served accurate-task ratio per tenant.",
            labels=("tenant", "shard"),
        )
        budget_g = m.gauge(
            "repro_tenant_budget_joules",
            "Lifetime energy budget per tenant (0 = unmetered).",
            labels=("tenant",),
        )
        for name, state in self._tenants.items():
            ratio_g.labels(name, shard).set(state.ratio)
            budget_g.labels(name).set(state.spec.budget_j or 0.0)
        lane_g = m.gauge(
            "repro_stream_inflight",
            "Frames admitted but not yet executed, per stream lane.",
            labels=("tenant", "stream"),
        )
        for (tenant, stream), ss in self._streams.items():
            lane_g.labels(tenant, stream).set(ss.inflight)
        plane = self.data_plane_stats
        if plane is not None:
            bytes_g = m.gauge(
                "repro_data_plane_bytes",
                "Data-plane payload bytes by path.",
                labels=("shard", "path"),
            )
            for path in (
                "bytes_referenced",
                "bytes_copied_in",
                "bytes_copied_out",
                "bytes_pickled",
            ):
                bytes_g.labels(shard, path.removeprefix("bytes_")).set(
                    plane[path]
                )
            m.gauge(
                "repro_data_plane_not_copied_frac",
                "Fraction of payload bytes moved by reference.",
                labels=("shard",),
            ).labels(shard).set(plane["bytes_not_copied_frac"])

    def metrics_snapshot(self) -> dict:
        """Refresh gauges and return the stable-JSON registry snapshot
        (the gateway's ``metrics`` op)."""
        if self._metrics is None:
            raise SchedulerError(
                "telemetry is disabled on this service (REPRO_OBS=0)"
            )
        self.collect()
        return self._metrics.to_dict()

    def metrics_text(self) -> str:
        """Refresh gauges and return Prometheus text exposition."""
        if self._metrics is None:
            raise SchedulerError(
                "telemetry is disabled on this service (REPRO_OBS=0)"
            )
        self.collect()
        return self._metrics.to_prometheus()

    # -- admission -------------------------------------------------------
    def _kernel(self, name: str) -> ServableKernel:
        kernel = self._kernels.get(name)
        if kernel is None:
            kernel = self._kernels[name] = get_servable(name)
        return kernel

    def submit(self, request: JobRequest | dict) -> JobReport:
        """Admit one job.

        Returns a completed :class:`JobReport` for cache-served and
        rejected jobs; a ``status="queued"`` report otherwise — the
        *same object* is filled in by the job's execution round (see
        :meth:`flush`), so callers may simply hold on to it.
        """
        if self._closed:
            raise SchedulerError("service is closed")
        if isinstance(request, dict):
            request = JobRequest.from_dict(request)
        span = None
        if self._spans is not None and (
            request.job_id not in self._job_spans
        ):
            # One serve-layer span per admission: root of the trace
            # unless a gateway/router already opened one upstream.
            span = start_span(
                "serve.job",
                trace_id=request.trace_id,
                parent_id=request.parent_span,
                tenant=request.tenant,
                job=request.job_id,
                kernel=request.kernel,
            )
            request.trace_id = span.trace_id
            self._job_spans[request.job_id] = span
        report = self._submit_inner(request)
        if report.status != "queued":
            if span is not None:
                # Close only the span THIS admission opened — a
                # duplicate-id rejection must not steal the queued
                # original's live span.
                self._obs_finish(report)
            else:
                self._obs_count(report)
        return report

    def _submit_inner(self, request: JobRequest) -> JobReport:
        report = JobReport(
            job_id=request.job_id,
            tenant=request.tenant,
            kernel=request.kernel,
            ratio_requested=request.ratio,
        )
        state = self._tenants.get(request.tenant)
        if state is None:
            report.status = "rejected-unknown-tenant"
            report.code = 404
            report.detail = f"unknown tenant {request.tenant!r}"
            return report
        if request.job_id in self._active_ids:
            report.status = "rejected-duplicate-id"
            report.code = 409
            report.detail = (
                f"job id {request.job_id!r} is already queued"
            )
            state.rejected += 1
            return report
        try:
            kernel = self._kernel(request.kernel)
        except (RegistryError, ConfigError) as exc:
            report.status = "rejected-unknown-kernel"
            report.code = 404
            report.detail = str(exc)
            state.rejected += 1
            return report
        try:
            # Digest only: the shedding paths below must stay cheap —
            # the full plan (input data and all) is built only for
            # admitted jobs.
            digest = kernel.digest(request.args)
        except ConfigError as exc:
            report.status = "rejected-bad-args"
            report.code = 400
            report.detail = str(exc)
            state.rejected += 1
            return report

        if request.anytime:
            report.status = "rejected-bad-shape"
            report.code = 400
            report.detail = (
                "anytime jobs (rounds > 1 / deadline_s) go through "
                "submit_anytime()"
            )
            state.rejected += 1
            return report
        if request.stream is not None:
            return self._submit_stream_frame(
                request, state, kernel, digest, report
            )

        if state.over_budget or state.saturated:
            reason = "budget" if state.over_budget else "queue"
            entry = None
            if state.spec.degrade_to_cache:
                # Load shedding: any same-work answer at or below the
                # requested quality beats burning energy or erroring.
                entry = self.cache.get_degraded(
                    kernel.name, digest, max_ratio=request.ratio
                )
            if entry is not None:
                self._serve_cached(report, state, entry)
                report.detail = f"over-{reason} -> cache"
                return report
            report.status = f"rejected-{reason}"
            report.code = 429
            report.detail = (
                f"tenant {state.spec.name!r} over energy budget"
                if reason == "budget"
                else f"tenant queue full ({state.spec.max_pending})"
            )
            state.rejected += 1
            return report

        return self._enqueue(request, state, kernel, digest, report)

    def _submit_stream_frame(
        self, request, state: TenantState, kernel, digest, report
    ) -> JobReport:
        """Admit one frame of an ordered stream.

        Streams have their own admission lane (see :class:`StreamState`):
        out-of-order frames are refused 409-style, a full window pushes
        back 429-style *without consuming the frame index* (the producer
        retries the same frame, preserving order), and budget pressure
        degrades the served ratio in :meth:`flush` instead of shedding.
        A frame with a cached answer at or below the requested ratio is
        served from cache for free, whatever the budget state.
        """
        key = (request.tenant, request.stream)
        ss = self._streams.get(key)
        if ss is None:
            ss = self._streams[key] = StreamState(
                tenant=request.tenant, stream=request.stream
            )
        frame = request.frame if request.frame is not None else ss.next_frame
        report.stream = request.stream
        report.frame = frame
        if frame != ss.next_frame:
            report.status = "rejected-out-of-order"
            report.code = 409
            report.detail = (
                f"stream {request.stream!r} expects frame "
                f"{ss.next_frame}, got {frame}"
            )
            state.rejected += 1
            ss.rejected += 1
            if self._m_stream_rejected is not None:
                self._m_stream_rejected.labels(
                    request.tenant, request.stream
                ).inc()
            return report
        if ss.inflight >= ss.max_inflight:
            report.status = "rejected-stream-backpressure"
            report.code = 429
            report.detail = (
                f"stream {request.stream!r} window full "
                f"({ss.max_inflight} frames in flight); retry frame "
                f"{frame}"
            )
            state.rejected += 1
            ss.rejected += 1
            if self._m_stream_rejected is not None:
                self._m_stream_rejected.labels(
                    request.tenant, request.stream
                ).inc()
            return report
        # Identical frames replay from the cache at zero energy — the
        # re-submission path the regression test pins down.
        entry = self.cache.get_degraded(
            kernel.name,
            digest,
            max_ratio=max(request.ratio, state.spec.ratio_floor),
        )
        if entry is not None:
            ss.next_frame = frame + 1
            ss.frames += 1
            if self._m_stream_frames is not None:
                self._m_stream_frames.labels(
                    request.tenant, request.stream
                ).inc()
            self._serve_cached(report, state, entry)
            report.detail = f"stream frame {frame} replayed from cache"
            return report
        ss.next_frame = frame + 1
        ss.frames += 1
        if self._m_stream_frames is not None:
            self._m_stream_frames.labels(
                request.tenant, request.stream
            ).inc()
        return self._enqueue(
            request, state, kernel, digest, report, stream_state=ss
        )

    def _enqueue(
        self, request, state: TenantState, kernel, digest, report,
        stream_state: StreamState | None = None,
    ) -> JobReport:
        plan = kernel.plan(request.args)
        # Seed the tenant's energy model from the analytic plan cost so
        # the very first governor step has something to project with.
        if state.governor is not None and state.e_acc_j is None:
            cost = _plan_cost(plan)
            ops = self._machine.ops_per_second
            state.e_acc_j = cost.accurate / ops * self._watts
            state.e_apx_j = cost.approximate / ops * self._watts
        admitted = _Admitted(
            request=request,
            kernel=kernel,
            digest=digest,
            report=report,
            t_submit_engine=self._sched.engine.master_time,
            t_submit_wall=_time.perf_counter(),
            plan=plan,
            stream_state=stream_state,
        )
        if request.tenant not in self._queues:
            self._queues[request.tenant] = []
            self._rr.append(request.tenant)
        self._queues[request.tenant].append(admitted)
        self._active_ids.add(request.job_id)
        if stream_state is None:
            # Stream frames count against their stream's window, not
            # the tenant's batch queue cap.
            state.pending += 1
        else:
            stream_state.inflight += 1
        return report

    def _serve_cached(self, report, state: TenantState, entry) -> None:
        exact = entry.ratio >= report.ratio_requested
        report.status = "cached" if exact else "cached-degraded"
        report.code = 200
        report.ratio_served = entry.ratio
        report.quality = entry.quality
        report.output = entry.output
        report.energy_j = 0.0
        if exact:
            state.cached += 1
        else:
            state.cached_degraded += 1

    # -- execution rounds -------------------------------------------------
    def _take_round(self) -> list[_Admitted]:
        """Up to ``max_batch`` queued jobs, round-robin across tenants.

        The cursor persists across rounds, so a ``max_batch`` that
        truncates mid-pass resumes at the next tenant instead of
        restarting the scan — no tenant is systematically favored for
        having registered first.
        """
        batch: list[_Admitted] = []
        names = self._rr
        if not names:
            return batch
        pos = self._rr_pos
        empty_streak = 0
        while len(batch) < self.max_batch and empty_streak < len(names):
            name = names[pos % len(names)]
            pos += 1
            queue = self._queues.get(name)
            if queue:
                batch.append(queue.pop(0))
                empty_streak = 0
            else:
                empty_streak += 1
        self._rr_pos = pos % len(names)
        return batch

    def _queued_tasks(self, tenant: str) -> int:
        return sum(
            a.n_tasks_est for a in self._queues.get(tenant, ())
        )

    def flush(self) -> list[JobReport]:
        """Execute one admission round on the shared engine.

        Steers every budgeted tenant's governor against its queued
        work, re-checks the cache at the ratio each job will actually
        be served at, spawns the remainder as per-job task groups in
        one batch, and settles reports/budgets from the round's trace
        window.  Returns the round's completed reports.
        """
        if self._closed:
            raise SchedulerError("service is closed")
        batch = self._take_round()
        if not batch:
            return []
        sched = self._sched
        now = sched.engine.master_time

        # Pre-steer: the governor solve needs the tasks this round will
        # issue to still count as "remaining", so it runs before spawn.
        in_round: dict[str, int] = {}
        for adm in batch:
            in_round[adm.request.tenant] = (
                in_round.get(adm.request.tenant, 0) + adm.n_tasks_est
            )
        for name, extra in in_round.items():
            state = self._tenants[name]
            if state.governor is not None:
                state.steer(now, self._queued_tasks(name) + extra)

        to_run: list[_Admitted] = []
        leaders: dict[tuple, _Admitted] = {}
        followers: list[tuple[_Admitted, _Admitted]] = []
        for adm in batch:
            state = self._tenants[adm.request.tenant]
            if adm.stream_state is None:
                state.pending -= 1
            else:
                adm.stream_state.inflight -= 1
            self._active_ids.discard(adm.request.job_id)
            requested = adm.request.ratio
            effective = min(requested, state.ratio)
            effective = max(effective, state.spec.ratio_floor)
            if adm.stream_state is not None and state.over_budget:
                # The streaming contract: an over-budget tenant's
                # frames degrade to the floor of their quality band,
                # they are never dropped mid-stream.
                effective = max(
                    state.spec.ratio_floor, STREAM_MIN_RATIO
                )
                adm.report.detail = (
                    f"over-budget: frame degraded to ratio "
                    f"{effective:g}, not dropped"
                )
                adm.stream_state.degraded += 1
                if self._m_stream_degraded is not None:
                    self._m_stream_degraded.labels(
                        adm.request.tenant, adm.request.stream
                    ).inc()
            adm.report.ratio_served = effective
            # The round's cache window: an entry at least as accurate
            # as we would execute, and no more accurate than we would
            # serve, answers the job for free.  The upper bound must
            # cover ``effective`` too: a ratio floor above the request
            # would otherwise make the band empty and re-execute
            # identical re-submitted frames forever.
            entry = self.cache.get_degraded(
                adm.kernel.name,
                adm.digest,
                max_ratio=max(requested, effective),
                min_ratio=effective,
            )
            if entry is not None:
                self._serve_cached(adm.report, state, entry)
                self._finish_latency(adm, now)
                self._obs_finish(adm.report)
                continue
            # In-round coalescing: identical work at the same served
            # ratio executes once; the leader is billed, followers ride
            # along for free (the batch-dedupe twin of the cache).
            work_key = (adm.kernel.name, adm.digest, _ratio_key(effective))
            leader = leaders.get(work_key)
            if leader is not None:
                followers.append((adm, leader))
                continue
            leaders[work_key] = adm
            label = f"{adm.request.tenant}/{adm.request.job_id}"
            self.job_meta[label] = {
                "tenant": adm.request.tenant,
                "job": adm.request.job_id,
                "kernel": adm.kernel.name,
            }
            if adm.request.stream is not None:
                # Chrome traces distinguish job shapes: stream frames
                # carry their lane and frame index in group_meta.
                self.job_meta[label]["stream"] = adm.request.stream
                self.job_meta[label]["frame"] = adm.report.frame
            jspan = self._job_spans.get(adm.request.job_id)
            if jspan is not None:
                adm.span = jspan.child("runtime.group", label=label)
                self.job_meta[label]["trace_id"] = jspan.trace_id
                self.job_meta[label]["span_id"] = adm.span.span_id
            plan = adm.plan
            sched.init_group(label, effective)
            splan = None
            if self._specializer is not None:
                # The served ratio is decided here, so this is where
                # the compile tier folds the significance branch away;
                # a None return (unspecializable body) falls back to
                # the interpreted spawn path.
                splan = self._specializer.specialize_plan(
                    adm.kernel.name,
                    plan,
                    ratio=effective,
                    n_chunks=self.config.n_workers,
                )
            if splan is not None:
                adm.splan = splan
                self.job_meta[label]["specialized"] = True
                self.job_meta[label]["n_chunks"] = splan.n_chunks
                adm.tasks = sched.spawn_specialized(splan, label=label)
            else:
                adm.tasks = sched.spawn_many(
                    plan.fn,
                    plan.args_list,
                    significance=plan.significance,
                    approxfun=plan.approxfun,
                    label=label,
                    cost=plan.cost,
                )
            adm.label = label
            to_run.append(adm)

        if to_run:
            t_end = sched.taskwait()
        else:
            t_end = now
        self._settle(to_run, t_end)
        for adm, leader in followers:
            led = leader.report
            report = adm.report
            report.status = "coalesced"
            report.code = 200
            report.ratio_served = led.ratio_served
            report.quality = led.quality
            report.output = led.output
            report.energy_j = 0.0
            report.detail = f"coalesced with {led.job_id}"
            self._finish_latency(adm, t_end)
            self._tenants[adm.request.tenant].coalesced += 1
            self._obs_finish(report)
        self._rounds += 1
        if self._m_rounds is not None:
            self._m_rounds.inc()
        return [adm.report for adm in batch]

    def _finish_latency(self, adm: _Admitted, t_end: float) -> None:
        adm.report.latency_s = max(0.0, t_end - adm.t_submit_engine)
        adm.report.wall_latency_s = max(
            0.0, _time.perf_counter() - adm.t_submit_wall
        )

    def _window_busy(self) -> dict[tuple[str, Any], float]:
        """Per-(group, kind) busy seconds since the last window, and
        advance the window cursor."""
        segments = self._sched.engine.accounting.trace.segments
        busy: dict[tuple[str, Any], float] = {}
        for seg in segments[self._seg_cursor:]:
            key = (seg.group, seg.kind)
            busy[key] = busy.get(key, 0.0) + seg.duration
        self._seg_cursor = len(segments)
        return busy

    def _settle(self, ran: list[_Admitted], t_end: float) -> None:
        """Carve the round's trace window into per-job outcomes."""
        busy = self._window_busy()

        from ..runtime.task import ExecutionKind

        per_tenant: dict[str, dict[str, list[float]]] = {}
        for adm in ran:
            label = adm.label
            group = self._sched.groups.get(label)
            busy_acc = busy.get((label, ExecutionKind.ACCURATE), 0.0)
            busy_apx = busy.get((label, ExecutionKind.APPROXIMATE), 0.0)
            if adm.splan is not None:
                # Specialized chunks all execute as forced-accurate
                # tasks; apportion the job's busy time by the plan's
                # per-kind work shares so the tenant's e_acc/e_apx
                # energy models stay calibrated.
                w_acc = adm.splan.work_acc
                w_apx = adm.splan.work_apx
                w_tot = w_acc + w_apx
                if w_tot > 0.0:
                    busy_tot = busy_acc + busy_apx
                    busy_acc = busy_tot * (w_acc / w_tot)
                    busy_apx = busy_tot - busy_acc
            energy_j = (busy_acc + busy_apx) * self._watts

            report = adm.report
            report.status = "executed"
            report.code = 200
            if adm.splan is not None:
                # Specialized jobs run as a handful of chunk tasks;
                # report the *logical* task counts from the folded
                # decision vector, and scatter the chunk results back
                # to element order before combining.
                splan = adm.splan
                report.tasks_total = splan.n_tasks
                report.accurate = splan.accurate
                report.approximate = splan.approximate
                report.dropped = splan.dropped
                results = splan.gather([t.result for t in adm.tasks])
            else:
                report.tasks_total = group.spawned
                report.accurate = group.accurate_count
                report.approximate = group.approx_count
                report.dropped = group.dropped_count
                results = [t.result for t in adm.tasks]
            report.energy_j = energy_j
            report.output = adm.kernel.combine(adm.request.args, results)
            if self.compute_quality:
                report.quality = adm.kernel.quality(
                    self._reference(
                        adm.kernel, adm.digest, adm.request.args
                    ),
                    report.output,
                )
            self._finish_latency(adm, t_end)
            if adm.span is not None:
                adm.span.end(
                    self._spans,
                    tasks=report.tasks_total,
                    accurate=report.accurate,
                    approximate=report.approximate,
                    dropped=report.dropped,
                    energy_j=energy_j,
                )

            state = self._tenants[adm.request.tenant]
            state.executed += 1
            state.charge(energy_j)
            if self._m_energy is not None:
                self._m_energy.labels(adm.request.tenant).inc(energy_j)
            self.cache.put(
                adm.kernel.name,
                adm.digest,
                report.ratio_served,
                report.output,
                quality=report.quality,
                energy_j=energy_j,
            )
            bucket = per_tenant.setdefault(
                adm.request.tenant,
                {"acc": [0.0, 0], "apx": [0.0, 0]},
            )
            bucket["acc"][0] += busy_acc
            bucket["acc"][1] += report.accurate
            bucket["apx"][0] += busy_apx
            # Dropped tasks cost (and would cost) nothing; fold them in
            # with the approximate basket so e_apx reflects "what a
            # degraded task costs" on this tenant's mix.
            bucket["apx"][1] += report.approximate + report.dropped
            self._obs_finish(report)

        for name, buckets in per_tenant.items():
            state = self._tenants[name]
            for kind, (busy_s, count) in buckets.items():
                state.observe_energy(kind, busy_s, count, self._watts)

        # Shallow-profiler landing: per-callee wall timings of every
        # profiled specialized body, windowed to this round and written
        # into the job's group_meta so the chrome trace carries them.
        if self._specializer is not None and getattr(
            self._specializer, "profile", False
        ):
            from ..compiler.specialize import profile_snapshot

            prof_by_kernel: dict[str, dict] = {}
            for adm in ran:
                if adm.splan is None:
                    continue
                name = adm.kernel.name
                if name not in prof_by_kernel:
                    prof_by_kernel[name] = profile_snapshot(
                        kernel=name, clear=True
                    )
                if prof_by_kernel[name]:
                    self.job_meta[adm.label]["profile"] = (
                        prof_by_kernel[name]
                    )

        # Results are harvested and reports settled: recycle the round's
        # descriptors so a long-lived service does not grow one Task per
        # executed job forever.
        if not self._sched.retains_tasks:
            for adm in ran:
                self._sched.release_tasks(adm.tasks)
                adm.tasks = []

    def _reference(
        self,
        kernel: ServableKernel,
        digest: str,
        args,
        anytime: bool = False,
    ):
        """LRU-cached accurate reference output for one argument set.

        Anytime references (the *converged* answer, not the one-shot
        batch reference) are cached under a distinct key — the two are
        different artifacts with different quality baselines.
        """
        key = (kernel.name, digest, "anytime") if anytime else (
            kernel.name, digest
        )
        ref = self._references.get(key)
        if ref is None:
            ref = self._references[key] = (
                kernel.anytime_reference(args)
                if anytime
                else kernel.reference(args)
            )
            while len(self._references) > self._references_cap:
                self._references.popitem(last=False)
        else:
            self._references.move_to_end(key)
        return ref

    # -- anytime / iterative jobs ------------------------------------------
    def submit_anytime(
        self,
        request: JobRequest | dict,
        *,
        on_round: Any = None,
    ) -> JobReport:
        """Run one anytime/iterative job to its deadline, synchronously.

        The kernel must expose the anytime surface
        (:class:`~repro.serve.kernels.AnytimeServable`): a mutable
        solution state refined by one task round at a time.  Each round
        spawns the kernel's round plan as its own task group
        (``tenant/job#rN``), settles energy/quality from the round's
        trace window, appends to ``report.round_quality``, and invokes
        ``on_round`` with a :class:`RoundResult` — returning ``False``
        from the callback takes the current answer and stops (the
        "early take").  Iteration also stops when ``deadline_s`` of
        engine time elapses or the tenant's budget runs dry; the report
        always carries the best answer so far, never an error.

        Runs on the caller's thread (the gateway's service thread),
        serialized with :meth:`flush` rounds by construction.
        """
        if self._closed:
            raise SchedulerError("service is closed")
        if isinstance(request, dict):
            request = JobRequest.from_dict(request)
        span = None
        if (
            self._spans is not None
            and request.job_id not in self._job_spans
        ):
            span = start_span(
                "serve.job",
                trace_id=request.trace_id,
                parent_id=request.parent_span,
                tenant=request.tenant,
                job=request.job_id,
                kernel=request.kernel,
                anytime=True,
            )
            request.trace_id = span.trace_id
            self._job_spans[request.job_id] = span
        report = self._submit_anytime_inner(request, on_round=on_round)
        if span is not None:
            self._obs_finish(report)
        else:
            self._obs_count(report)
        return report

    def _submit_anytime_inner(
        self, request: JobRequest, *, on_round: Any = None
    ) -> JobReport:
        report = JobReport(
            job_id=request.job_id,
            tenant=request.tenant,
            kernel=request.kernel,
            ratio_requested=request.ratio,
        )
        state = self._tenants.get(request.tenant)
        if state is None:
            report.status = "rejected-unknown-tenant"
            report.code = 404
            report.detail = f"unknown tenant {request.tenant!r}"
            return report
        if request.job_id in self._active_ids:
            report.status = "rejected-duplicate-id"
            report.code = 409
            report.detail = (
                f"job id {request.job_id!r} is already queued"
            )
            state.rejected += 1
            return report
        try:
            kernel = self._kernel(request.kernel)
        except (RegistryError, ConfigError) as exc:
            report.status = "rejected-unknown-kernel"
            report.code = 404
            report.detail = str(exc)
            state.rejected += 1
            return report
        from .kernels import AnytimeServable

        if not isinstance(kernel, AnytimeServable):
            report.status = "rejected-not-anytime"
            report.code = 400
            report.detail = (
                f"kernel {kernel.name!r} has no anytime surface"
            )
            state.rejected += 1
            return report
        try:
            args = kernel.canonical_args(request.args)
            digest = kernel.digest(args)
        except ConfigError as exc:
            report.status = "rejected-bad-args"
            report.code = 400
            report.detail = str(exc)
            state.rejected += 1
            return report
        if state.over_budget or state.saturated:
            reason = "budget" if state.over_budget else "queue"
            report.status = f"rejected-{reason}"
            report.code = 429
            report.detail = (
                f"tenant {state.spec.name!r} over energy budget"
                if reason == "budget"
                else f"tenant queue full ({state.spec.max_pending})"
            )
            state.rejected += 1
            return report

        sched = self._sched
        from ..runtime.task import ExecutionKind

        rounds = request.rounds
        t_start_engine = sched.engine.master_time
        t_start_wall = _time.perf_counter()
        astate = kernel.anytime_state(args)
        reference = (
            self._reference(kernel, digest, args, anytime=True)
            if self.compute_quality
            else None
        )
        t_end = t_start_engine
        jspan = self._job_spans.get(request.job_id)
        for r in range(rounds):
            if r > 0 and state.over_budget:
                report.detail = (
                    f"budget exhausted after {r} rounds"
                )
                break
            plan = kernel.anytime_plan(args, astate)
            now = sched.engine.master_time
            if state.governor is not None:
                if state.e_acc_j is None:
                    cost = _plan_cost(plan)
                    ops = self._machine.ops_per_second
                    state.e_acc_j = cost.accurate / ops * self._watts
                    state.e_apx_j = (
                        cost.approximate / ops * self._watts
                    )
                state.steer(now, plan.n_tasks * (rounds - r))
            effective = min(request.ratio, state.ratio)
            effective = max(effective, state.spec.ratio_floor)
            label = f"{request.tenant}/{request.job_id}#r{r}"
            self.job_meta[label] = {
                "tenant": request.tenant,
                "job": request.job_id,
                "kernel": kernel.name,
                "round": r,
                "rounds": rounds,
            }
            rspan = None
            if jspan is not None:
                rspan = jspan.child(
                    "runtime.round", label=label, round=r
                )
                self.job_meta[label]["trace_id"] = jspan.trace_id
                self.job_meta[label]["span_id"] = rspan.span_id
            sched.init_group(label, effective)
            tasks = sched.spawn_many(
                plan.fn,
                plan.args_list,
                significance=plan.significance,
                approxfun=plan.approxfun,
                label=label,
                cost=plan.cost,
            )
            t_end = sched.taskwait()
            busy = self._window_busy()
            busy_acc = busy.get((label, ExecutionKind.ACCURATE), 0.0)
            busy_apx = busy.get(
                (label, ExecutionKind.APPROXIMATE), 0.0
            )
            energy_j = (busy_acc + busy_apx) * self._watts
            state.charge(energy_j)
            if self._m_energy is not None:
                self._m_energy.labels(request.tenant).inc(energy_j)
                self._m_anytime.labels(request.tenant).inc()
            group = sched.groups.get(label)
            if rspan is not None:
                rspan.end(
                    self._spans,
                    tasks=group.spawned,
                    energy_j=energy_j,
                )
            state.observe_energy(
                "acc", busy_acc, group.accurate_count, self._watts
            )
            state.observe_energy(
                "apx",
                busy_apx,
                group.approx_count + group.dropped_count,
                self._watts,
            )
            results = [t.result for t in tasks]
            if not self._sched.retains_tasks:
                self._sched.release_tasks(tasks)
            astate = kernel.anytime_update(args, astate, results)
            output = kernel.anytime_output(args, astate)
            quality = (
                kernel.quality(reference, output)
                if self.compute_quality
                else None
            )
            report.tasks_total += group.spawned
            report.accurate += group.accurate_count
            report.approximate += group.approx_count
            report.dropped += group.dropped_count
            report.energy_j += energy_j
            report.ratio_served = effective
            report.output = output
            report.quality = quality
            report.rounds_run = r + 1
            report.round_quality.append(quality)
            elapsed = t_end - t_start_engine
            if on_round is not None:
                verdict = on_round(
                    RoundResult(
                        round=r,
                        output=output,
                        quality=quality,
                        energy_j=energy_j,
                        elapsed_s=elapsed,
                        ratio=effective,
                    )
                )
                if verdict is False:
                    report.detail = (
                        f"early take after round {r + 1}"
                    )
                    break
            if (
                request.deadline_s is not None
                and elapsed >= request.deadline_s
                and r + 1 < rounds
            ):
                report.detail = (
                    f"deadline {request.deadline_s:g}s hit after "
                    f"round {r + 1}"
                )
                break
        report.status = "executed"
        report.code = 200
        report.latency_s = max(0.0, t_end - t_start_engine)
        report.wall_latency_s = max(
            0.0, _time.perf_counter() - t_start_wall
        )
        state.executed += 1
        # Stamp the final round count into every round's group_meta so
        # a chrome trace shows "round 2 of 3 run" without the span log.
        for rr in range(report.rounds_run):
            meta = self.job_meta.get(
                f"{request.tenant}/{request.job_id}#r{rr}"
            )
            if meta is not None:
                meta["rounds_run"] = report.rounds_run
        return report

    # -- trace export ------------------------------------------------------
    def write_trace(self, path: str | Path) -> Path:
        """Chrome-trace export of the whole serve run, events tagged
        with tenant/job/kernel ids (one timeline for the service).

        Run-level metadata — the shared-memory data plane's byte
        accounting, when the engine has one — rides along under the
        ``__run__`` meta key and lands in the trace's ``otherData``.
        """
        from ..sim.chrome_trace import write_chrome_trace

        meta = dict(self.job_meta)
        dp = self.data_plane_stats
        if dp is not None:
            meta["__run__"] = {"data_plane": dp}
        return write_chrome_trace(
            self._sched.engine.accounting.trace,
            path,
            group_meta=meta,
        )

    # -- lifecycle ---------------------------------------------------------
    def close(self):
        """Drain remaining rounds, finish the shared run, and return
        the canonical :class:`~repro.runtime.stats.RunReport`."""
        if self._closed:
            return self.run_report
        while self.pending_jobs:
            self.flush()
        self.run_report = self._sched.finish()
        self._closed = True
        return self.run_report

    def __enter__(self) -> "TaskService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()


def _resolve_tenant(spec: Any) -> TenantSpec:
    from ..registry import resolve

    tenant = resolve("tenant", spec)
    if not isinstance(tenant, TenantSpec):
        raise ConfigError(
            f"tenant spec {spec!r} resolved to "
            f"{type(tenant).__name__}, not a TenantSpec"
        )
    return tenant


def _plan_cost(plan) -> "TaskCost":
    """A representative per-task cost for one plan (model seeding)."""
    from ..runtime.task import TaskCost

    cost = plan.cost
    if callable(cost) and not isinstance(cost, TaskCost):
        cost = cost(*plan.args_list[0]) if plan.args_list else None
    return cost if isinstance(cost, TaskCost) else TaskCost(0.0)


class LocalGateway:
    """Synchronous in-process facade over any :class:`ServiceProtocol`.

    The test/bench front end: submit jobs, drain rounds, get reports —
    no sockets, no event loop.  Works identically over a single-node
    :class:`TaskService` and a sharded
    :class:`~repro.cluster.service.ClusterService`.
    """

    def __init__(
        self, service: ServiceProtocol | None = None, **kwargs
    ) -> None:
        if service is not None and not isinstance(
            service, ServiceProtocol
        ):
            raise ConfigError(
                f"{type(service).__name__} does not implement "
                "ServiceProtocol (submit/flush/pending_jobs/stats/close)"
            )
        self.service: ServiceProtocol = (
            service if service is not None else TaskService(**kwargs)
        )

    def submit(self, request: JobRequest | dict) -> JobReport:
        """Admit one job (completed immediately when cache/rejection
        answers it; otherwise finished by the next :meth:`drain`)."""
        return self.service.submit(request)

    def submit_anytime(
        self, request: JobRequest | dict, *, on_round=None
    ) -> JobReport:
        """Run one anytime job to completion (see
        :meth:`TaskService.submit_anytime`)."""
        return self.service.submit_anytime(request, on_round=on_round)

    def drain(self) -> int:
        """Run execution rounds until the queue is empty."""
        rounds = 0
        while self.service.pending_jobs:
            self.service.flush()
            rounds += 1
        return rounds

    def submit_many(
        self, requests: list[JobRequest | dict]
    ) -> list[JobReport]:
        """Submit a stream of jobs and run it to completion."""
        reports = [self.service.submit(r) for r in requests]
        self.drain()
        return reports

    def stats(self) -> dict:
        return self.service.stats()

    def close(self):
        return self.service.close()

    def __enter__(self) -> "LocalGateway":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()


class ServeServer:
    """Asyncio JSON-lines-over-TCP gateway around any
    :class:`ServiceProtocol` (a :class:`TaskService` by default).

    Protocol: one JSON object per line.

    * ``{"op": "submit", "tenant": ..., "kernel": ..., "args": {...},
      "ratio": 0.8}`` → ``{"ok": true, "job": {...}}`` once the job
      settles (cache/rejection immediately; executed jobs after their
      round).
    * ``{"op": "stats"}`` → ``{"ok": true, "stats": {...}}``
    * ``{"op": "metrics"}`` → ``{"ok": true, "metrics": {...}}`` (the
      registry's stable-JSON snapshot); ``{"op": "metrics", "format":
      "prometheus"}`` → ``{"ok": true, "text": "..."}`` in Prometheus
      text exposition format.  Scrapes run on the worker thread, so
      they are serialized against rounds and reconcile with reports.
    * ``{"op": "ping"}`` → ``{"ok": true, "pong": true}``

    All service state is touched from a single worker thread (the
    scheduler is not thread-safe); the event loop only parses frames
    and parks submitters on futures.  Rounds form by batching whatever
    arrived within ``batch_window_s``.
    """

    def __init__(
        self,
        service: ServiceProtocol | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        batch_window_s: float = 0.01,
        **service_kwargs,
    ) -> None:
        if service is not None and not isinstance(
            service, ServiceProtocol
        ):
            raise ConfigError(
                f"{type(service).__name__} does not implement "
                "ServiceProtocol (submit/flush/pending_jobs/stats/close)"
            )
        self.service: ServiceProtocol = (
            service if service is not None else TaskService(**service_kwargs)
        )
        self.host = host
        self.port = port
        self.batch_window_s = batch_window_s
        self._server = None
        self._flusher = None
        self._executor = None
        self._futures: dict[str, Any] = {}
        self._wake = None

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        import asyncio
        from concurrent.futures import ThreadPoolExecutor

        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._wake = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sock = self._server.sockets[0].getsockname()
        self.host, self.port = sock[0], sock[1]
        self._flusher = asyncio.ensure_future(self._flush_loop())
        return self.host, self.port

    async def close(self) -> None:
        import asyncio

        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._flusher is not None:
            self._flusher.cancel()
            try:
                await self._flusher
            except asyncio.CancelledError:
                pass
            self._flusher = None
        # Waiters still parked on queued jobs get an error frame, not a
        # connection that silently hangs until their socket timeout.
        self._fail_pending(RuntimeError("serve gateway shut down"))
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _fail_pending(self, exc: BaseException) -> None:
        futures, self._futures = self._futures, {}
        for future in futures.values():
            if not future.done():
                future.set_exception(exc)

    async def _call(self, fn, *args):
        import asyncio

        loop = asyncio.get_event_loop()
        return await loop.run_in_executor(self._executor, fn, *args)

    async def _flush_loop(self) -> None:
        import asyncio

        while True:
            await self._wake.wait()
            self._wake.clear()
            # Let a round's worth of submissions accumulate.
            await asyncio.sleep(self.batch_window_s)
            # Loop on flush()'s own emptiness signal: every touch of
            # service state happens on the worker thread (submit may
            # be mutating the queues concurrently with this loop).
            while True:
                try:
                    reports = await self._call(self.service.flush)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    # A failing round (e.g. a broken process pool) must
                    # not kill the flusher silently and wedge every
                    # waiter: fail the parked submitters — their
                    # dispatch coroutines turn this into error frames —
                    # and keep serving.
                    self._fail_pending(exc)
                    break
                if not reports:
                    break
                for report in reports:
                    future = self._futures.pop(report.job_id, None)
                    if future is not None and not future.done():
                        future.set_result(report)

    # -- connection handling ----------------------------------------------
    async def _handle(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._dispatch(line)
                writer.write(
                    (json.dumps(response) + "\n").encode("utf-8")
                )
                await writer.drain()
        finally:
            writer.close()

    def _submit_sync(self, request: JobRequest) -> tuple[JobReport, bool]:
        """Worker-thread submit returning a queued-ness snapshot.

        The snapshot is taken on the service thread, where it is
        serialized against flush rounds — the event loop must never
        read ``report.status`` while a round may be mutating it.
        Anytime-shaped requests run their rounds right here on the
        service thread and come back settled (never queued).
        """
        if request.anytime:
            submit_anytime = getattr(
                self.service, "submit_anytime", None
            )
            if submit_anytime is None:
                report = JobReport(
                    job_id=request.job_id,
                    tenant=request.tenant,
                    kernel=request.kernel,
                    ratio_requested=request.ratio,
                    status="rejected-not-anytime",
                    code=400,
                    detail="service has no anytime path",
                )
                return report, False
            return submit_anytime(request), False
        report = self.service.submit(request)
        return report, report.status == "queued"

    async def _dispatch(self, line: bytes) -> dict:
        import asyncio

        try:
            message = json.loads(line)
            op = message.get("op", "submit")
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "stats":
                stats = await self._call(self.service.stats)
                return {"ok": True, "stats": stats}
            if op == "metrics":
                fmt = message.get("format", "json")
                as_text = fmt in ("prometheus", "text")
                fn = getattr(
                    self.service,
                    "metrics_text" if as_text else "metrics_snapshot",
                    None,
                )
                if fn is None:
                    return {
                        "ok": False,
                        "error": "service has no metrics endpoint",
                    }
                body = await self._call(fn)
                return {"ok": True, ("text" if as_text else "metrics"): body}
            if op != "submit":
                return {"ok": False, "error": f"unknown op {op!r}"}
            payload = {
                k: v for k, v in message.items() if k != "op"
            }
            request = JobRequest.from_dict(payload)
            if request.job_id in self._futures:
                return {
                    "ok": False,
                    "error": f"job id {request.job_id!r} is already "
                    "in flight on this gateway",
                }
            # The gateway is the outermost instrumented layer: a
            # request arriving without a trace gets its root span here,
            # covering the full wire-to-settled wall time of the op.
            recorder = getattr(self.service, "span_recorder", None)
            gspan = None
            if recorder is not None and request.trace_id is None:
                gspan = start_span(
                    "gateway.request",
                    tenant=request.tenant,
                    job=request.job_id,
                    op="submit",
                )
                request.trace_id = gspan.trace_id
                request.parent_span = gspan.span_id
            # Register the waiter *before* the service sees the job:
            # the flusher may settle the round (and try to resolve the
            # future) before this coroutine gets scheduled again.
            future = asyncio.get_event_loop().create_future()
            self._futures[request.job_id] = future
            try:
                report, queued = await self._call(
                    self._submit_sync, request
                )
                if queued:
                    self._wake.set()
                    report = await future
                else:
                    self._futures.pop(request.job_id, None)
            except BaseException:
                self._futures.pop(request.job_id, None)
                raise
            if gspan is not None:
                gspan.end(
                    recorder, status=report.status, code=report.code
                )
            return {"ok": report.ok, "job": report.to_dict()}
        except Exception as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
