"""``repro.serve`` — the significance-aware runtime as a service.

The paper's runtime trades quality for energy one batch run at a time;
this module composes the pieces grown around it (registries, pluggable
engines, batched spawn, the budget governor) into a long-lived,
multi-tenant *task service*:

* :class:`TaskService` — the in-process core.  One shared
  :class:`~repro.runtime.scheduler.Scheduler` (any execution backend)
  multiplexes every tenant's jobs: each admitted job becomes one task
  group (label ``tenant/job-id``), whole admission rounds are spawned
  through the batched ``spawn_many`` fast path, and one barrier per
  round retires them.  Per-job energy, decision mix, quality and
  latency are carved out of the shared trace by group.
* **Admission control** (:mod:`repro.serve.tenants`) — per-tenant queue
  caps and lifetime energy budgets.  A tenant over budget or over its
  queue cap is answered from the approximate-result cache
  (:mod:`repro.serve.cache`) when an acceptable lower-ratio entry
  exists, and rejected 429-style otherwise.  Budgeted tenants are
  steered by a per-tenant
  :class:`~repro.tuning.governor.EnergyBudgetGovernor` that lowers the
  ratio their jobs are *served* at as the budget drains.
* :class:`LocalGateway` — synchronous in-process front end (tests,
  benches, figures).
* :class:`ServeServer` — an asyncio JSON-lines-over-TCP gateway
  (``python -m repro.harness serve``); see :mod:`repro.serve.client`
  for the matching clients.

Energy attribution: a job is billed its tasks' busy seconds times the
machine model's active-core power — the *marginal* cost of admitting
the job onto the shared machine.  Package-static power is a cost of
running the service at all and is reported on the service totals, not
to tenants.
"""

from __future__ import annotations

import itertools
import json
import time as _time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..config import RuntimeConfig
from ..runtime.errors import ConfigError, RegistryError, SchedulerError
from ..runtime.scheduler import Scheduler
from . import ServiceProtocol
from .cache import ApproxResultCache, _ratio_key
from .kernels import ServableKernel, get_servable
from .tenants import TenantSpec, TenantState

__all__ = [
    "JobRequest",
    "JobReport",
    "TaskService",
    "LocalGateway",
    "ServeServer",
    "DEFAULT_SERVE_CONFIG",
]

#: Default runtime for a service: GTB Max-Buffer stamps each round's
#: decisions at the round barrier by sorting every job group on
#: significance, so a job served at ratio r gets *exactly*
#: ``ceil(r * B)`` accurate tasks — per-job groups are far too small
#: for LQH's per-worker histograms to warm up.
DEFAULT_SERVE_CONFIG = RuntimeConfig(policy="gtb-max", n_workers=16)

_job_ids = itertools.count(1)


@dataclass
class JobRequest:
    """One job submission: a kernel, its args, and a quality request."""

    tenant: str
    kernel: str
    args: dict | None = None
    #: Requested accurate-task ratio (the Table 1 knob, per job).
    ratio: float = 1.0
    job_id: str = field(default_factory=lambda: f"j{next(_job_ids)}")

    def __post_init__(self) -> None:
        if not 0.0 <= self.ratio <= 1.0:
            raise ConfigError(
                f"job ratio must be in [0, 1], got {self.ratio}"
            )
        if self.args is not None and not isinstance(self.args, dict):
            raise ConfigError(
                f"job args must be a dict or None, got {self.args!r}"
            )

    @classmethod
    def from_dict(cls, data: dict) -> "JobRequest":
        known = {"tenant", "kernel", "args", "ratio", "job_id"}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown JobRequest keys {sorted(unknown)}"
            )
        missing = {"tenant", "kernel"} - set(data)
        if missing:
            raise ConfigError(
                f"JobRequest needs {sorted(missing)}"
            )
        return cls(**data)


@dataclass
class JobReport:
    """Per-job outcome: the service's answer envelope.

    ``status`` is one of ``executed``, ``cached``, ``cached-degraded``,
    ``coalesced`` (identical in-round work, served from its leader's
    execution), ``queued`` (transient), or a ``rejected-*`` reason;
    ``code``
    mirrors it HTTP-style (200 served, 429 shed, 404 unknown).
    ``latency_s`` is measured on the engine's own timeline (virtual
    seconds on simulated backends — deterministic), ``wall_latency_s``
    on the host clock.
    """

    job_id: str
    tenant: str
    kernel: str
    status: str = "queued"
    code: int = 0
    ratio_requested: float = 1.0
    ratio_served: float | None = None
    quality: float | None = None
    energy_j: float = 0.0
    latency_s: float = 0.0
    wall_latency_s: float = 0.0
    tasks_total: int = 0
    accurate: int = 0
    approximate: int = 0
    dropped: int = 0
    detail: str = ""
    output: Any = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.code == 200

    @property
    def served_from_cache(self) -> bool:
        return self.status in ("cached", "cached-degraded")

    def to_dict(self) -> dict:
        """Wire form: everything but the output payload (scalar outputs
        ride along as ``result``)."""
        out = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "kernel": self.kernel,
            "status": self.status,
            "code": self.code,
            "ratio_requested": self.ratio_requested,
            "ratio_served": self.ratio_served,
            "quality": self.quality,
            "energy_j": self.energy_j,
            "latency_s": self.latency_s,
            "wall_latency_s": self.wall_latency_s,
            "tasks_total": self.tasks_total,
            "accurate": self.accurate,
            "approximate": self.approximate,
            "dropped": self.dropped,
            "detail": self.detail,
        }
        if isinstance(self.output, (int, float, str, bool)):
            out["result"] = self.output
        return out


@dataclass
class _Admitted:
    """Queue entry: an admitted job waiting for its execution round."""

    request: JobRequest
    kernel: ServableKernel
    digest: str
    report: JobReport
    t_submit_engine: float
    t_submit_wall: float
    plan: Any
    label: str = ""
    tasks: list = field(default_factory=list)
    #: Compile-tier :class:`~repro.compiler.specialize.SpecializedPlan`
    #: when the job was specialized at spawn time (``None`` otherwise).
    splan: Any = None

    @property
    def n_tasks_est(self) -> int:
        return self.plan.n_tasks


class TaskService:
    """The in-process multi-tenant serving core (see module docstring).

    Parameters
    ----------
    config:
        :class:`~repro.config.RuntimeConfig` for the shared scheduler;
        its ``tenants`` field (tenant spec strings) populates the
        tenant table.  Default: GTB Max-Buffer on 16 simulated workers
        (see :data:`DEFAULT_SERVE_CONFIG`).
    tenants:
        Extra tenant specs/instances, merged over ``config.tenants``.
        With neither, a single unmetered ``"standard"`` tenant is
        provisioned.
    cache_capacity:
        LRU capacity of the approximate-result cache.
    cache:
        An already-built cache to use instead of a private
        :class:`~repro.serve.cache.ApproxResultCache` — anything with
        the same ``get`` / ``get_degraded`` / ``put`` / ``stats``
        surface.  The cluster layer injects a per-shard
        :class:`~repro.cluster.cache.CacheView` here so every shard
        reads through one logical sharded cache.
    max_batch:
        Jobs executed per round, drained round-robin across tenants.
    compute_quality:
        Score every executed job against the kernel's accurate
        reference (cached per argument digest).  Turn off when serving
        throughput matters more than reporting.

    Notes
    -----
    The result cache and reference cache are LRU-bounded, and task
    descriptors are recycled through the process
    :class:`~repro.runtime.task.TaskSlab` once a round settles (unless
    the config carries a service-level governor, whose cost priors
    sample ``scheduler.tasks`` and therefore force retention).  The
    shared scheduler still accumulates one task group and its trace
    segments per *executed* job for the run's lifetime (that is what
    makes the final :class:`~repro.runtime.stats.RunReport` and the
    tagged Chrome trace possible).  A service therefore scales to
    campaigns of many thousands of jobs, not to an unbounded daemon
    lifetime — recycle the service (``close()`` + rebuild) between
    campaigns; the cheap admission paths (cache hits, rejections)
    allocate nothing per job.
    """

    def __init__(
        self,
        config: RuntimeConfig | None = None,
        tenants: tuple | list = (),
        *,
        cache_capacity: int = 128,
        cache=None,
        max_batch: int = 8,
        compute_quality: bool = True,
    ) -> None:
        if max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {max_batch}")
        self.config = config if config is not None else DEFAULT_SERVE_CONFIG
        specs = list(self.config.build_tenants())
        for extra in tenants:
            specs.append(
                extra
                if isinstance(extra, TenantSpec)
                else _resolve_tenant(extra)
            )
        if not specs:
            from .tenants import make_standard_tenant

            specs = [make_standard_tenant()]
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names in {names}")
        self._tenants: dict[str, TenantState] = {
            s.name: TenantState(s) for s in specs
        }
        self.cache = (
            cache if cache is not None else ApproxResultCache(cache_capacity)
        )
        self.max_batch = max_batch
        self.compute_quality = compute_quality

        # Descriptor recycling is only sound when nothing samples the
        # scheduler's task list after settlement; a service-level
        # governor does (cost priors), so it forces retention.
        self._sched = Scheduler(
            config=self.config,
            retain_tasks=self.config.governor is not None,
        )
        self._machine = self._sched.machine_model
        self._watts = self._machine.busy_extra_w() + self._machine.core_idle_w
        #: The compile tier (``RuntimeConfig.compile``): admission
        #: knows the per-tenant served ratio, so jobs are specialized
        #: here — the decision folded, variants inlined, bodies cached
        #: per ``(kernel, spec)`` across jobs and rounds.
        self._specializer = self._sched.specializer
        self._queues: dict[str, list[_Admitted]] = {}
        self._rr: list[str] = []  # tenant scan order for round-taking
        self._rr_pos = 0  # persistent round-robin cursor into _rr
        self._kernels: dict[str, ServableKernel] = {}
        # Reference outputs are bounded like the result cache: a
        # long-lived service must not grow one full-size accurate
        # output per distinct argument digest forever.
        self._references: "OrderedDict[tuple[str, str], Any]" = (
            OrderedDict()
        )
        self._references_cap = max(cache_capacity, 8)
        #: Job ids currently queued (duplicate submissions would
        #: collide on the scheduler group label and corrupt per-job
        #: accounting, so they are rejected at admission).
        self._active_ids: set[str] = set()
        #: group label -> {"tenant": ..., "job": ..., "kernel": ...}
        #: (chrome-trace annotation material).
        self.job_meta: dict[str, dict] = {}
        self._seg_cursor = 0
        self._rounds = 0
        self._closed = False
        self.run_report = None

    # -- introspection ---------------------------------------------------
    @property
    def scheduler(self) -> Scheduler:
        """The shared scheduler (observation only)."""
        return self._sched

    @property
    def tenants(self) -> dict[str, TenantState]:
        return self._tenants

    @property
    def pending_jobs(self) -> int:
        return sum(len(q) for q in self._queues.values())

    @property
    def rounds(self) -> int:
        return self._rounds

    def stats(self) -> dict:
        """Service-wide digest (the gateway's ``stats`` op)."""
        return {
            "tenants": {
                name: state.summary()
                for name, state in self._tenants.items()
            },
            "cache": self.cache.stats.to_dict(),
            "pending_jobs": self.pending_jobs,
            "rounds": self._rounds,
            "engine_time_s": self._sched.engine.master_time,
            "engine": str(self.config.engine),
            "policy": self._sched.policy.describe(),
        }

    # -- admission -------------------------------------------------------
    def _kernel(self, name: str) -> ServableKernel:
        kernel = self._kernels.get(name)
        if kernel is None:
            kernel = self._kernels[name] = get_servable(name)
        return kernel

    def submit(self, request: JobRequest | dict) -> JobReport:
        """Admit one job.

        Returns a completed :class:`JobReport` for cache-served and
        rejected jobs; a ``status="queued"`` report otherwise — the
        *same object* is filled in by the job's execution round (see
        :meth:`flush`), so callers may simply hold on to it.
        """
        if self._closed:
            raise SchedulerError("service is closed")
        if isinstance(request, dict):
            request = JobRequest.from_dict(request)
        report = JobReport(
            job_id=request.job_id,
            tenant=request.tenant,
            kernel=request.kernel,
            ratio_requested=request.ratio,
        )
        state = self._tenants.get(request.tenant)
        if state is None:
            report.status = "rejected-unknown-tenant"
            report.code = 404
            report.detail = f"unknown tenant {request.tenant!r}"
            return report
        if request.job_id in self._active_ids:
            report.status = "rejected-duplicate-id"
            report.code = 409
            report.detail = (
                f"job id {request.job_id!r} is already queued"
            )
            state.rejected += 1
            return report
        try:
            kernel = self._kernel(request.kernel)
        except (RegistryError, ConfigError) as exc:
            report.status = "rejected-unknown-kernel"
            report.code = 404
            report.detail = str(exc)
            state.rejected += 1
            return report
        try:
            # Digest only: the shedding paths below must stay cheap —
            # the full plan (input data and all) is built only for
            # admitted jobs.
            digest = kernel.digest(request.args)
        except ConfigError as exc:
            report.status = "rejected-bad-args"
            report.code = 400
            report.detail = str(exc)
            state.rejected += 1
            return report

        if state.over_budget or state.saturated:
            reason = "budget" if state.over_budget else "queue"
            entry = None
            if state.spec.degrade_to_cache:
                # Load shedding: any same-work answer at or below the
                # requested quality beats burning energy or erroring.
                entry = self.cache.get_degraded(
                    kernel.name, digest, max_ratio=request.ratio
                )
            if entry is not None:
                self._serve_cached(report, state, entry)
                report.detail = f"over-{reason} -> cache"
                return report
            report.status = f"rejected-{reason}"
            report.code = 429
            report.detail = (
                f"tenant {state.spec.name!r} over energy budget"
                if reason == "budget"
                else f"tenant queue full ({state.spec.max_pending})"
            )
            state.rejected += 1
            return report

        plan = kernel.plan(request.args)
        # Seed the tenant's energy model from the analytic plan cost so
        # the very first governor step has something to project with.
        if state.governor is not None and state.e_acc_j is None:
            cost = _plan_cost(plan)
            ops = self._machine.ops_per_second
            state.e_acc_j = cost.accurate / ops * self._watts
            state.e_apx_j = cost.approximate / ops * self._watts
        admitted = _Admitted(
            request=request,
            kernel=kernel,
            digest=digest,
            report=report,
            t_submit_engine=self._sched.engine.master_time,
            t_submit_wall=_time.perf_counter(),
            plan=plan,
        )
        if request.tenant not in self._queues:
            self._queues[request.tenant] = []
            self._rr.append(request.tenant)
        self._queues[request.tenant].append(admitted)
        self._active_ids.add(request.job_id)
        state.pending += 1
        return report

    def _serve_cached(self, report, state: TenantState, entry) -> None:
        exact = entry.ratio >= report.ratio_requested
        report.status = "cached" if exact else "cached-degraded"
        report.code = 200
        report.ratio_served = entry.ratio
        report.quality = entry.quality
        report.output = entry.output
        report.energy_j = 0.0
        if exact:
            state.cached += 1
        else:
            state.cached_degraded += 1

    # -- execution rounds -------------------------------------------------
    def _take_round(self) -> list[_Admitted]:
        """Up to ``max_batch`` queued jobs, round-robin across tenants.

        The cursor persists across rounds, so a ``max_batch`` that
        truncates mid-pass resumes at the next tenant instead of
        restarting the scan — no tenant is systematically favored for
        having registered first.
        """
        batch: list[_Admitted] = []
        names = self._rr
        if not names:
            return batch
        pos = self._rr_pos
        empty_streak = 0
        while len(batch) < self.max_batch and empty_streak < len(names):
            name = names[pos % len(names)]
            pos += 1
            queue = self._queues.get(name)
            if queue:
                batch.append(queue.pop(0))
                empty_streak = 0
            else:
                empty_streak += 1
        self._rr_pos = pos % len(names)
        return batch

    def _queued_tasks(self, tenant: str) -> int:
        return sum(
            a.n_tasks_est for a in self._queues.get(tenant, ())
        )

    def flush(self) -> list[JobReport]:
        """Execute one admission round on the shared engine.

        Steers every budgeted tenant's governor against its queued
        work, re-checks the cache at the ratio each job will actually
        be served at, spawns the remainder as per-job task groups in
        one batch, and settles reports/budgets from the round's trace
        window.  Returns the round's completed reports.
        """
        if self._closed:
            raise SchedulerError("service is closed")
        batch = self._take_round()
        if not batch:
            return []
        sched = self._sched
        now = sched.engine.master_time

        # Pre-steer: the governor solve needs the tasks this round will
        # issue to still count as "remaining", so it runs before spawn.
        in_round: dict[str, int] = {}
        for adm in batch:
            in_round[adm.request.tenant] = (
                in_round.get(adm.request.tenant, 0) + adm.n_tasks_est
            )
        for name, extra in in_round.items():
            state = self._tenants[name]
            if state.governor is not None:
                state.steer(now, self._queued_tasks(name) + extra)

        to_run: list[_Admitted] = []
        leaders: dict[tuple, _Admitted] = {}
        followers: list[tuple[_Admitted, _Admitted]] = []
        for adm in batch:
            state = self._tenants[adm.request.tenant]
            state.pending -= 1
            self._active_ids.discard(adm.request.job_id)
            requested = adm.request.ratio
            effective = min(requested, state.ratio)
            effective = max(effective, state.spec.ratio_floor)
            adm.report.ratio_served = effective
            # The round's cache window: an entry at least as accurate
            # as we would execute, and no more accurate than asked for,
            # serves the job for free.
            entry = self.cache.get_degraded(
                adm.kernel.name,
                adm.digest,
                max_ratio=requested,
                min_ratio=effective,
            )
            if entry is not None:
                self._serve_cached(adm.report, state, entry)
                self._finish_latency(adm, now)
                continue
            # In-round coalescing: identical work at the same served
            # ratio executes once; the leader is billed, followers ride
            # along for free (the batch-dedupe twin of the cache).
            work_key = (adm.kernel.name, adm.digest, _ratio_key(effective))
            leader = leaders.get(work_key)
            if leader is not None:
                followers.append((adm, leader))
                continue
            leaders[work_key] = adm
            label = f"{adm.request.tenant}/{adm.request.job_id}"
            self.job_meta[label] = {
                "tenant": adm.request.tenant,
                "job": adm.request.job_id,
                "kernel": adm.kernel.name,
            }
            plan = adm.plan
            sched.init_group(label, effective)
            splan = None
            if self._specializer is not None:
                # The served ratio is decided here, so this is where
                # the compile tier folds the significance branch away;
                # a None return (unspecializable body) falls back to
                # the interpreted spawn path.
                splan = self._specializer.specialize_plan(
                    adm.kernel.name,
                    plan,
                    ratio=effective,
                    n_chunks=self.config.n_workers,
                )
            if splan is not None:
                adm.splan = splan
                self.job_meta[label]["specialized"] = True
                self.job_meta[label]["n_chunks"] = splan.n_chunks
                adm.tasks = sched.spawn_specialized(splan, label=label)
            else:
                adm.tasks = sched.spawn_many(
                    plan.fn,
                    plan.args_list,
                    significance=plan.significance,
                    approxfun=plan.approxfun,
                    label=label,
                    cost=plan.cost,
                )
            adm.label = label
            to_run.append(adm)

        if to_run:
            t_end = sched.taskwait()
        else:
            t_end = now
        self._settle(to_run, t_end)
        for adm, leader in followers:
            led = leader.report
            report = adm.report
            report.status = "coalesced"
            report.code = 200
            report.ratio_served = led.ratio_served
            report.quality = led.quality
            report.output = led.output
            report.energy_j = 0.0
            report.detail = f"coalesced with {led.job_id}"
            self._finish_latency(adm, t_end)
            self._tenants[adm.request.tenant].coalesced += 1
        self._rounds += 1
        return [adm.report for adm in batch]

    def _finish_latency(self, adm: _Admitted, t_end: float) -> None:
        adm.report.latency_s = max(0.0, t_end - adm.t_submit_engine)
        adm.report.wall_latency_s = max(
            0.0, _time.perf_counter() - adm.t_submit_wall
        )

    def _settle(self, ran: list[_Admitted], t_end: float) -> None:
        """Carve the round's trace window into per-job outcomes."""
        segments = self._sched.engine.accounting.trace.segments
        busy: dict[tuple[str, Any], float] = {}
        for seg in segments[self._seg_cursor:]:
            key = (seg.group, seg.kind)
            busy[key] = busy.get(key, 0.0) + seg.duration
        self._seg_cursor = len(segments)

        from ..runtime.task import ExecutionKind

        per_tenant: dict[str, dict[str, list[float]]] = {}
        for adm in ran:
            label = adm.label
            group = self._sched.groups.get(label)
            busy_acc = busy.get((label, ExecutionKind.ACCURATE), 0.0)
            busy_apx = busy.get((label, ExecutionKind.APPROXIMATE), 0.0)
            if adm.splan is not None:
                # Specialized chunks all execute as forced-accurate
                # tasks; apportion the job's busy time by the plan's
                # per-kind work shares so the tenant's e_acc/e_apx
                # energy models stay calibrated.
                w_acc = adm.splan.work_acc
                w_apx = adm.splan.work_apx
                w_tot = w_acc + w_apx
                if w_tot > 0.0:
                    busy_tot = busy_acc + busy_apx
                    busy_acc = busy_tot * (w_acc / w_tot)
                    busy_apx = busy_tot - busy_acc
            energy_j = (busy_acc + busy_apx) * self._watts

            report = adm.report
            report.status = "executed"
            report.code = 200
            if adm.splan is not None:
                # Specialized jobs run as a handful of chunk tasks;
                # report the *logical* task counts from the folded
                # decision vector, and scatter the chunk results back
                # to element order before combining.
                splan = adm.splan
                report.tasks_total = splan.n_tasks
                report.accurate = splan.accurate
                report.approximate = splan.approximate
                report.dropped = splan.dropped
                results = splan.gather([t.result for t in adm.tasks])
            else:
                report.tasks_total = group.spawned
                report.accurate = group.accurate_count
                report.approximate = group.approx_count
                report.dropped = group.dropped_count
                results = [t.result for t in adm.tasks]
            report.energy_j = energy_j
            report.output = adm.kernel.combine(adm.request.args, results)
            if self.compute_quality:
                report.quality = adm.kernel.quality(
                    self._reference(adm.kernel, adm.digest, adm.request),
                    report.output,
                )
            self._finish_latency(adm, t_end)

            state = self._tenants[adm.request.tenant]
            state.executed += 1
            state.charge(energy_j)
            self.cache.put(
                adm.kernel.name,
                adm.digest,
                report.ratio_served,
                report.output,
                quality=report.quality,
                energy_j=energy_j,
            )
            bucket = per_tenant.setdefault(
                adm.request.tenant,
                {"acc": [0.0, 0], "apx": [0.0, 0]},
            )
            bucket["acc"][0] += busy_acc
            bucket["acc"][1] += report.accurate
            bucket["apx"][0] += busy_apx
            # Dropped tasks cost (and would cost) nothing; fold them in
            # with the approximate basket so e_apx reflects "what a
            # degraded task costs" on this tenant's mix.
            bucket["apx"][1] += report.approximate + report.dropped

        for name, buckets in per_tenant.items():
            state = self._tenants[name]
            for kind, (busy_s, count) in buckets.items():
                state.observe_energy(kind, busy_s, count, self._watts)

        # Shallow-profiler landing: per-callee wall timings of every
        # profiled specialized body, windowed to this round and written
        # into the job's group_meta so the chrome trace carries them.
        if self._specializer is not None and getattr(
            self._specializer, "profile", False
        ):
            from ..compiler.specialize import profile_snapshot

            prof_by_kernel: dict[str, dict] = {}
            for adm in ran:
                if adm.splan is None:
                    continue
                name = adm.kernel.name
                if name not in prof_by_kernel:
                    prof_by_kernel[name] = profile_snapshot(
                        kernel=name, clear=True
                    )
                if prof_by_kernel[name]:
                    self.job_meta[adm.label]["profile"] = (
                        prof_by_kernel[name]
                    )

        # Results are harvested and reports settled: recycle the round's
        # descriptors so a long-lived service does not grow one Task per
        # executed job forever.
        if not self._sched.retains_tasks:
            for adm in ran:
                self._sched.release_tasks(adm.tasks)
                adm.tasks = []

    def _reference(self, kernel: ServableKernel, digest: str, request):
        key = (kernel.name, digest)
        ref = self._references.get(key)
        if ref is None:
            ref = self._references[key] = kernel.reference(request.args)
            while len(self._references) > self._references_cap:
                self._references.popitem(last=False)
        else:
            self._references.move_to_end(key)
        return ref

    # -- trace export ------------------------------------------------------
    def write_trace(self, path: str | Path) -> Path:
        """Chrome-trace export of the whole serve run, events tagged
        with tenant/job/kernel ids (one timeline for the service)."""
        from ..sim.chrome_trace import write_chrome_trace

        return write_chrome_trace(
            self._sched.engine.accounting.trace,
            path,
            group_meta=self.job_meta,
        )

    # -- lifecycle ---------------------------------------------------------
    def close(self):
        """Drain remaining rounds, finish the shared run, and return
        the canonical :class:`~repro.runtime.stats.RunReport`."""
        if self._closed:
            return self.run_report
        while self.pending_jobs:
            self.flush()
        self.run_report = self._sched.finish()
        self._closed = True
        return self.run_report

    def __enter__(self) -> "TaskService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()


def _resolve_tenant(spec: Any) -> TenantSpec:
    from ..registry import resolve

    tenant = resolve("tenant", spec)
    if not isinstance(tenant, TenantSpec):
        raise ConfigError(
            f"tenant spec {spec!r} resolved to "
            f"{type(tenant).__name__}, not a TenantSpec"
        )
    return tenant


def _plan_cost(plan) -> "TaskCost":
    """A representative per-task cost for one plan (model seeding)."""
    from ..runtime.task import TaskCost

    cost = plan.cost
    if callable(cost) and not isinstance(cost, TaskCost):
        cost = cost(*plan.args_list[0]) if plan.args_list else None
    return cost if isinstance(cost, TaskCost) else TaskCost(0.0)


class LocalGateway:
    """Synchronous in-process facade over any :class:`ServiceProtocol`.

    The test/bench front end: submit jobs, drain rounds, get reports —
    no sockets, no event loop.  Works identically over a single-node
    :class:`TaskService` and a sharded
    :class:`~repro.cluster.service.ClusterService`.
    """

    def __init__(
        self, service: ServiceProtocol | None = None, **kwargs
    ) -> None:
        if service is not None and not isinstance(
            service, ServiceProtocol
        ):
            raise ConfigError(
                f"{type(service).__name__} does not implement "
                "ServiceProtocol (submit/flush/pending_jobs/stats/close)"
            )
        self.service: ServiceProtocol = (
            service if service is not None else TaskService(**kwargs)
        )

    def submit(self, request: JobRequest | dict) -> JobReport:
        """Admit one job (completed immediately when cache/rejection
        answers it; otherwise finished by the next :meth:`drain`)."""
        return self.service.submit(request)

    def drain(self) -> int:
        """Run execution rounds until the queue is empty."""
        rounds = 0
        while self.service.pending_jobs:
            self.service.flush()
            rounds += 1
        return rounds

    def submit_many(
        self, requests: list[JobRequest | dict]
    ) -> list[JobReport]:
        """Submit a stream of jobs and run it to completion."""
        reports = [self.service.submit(r) for r in requests]
        self.drain()
        return reports

    def stats(self) -> dict:
        return self.service.stats()

    def close(self):
        return self.service.close()

    def __enter__(self) -> "LocalGateway":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()


class ServeServer:
    """Asyncio JSON-lines-over-TCP gateway around any
    :class:`ServiceProtocol` (a :class:`TaskService` by default).

    Protocol: one JSON object per line.

    * ``{"op": "submit", "tenant": ..., "kernel": ..., "args": {...},
      "ratio": 0.8}`` → ``{"ok": true, "job": {...}}`` once the job
      settles (cache/rejection immediately; executed jobs after their
      round).
    * ``{"op": "stats"}`` → ``{"ok": true, "stats": {...}}``
    * ``{"op": "ping"}`` → ``{"ok": true, "pong": true}``

    All service state is touched from a single worker thread (the
    scheduler is not thread-safe); the event loop only parses frames
    and parks submitters on futures.  Rounds form by batching whatever
    arrived within ``batch_window_s``.
    """

    def __init__(
        self,
        service: ServiceProtocol | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        batch_window_s: float = 0.01,
        **service_kwargs,
    ) -> None:
        if service is not None and not isinstance(
            service, ServiceProtocol
        ):
            raise ConfigError(
                f"{type(service).__name__} does not implement "
                "ServiceProtocol (submit/flush/pending_jobs/stats/close)"
            )
        self.service: ServiceProtocol = (
            service if service is not None else TaskService(**service_kwargs)
        )
        self.host = host
        self.port = port
        self.batch_window_s = batch_window_s
        self._server = None
        self._flusher = None
        self._executor = None
        self._futures: dict[str, Any] = {}
        self._wake = None

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        import asyncio
        from concurrent.futures import ThreadPoolExecutor

        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._wake = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sock = self._server.sockets[0].getsockname()
        self.host, self.port = sock[0], sock[1]
        self._flusher = asyncio.ensure_future(self._flush_loop())
        return self.host, self.port

    async def close(self) -> None:
        import asyncio

        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._flusher is not None:
            self._flusher.cancel()
            try:
                await self._flusher
            except asyncio.CancelledError:
                pass
            self._flusher = None
        # Waiters still parked on queued jobs get an error frame, not a
        # connection that silently hangs until their socket timeout.
        self._fail_pending(RuntimeError("serve gateway shut down"))
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _fail_pending(self, exc: BaseException) -> None:
        futures, self._futures = self._futures, {}
        for future in futures.values():
            if not future.done():
                future.set_exception(exc)

    async def _call(self, fn, *args):
        import asyncio

        loop = asyncio.get_event_loop()
        return await loop.run_in_executor(self._executor, fn, *args)

    async def _flush_loop(self) -> None:
        import asyncio

        while True:
            await self._wake.wait()
            self._wake.clear()
            # Let a round's worth of submissions accumulate.
            await asyncio.sleep(self.batch_window_s)
            # Loop on flush()'s own emptiness signal: every touch of
            # service state happens on the worker thread (submit may
            # be mutating the queues concurrently with this loop).
            while True:
                try:
                    reports = await self._call(self.service.flush)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    # A failing round (e.g. a broken process pool) must
                    # not kill the flusher silently and wedge every
                    # waiter: fail the parked submitters — their
                    # dispatch coroutines turn this into error frames —
                    # and keep serving.
                    self._fail_pending(exc)
                    break
                if not reports:
                    break
                for report in reports:
                    future = self._futures.pop(report.job_id, None)
                    if future is not None and not future.done():
                        future.set_result(report)

    # -- connection handling ----------------------------------------------
    async def _handle(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._dispatch(line)
                writer.write(
                    (json.dumps(response) + "\n").encode("utf-8")
                )
                await writer.drain()
        finally:
            writer.close()

    def _submit_sync(self, request: JobRequest) -> tuple[JobReport, bool]:
        """Worker-thread submit returning a queued-ness snapshot.

        The snapshot is taken on the service thread, where it is
        serialized against flush rounds — the event loop must never
        read ``report.status`` while a round may be mutating it.
        """
        report = self.service.submit(request)
        return report, report.status == "queued"

    async def _dispatch(self, line: bytes) -> dict:
        import asyncio

        try:
            message = json.loads(line)
            op = message.get("op", "submit")
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "stats":
                stats = await self._call(self.service.stats)
                return {"ok": True, "stats": stats}
            if op != "submit":
                return {"ok": False, "error": f"unknown op {op!r}"}
            payload = {
                k: v for k, v in message.items() if k != "op"
            }
            request = JobRequest.from_dict(payload)
            if request.job_id in self._futures:
                return {
                    "ok": False,
                    "error": f"job id {request.job_id!r} is already "
                    "in flight on this gateway",
                }
            # Register the waiter *before* the service sees the job:
            # the flusher may settle the round (and try to resolve the
            # future) before this coroutine gets scheduled again.
            future = asyncio.get_event_loop().create_future()
            self._futures[request.job_id] = future
            try:
                report, queued = await self._call(
                    self._submit_sync, request
                )
                if queued:
                    self._wake.set()
                    report = await future
                else:
                    self._futures.pop(request.job_id, None)
            except BaseException:
                self._futures.pop(request.job_id, None)
                raise
            return {"ok": report.ok, "job": report.to_dict()}
        except Exception as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
