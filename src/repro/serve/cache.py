"""The approximate-result cache: the drop/approximate decision, lifted
to the serving layer.

The paper's runtime decides per *task* whether accuracy is worth the
energy; a long-lived service gets a second, coarser decision point per
*job*: an answer of the same kind may already exist.  The cache keys
results on ``(kernel, args digest, accurate ratio)`` — the ratio is part
of the identity because a ratio-0.4 Sobel is a *different, lower-quality
artifact* than a ratio-1.0 one.

Two lookups implement the serving policy:

* :meth:`ApproxResultCache.get` — exact: the same work at the same
  quality has been computed; serving it costs zero Joules.
* :meth:`ApproxResultCache.get_degraded` — the load-shedding path: any
  cached result of the same work whose ratio falls in
  ``[min_ratio, max_ratio]``.  When a tenant is over its energy budget
  or its queue is saturated, the service answers with the best such
  entry instead of burning energy or rejecting — exactly the paper's
  "execute approximately instead of accurately" trade, made at
  admission time.

Capacity is bounded with LRU eviction; all statistics are exposed for
the figures and the smoke gate.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from ..runtime.errors import ConfigError

__all__ = ["CacheEntry", "CacheStats", "ApproxResultCache"]


def _ratio_key(ratio: float) -> float:
    """Quantize a ratio for keying (the runtime's 101 levels)."""
    return round(float(ratio), 2)


@dataclass
class CacheEntry:
    """One cached job outcome."""

    kernel: str
    digest: str
    ratio: float
    output: Any = field(repr=False)
    quality: float | None = None
    energy_j: float = 0.0
    hits: int = 0

    @property
    def key(self) -> tuple[str, str, float]:
        return (self.kernel, self.digest, self.ratio)


@dataclass
class CacheStats:
    """Counters the service and the bench probes report."""

    hits: int = 0
    degraded_hits: int = 0
    misses: int = 0
    evictions: int = 0
    puts: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.degraded_hits + self.misses

    @property
    def hit_rate(self) -> float:
        n = self.lookups
        return (self.hits + self.degraded_hits) / n if n else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "degraded_hits": self.degraded_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "puts": self.puts,
            "hit_rate": self.hit_rate,
        }


class ApproxResultCache:
    """LRU cache of job results keyed ``(kernel, digest, ratio)``."""

    def __init__(
        self, capacity: int = 128, *, metrics: Any = None
    ) -> None:
        if capacity < 1:
            raise ConfigError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, CacheEntry]" = OrderedDict()
        self.stats = CacheStats()
        # Telemetry handles, pre-bound per outcome so the lookup path
        # pays one attribute test plus one cell increment (see
        # repro.obs.registry); None when no registry is wired.
        self._m_hit = None
        self._m_degraded = None
        self._m_miss = None
        self._m_put = None
        self._m_evict = None
        if metrics is not None:
            lookups = metrics.counter(
                "repro_cache_lookups_total",
                "Result-cache lookups by outcome.",
                labels=("result",),
            )
            self._m_hit = lookups.labels("hit")
            self._m_degraded = lookups.labels("degraded")
            self._m_miss = lookups.labels("miss")
            self._m_put = metrics.counter(
                "repro_cache_puts_total", "Result-cache inserts."
            )
            self._m_evict = metrics.counter(
                "repro_cache_evictions_total",
                "Result-cache LRU evictions.",
            )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        kernel, digest, ratio = key
        return (kernel, digest, _ratio_key(ratio)) in self._entries

    # -- lookups ---------------------------------------------------------
    def get(
        self, kernel: str, digest: str, ratio: float
    ) -> CacheEntry | None:
        """Exact hit: same work, same quality level."""
        key = (kernel, digest, _ratio_key(ratio))
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            if self._m_miss is not None:
                self._m_miss.inc()
            return None
        self._entries.move_to_end(key)
        entry.hits += 1
        self.stats.hits += 1
        if self._m_hit is not None:
            self._m_hit.inc()
        return entry

    def get_degraded(
        self,
        kernel: str,
        digest: str,
        max_ratio: float,
        min_ratio: float = 0.0,
    ) -> CacheEntry | None:
        """Best same-work entry with ratio in ``[min_ratio, max_ratio]``.

        "Best" is the highest cached ratio in the band — the least
        degraded answer the caller is willing to accept.  Counted as a
        ``degraded_hit`` (or a plain hit when the band's top is exact).
        """
        lo, hi = _ratio_key(min_ratio), _ratio_key(max_ratio)
        best_key = None
        best_ratio = -1.0
        for key in self._entries:
            k_kernel, k_digest, k_ratio = key
            if k_kernel != kernel or k_digest != digest:
                continue
            if lo <= k_ratio <= hi and k_ratio > best_ratio:
                best_key, best_ratio = key, k_ratio
        if best_key is None:
            self.stats.misses += 1
            if self._m_miss is not None:
                self._m_miss.inc()
            return None
        self._entries.move_to_end(best_key)
        entry = self._entries[best_key]
        entry.hits += 1
        if best_ratio == hi:
            self.stats.hits += 1
            if self._m_hit is not None:
                self._m_hit.inc()
        else:
            self.stats.degraded_hits += 1
            if self._m_degraded is not None:
                self._m_degraded.inc()
        return entry

    # -- updates ---------------------------------------------------------
    def put(
        self,
        kernel: str,
        digest: str,
        ratio: float,
        output: Any,
        quality: float | None = None,
        energy_j: float = 0.0,
    ) -> CacheEntry:
        """Insert (or refresh) one result; evict LRU beyond capacity."""
        entry = CacheEntry(
            kernel=kernel,
            digest=digest,
            ratio=_ratio_key(ratio),
            output=output,
            quality=quality,
            energy_j=energy_j,
        )
        key = entry.key
        if key in self._entries:
            del self._entries[key]
        self._entries[key] = entry
        self.stats.puts += 1
        if self._m_put is not None:
            self._m_put.inc()
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            if self._m_evict is not None:
                self._m_evict.inc()
        return entry

    def clear(self) -> None:
        self._entries.clear()

    def keys(self) -> list[tuple]:
        """Keys in LRU order (oldest first) — for tests and debugging."""
        return list(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ApproxResultCache {len(self)}/{self.capacity} "
            f"hit_rate={self.stats.hit_rate:.2f}>"
        )
